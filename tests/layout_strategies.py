"""Hypothesis strategies that draw whole layouts from the workload
generators (:mod:`repro.layout.generators`), plus shared geometry test
helpers.

Shared by the writer round-trip property tests: instead of hand-rolled
random polygons, these sweep the *parameter spaces* of the canonical
pattern families — gratings, contact arrays (flat and hierarchical),
serpentines, checkerboards, zone plates and random logic — so format
round-trips are exercised on realistic hierarchies, AREFs and curved
data rather than toy rectangles.
"""

from hypothesis import strategies as st

from repro.geometry.polygon import Polygon
from repro.layout import generators
from repro.layout.flatten import flatten_cell


def flat_perimeter(cell):
    """Total perimeter of a cell's flattened polygons — the scale factor
    for quantization-induced area drift in format round-trip tests."""
    flat = flatten_cell(cell)
    return sum(p.perimeter() for v in flat.values() for p in v)


def grid_of_squares(cols, rows, pitch=10.0, side=4.0):
    """A disjoint ``cols × rows`` square array — the canonical cleanly
    shardable layout for executor/cache tests."""
    return [
        Polygon.rectangle(
            c * pitch, r * pitch, c * pitch + side, r * pitch + side
        )
        for r in range(rows)
        for c in range(cols)
    ]


@st.composite
def grating_libraries(draw):
    return generators.grating(
        pitch=draw(st.floats(min_value=0.5, max_value=4.0)),
        duty=draw(st.floats(min_value=0.1, max_value=0.9)),
        lines=draw(st.integers(min_value=1, max_value=12)),
        length=draw(st.floats(min_value=1.0, max_value=40.0)),
    )


@st.composite
def contact_libraries(draw):
    size = draw(st.floats(min_value=0.5, max_value=2.0))
    return generators.contact_array(
        size=size,
        pitch=size * draw(st.floats(min_value=1.0, max_value=4.0)),
        columns=draw(st.integers(min_value=1, max_value=6)),
        rows=draw(st.integers(min_value=1, max_value=6)),
        hierarchical=draw(st.booleans()),
    )


@st.composite
def serpentine_libraries(draw):
    width = draw(st.floats(min_value=0.5, max_value=1.5))
    return generators.serpentine(
        wire_width=width,
        pitch=width * draw(st.floats(min_value=2.0, max_value=5.0)),
        turns=draw(st.integers(min_value=1, max_value=10)),
        length=draw(st.floats(min_value=5.0, max_value=40.0)),
    )


@st.composite
def checkerboard_libraries(draw):
    return generators.checkerboard(
        cells=draw(st.integers(min_value=1, max_value=6)),
        square=draw(st.floats(min_value=1.0, max_value=8.0)),
    )


@st.composite
def zone_plate_libraries(draw):
    return generators.fresnel_zone_plate(
        zones=draw(st.integers(min_value=2, max_value=8)),
        points_per_arc=draw(st.integers(min_value=8, max_value=24)),
    )


@st.composite
def logic_libraries(draw):
    return generators.random_logic(
        chip_size=draw(st.floats(min_value=20.0, max_value=60.0)),
        target_density=draw(st.floats(min_value=0.05, max_value=0.25)),
        seed=draw(st.integers(min_value=0, max_value=2**16)),
    )


@st.composite
def memory_libraries(draw):
    return generators.memory_array(
        words=draw(st.integers(min_value=1, max_value=4)),
        bits=draw(st.integers(min_value=1, max_value=4)),
        blocks=(
            draw(st.integers(min_value=1, max_value=3)),
            draw(st.integers(min_value=1, max_value=3)),
        ),
    )


def flat_libraries():
    """Workload families that produce a single flat cell (no references
    or arrays) — layouts with no serialization-order freedom."""
    return st.one_of(
        grating_libraries(),
        serpentine_libraries(),
        checkerboard_libraries(),
        zone_plate_libraries(),
        logic_libraries(),
    )


def generated_libraries():
    """Any workload family, any parameters: the full sweep."""
    return st.one_of(
        flat_libraries(),
        contact_libraries(),
        memory_libraries(),
    )


# ---------------------------------------------------------------------------
# Raw polygon strategies for the fast-kernel regimes
# ---------------------------------------------------------------------------

#: Offsets that put geometry in each of the kernel's order-embedding
#: regimes: at/above the old 2**24 fall-back boundary, the int64-key
#: range (<= 2**31 - 1), and the big-integer range up to the new
#: 2**53 limit.  Values are database units (tests pass ``grid=1.0``).
LARGE_COORD_OFFSETS = (
    (1 << 24) - 100,
    (1 << 24) + 1,
    1 << 26,
    (1 << 31) - 1000,
    (1 << 31) + 1,
    1 << 40,
    1 << 48,
    (1 << 53) - 1000,
)


@st.composite
def _triangle_batch(draw, span, count):
    """``count`` integer-vertex triangles within ``±span`` of origin,
    heavy on slanted edges (every edge is a candidate crossing)."""
    polys = []
    for _ in range(count):
        x = draw(st.integers(min_value=-span, max_value=span))
        y = draw(st.integers(min_value=-span, max_value=span))
        w1 = draw(st.integers(min_value=1, max_value=60))
        h1 = draw(st.integers(min_value=-40, max_value=40))
        w2 = draw(st.integers(min_value=-30, max_value=30))
        h2 = draw(st.integers(min_value=1, max_value=50))
        polys.append(Polygon([(x, y), (x + w1, y + h1), (x + w2, y + h2)]))
    return polys


@st.composite
def large_coordinate_polygons(draw):
    """Overlapping slanted polygons translated deep into the kernel's
    widened coordinate range (database units; use ``grid=1.0``).

    Draws an offset from :data:`LARGE_COORD_OFFSETS` — every regime
    boundary of the order embedding — with random signs per axis, so
    the fast kernel must stay exact where the old 2**24 embedding gave
    up.
    """
    off = draw(st.sampled_from(LARGE_COORD_OFFSETS))
    sx = draw(st.sampled_from((-1, 1)))
    sy = draw(st.sampled_from((-1, 1)))
    polys = draw(_triangle_batch(span=120, count=draw(
        st.integers(min_value=2, max_value=12)
    )))
    return [
        Polygon([(v.x + sx * off, v.y + sy * off) for v in p.vertices])
        for p in polys
    ]


@st.composite
def crossing_dense_polygons(draw):
    """Many mutually overlapping slanted triangles in a tight window —
    maximal edge/edge crossing density, so nearly every slab is bounded
    by a rational crossing y (database units; use ``grid=1.0``)."""
    count = draw(st.integers(min_value=6, max_value=24))
    return draw(_triangle_batch(span=50, count=count))

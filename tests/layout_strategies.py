"""Hypothesis strategies that draw whole layouts from the workload
generators (:mod:`repro.layout.generators`), plus shared geometry test
helpers.

Shared by the writer round-trip property tests: instead of hand-rolled
random polygons, these sweep the *parameter spaces* of the canonical
pattern families — gratings, contact arrays (flat and hierarchical),
serpentines, checkerboards, zone plates and random logic — so format
round-trips are exercised on realistic hierarchies, AREFs and curved
data rather than toy rectangles.
"""

from hypothesis import strategies as st

from repro.geometry.polygon import Polygon
from repro.layout import generators
from repro.layout.flatten import flatten_cell


def flat_perimeter(cell):
    """Total perimeter of a cell's flattened polygons — the scale factor
    for quantization-induced area drift in format round-trip tests."""
    flat = flatten_cell(cell)
    return sum(p.perimeter() for v in flat.values() for p in v)


def grid_of_squares(cols, rows, pitch=10.0, side=4.0):
    """A disjoint ``cols × rows`` square array — the canonical cleanly
    shardable layout for executor/cache tests."""
    return [
        Polygon.rectangle(
            c * pitch, r * pitch, c * pitch + side, r * pitch + side
        )
        for r in range(rows)
        for c in range(cols)
    ]


@st.composite
def grating_libraries(draw):
    return generators.grating(
        pitch=draw(st.floats(min_value=0.5, max_value=4.0)),
        duty=draw(st.floats(min_value=0.1, max_value=0.9)),
        lines=draw(st.integers(min_value=1, max_value=12)),
        length=draw(st.floats(min_value=1.0, max_value=40.0)),
    )


@st.composite
def contact_libraries(draw):
    size = draw(st.floats(min_value=0.5, max_value=2.0))
    return generators.contact_array(
        size=size,
        pitch=size * draw(st.floats(min_value=1.0, max_value=4.0)),
        columns=draw(st.integers(min_value=1, max_value=6)),
        rows=draw(st.integers(min_value=1, max_value=6)),
        hierarchical=draw(st.booleans()),
    )


@st.composite
def serpentine_libraries(draw):
    width = draw(st.floats(min_value=0.5, max_value=1.5))
    return generators.serpentine(
        wire_width=width,
        pitch=width * draw(st.floats(min_value=2.0, max_value=5.0)),
        turns=draw(st.integers(min_value=1, max_value=10)),
        length=draw(st.floats(min_value=5.0, max_value=40.0)),
    )


@st.composite
def checkerboard_libraries(draw):
    return generators.checkerboard(
        cells=draw(st.integers(min_value=1, max_value=6)),
        square=draw(st.floats(min_value=1.0, max_value=8.0)),
    )


@st.composite
def zone_plate_libraries(draw):
    return generators.fresnel_zone_plate(
        zones=draw(st.integers(min_value=2, max_value=8)),
        points_per_arc=draw(st.integers(min_value=8, max_value=24)),
    )


@st.composite
def logic_libraries(draw):
    return generators.random_logic(
        chip_size=draw(st.floats(min_value=20.0, max_value=60.0)),
        target_density=draw(st.floats(min_value=0.05, max_value=0.25)),
        seed=draw(st.integers(min_value=0, max_value=2**16)),
    )


@st.composite
def memory_libraries(draw):
    return generators.memory_array(
        words=draw(st.integers(min_value=1, max_value=4)),
        bits=draw(st.integers(min_value=1, max_value=4)),
        blocks=(
            draw(st.integers(min_value=1, max_value=3)),
            draw(st.integers(min_value=1, max_value=3)),
        ),
    )


def flat_libraries():
    """Workload families that produce a single flat cell (no references
    or arrays) — layouts with no serialization-order freedom."""
    return st.one_of(
        grating_libraries(),
        serpentine_libraries(),
        checkerboard_libraries(),
        zone_plate_libraries(),
        logic_libraries(),
    )


def generated_libraries():
    """Any workload family, any parameters: the full sweep."""
    return st.one_of(
        flat_libraries(),
        contact_libraries(),
        memory_libraries(),
    )

"""Tests for the exposure simulator."""

import numpy as np
import pytest

from repro.fracture.base import Shot
from repro.geometry.rasterize import RasterFrame
from repro.geometry.trapezoid import Trapezoid
from repro.physics.exposure import (
    ExposureSimulator,
    pattern_coverage,
    shot_dose_map,
)
from repro.physics.psf import DoubleGaussianPSF


@pytest.fixture
def psf():
    return DoubleGaussianPSF(alpha=0.2, beta=2.0, eta=0.74)


def big_pad_shots(size=40.0):
    return [Shot(Trapezoid.from_rectangle(0, 0, size, size))]


class TestDoseMap:
    def test_charge_conservation(self):
        frame = RasterFrame(0, 0, 0.25, 80, 80)
        shots = [
            Shot(Trapezoid.from_rectangle(2, 2, 8, 8), dose=2.0),
            Shot(Trapezoid.from_rectangle(10, 10, 12, 14), dose=0.5),
        ]
        dose = shot_dose_map(shots, frame)
        total = dose.sum() * frame.pixel**2
        expected = 36.0 * 2.0 + 8.0 * 0.5
        assert total == pytest.approx(expected, rel=0.01)

    def test_doses_add_in_overlap(self):
        frame = RasterFrame(0, 0, 0.5, 20, 20)
        t = Trapezoid.from_rectangle(0, 0, 10, 10)
        dose = shot_dose_map([Shot(t, 1.0), Shot(t, 0.5)], frame)
        assert dose.max() == pytest.approx(1.5, rel=0.01)

    def test_pattern_coverage_clips(self):
        frame = RasterFrame(0, 0, 0.5, 20, 20)
        t = Trapezoid.from_rectangle(0, 0, 10, 10)
        cover = pattern_coverage([t, t], frame)
        assert cover.max() == pytest.approx(1.0)


class TestExposure:
    def test_large_pad_interior_level_is_one(self, psf):
        frame = RasterFrame.around((0, 0, 40, 40), 0.5, margin=8.0)
        sim = ExposureSimulator(psf, frame)
        image = sim.expose_shots(big_pad_shots())
        center = sim.sample(image, 20.0, 20.0)
        assert center == pytest.approx(1.0, abs=0.02)

    def test_pad_edge_level_is_half(self, psf):
        frame = RasterFrame.around((0, 0, 40, 40), 0.25, margin=8.0)
        sim = ExposureSimulator(psf, frame)
        image = sim.expose_shots(big_pad_shots())
        # Long straight edge of a huge pad: exactly half the interior.
        edge = sim.sample(image, 0.0, 20.0)
        assert edge == pytest.approx(0.5, abs=0.03)

    def test_isolated_small_feature_below_one(self, psf):
        frame = RasterFrame.around((0, 0, 1, 1), 0.1, margin=8.0)
        sim = ExposureSimulator(psf, frame)
        image = sim.expose_figures([Trapezoid.from_rectangle(0, 0, 0.5, 0.5)])
        peak = sim.sample(image, 0.25, 0.25)
        # A feature smaller than beta misses nearly all backscatter.
        assert peak < 1.0 / (1.0 + psf.eta) + 0.1

    def test_dose_scales_linearly(self, psf):
        frame = RasterFrame.around((0, 0, 10, 10), 0.5, margin=6.0)
        sim = ExposureSimulator(psf, frame)
        figs = [Trapezoid.from_rectangle(0, 0, 10, 10)]
        one = sim.expose_figures(figs, dose=1.0)
        two = sim.expose_figures(figs, dose=2.0)
        assert np.allclose(two, 2.0 * one, atol=1e-9)

    def test_shape_mismatch_raises(self, psf):
        frame = RasterFrame(0, 0, 0.5, 10, 10)
        sim = ExposureSimulator(psf, frame)
        with pytest.raises(ValueError, match="shape"):
            sim.absorbed_energy(np.zeros((5, 5)))

    def test_sample_bilinear(self, psf):
        frame = RasterFrame(0, 0, 1.0, 4, 4)
        sim = ExposureSimulator(psf, frame)
        image = np.zeros((4, 4))
        image[1, 1] = 1.0
        # At the exact pixel centre the sample is the pixel value.
        assert sim.sample(image, 1.5, 1.5) == pytest.approx(1.0)
        # Halfway to the next centre: average.
        assert sim.sample(image, 2.0, 1.5) == pytest.approx(0.5)

    def test_proximity_between_neighbours(self, psf):
        # Two pads 1 µm apart: the gap sees backscatter from both.
        frame = RasterFrame.around((0, 0, 21, 10), 0.25, margin=8.0)
        sim = ExposureSimulator(psf, frame)
        shots = [
            Shot(Trapezoid.from_rectangle(0, 0, 10, 10)),
            Shot(Trapezoid.from_rectangle(11, 0, 21, 10)),
        ]
        image = sim.expose_shots(shots)
        gap = sim.sample(image, 10.5, 5.0)
        far = sim.sample(image, -5.0, 5.0)
        assert gap > 0.3
        assert far < 0.1

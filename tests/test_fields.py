"""Tests for field partitioning and shot ordering."""


import pytest

from repro.core.fields import (
    deflection_travel,
    order_shots,
    partition_fields,
    split_shot_x,
    split_shot_y,
    travel_settle_time,
)
from repro.core.job import MachineJob
from repro.fracture.base import Shot
from repro.geometry.trapezoid import Trapezoid


def rect_shot(x0, y0, x1, y1, dose=1.0):
    return Shot(Trapezoid.from_rectangle(x0, y0, x1, y1), dose)


class TestShotSplitting:
    def test_split_x_preserves_area_and_dose(self):
        shot = rect_shot(0, 0, 10, 4, dose=1.5)
        pieces = split_shot_x(shot, 4.0)
        assert len(pieces) == 2
        assert sum(p.area() for p in pieces) == pytest.approx(40.0)
        assert all(p.dose == 1.5 for p in pieces)

    def test_split_x_outside_is_noop(self):
        shot = rect_shot(0, 0, 10, 4)
        assert split_shot_x(shot, 20.0) == [shot]

    def test_split_y_preserves_area(self):
        shot = rect_shot(0, 0, 4, 10)
        pieces = split_shot_y(shot, 3.0)
        assert sum(p.area() for p in pieces) == pytest.approx(40.0)

    def test_split_slanted_shot(self):
        slanted = Shot(Trapezoid(0, 4, 0, 10, 2, 8))
        pieces = split_shot_y(slanted, 2.0)
        assert sum(p.area() for p in pieces) == pytest.approx(
            slanted.area()
        )


class TestPartitioning:
    def test_validation(self):
        with pytest.raises(ValueError):
            partition_fields(MachineJob([rect_shot(0, 0, 1, 1)]), 0.0)

    def test_small_job_single_field(self):
        job = MachineJob([rect_shot(0, 0, 10, 10)])
        fielded = partition_fields(job, field_size=100.0)
        assert fielded.field_grid() == (1, 1)
        assert fielded.split_count == 0

    def test_shot_crossing_boundary_is_split(self):
        shots = [rect_shot(90, 0, 110, 10)]  # crosses x=100
        job = MachineJob(shots, bounding_box=(0, 0, 200, 10))
        fielded = partition_fields(job, field_size=100.0)
        assert fielded.split_count == 1
        total = sum(
            s.area() for group in fielded.fields.values() for s in group
        )
        assert total == pytest.approx(200.0)

    def test_area_preserved_over_many_fields(self):
        shots = [
            rect_shot(i * 37.0, j * 23.0, i * 37.0 + 30.0, j * 23.0 + 15.0)
            for i in range(6)
            for j in range(6)
        ]
        job = MachineJob(shots)
        fielded = partition_fields(job, field_size=50.0)
        total = sum(
            s.area() for group in fielded.fields.values() for s in group
        )
        assert total == pytest.approx(sum(s.area() for s in shots))

    def test_every_piece_fits_its_field(self):
        shots = [rect_shot(10, 10, 240, 180)]
        job = MachineJob(shots, bounding_box=(0, 0, 250, 200))
        fielded = partition_fields(job, field_size=100.0)
        x0, y0 = 0.0, 0.0
        for (ci, cj), group in fielded.fields.items():
            fx0 = x0 + ci * 100.0
            fy0 = y0 + cj * 100.0
            for shot in group:
                bbox = shot.trapezoid.bounding_box()
                assert bbox[0] >= fx0 - 1e-9
                assert bbox[2] <= fx0 + 100.0 + 1e-9
                assert bbox[1] >= fy0 - 1e-9
                assert bbox[3] <= fy0 + 100.0 + 1e-9

    def test_boundary_fraction(self):
        shots = [rect_shot(95, 95, 105, 105)]  # crosses both axes
        job = MachineJob(shots, bounding_box=(0, 0, 200, 200))
        fielded = partition_fields(job, field_size=100.0)
        assert fielded.occupied_fields() == 4
        assert fielded.boundary_shot_fraction() == pytest.approx(3 / 4)


class TestOrdering:
    def shots_grid(self, n=5, pitch=10.0):
        return [
            rect_shot(i * pitch, j * pitch, i * pitch + 2, j * pitch + 2)
            for j in range(n)
            for i in range(n)
        ]

    def test_strategies_preserve_shot_set(self):
        shots = self.shots_grid()
        for strategy in ("none", "scanline", "nearest"):
            ordered = order_shots(shots, strategy)
            assert sorted(id(s) for s in ordered) == sorted(
                id(s) for s in shots
            )

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            order_shots(self.shots_grid(), "random")

    def test_scanline_sorts_by_y_then_x(self):
        import random

        shots = self.shots_grid()
        random.Random(0).shuffle(shots)
        ordered = order_shots(shots, "scanline")
        centers = [
            (
                (s.trapezoid.bounding_box()[1] + s.trapezoid.bounding_box()[3]) / 2,
                (s.trapezoid.bounding_box()[0] + s.trapezoid.bounding_box()[2]) / 2,
            )
            for s in ordered
        ]
        assert centers == sorted(centers)

    def test_ordering_reduces_travel_vs_shuffled(self):
        import random

        shots = self.shots_grid(n=7)
        random.Random(1).shuffle(shots)
        shuffled_travel = deflection_travel(shots)
        scanline_travel = deflection_travel(order_shots(shots, "scanline"))
        nearest_travel = deflection_travel(order_shots(shots, "nearest"))
        assert scanline_travel < shuffled_travel
        assert nearest_travel < shuffled_travel

    def test_nearest_beats_or_matches_scanline_on_clusters(self):
        # Two distant clusters: nearest-neighbour finishes one first.
        cluster_a = [rect_shot(i * 3.0, 0, i * 3.0 + 1, 1) for i in range(5)]
        cluster_b = [
            rect_shot(i * 3.0, 200.0, i * 3.0 + 1, 201.0) for i in range(5)
        ]
        interleaved = [s for pair in zip(cluster_a, cluster_b) for s in pair]
        nearest = deflection_travel(order_shots(interleaved, "nearest"))
        assert nearest < deflection_travel(interleaved) / 3

    def test_travel_settle_time_penalizes_long_jumps(self):
        near = [rect_shot(i * 1.0, 0, i * 1.0 + 0.5, 0.5) for i in range(10)]
        far = [rect_shot(i * 100.0, 0, i * 100.0 + 0.5, 0.5) for i in range(10)]
        assert travel_settle_time(far) > travel_settle_time(near)

"""Tests for the proximity-effect correction package."""

import numpy as np
import pytest

from repro.fracture.base import Shot
from repro.fracture.trapezoidal import TrapezoidFracturer
from repro.geometry.polygon import Polygon
from repro.geometry.rasterize import RasterFrame
from repro.geometry.trapezoid import Trapezoid
from repro.pec.base import (
    exposure_at_points,
    rectangle_exposure,
    shot_interaction_matrix,
    shot_sample_points,
    trapezoid_exposure,
)
from repro.pec.dose_iter import IterativeDoseCorrector
from repro.pec.dose_matrix import MatrixDoseCorrector
from repro.pec.ghost import GhostCorrector, GhostExposure, split_ghost
from repro.pec.report import correction_report
from repro.pec.shape_bias import ShapeBiasCorrector
from repro.physics.exposure import ExposureSimulator, shot_dose_map
from repro.physics.psf import DoubleGaussianPSF


@pytest.fixture
def psf():
    return DoubleGaussianPSF(alpha=0.15, beta=2.0, eta=0.74)


@pytest.fixture
def line_and_pad_shots():
    polys = [
        Polygon.rectangle(0, 0, 20, 20),       # dense pad
        Polygon.rectangle(22, 0, 22.5, 20),    # isolated fine line
    ]
    return TrapezoidFracturer().fracture_to_shots(polys)


class TestAnalyticExposure:
    def test_pad_center_level_one(self, psf):
        points = np.array([[20.0, 20.0]])
        level = rectangle_exposure(points, (0, 0, 40, 40), psf)
        assert level[0] == pytest.approx(1.0, abs=1e-3)

    def test_pad_edge_level_half(self, psf):
        points = np.array([[0.0, 20.0]])
        level = rectangle_exposure(points, (0, 0, 40, 40), psf)
        assert level[0] == pytest.approx(0.5, abs=1e-3)

    def test_far_point_level_zero(self, psf):
        points = np.array([[100.0, 100.0]])
        level = rectangle_exposure(points, (0, 0, 10, 10), psf)
        assert level[0] == pytest.approx(0.0, abs=1e-6)

    def test_matches_fft_engine_for_rectangle(self, psf):
        rect = Trapezoid.from_rectangle(0, 0, 8, 6)
        frame = RasterFrame.around((0, 0, 8, 6), 0.1, margin=8.0)
        sim = ExposureSimulator(psf, frame)
        image = sim.absorbed_energy(shot_dose_map([Shot(rect)], frame))
        probe_points = np.array([[4.0, 3.0], [1.0, 1.0], [9.0, 3.0]])
        analytic = trapezoid_exposure(probe_points, rect, psf)
        for point, expected in zip(probe_points, analytic):
            sampled = sim.sample(image, point[0], point[1])
            assert sampled == pytest.approx(expected, abs=0.03)

    def test_sample_points_modes(self, line_and_pad_shots):
        centroid = shot_sample_points(line_and_pad_shots, "centroid")
        center = shot_sample_points(line_and_pad_shots, "center")
        assert centroid.shape == center.shape
        # For rectangles the two coincide.
        assert np.allclose(centroid, center)

    def test_sample_points_validates_mode(self, line_and_pad_shots):
        with pytest.raises(ValueError):
            shot_sample_points(line_and_pad_shots, "random")

    def test_interaction_matrix_shape_and_diagonal(self, psf, line_and_pad_shots):
        matrix = shot_interaction_matrix(line_and_pad_shots, psf)
        n = len(line_and_pad_shots)
        assert matrix.shape == (n, n)
        # Self-exposure dominates.
        for i in range(n):
            assert matrix[i, i] >= matrix[i].max() * 0.99


class TestIterativeCorrection:
    def test_equalizes_exposure(self, psf, line_and_pad_shots):
        before = correction_report(line_and_pad_shots, psf)
        corrector = IterativeDoseCorrector()
        corrected = corrector.correct(line_and_pad_shots, psf)
        after = correction_report(corrected, psf)
        assert after.spread < before.spread / 10
        assert corrector.last_trace.converged

    def test_isolated_feature_gets_boost(self, psf, line_and_pad_shots):
        corrected = IterativeDoseCorrector().correct(line_and_pad_shots, psf)
        pad_dose = corrected[0].dose
        line_dose = max(s.dose for s in corrected)
        assert line_dose > pad_dose
        # The boost approaches (1+eta) for a narrow isolated line.
        assert 1.2 < line_dose / pad_dose < 1.0 + psf.eta + 0.1

    def test_convergence_trace_monotone(self, psf, line_and_pad_shots):
        corrector = IterativeDoseCorrector(max_iterations=10, tolerance=0.0)
        corrector.correct(line_and_pad_shots, psf)
        errors = corrector.last_trace.max_errors
        assert len(errors) == 10
        assert errors[-1] < errors[0]

    def test_relaxation_slows_convergence(self, psf, line_and_pad_shots):
        plain = IterativeDoseCorrector(tolerance=1e-6)
        damped = IterativeDoseCorrector(tolerance=1e-6, relaxation=0.5)
        plain.correct(line_and_pad_shots, psf)
        damped.correct(line_and_pad_shots, psf)
        assert damped.last_trace.iterations >= plain.last_trace.iterations

    def test_dose_limits_respected(self, psf, line_and_pad_shots):
        corrector = IterativeDoseCorrector(dose_limits=(0.5, 1.2))
        corrected = corrector.correct(line_and_pad_shots, psf)
        for shot in corrected:
            assert 0.5 <= shot.dose <= 1.2

    def test_empty_input(self, psf):
        corrector = IterativeDoseCorrector()
        assert corrector.correct([], psf) == []
        assert corrector.last_trace.converged

    def test_validation(self):
        with pytest.raises(ValueError):
            IterativeDoseCorrector(target=0)
        with pytest.raises(ValueError):
            IterativeDoseCorrector(relaxation=0)


class TestEdgeTargetedCorrection:
    def test_edge_mode_converges(self, psf, line_and_pad_shots):
        corrector = IterativeDoseCorrector(sample_mode="edge")
        corrected = corrector.correct(line_and_pad_shots, psf)
        assert corrector.last_trace.converged
        assert len(corrected) == len(line_and_pad_shots)

    def test_edge_mode_lowers_dense_doses(self, psf):
        # Edge targeting reduces doses in dense context rather than
        # boosting interiors: a large pad's edge sits at 0.5 + background,
        # so its dose drops below 1.
        shots = TrapezoidFracturer().fracture_to_shots(
            [Polygon.rectangle(0, 0, 30, 30)]
        )
        corrected = IterativeDoseCorrector(sample_mode="edge").correct(
            shots, psf
        )
        assert corrected[0].dose < 1.0

    def test_edge_mode_equalizes_edge_levels(self, psf, line_and_pad_shots):
        from repro.pec.base import edge_sample_points, exposure_at_points

        corrected = IterativeDoseCorrector(sample_mode="edge").correct(
            line_and_pad_shots, psf
        )
        points, owners = edge_sample_points(corrected)
        levels = exposure_at_points(points, corrected, psf)
        import numpy as np

        per_shot = np.bincount(owners, weights=levels) / np.bincount(owners)
        assert per_shot.max() - per_shot.min() < 0.01

    def test_isolated_line_dose_near_one_in_edge_mode(self, psf):
        # An isolated feature's edge already prints at ~0.5 x its own
        # level; edge mode should barely touch it.
        shots = TrapezoidFracturer().fracture_to_shots(
            [Polygon.rectangle(0, 0, 0.6, 20)]
        )
        corrected = IterativeDoseCorrector(sample_mode="edge").correct(
            shots, psf
        )
        assert corrected[0].dose == pytest.approx(1.0, abs=0.35)


class TestMatrixCorrection:
    def test_exact_for_small_system(self, psf, line_and_pad_shots):
        corrected = MatrixDoseCorrector().correct(line_and_pad_shots, psf)
        report = correction_report(corrected, psf)
        assert report.spread < 1e-6

    def test_agrees_with_iterative(self, psf, line_and_pad_shots):
        matrix_doses = [
            s.dose for s in MatrixDoseCorrector().correct(line_and_pad_shots, psf)
        ]
        iter_doses = [
            s.dose
            for s in IterativeDoseCorrector(tolerance=1e-8, max_iterations=100).correct(
                line_and_pad_shots, psf
            )
        ]
        assert matrix_doses == pytest.approx(iter_doses, rel=1e-3)

    def test_clipping_applied(self, psf, line_and_pad_shots):
        corrected = MatrixDoseCorrector(dose_limits=(0.9, 1.1)).correct(
            line_and_pad_shots, psf
        )
        for shot in corrected:
            assert 0.9 <= shot.dose <= 1.1

    def test_regularization_validation(self):
        with pytest.raises(ValueError):
            MatrixDoseCorrector(regularization=-1)

    def test_empty_input(self, psf):
        assert MatrixDoseCorrector().correct([], psf) == []


class TestShapeBias:
    def test_dense_figures_shrink(self, psf):
        shots = TrapezoidFracturer().fracture_to_shots(
            [Polygon.rectangle(0, 0, 30, 30)]
        )
        corrected = ShapeBiasCorrector().correct(shots, psf)
        assert corrected[0].area() < shots[0].area()

    def test_isolated_small_feature_nearly_unbiased(self, psf):
        shots = TrapezoidFracturer().fracture_to_shots(
            [Polygon.rectangle(0, 0, 0.4, 10)]
        )
        corrected = ShapeBiasCorrector().correct(shots, psf)
        # A thin line self-exposes slightly above the isolated-edge
        # reference, so a modest bias remains.
        assert corrected[0].area() == pytest.approx(shots[0].area(), rel=0.25)
        # But far less than the bias a dense pad receives.
        pad = TrapezoidFracturer().fracture_to_shots(
            [Polygon.rectangle(0, 0, 30, 30)]
        )
        pad_biased = ShapeBiasCorrector().correct(pad, psf)
        pad_shrink = 1.0 - pad_biased[0].area() / pad[0].area()
        line_shrink = 1.0 - corrected[0].area() / shots[0].area()
        assert line_shrink < pad_shrink * 10

    def test_doses_unchanged(self, psf, line_and_pad_shots):
        corrected = ShapeBiasCorrector().correct(line_and_pad_shots, psf)
        assert all(s.dose == o.dose for s, o in zip(corrected, line_and_pad_shots))

    def test_never_inverts(self, psf):
        shots = TrapezoidFracturer().fracture_to_shots(
            [Polygon.rectangle(0, 0, 0.2, 0.2)]
        )
        corrected = ShapeBiasCorrector(gain=50.0).correct(shots, psf)
        assert corrected[0].area() >= 0.0
        t = corrected[0].trapezoid
        assert t.y_top > t.y_bottom

    def test_validation(self):
        with pytest.raises(ValueError):
            ShapeBiasCorrector(gain=0)
        with pytest.raises(ValueError):
            ShapeBiasCorrector(max_bias_fraction=0.6)


class TestGhost:
    def test_complement_covers_window(self, psf, line_and_pad_shots):
        corrector = GhostCorrector(margin=5.0)
        ghost = corrector.ghost_shots(line_and_pad_shots, psf)
        pattern_area = sum(s.area() for s in line_and_pad_shots)
        ghost_area = sum(s.area() for s in ghost)
        # Window = bbox + margin on each side.
        window_area = (22.5 + 10) * (20 + 10)
        assert ghost_area + pattern_area == pytest.approx(window_area, rel=1e-6)

    def test_ghost_dose_theoretical(self, psf, line_and_pad_shots):
        ghost = GhostCorrector().ghost_shots(line_and_pad_shots, psf)
        assert ghost[0].dose == pytest.approx(psf.eta / (1 + psf.eta))

    def test_correct_concatenates(self, psf, line_and_pad_shots):
        corrector = GhostCorrector()
        combined = corrector.correct(line_and_pad_shots, psf)
        pattern, ghost = split_ghost(combined, len(line_and_pad_shots))
        assert len(pattern) == len(line_and_pad_shots)
        assert len(ghost) > 0

    def test_ghost_equalizes_background(self, psf):
        # Density ladder: one dense pad and one sparse line far apart.
        polys = [
            Polygon.rectangle(0, 0, 15, 15),
            Polygon.rectangle(30, 0, 30.5, 15),
        ]
        shots = TrapezoidFracturer().fracture_to_shots(polys)
        frame = RasterFrame.around((0, 0, 31, 15), 0.25, margin=8.0)
        ghost_shots = GhostCorrector(margin=8.0).ghost_shots(shots, psf)
        exposure = GhostExposure(psf, frame)
        with_ghost = exposure.absorbed(shots, ghost_shots)
        without = exposure.absorbed(shots, [])
        sim = ExposureSimulator(psf, frame)
        # Compare edge levels of dense pad vs isolated line.
        def edge_delta(image):
            pad_edge = sim.sample(image, 15.0, 7.5)
            line_edge = sim.sample(image, 30.0, 7.5)
            return abs(pad_edge - line_edge)

        assert edge_delta(with_ghost) < edge_delta(without)

    def test_empty_input(self, psf):
        assert GhostCorrector().correct([], psf) == []


class TestReport:
    def test_empty_report(self, psf):
        report = correction_report([], psf)
        assert report.shot_count == 0

    def test_extra_exposure_fraction(self, psf):
        shots = [Shot(Trapezoid.from_rectangle(0, 0, 10, 10), dose=1.5)]
        report = correction_report(shots, psf)
        assert report.extra_exposure_fraction == pytest.approx(0.5)

    def test_spread_zero_for_uniform(self, psf):
        shots = [Shot(Trapezoid.from_rectangle(0, 0, 40, 40))]
        report = correction_report(shots, psf)
        assert report.spread == pytest.approx(0.0)

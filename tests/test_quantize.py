"""Tests for dose-class quantization and GDSII PATH support."""

import numpy as np
import pytest

from repro.fracture.base import Shot
from repro.fracture.trapezoidal import TrapezoidFracturer
from repro.geometry.polygon import Polygon
from repro.geometry.trapezoid import Trapezoid
from repro.pec.dose_iter import IterativeDoseCorrector
from repro.pec.quantize import dose_classes, quantize_doses
from repro.pec.report import correction_report
from repro.physics.psf import DoubleGaussianPSF


class TestDoseClasses:
    def test_geometric_spacing_constant_ratio(self):
        classes = dose_classes(levels=8, lo=0.5, hi=4.0)
        ratios = classes[1:] / classes[:-1]
        assert np.allclose(ratios, ratios[0])
        assert classes[0] == pytest.approx(0.5)
        assert classes[-1] == pytest.approx(4.0)

    def test_linear_spacing(self):
        classes = dose_classes(levels=5, lo=1.0, hi=3.0, geometric=False)
        assert np.allclose(np.diff(classes), 0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            dose_classes(levels=1)
        with pytest.raises(ValueError):
            dose_classes(levels=4, lo=2.0, hi=1.0)


class TestQuantizeDoses:
    def shots(self):
        return [
            Shot(Trapezoid.from_rectangle(i, 0, i + 1, 1), dose=d)
            for i, d in enumerate((0.9, 1.0, 1.37, 2.6))
        ]

    def test_snaps_to_available_classes(self):
        classes = np.array([1.0, 2.0, 3.0])
        quantized, worst = quantize_doses(self.shots(), classes)
        assert [s.dose for s in quantized] == [1.0, 1.0, 1.0, 3.0]
        assert worst > 0

    def test_exact_doses_untouched(self):
        classes = np.array([0.9, 1.0, 1.37, 2.6])
        quantized, worst = quantize_doses(self.shots(), classes)
        assert worst == pytest.approx(0.0)

    def test_worst_step_bounded_by_class_ratio(self):
        classes = dose_classes(levels=32, lo=0.5, hi=4.0)
        corrector = IterativeDoseCorrector()
        psf = DoubleGaussianPSF(alpha=0.15, beta=2.0, eta=0.74)
        shots = TrapezoidFracturer().fracture_to_shots(
            [Polygon.rectangle(0, 0, 20, 20),
             Polygon.rectangle(22, 0, 22.5, 20)]
        )
        corrected = corrector.correct(shots, psf)
        _, worst = quantize_doses(corrected, classes)
        # Half the geometric step of 32 classes over [0.5, 4].
        step = (4.0 / 0.5) ** (1.0 / 31) - 1.0
        assert worst <= step / 2 + 1e-9

    def test_more_classes_smaller_exposure_error(self):
        psf = DoubleGaussianPSF(alpha=0.15, beta=2.0, eta=0.74)
        shots = TrapezoidFracturer().fracture_to_shots(
            [Polygon.rectangle(0, 0, 20, 20),
             Polygon.rectangle(22, 0, 22.5, 20)]
        )
        corrected = IterativeDoseCorrector().correct(shots, psf)
        spreads = []
        for levels in (4, 64):
            quantized, _ = quantize_doses(
                corrected, dose_classes(levels=levels)
            )
            spreads.append(correction_report(quantized, psf).spread)
        assert spreads[1] <= spreads[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            quantize_doses(self.shots(), np.zeros((2, 2)))


class TestGdsiiPath:
    def test_path_read_as_polygon(self):
        from repro.layout.gdsii import loads_gdsii
        from repro.layout.gdsii_records import (
            DataType,
            RecordType,
            pack_ascii,
            pack_int16,
            pack_int32,
            pack_real8,
            pack_record,
        )

        # Hand-build a stream with one PATH element (2 µm wide L-wire).
        data = b"".join(
            [
                pack_int16(RecordType.HEADER, [600]),
                pack_int16(RecordType.BGNLIB, [1979] + [0] * 11),
                pack_ascii(RecordType.LIBNAME, "P"),
                pack_real8(RecordType.UNITS, [1e-3, 1e-9]),
                pack_int16(RecordType.BGNSTR, [1979] + [0] * 11),
                pack_ascii(RecordType.STRNAME, "TOP"),
                pack_record(RecordType.PATH, DataType.NONE),
                pack_int16(RecordType.LAYER, [2]),
                pack_int16(RecordType.DATATYPE, [0]),
                pack_int32(RecordType.WIDTH, [2000]),  # 2 µm in nm
                pack_int32(
                    RecordType.XY, [0, 0, 10000, 0, 10000, 10000]
                ),
                pack_record(RecordType.ENDEL, DataType.NONE),
                pack_record(RecordType.ENDSTR, DataType.NONE),
                pack_record(RecordType.ENDLIB, DataType.NONE),
            ]
        )
        lib = loads_gdsii(data)
        cell = lib["TOP"]
        assert cell.polygon_count() == 1
        poly = next(iter(cell.polygons.values()))[0]
        # Mitred L-wire of width 2, arms 10 µm: area 40 µm².
        assert poly.area() == pytest.approx(40.0, rel=1e-6)

    def test_zero_width_path_skipped(self):
        from repro.layout.gdsii import loads_gdsii
        from repro.layout.gdsii_records import (
            DataType,
            RecordType,
            pack_ascii,
            pack_int16,
            pack_int32,
            pack_real8,
            pack_record,
        )

        data = b"".join(
            [
                pack_int16(RecordType.HEADER, [600]),
                pack_int16(RecordType.BGNLIB, [1979] + [0] * 11),
                pack_ascii(RecordType.LIBNAME, "P"),
                pack_real8(RecordType.UNITS, [1e-3, 1e-9]),
                pack_int16(RecordType.BGNSTR, [1979] + [0] * 11),
                pack_ascii(RecordType.STRNAME, "TOP"),
                pack_record(RecordType.PATH, DataType.NONE),
                pack_int16(RecordType.LAYER, [2]),
                pack_int16(RecordType.DATATYPE, [0]),
                pack_int32(RecordType.XY, [0, 0, 10000, 0]),
                pack_record(RecordType.ENDEL, DataType.NONE),
                pack_record(RecordType.ENDSTR, DataType.NONE),
                pack_record(RecordType.ENDLIB, DataType.NONE),
            ]
        )
        lib = loads_gdsii(data)
        assert lib["TOP"].polygon_count() == 0

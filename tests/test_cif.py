"""Tests for the CIF writer/reader."""

import pytest
from hypothesis import given, settings

import layout_strategies
from layout_strategies import flat_perimeter
from repro.geometry.polygon import Polygon
from repro.layout.cif import CifError, dumps_cif, loads_cif, read_cif, write_cif
from repro.layout.flatten import flatten_cell
from repro.layout.library import Library
from repro.layout import generators


def flat_area(cell):
    flat = flatten_cell(cell)
    return sum(p.area() for v in flat.values() for p in v)


def flat_vertices(cell):
    flat = flatten_cell(cell)
    return sorted(
        (round(v.x, 4), round(v.y, 4))
        for polys in flat.values()
        for p in polys
        for v in p.vertices
    )


class TestWriter:
    def test_contains_symbol_definitions(self):
        lib = Library("T")
        lib.new_cell("TOP").add_rectangle(0, 0, 1, 1)
        text = dumps_cif(lib)
        assert "DS 1 1 1;" in text
        assert "9 TOP;" in text
        assert text.rstrip().endswith("E")

    def test_layer_commands(self):
        lib = Library("T")
        lib.new_cell("TOP").add_rectangle(0, 0, 1, 1, layer=(8, 2))
        assert "L L8D2;" in dumps_cif(lib)

    def test_magnified_reference_rejected(self):
        lib = Library("T")
        child = lib.new_cell("CHILD")
        child.add_rectangle(0, 0, 1, 1)
        top = lib.new_cell("TOP")
        top.instantiate(child, (0, 0), magnification=2.0)
        with pytest.raises(CifError, match="magnification"):
            dumps_cif(lib)

    def test_array_expanded_to_calls(self):
        lib = generators.contact_array(columns=3, rows=2, hierarchical=True)
        text = dumps_cif(lib)
        assert text.count("C 2") >= 6 or text.count("C 1") >= 6


class TestRoundTrip:
    def test_polygon_roundtrip(self):
        lib = Library("T")
        lib.new_cell("TOP").add_polygon(Polygon([(0, 0), (10, 0), (5, 8)]))
        lib2 = loads_cif(dumps_cif(lib))
        assert flat_area(lib2.top_cell()) == pytest.approx(40.0, abs=1e-3)

    def test_cell_names_preserved(self):
        lib = Library("T")
        lib.new_cell("MYCELL").add_rectangle(0, 0, 1, 1)
        lib2 = loads_cif(dumps_cif(lib))
        assert "MYCELL" in lib2

    def test_reference_with_rotation(self):
        lib = Library("T")
        child = lib.new_cell("CHILD")
        child.add_rectangle(0, 0, 2, 1)
        top = lib.new_cell("TOP")
        top.instantiate(child, (5, 5), rotation_deg=90)
        lib2 = loads_cif(dumps_cif(lib))
        assert flat_vertices(lib2.top_cell()) == flat_vertices(top)

    def test_reference_with_mirror(self):
        lib = Library("T")
        child = lib.new_cell("CHILD")
        child.add_rectangle(0, 0, 2, 1)
        top = lib.new_cell("TOP")
        top.instantiate(child, (3, -2), x_reflection=True)
        lib2 = loads_cif(dumps_cif(lib))
        assert flat_vertices(lib2.top_cell()) == flat_vertices(top)

    def test_mirror_plus_rotation(self):
        lib = Library("T")
        child = lib.new_cell("CHILD")
        child.add_rectangle(0, 0, 2, 1)
        top = lib.new_cell("TOP")
        top.instantiate(child, (1, 2), rotation_deg=270, x_reflection=True)
        lib2 = loads_cif(dumps_cif(lib))
        assert flat_vertices(lib2.top_cell()) == flat_vertices(top)

    def test_hierarchical_array_flat_area(self):
        lib = generators.memory_array(words=4, bits=4, blocks=(2, 2))
        lib2 = loads_cif(dumps_cif(lib))
        assert flat_area(lib2.top_cell()) == pytest.approx(
            flat_area(lib.top_cell()), rel=1e-6
        )

    def test_file_roundtrip(self, tmp_path):
        lib = generators.grating(lines=5)
        path = tmp_path / "test.cif"
        n = write_cif(lib, path)
        assert path.stat().st_size == n
        lib2 = read_cif(path)
        assert flat_area(lib2.top_cell()) == pytest.approx(
            flat_area(lib.top_cell()), abs=1e-3
        )


class TestReader:
    def test_box_command(self):
        text = "DS 1 1 1;\n9 TOP;\nB 200 100 100 50;\nDF;\nC 1;\nE\n"
        lib = loads_cif(text)
        cell = lib["TOP"]
        assert cell.polygon_count() == 1
        assert cell.area() == pytest.approx(2.0)  # 2 µm x 1 µm

    def test_rotated_box(self):
        text = "DS 1 1 1;\n9 TOP;\nB 200 100 0 0 0 1;\nDF;\nC 1;\nE\n"
        lib = loads_cif(text)
        box = lib["TOP"].bounding_box()
        # Rotated 90 degrees: now 1 µm x 2 µm.
        assert box[2] - box[0] == pytest.approx(1.0)
        assert box[3] - box[1] == pytest.approx(2.0)

    def test_comments_stripped(self):
        text = "( a comment ); DS 1 1 1; 9 TOP; B 100 100 0 0; DF; C 1; E"
        lib = loads_cif(text)
        assert lib["TOP"].polygon_count() == 1

    def test_call_to_undefined_symbol(self):
        text = "DS 1 1 1;\n9 TOP;\nC 99;\nDF;\nC 1;\nE\n"
        with pytest.raises(CifError, match="undefined symbol"):
            loads_cif(text)

    def test_malformed_polygon(self):
        text = "DS 1 1 1;\nP 0 0 10;\nDF;\nE\n"
        with pytest.raises(CifError, match="malformed P"):
            loads_cif(text)

    def test_malformed_box(self):
        text = "DS 1 1 1;\nB 100;\nDF;\nE\n"
        with pytest.raises(CifError, match="malformed B"):
            loads_cif(text)

    def test_top_level_geometry_goes_to_top_cell(self):
        text = "B 100 100 0 0;\nE\n"
        lib = loads_cif(text)
        assert "TOP" in lib
        assert lib["TOP"].polygon_count() == 1


class TestWriteReadWriteProperty:
    """Hypothesis sweep: CIF write→read→write is byte-stable.

    The first write expands arrays into individual calls and quantizes
    coordinates to centimicrons; the first read canonicalizes what CIF
    cannot represent (the library name survives only in the header
    comment).  The text written from that first round trip must be a
    fixed point of write→read→write for every generated workload
    family, and even the very first write may differ only in the header
    comment line.
    """

    @given(library=layout_strategies.generated_libraries())
    @settings(max_examples=25, deadline=None)
    def test_write_read_write_is_byte_stable(self, library):
        canonical = dumps_cif(loads_cif(dumps_cif(library)))
        rewritten = dumps_cif(loads_cif(canonical))
        assert rewritten == canonical

    @given(library=layout_strategies.generated_libraries())
    @settings(max_examples=25, deadline=None)
    def test_write_read_write_body_identical(self, library):
        def body(text):
            return text.split("\n", 1)[1]

        first = dumps_cif(library)
        second = dumps_cif(loads_cif(first))
        assert body(second) == body(first)

    @given(library=layout_strategies.generated_libraries())
    @settings(max_examples=10, deadline=None)
    def test_round_trip_preserves_flat_geometry(self, library):
        loaded = loads_cif(dumps_cif(library))
        original = flat_area(library.top_cell())
        # CIF quantizes to centimicrons (a 10 nm grid): the area drift
        # is bounded by the flat perimeter times the quantum.
        budget = 0.01 * flat_perimeter(library.top_cell()) + 1e-9
        assert abs(flat_area(loaded.top_cell()) - original) <= budget

"""Tests for mark detection and registration fitting."""


import numpy as np
import pytest

from repro.machine.registration import (
    detect_edge,
    detect_mark_center,
    detection_error_model,
    fit_registration,
    mark_signal,
)


class TestMarkSignal:
    def test_validation(self):
        with pytest.raises(ValueError):
            mark_signal(np.linspace(-1, 1, 10), 0.0, beam_size=0.0)

    def test_step_shape(self):
        x = np.linspace(-2, 2, 401)  # includes x = 0 exactly
        signal = mark_signal(x, 0.0, beam_size=0.1)
        assert signal[0] == pytest.approx(0.0, abs=1e-6)
        assert signal[-1] == pytest.approx(1.0, abs=1e-6)
        mid = signal[np.argmin(np.abs(x))]
        assert mid == pytest.approx(0.5, abs=0.01)

    def test_noise_reproducible_with_rng(self):
        x = np.linspace(-1, 1, 50)
        a = mark_signal(x, 0.0, 0.1, noise=0.05, rng=np.random.default_rng(3))
        b = mark_signal(x, 0.0, 0.1, noise=0.05, rng=np.random.default_rng(3))
        assert np.array_equal(a, b)


class TestDetection:
    def test_detects_clean_edge_exactly(self):
        x = np.linspace(-2, 2, 800)
        signal = mark_signal(x, 0.3, beam_size=0.1)
        assert detect_edge(x, signal) == pytest.approx(0.3, abs=1e-3)

    def test_raises_without_crossing(self):
        x = np.linspace(-1, 1, 50)
        with pytest.raises(ValueError):
            detect_edge(x, np.zeros(50), threshold=0.5)

    def test_detects_under_noise(self):
        x = np.linspace(-2, 2, 400)
        rng = np.random.default_rng(7)
        signal = mark_signal(x, -0.2, beam_size=0.1, noise=0.03, rng=rng)
        assert detect_edge(x, signal) == pytest.approx(-0.2, abs=0.05)

    def test_mark_center_two_edges(self):
        x = np.linspace(-3, 3, 1200)
        rising = mark_signal(x, -1.0, 0.1)
        falling = 1.0 - mark_signal(x, 1.2, 0.1)
        line_mark = rising * falling
        assert detect_mark_center(x, line_mark) == pytest.approx(0.1, abs=0.01)

    def test_mark_center_needs_both_edges(self):
        x = np.linspace(-2, 2, 400)
        signal = mark_signal(x, 0.0, 0.1)
        with pytest.raises(ValueError):
            detect_mark_center(x, signal)


class TestErrorModel:
    def test_error_grows_with_noise(self):
        quiet = detection_error_model(beam_size=0.1, noise=0.01, scans=80)
        loud = detection_error_model(beam_size=0.1, noise=0.1, scans=80)
        assert loud > quiet

    def test_error_scales_with_beam_size(self):
        fine = detection_error_model(beam_size=0.05, noise=0.05, scans=80)
        coarse = detection_error_model(beam_size=0.5, noise=0.05, scans=80)
        assert coarse > fine

    def test_clean_signal_near_zero_error(self):
        sigma = detection_error_model(beam_size=0.1, noise=0.0, scans=10)
        assert sigma < 1e-6


class TestRegistrationFit:
    NOMINAL = [(0.0, 0.0), (1000.0, 0.0), (0.0, 1000.0), (1000.0, 1000.0)]

    def test_recovers_translation(self):
        measured = [(x + 0.3, y - 0.1) for x, y in self.NOMINAL]
        fit = fit_registration(self.NOMINAL, measured)
        assert fit.translation[0] == pytest.approx(0.3, abs=1e-9)
        assert fit.translation[1] == pytest.approx(-0.1, abs=1e-9)
        assert fit.residual_rms < 1e-9

    def test_recovers_rotation(self):
        theta = 50e-6  # 50 µrad
        measured = [
            (x - theta * y, y + theta * x) for x, y in self.NOMINAL
        ]
        fit = fit_registration(self.NOMINAL, measured)
        assert fit.rotation_urad() == pytest.approx(50.0, rel=1e-6)
        assert fit.residual_rms < 1e-9

    def test_recovers_scale(self):
        scale = 20e-6  # 20 ppm
        measured = [(x * (1 + scale), y * (1 + scale)) for x, y in self.NOMINAL]
        fit = fit_registration(self.NOMINAL, measured)
        assert fit.scale_ppm() == pytest.approx(20.0, rel=1e-6)

    def test_apply_matches_measured(self):
        measured = [(x + 0.2 + 1e-5 * x, y - 0.1) for x, y in self.NOMINAL]
        fit = fit_registration(self.NOMINAL, measured)
        for (nx, ny), (mx, my) in zip(self.NOMINAL, measured):
            ax, ay = fit.apply(nx, ny)
            assert ax == pytest.approx(mx, abs=1e-9)
            assert ay == pytest.approx(my, abs=1e-9)

    def test_translation_only_mode(self):
        measured = [(x + 0.5, y + 0.5) for x, y in self.NOMINAL]
        fit = fit_registration(self.NOMINAL, measured, linear=False)
        assert fit.matrix == ((0.0, 0.0), (0.0, 0.0))
        assert fit.translation == pytest.approx((0.5, 0.5))

    def test_noise_appears_in_residual(self):
        rng = np.random.default_rng(1)
        measured = [
            (x + rng.normal(0, 0.05), y + rng.normal(0, 0.05))
            for x, y in self.NOMINAL
        ]
        fit = fit_registration(self.NOMINAL, measured)
        assert 0.0 < fit.residual_rms < 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_registration([(0, 0)], [(0, 0), (1, 1)])
        with pytest.raises(ValueError):
            fit_registration([(0, 0), (1, 1)], [(0, 0), (1, 1)], linear=True)

"""Tests for the double-Gaussian PSF model."""

import math

import numpy as np
import pytest

from repro.physics.materials import GAAS, SILICON
from repro.physics.psf import (
    DoubleGaussianPSF,
    backscatter_coefficient,
    backscatter_range,
    forward_range,
    psf_for,
)


@pytest.fixture
def psf():
    return DoubleGaussianPSF(alpha=0.1, beta=2.0, eta=0.74)


class TestValidation:
    def test_positive_ranges(self):
        with pytest.raises(ValueError):
            DoubleGaussianPSF(alpha=0, beta=1, eta=0.5)
        with pytest.raises(ValueError):
            DoubleGaussianPSF(alpha=1, beta=-1, eta=0.5)

    def test_non_negative_eta(self):
        with pytest.raises(ValueError):
            DoubleGaussianPSF(alpha=1, beta=2, eta=-0.1)


class TestNormalization:
    def test_radial_integral_is_one(self, psf):
        r = np.linspace(0, 30, 60000)
        integral = np.trapezoid(psf.radial(r) * 2 * np.pi * r, r)
        assert integral == pytest.approx(1.0, abs=1e-4)

    def test_kernel_sums_to_one(self, psf):
        kernel = psf.kernel(pixel=0.1)
        assert kernel.sum() == pytest.approx(1.0, abs=1e-3)

    def test_kernel_odd_and_symmetric(self, psf):
        kernel = psf.kernel(pixel=0.25)
        assert kernel.shape[0] % 2 == 1
        assert np.allclose(kernel, kernel.T)
        assert np.allclose(kernel, kernel[::-1, ::-1])

    def test_kernel_resolves_narrow_alpha(self):
        # Alpha below the pixel: pixel integration must keep the sum at 1.
        psf = DoubleGaussianPSF(alpha=0.02, beta=2.0, eta=0.74)
        assert psf.kernel(pixel=0.2).sum() == pytest.approx(1.0, abs=1e-3)

    def test_kernel_pixel_validation(self, psf):
        with pytest.raises(ValueError):
            psf.kernel(pixel=0)


class TestDerivedQuantities:
    def test_encircled_energy_limits(self, psf):
        assert psf.encircled_energy(0.0) == pytest.approx(0.0)
        assert psf.encircled_energy(100.0) == pytest.approx(1.0)

    def test_encircled_energy_monotone(self, psf):
        radii = np.linspace(0.01, 10, 50)
        values = [psf.encircled_energy(r) for r in radii]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_encircled_validates(self, psf):
        with pytest.raises(ValueError):
            psf.encircled_energy(-1.0)

    def test_background_level(self, psf):
        assert psf.background_level() == pytest.approx(0.74 / 1.74)

    def test_proximity_ratio(self, psf):
        assert psf.proximity_ratio() == pytest.approx(1.74)

    def test_with_blur_quadrature(self, psf):
        blurred = psf.with_blur(0.1)
        assert blurred.alpha == pytest.approx(math.hypot(0.1, 0.1))
        assert blurred.beta == psf.beta

    def test_scalar_and_array_radial(self, psf):
        scalar = psf.radial(1.0)
        array = psf.radial(np.array([1.0, 2.0]))
        assert isinstance(scalar, float)
        assert array.shape == (2,)
        assert array[0] == pytest.approx(scalar)


class TestEmpiricalParameters:
    def test_beta_anchor_at_20kv_si(self):
        assert backscatter_range(20.0, SILICON) == pytest.approx(2.0, rel=1e-6)

    def test_beta_grows_with_energy(self):
        assert backscatter_range(50.0) > backscatter_range(10.0)

    def test_beta_power_law(self):
        ratio = backscatter_range(40.0) / backscatter_range(20.0)
        assert ratio == pytest.approx(2**1.75, rel=1e-6)

    def test_eta_anchor_si(self):
        assert backscatter_coefficient(SILICON) == pytest.approx(0.74, rel=0.01)

    def test_eta_grows_with_z(self):
        assert backscatter_coefficient(GAAS) > backscatter_coefficient(SILICON)

    def test_forward_range_shrinks_with_energy(self):
        assert forward_range(50.0, 0.5) < forward_range(10.0, 0.5)

    def test_forward_range_grows_with_thickness(self):
        assert forward_range(20.0, 1.0) > forward_range(20.0, 0.3)

    def test_forward_range_includes_beam_size(self):
        thick = forward_range(20.0, 0.5, beam_size=0.5)
        assert thick >= 0.5

    def test_psf_for_sane_at_20kv(self):
        psf = psf_for(20.0)
        assert 0.05 < psf.alpha < 0.5
        assert 1.5 < psf.beta < 2.5
        assert 0.6 < psf.eta < 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            backscatter_range(0.0)
        with pytest.raises(ValueError):
            forward_range(-1.0)

"""Tests for polygon offsetting (sizing)."""


import pytest

from repro.geometry.boolean import boolean_polygons
from repro.geometry.offset import offset, offset_ring
from repro.geometry.polygon import Polygon
from repro.geometry.region import Region


def net_area(polys):
    return sum(p.signed_area() for p in polys)


class TestGrow:
    def test_square_grows_exactly(self):
        grown = offset(Polygon.rectangle(0, 0, 10, 10), 1.0)
        assert net_area(grown) == pytest.approx(144.0)

    def test_grow_zero_is_identity(self):
        same = offset(Polygon.rectangle(0, 0, 10, 10), 0.0)
        assert net_area(same) == pytest.approx(100.0)

    def test_triangle_grow_bounds(self):
        tri = Polygon([(0, 0), (10, 0), (5, 8)])
        grown = offset(tri, 0.5)
        lower = tri.area() + tri.perimeter() * 0.5
        upper = lower + 4 * 0.5 * 0.5 * 3  # miter corners bound
        assert lower <= net_area(grown) <= upper

    def test_growth_contains_original(self):
        poly = Polygon([(0, 0), (8, 0), (8, 3), (4, 3), (4, 6), (0, 6)])
        grown = offset(poly, 0.4)
        # Original minus grown must be empty.
        remains = boolean_polygons([poly], grown, "sub")
        assert net_area(remains) == pytest.approx(0.0, abs=1e-6)

    def test_close_shapes_merge(self):
        two = [Polygon.rectangle(0, 0, 4, 4), Polygon.rectangle(5, 0, 9, 4)]
        merged = offset(two, 0.75)
        assert len([p for p in merged if p.signed_area() > 0]) == 1

    def test_cw_input_handled(self):
        cw = Polygon([(0, 0), (0, 10), (10, 10), (10, 0)])
        # offset() routes through the boolean engine, which normalizes.
        grown = offset(cw.normalized(), 1.0)
        assert net_area(grown) == pytest.approx(144.0)


class TestShrink:
    def test_square_shrinks_exactly(self):
        shrunk = offset(Polygon.rectangle(0, 0, 10, 10), -1.0)
        assert net_area(shrunk) == pytest.approx(64.0)

    def test_thin_feature_vanishes(self):
        line = Polygon.rectangle(0, 0, 0.5, 20)
        assert net_area(offset(line, -1.0)) == pytest.approx(0.0)

    def test_shrink_contained_in_original(self):
        poly = Polygon([(0, 0), (8, 0), (8, 3), (4, 3), (4, 6), (0, 6)])
        shrunk = offset(poly, -0.4)
        outside = boolean_polygons(shrunk, [poly], "sub")
        assert net_area(outside) == pytest.approx(0.0, abs=1e-6)

    def test_l_shape_arm_collapse(self):
        # L with a 1-wide arm: shrinking by 0.6 removes the arm.
        l_shape = Polygon([(0, 0), (6, 0), (6, 1), (1, 1), (1, 6), (0, 6)])
        shrunk = offset(l_shape, -0.6)
        assert net_area(shrunk) == pytest.approx(0.0, abs=1e-6)

    def test_grow_then_shrink_of_convex_is_identity(self):
        square = Polygon.rectangle(0, 0, 10, 10)
        roundtrip = offset(offset(square, 1.0), -1.0)
        assert net_area(roundtrip) == pytest.approx(100.0, rel=1e-6)


class TestHoles:
    @pytest.fixture
    def donut(self):
        return boolean_polygons(
            [Polygon.rectangle(0, 0, 10, 10)],
            [Polygon.rectangle(3, 3, 7, 7)],
            "sub",
        )

    def test_grow_shrinks_hole(self, donut):
        grown = offset(donut, 1.0)
        # Outer 12x12, hole 2x2.
        assert net_area(grown) == pytest.approx(144.0 - 4.0)

    def test_shrink_grows_hole(self, donut):
        shrunk = offset(donut, -1.0)
        # Outer 8x8, hole 6x6.
        assert net_area(shrunk) == pytest.approx(64.0 - 36.0)

    def test_grow_past_hole_closes_it(self, donut):
        grown = offset(donut, 2.5)
        assert net_area(grown) == pytest.approx(15.0 * 15.0)


class TestOffsetRing:
    def test_empty_for_degenerate(self):
        degenerate = Polygon([(0, 0), (1, 0), (1, 0.0000001)])
        ring = offset_ring(degenerate, 0.1)
        assert isinstance(ring, list)

    def test_square_ring_vertices(self):
        ring = offset_ring(Polygon.rectangle(0, 0, 4, 4), 1.0)
        xs = sorted({round(p.x, 9) for p in ring})
        ys = sorted({round(p.y, 9) for p in ring})
        assert xs == [-1.0, 5.0]
        assert ys == [-1.0, 5.0]


class TestRegionSized:
    def test_region_sized_grow(self):
        region = Region([Polygon.rectangle(0, 0, 10, 10)])
        assert region.sized(1.0).area() == pytest.approx(144.0)

    def test_region_sized_shrink(self):
        region = Region([Polygon.rectangle(0, 0, 10, 10)])
        assert region.sized(-2.0).area() == pytest.approx(36.0)

    def test_opening_removes_slivers(self):
        # Morphological opening: shrink then grow removes thin spurs but
        # restores the bulk feature.
        base = Region(
            [
                Polygon.rectangle(0, 0, 10, 10),
                Polygon.rectangle(10, 4.8, 20, 5.0),  # 0.2-wide spur
            ]
        ).merged()
        opened = base.sized(-0.3).sized(0.3)
        assert opened.area() == pytest.approx(100.0, rel=1e-6)

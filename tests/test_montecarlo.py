"""Tests for the Monte-Carlo scattering simulator."""

import numpy as np
import pytest

from repro.physics.materials import GAAS, PMMA_MATERIAL, SILICON
from repro.physics.montecarlo import (
    MonteCarloSimulator,
    _resist_fraction,
    fit_double_gaussian,
)
from repro.physics.psf import DoubleGaussianPSF


@pytest.fixture(scope="module")
def result_20kv():
    sim = MonteCarloSimulator(energy_kev=20.0, seed=42)
    return sim.run(electrons=4000)


class TestMaterials:
    def test_compound_mass_fraction(self):
        pmma = PMMA_MATERIAL
        # Effective Z of PMMA is dominated by carbon/oxygen.
        assert 4.0 < pmma.atomic_number < 7.0
        assert pmma.density == pytest.approx(1.18)

    def test_mean_ionization_positive(self):
        for m in (SILICON, GAAS, PMMA_MATERIAL):
            assert m.mean_ionization_kev() > 0


class TestSimulator:
    def test_validates_energy(self):
        with pytest.raises(ValueError):
            MonteCarloSimulator(energy_kev=0.1)

    def test_validates_thickness(self):
        with pytest.raises(ValueError):
            MonteCarloSimulator(resist_thickness=0)

    def test_reproducible(self):
        a = MonteCarloSimulator(energy_kev=10.0, seed=7).run(electrons=500)
        b = MonteCarloSimulator(energy_kev=10.0, seed=7).run(electrons=500)
        assert np.array_equal(a.energy, b.energy)
        assert a.backscatter_yield == b.backscatter_yield

    def test_deposits_energy(self, result_20kv):
        assert result_20kv.energy.sum() > 0

    def test_backscatter_yield_in_physical_range(self, result_20kv):
        # Bulk Si backscatter coefficient is ~0.15-0.35 depending on model.
        assert 0.05 < result_20kv.backscatter_yield < 0.5

    def test_density_decreases_at_large_radius(self, result_20kv):
        density = result_20kv.density
        centers = result_20kv.bin_centers()
        near = density[centers < 0.01].max() if (centers < 0.01).any() else density[0]
        far = density[centers > 5.0].max()
        assert near > far * 10

    def test_higher_energy_spreads_further(self):
        low = MonteCarloSimulator(energy_kev=10.0, seed=1).run(electrons=2000)
        high = MonteCarloSimulator(energy_kev=50.0, seed=1).run(electrons=2000)

        def spread_radius(res):
            cumulative = np.cumsum(res.energy)
            half = np.searchsorted(cumulative, 0.9 * cumulative[-1])
            return res.bin_centers()[min(half, len(res.energy) - 1)]

        assert spread_radius(high) > spread_radius(low)

    def test_heavier_substrate_backscatters_more(self):
        si = MonteCarloSimulator(energy_kev=20.0, substrate=SILICON, seed=3).run(
            electrons=2000
        )
        gaas = MonteCarloSimulator(energy_kev=20.0, substrate=GAAS, seed=3).run(
            electrons=2000
        )
        assert gaas.backscatter_yield > si.backscatter_yield


class TestResistFraction:
    def test_fully_inside(self):
        frac = _resist_fraction(np.array([0.1]), np.array([0.3]), 0.5)
        assert frac[0] == pytest.approx(1.0)

    def test_fully_below(self):
        frac = _resist_fraction(np.array([1.0]), np.array([2.0]), 0.5)
        assert frac[0] == pytest.approx(0.0)

    def test_half_crossing(self):
        frac = _resist_fraction(np.array([0.25]), np.array([0.75]), 0.5)
        assert frac[0] == pytest.approx(0.5)

    def test_crossing_surface_upward(self):
        frac = _resist_fraction(np.array([0.25]), np.array([-0.25]), 0.5)
        assert frac[0] == pytest.approx(0.5)


class TestFit:
    def test_recovers_synthetic_parameters(self):
        truth = DoubleGaussianPSF(alpha=0.08, beta=2.2, eta=0.7)
        r = np.geomspace(1e-3, 15, 80)
        density = truth.radial(r)
        fit = fit_double_gaussian(r, density)
        assert fit.alpha == pytest.approx(truth.alpha, rel=0.05)
        assert fit.beta == pytest.approx(truth.beta, rel=0.05)
        assert fit.eta == pytest.approx(truth.eta, rel=0.1)

    def test_orders_alpha_below_beta(self):
        truth = DoubleGaussianPSF(alpha=0.08, beta=2.2, eta=0.7)
        r = np.geomspace(1e-3, 15, 80)
        fit = fit_double_gaussian(
            r, truth.radial(r), alpha_guess=3.0, beta_guess=0.05, eta_guess=1.5
        )
        assert fit.alpha < fit.beta

    def test_needs_enough_bins(self):
        with pytest.raises(ValueError, match="not enough"):
            fit_double_gaussian(np.array([1.0, 2.0]), np.array([1.0, 0.5]))

    def test_fits_mc_output_beta_near_literature(self, result_20kv):
        fit = fit_double_gaussian(result_20kv.bin_centers(), result_20kv.density)
        # 20 kV on Si: beta ~ 2 µm (allow generous MC tolerance).
        assert 1.0 < fit.beta < 3.5

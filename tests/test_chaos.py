"""Deterministic chaos suite: every fault mode, byte-identical output.

The load-bearing invariant of the fault-tolerance layer: any injected
fault schedule that ends in success produces artifacts byte-identical
to a clean run's, with the recovery visible in the stats counters —
never silently absorbed, never altering a single output byte.  Fault
schedules are keyed by ``(position, attempt)`` with no wall-clock or
RNG, so each scenario replays identically.
"""

import os
import threading
import time

import pytest

from chaos import cache_entry_paths, corrupt_entries
from repro.core.cache import CacheDegradedWarning, ShardCache
from repro.core.executor import RetryPolicy, shutdown_worker_pool
from repro.core.faults import (
    FAULTS_ENV_VAR,
    FaultPlan,
    FaultyCache,
    InjectedFaultError,
    TransientFaultError,
)
from repro.core.jobfile import dumps_job
from repro.core.pipeline import PreparationPipeline
from repro.layout import generators

FIELD_SIZE = 20.0

#: Zero backoff keeps retry scenarios fast; determinism is unaffected
#: (backoff shapes wall-clock, never results).
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.0)


@pytest.fixture(autouse=True)
def fresh_pool():
    """Chaos scenarios break/kill the shared pool on purpose — start
    and leave every test with no pool so scenarios never interact."""
    shutdown_worker_pool()
    yield
    shutdown_worker_pool()


def grating_library():
    return generators.grating(pitch=2.0, duty=0.5, lines=12, length=24.0)


def fzp_library():
    return generators.fresnel_zone_plate(zones=6, points_per_arc=24)


def run_grating(workers=2, faults=None, retry=FAST_RETRY, cache_dir=None):
    pipeline = PreparationPipeline(
        workers=workers,
        field_size=FIELD_SIZE,
        cache_dir=cache_dir,
        retry=retry,
        faults=faults,
    )
    return pipeline.run(grating_library(), name="grating")


class TestRetryPolicy:
    def test_backoff_is_deterministic_and_capped(self):
        policy = RetryPolicy(backoff_base=0.05, backoff_cap=0.2)
        assert policy.backoff(1) == pytest.approx(0.05)
        assert policy.backoff(2) == pytest.approx(0.1)
        assert policy.backoff(3) == pytest.approx(0.2)
        assert policy.backoff(10) == pytest.approx(0.2)
        with pytest.raises(ValueError):
            policy.backoff(0)

    def test_classification_transient_vs_permanent(self):
        from concurrent.futures import BrokenExecutor

        policy = RetryPolicy()
        assert policy.is_transient(BrokenExecutor("worker died"))
        assert policy.is_transient(OSError("infra trouble"))
        assert policy.is_transient(TransientFaultError("injected"))
        assert not policy.is_transient(ValueError("bad shard data"))
        assert not policy.is_transient(InjectedFaultError("injected"))

    @pytest.mark.parametrize(
        "bad",
        [
            {"max_attempts": 0},
            {"max_attempts": 1.5},
            {"max_attempts": True},
            {"backoff_base": -0.1},
            {"backoff_cap": -1},
            {"shard_timeout": 0.0},
            {"shard_timeout": -2.0},
            {"shard_timeout": True},
        ],
    )
    def test_bad_values_raise(self, bad):
        with pytest.raises(ValueError):
            RetryPolicy(**bad)


class TestFaultPlan:
    def test_from_json_roundtrip(self):
        plan = FaultPlan.from_json(
            '{"kill_worker": [[1, 0]], "transient": [[0, 0], [0, 1]], '
            '"enospc_puts": [0, 3], "hang_seconds": 2.5}'
        )
        assert plan.kill_worker == frozenset({(1, 0)})
        assert plan.transient == frozenset({(0, 0), (0, 1)})
        assert plan.enospc_puts == frozenset({0, 3})
        assert plan.hang_seconds == 2.5
        assert plan.coordinator_pid is None
        assert plan.any_shard_faults

    @pytest.mark.parametrize(
        "text",
        [
            "not json",
            "[1, 2]",
            '{"explode": [[0, 0]]}',
            '{"transient": [[0]]}',
            '{"transient": [[0, -1]]}',
            '{"enospc_puts": [-1]}',
            '{"hang_seconds": 0}',
        ],
    )
    def test_bad_plans_rejected(self, text):
        with pytest.raises(ValueError):
            FaultPlan.from_json(text)

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(FAULTS_ENV_VAR, '{"transient": [[2, 0]]}')
        plan = FaultPlan.from_env()
        assert plan.transient == frozenset({(2, 0)})

    def test_kill_and_hang_never_fire_in_coordinator(self):
        # The armed coordinator must survive its own kill/hang schedule
        # (serial replays of a pool schedule run in-process) — if this
        # assertion is reachable, the guard works.
        plan = FaultPlan(
            kill_worker=frozenset({(0, 0)}),
            hang=frozenset({(1, 0)}),
            hang_seconds=60.0,
        ).arm()
        assert plan.coordinator_pid == os.getpid()
        plan.fire(0, 0)
        plan.fire(1, 0)

    def test_transient_fires_anywhere(self):
        plan = FaultPlan(transient=frozenset({(0, 0)})).arm()
        with pytest.raises(TransientFaultError):
            plan.fire(0, 0)
        plan.fire(0, 1)  # other attempts untouched


class TestShardFaultScenarios:
    """Each fault kind against a real worker pool: identical bytes,
    the recovery visible in the counters."""

    def _clean_bytes(self):
        result = run_grating(workers=1)
        assert result.execution.shard_count >= 2
        assert result.execution.fault_events == 0
        return dumps_job(result.job)

    def test_transient_fault_retries_and_matches(self):
        clean = self._clean_bytes()
        plan = FaultPlan(transient=frozenset({(0, 0)}))
        result = run_grating(workers=2, faults=plan)
        stats = result.execution
        assert stats.shard_retries == 1
        assert stats.pool_restarts == 0
        assert stats.shard_timeouts == 0
        assert dumps_job(result.job) == clean

    def test_killed_worker_salvages_and_matches(self):
        clean = self._clean_bytes()
        plan = FaultPlan(kill_worker=frozenset({(0, 0)}))
        result = run_grating(workers=2, faults=plan)
        stats = result.execution
        assert stats.pool_restarts >= 1
        assert stats.shard_retries >= 1
        assert dumps_job(result.job) == clean

    def test_hung_worker_times_out_and_matches(self):
        clean = self._clean_bytes()
        plan = FaultPlan(hang=frozenset({(0, 0)}), hang_seconds=30.0)
        retry = RetryPolicy(
            max_attempts=3, backoff_base=0.0, shard_timeout=0.75
        )
        result = run_grating(workers=2, faults=plan, retry=retry)
        stats = result.execution
        assert stats.shard_timeouts >= 1
        assert stats.pool_restarts >= 1
        assert stats.shard_retries >= 1
        assert dumps_job(result.job) == clean

    def test_permanent_fault_fails_fast(self):
        plan = FaultPlan(permanent=frozenset({(0, 0)}))
        with pytest.raises(InjectedFaultError):
            run_grating(workers=2, faults=plan)

    def test_exhausted_transient_raises(self):
        plan = FaultPlan(
            transient=frozenset({(0, 0), (0, 1), (0, 2)})
        )
        with pytest.raises(TransientFaultError):
            run_grating(workers=2, faults=plan)


class TestCacheFaultScenarios:
    def test_corrupt_entry_evicts_recomputes_and_matches(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = run_grating(workers=1, cache_dir=cache_dir)
        clean = dumps_job(cold.job)
        entries = cache_entry_paths(cache_dir)
        assert len(entries) == cold.execution.shard_count
        assert corrupt_entries(entries[:1]) == 1
        warm = run_grating(workers=1, cache_dir=cache_dir)
        stats = warm.execution
        assert stats.cache_evictions == 1
        assert stats.cache_misses == 1
        assert stats.cache_hits == stats.shard_count - 1
        assert dumps_job(warm.job) == clean
        # The evicted entry was recomputed and re-stored.
        assert len(cache_entry_paths(cache_dir)) == len(entries)

    def test_enospc_degrades_to_read_only_with_one_warning(self, tmp_path):
        cache_dir = tmp_path / "cache"
        clean = dumps_job(run_grating(workers=1).job)
        plan = FaultPlan(enospc_puts=frozenset({0}))
        with pytest.warns(CacheDegradedWarning) as caught:
            result = run_grating(workers=1, faults=plan, cache_dir=cache_dir)
        assert len(caught) == 1
        stats = result.execution
        assert stats.cache_write_failures == 1
        assert stats.cache_degraded
        assert dumps_job(result.job) == clean
        # Degraded means read-only: every later put was skipped too.
        assert cache_entry_paths(cache_dir) == []

    def test_faulty_cache_counts_puts_across_entry_points(self, tmp_path):
        inner = ShardCache(tmp_path / "cache")
        plan = FaultPlan(enospc_puts=frozenset({1}))
        cache = FaultyCache(inner, plan)
        assert cache.put_blob("ab" + "0" * 62, b"payload")  # ordinal 0
        with pytest.raises(OSError):
            cache.put_blob("cd" + "0" * 62, b"payload")  # ordinal 1
        assert cache.put_blob("ef" + "0" * 62, b"payload")  # ordinal 2
        assert inner.stats.stores == 2


class TestFullGauntlet:
    """The acceptance gate: one FZP run through a SIGKILL, a transient
    fault, two corrupt cache entries and an ENOSPC — byte-identical
    ``.ebj`` and ``.ebp`` artifacts, every counter accounted for."""

    #: Tighter mosaic than the grating scenarios: the gauntlet needs
    #: enough shards that two corruptions still leave warm hits.
    FZP_FIELD = 10.0

    def _run_fzp(self, cache_dir, program_path, faults=None,
                 retry=FAST_RETRY, workers=2):
        pipeline = PreparationPipeline(
            workers=workers,
            field_size=self.FZP_FIELD,
            cache_dir=cache_dir,
            machine="raster",
            retry=retry,
            faults=faults,
        )
        return pipeline.run(
            fzp_library(), name="fzp", program_path=program_path
        )

    def test_chaos_run_matches_clean_run_byte_for_byte(self, tmp_path):
        from repro.core.jobfile import write_job

        cache_dir = tmp_path / "cache"
        # Learn which cache entries hold shard results (the program
        # export below adds segment blobs to the same store).
        scout = PreparationPipeline(
            workers=1, field_size=self.FZP_FIELD, cache_dir=cache_dir
        ).run(fzp_library(), name="fzp")
        shard_entries = cache_entry_paths(cache_dir)
        assert len(shard_entries) == scout.execution.shard_count
        assert scout.execution.shard_count > 2

        clean_ebp = tmp_path / "clean.ebp"
        clean = self._run_fzp(cache_dir, clean_ebp, workers=1)
        assert clean.execution.fault_events == 0
        clean_ebj = tmp_path / "clean.ebj"
        write_job(clean.job, clean_ebj)

        # Two corrupt shard entries -> two evictions -> exactly two
        # recomputed shards, which the shard-fault schedule targets:
        # pending position 0 fails transiently once, position 1 kills
        # its worker, and the first re-store hits ENOSPC.
        assert corrupt_entries(shard_entries[:2]) == 2
        plan = FaultPlan(
            transient=frozenset({(0, 0)}),
            kill_worker=frozenset({(1, 0)}),
            enospc_puts=frozenset({0}),
        )
        chaos_ebp = tmp_path / "chaos.ebp"
        with pytest.warns(CacheDegradedWarning):
            chaos = self._run_fzp(cache_dir, chaos_ebp, faults=plan)
        chaos_ebj = tmp_path / "chaos.ebj"
        write_job(chaos.job, chaos_ebj)

        assert chaos_ebj.read_bytes() == clean_ebj.read_bytes()
        assert chaos_ebp.read_bytes() == clean_ebp.read_bytes()

        stats = chaos.execution
        assert stats.cache_evictions == 2
        assert stats.cache_misses == 2
        assert stats.cache_hits == stats.shard_count - 2
        assert stats.cache_write_failures == 1
        assert stats.cache_degraded
        assert stats.shard_retries >= 1
        assert stats.pool_restarts >= 1
        assert stats.fault_events > 0

    def test_clean_run_reports_zero_fault_counters(self, tmp_path):
        cache_dir = tmp_path / "cache"
        ebp = tmp_path / "clean.ebp"
        result = self._run_fzp(cache_dir, ebp, workers=2)
        stats = result.execution
        assert stats.fault_events == 0
        assert stats.shard_retries == 0
        assert stats.shards_salvaged == 0
        assert stats.pool_restarts == 0
        assert stats.shard_timeouts == 0
        assert stats.cache_write_failures == 0
        assert not stats.cache_degraded
        assert stats.cache_evictions == 0


class TestMalformedFaultPlans:
    """Satellite regression: a malformed ``REPRO_FAULTS`` must die with
    one line naming the offending key — never a ``TypeError``
    traceback out of frozenset/tuple conversion."""

    @pytest.mark.parametrize(
        "text, key",
        [
            ('{"kill_worker": 5}', "kill_worker"),
            ('{"transient": "0,0"}', "transient"),
            ('{"dead_worker": 7}', "dead_worker"),
            ('{"drop_conn": {"0": 0}}', "drop_conn"),
            ('{"enospc_puts": 3}', "enospc_puts"),
        ],
    )
    def test_non_list_schedules_name_the_key(self, text, key):
        with pytest.raises(ValueError) as excinfo:
            FaultPlan.from_json(text)
        assert key in str(excinfo.value)

    def test_network_kinds_round_trip(self):
        plan = FaultPlan.from_json(
            '{"dead_worker": [[0, 0]], "drop_conn": [[1, 0]], '
            '"late_heartbeat": [[2, 0]], "duplicate_commit": [[3, 1]]}'
        )
        assert plan.dead_worker == frozenset({(0, 0)})
        assert plan.drop_conn == frozenset({(1, 0)})
        assert plan.late_heartbeat == frozenset({(2, 0)})
        assert plan.duplicate_commit == frozenset({(3, 1)})
        assert plan.any_network_faults
        assert not plan.any_shard_faults

    def test_cli_exits_2_with_one_line_error(self, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv(FAULTS_ENV_VAR, '{"kill_worker": 5}')
        assert main(["demo", "--workload", "grating"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "kill_worker" in err
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) == 1


class TestInterruptibleBackoff:
    """Satellite regression: retry backoff sleeps on an interruptible
    event, so a cooperative cancel or job deadline aborts a *pending*
    backoff instead of waiting it out."""

    def test_waiter_interrupt_wakes_wait_early(self):
        from repro.core.executor import BackoffWaiter

        waiter = BackoffWaiter()
        timer = threading.Timer(0.1, waiter.interrupt)
        start = time.monotonic()
        timer.start()
        try:
            waiter.wait(30.0)
        finally:
            timer.cancel()
        assert time.monotonic() - start < 5.0

    def test_waiter_check_raises_before_and_after_sleep(self):
        from repro.core.executor import BackoffWaiter

        class Cancelled(Exception):
            pass

        calls = []

        def check():
            calls.append(1)
            if len(calls) > 1:
                raise Cancelled()

        waiter = BackoffWaiter(check=check)
        waiter.interrupt()  # no actual sleeping in this test
        with pytest.raises(Cancelled):
            waiter.wait(30.0)
        assert len(calls) == 2

    def test_waiter_never_sleeps_past_deadline(self):
        from repro.core.executor import BackoffWaiter

        waiter = BackoffWaiter(deadline=time.monotonic() + 0.05)
        start = time.monotonic()
        waiter.wait(30.0)
        assert time.monotonic() - start < 5.0

    def test_cancel_mid_backoff_aborts_the_run_promptly(self):
        """A run whose shard is waiting out a 30 s backoff must abort
        within moments of the cancel, not at the backoff's end."""
        from repro.core.executor import BackoffWaiter

        class Cancelled(Exception):
            pass

        cancel = threading.Event()

        def check():
            if cancel.is_set():
                raise Cancelled()

        waiter = BackoffWaiter(check=check)
        plan = FaultPlan(transient=frozenset({(0, 0), (0, 1)}))
        slow_retry = RetryPolicy(max_attempts=3, backoff_base=30.0)
        pipeline = PreparationPipeline(
            workers=2,
            field_size=FIELD_SIZE,
            retry=slow_retry,
            faults=plan,
            waiter=waiter,
        )
        timer = threading.Timer(
            0.3, lambda: (cancel.set(), waiter.interrupt())
        )
        start = time.monotonic()
        timer.start()
        try:
            with pytest.raises(Cancelled):
                pipeline.run(grating_library(), name="grating")
        finally:
            timer.cancel()
        assert time.monotonic() - start < 15.0


class TestDistributedGauntlet:
    """The distributed acceptance gate: dead worker + dropped commit
    connection + duplicate commit + silenced heartbeats + a straggler,
    all in one run — ``.ebj`` and ``.ebp`` byte-identical to serial,
    every degradation visible in the counters."""

    #: Tighter than TestFullGauntlet's mosaic: the fault schedule
    #: targets four distinct positions, so four shards must exist.
    FZP_FIELD = 6.0

    def _run_fzp(self, program_path, endpoint=None, faults=None,
                 policy=None, throttled_fleet=None):
        kwargs = {}
        if endpoint is not None:
            kwargs.update(
                dispatch="distributed",
                workers_endpoint=endpoint,
                dist_policy=policy,
            )
        pipeline = PreparationPipeline(
            workers=2,
            field_size=self.FZP_FIELD,
            machine="raster",
            retry=RetryPolicy(max_attempts=5, backoff_base=0.0),
            faults=faults,
            **kwargs,
        )
        return pipeline.run(
            fzp_library(), name="fzp", program_path=program_path
        )

    def test_distributed_gauntlet_matches_serial_byte_for_byte(
        self, tmp_path
    ):
        from repro.core.jobfile import write_job
        from repro.dist import (
            WorkerDaemon,
            coordinator_for,
            shutdown_coordinators,
        )
        from repro.dist.coordinator import DistPolicy

        clean_ebp = tmp_path / "clean.ebp"
        clean = self._run_fzp(clean_ebp)
        clean_ebj = tmp_path / "clean.ebj"
        write_job(clean.job, clean_ebj)
        assert clean.execution.shard_count >= 4

        server = coordinator_for("127.0.0.1:0")
        host, port = server.server_address[:2]
        endpoint = f"{host}:{port}"
        release = threading.Event()
        first_visit = threading.Event()

        def throttle(position, attempt):
            # The straggler stalls on shard 0; speculation must finish
            # the shard on another worker.
            if position == 0:
                first_visit.set()
                release.wait(timeout=60.0)

        straggler = WorkerDaemon(
            endpoint, worker_id="straggler", throttle=throttle
        )
        workers = [
            straggler,
            WorkerDaemon(endpoint, worker_id="w1"),
            WorkerDaemon(endpoint, worker_id="w2"),
        ]

        def gated_run(daemon):
            # The straggler, running alone, claims shard 0 first
            # (grants follow position order) — the stall is then
            # deterministic, not a race against the healthy workers.
            first_visit.wait(timeout=60.0)
            daemon.run()

        threads = [threading.Thread(target=straggler.run, daemon=True)]
        threads += [
            threading.Thread(target=gated_run, args=(daemon,), daemon=True)
            for daemon in workers[1:]
        ]
        for thread in threads:
            thread.start()

        plan = FaultPlan(
            dead_worker=frozenset({(1, 0)}),
            drop_conn=frozenset({(2, 0)}),
            duplicate_commit=frozenset({(3, 0)}),
            late_heartbeat=frozenset({(1, 1)}),
        )
        policy = DistPolicy(
            lease_deadline=2.0,
            heartbeat_interval=0.1,
            heartbeat_timeout=1.0,
            worker_grace=5.0,
            speculate_after=0.3,
        )
        chaos_ebp = tmp_path / "chaos.ebp"
        try:
            chaos = self._run_fzp(
                chaos_ebp, endpoint=endpoint, faults=plan, policy=policy
            )
        finally:
            release.set()
            for daemon in workers:
                daemon.stop()
            for thread in threads:
                thread.join(timeout=5.0)
            shutdown_coordinators()
        chaos_ebj = tmp_path / "chaos.ebj"
        write_job(chaos.job, chaos_ebj)

        assert chaos_ebj.read_bytes() == clean_ebj.read_bytes()
        assert chaos_ebp.read_bytes() == clean_ebp.read_bytes()

        stats = chaos.execution
        assert stats.dispatch == "distributed"
        assert stats.leases_granted > stats.shard_count
        assert stats.speculative_wins >= 1
        assert stats.duplicate_commits >= 1
        # Whether each lost shard was rescued by a reclaim-and-retry or
        # a speculative duplicate is a race; that *several* rescues
        # happened is not.
        rescues = (
            stats.leases_reclaimed
            + stats.worker_deaths
            + stats.heartbeats_missed
            + stats.speculative_wins
        )
        assert rescues >= 2

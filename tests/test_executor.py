"""Tests for the parallel field-sharded execution engine."""

import warnings

import pytest

from repro.core.executor import (
    ShardedExecutor,
    ShardOverlapWarning,
    merge_shard_results,
    plan_shards,
    _process_shard,
)
from repro.core.pipeline import PreparationPipeline
from repro.fracture.quality import analyze_figures, merge_reports
from repro.fracture.trapezoidal import TrapezoidFracturer
from repro.geometry.polygon import Polygon
from repro.layout import generators
from repro.layout.layer import Layer
from repro.pec.dose_iter import IterativeDoseCorrector
from repro.physics.psf import DoubleGaussianPSF


def shot_key(shot):
    t = shot.trapezoid
    return (
        t.y_bottom,
        t.y_top,
        t.x_bottom_left,
        t.x_bottom_right,
        t.x_top_left,
        t.x_top_right,
        shot.dose,
    )


def grid_of_squares(cols, rows, pitch=10.0, side=4.0):
    return [
        Polygon.rectangle(
            c * pitch, r * pitch, c * pitch + side, r * pitch + side
        )
        for r in range(rows)
        for c in range(cols)
    ]


class TestPlanShards:
    def test_no_field_size_gives_single_shard(self):
        polys = grid_of_squares(3, 3)
        plan = plan_shards(polys)
        assert len(plan) == 1
        assert plan[0].index == (0, 0)
        assert len(plan[0].polygons) == 9

    def test_empty_input(self):
        assert plan_shards([], field_size=10.0) == []

    def test_sharding_covers_all_polygons(self):
        polys = grid_of_squares(4, 4)
        plan = plan_shards(polys, field_size=20.0)
        assert sum(len(s.polygons) for s in plan) == len(polys)
        assert len(plan) == 4

    def test_row_major_order(self):
        polys = grid_of_squares(4, 4)
        plan = plan_shards(polys, field_size=20.0)
        indices = [s.index for s in plan]
        assert indices == sorted(indices, key=lambda ij: (ij[1], ij[0]))

    def test_rejects_bad_field_size(self):
        with pytest.raises(ValueError):
            plan_shards(grid_of_squares(1, 1), field_size=0.0)


class TestDeterminism:
    """workers=N must be shot-for-shot identical to workers=1."""

    def test_parallel_matches_serial_fracture_only(self):
        polys = grid_of_squares(6, 6)
        pipe = PreparationPipeline()
        serial = pipe.run_polygons(polys, workers=1, field_size=20.0)
        parallel = pipe.run_polygons(polys, workers=4, field_size=20.0)
        assert [shot_key(s) for s in serial.job.shots] == [
            shot_key(s) for s in parallel.job.shots
        ]
        assert serial.fracture_report == parallel.fracture_report

    def test_parallel_matches_serial_with_pec(self):
        psf = DoubleGaussianPSF(alpha=0.2, beta=2.0, eta=0.74)
        pipe = PreparationPipeline(
            corrector=IterativeDoseCorrector(), psf=psf
        )
        lib = generators.grating(lines=30)
        serial = pipe.run(lib, workers=1, field_size=25.0)
        parallel = pipe.run(lib, workers=3, field_size=25.0)
        assert serial.corrected and parallel.corrected
        assert [shot_key(s) for s in serial.job.shots] == [
            shot_key(s) for s in parallel.job.shots
        ]

    def test_worker_count_never_changes_plan(self):
        polys = grid_of_squares(5, 5)
        for workers in (1, 2, 5):
            result = PreparationPipeline().run_polygons(
                polys, workers=workers, field_size=25.0
            )
            assert result.execution.shard_count == 4


class TestShardMerge:
    def test_merge_preserves_shard_order(self):
        polys = grid_of_squares(4, 2, pitch=20.0, side=6.0)
        plan = plan_shards(polys, field_size=20.0)
        fracturer = TrapezoidFracturer()
        results = [
            _process_shard(shard, fracturer, None, None) for shard in plan
        ]
        merged = merge_shard_results(
            results, corrected=False, stats=None
        )
        expected = [k for r in results for k in map(shot_key, r.shots)]
        assert [shot_key(s) for s in merged.shots] == expected

    def test_merged_report_matches_unsharded_totals(self):
        polys = grid_of_squares(4, 4)
        pipe = PreparationPipeline()
        whole = pipe.run_polygons(polys)
        sharded = pipe.run_polygons(polys, field_size=20.0)
        assert (
            sharded.fracture_report.figure_count
            == whole.fracture_report.figure_count
        )
        assert sharded.fracture_report.total_area == pytest.approx(
            whole.fracture_report.total_area
        )

    def test_merge_reports_empty(self):
        report = merge_reports([])
        assert report.figure_count == 0
        merged_with_empty = merge_reports(
            [analyze_figures([]), analyze_figures([])]
        )
        assert merged_with_empty.figure_count == 0


class TestWorkersFallback:
    def test_workers_one_never_uses_pool(self):
        polys = grid_of_squares(4, 4)
        result = PreparationPipeline().run_polygons(
            polys, workers=1, field_size=20.0
        )
        assert result.execution.parallel is False
        assert result.execution.workers == 1

    def test_single_shard_never_uses_pool(self):
        polys = grid_of_squares(3, 3)
        result = PreparationPipeline().run_polygons(polys, workers=4)
        assert result.execution.shard_count == 1
        assert result.execution.parallel is False

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            PreparationPipeline().run_polygons(
                grid_of_squares(2, 2), workers=-2
            )

    def test_default_run_is_single_shard_serial(self):
        result = PreparationPipeline().run(generators.grating(lines=5))
        assert result.execution.shard_count == 1
        assert result.execution.parallel is False
        assert result.job.figure_count() == 5


class TestBatchAPIs:
    def test_run_many_matches_individual_runs(self):
        pipe = PreparationPipeline()
        sources = [generators.grating(lines=4), generators.grating(lines=7)]
        batch = pipe.run_many(sources, workers=2, field_size=15.0)
        singles = [
            pipe.run(s, workers=1, field_size=15.0) for s in sources
        ]
        assert len(batch) == 2
        for b, s in zip(batch, singles):
            assert [shot_key(x) for x in b.job.shots] == [
                shot_key(x) for x in s.job.shots
            ]

    def test_run_many_names(self):
        pipe = PreparationPipeline()
        results = pipe.run_many(
            [generators.grating(lines=3)], names=["custom"]
        )
        assert results[0].job.name == "custom"

    def test_run_layers_prepares_each_layer(self):
        from repro.layout.cell import Cell

        cell = Cell("TWO_LAYERS")
        cell.add_rectangle(0, 0, 5, 5, Layer(1))
        cell.add_rectangle(10, 0, 15, 5, Layer(2))
        results = PreparationPipeline().run_layers(cell, workers=2)
        assert set(results) == {Layer(1), Layer(2)}
        for layer, result in results.items():
            assert result.job.figure_count() == 1
            assert result.job.name == f"TWO_LAYERS:{layer}"

    def test_run_layers_subset(self):
        from repro.layout.cell import Cell

        cell = Cell("TWO_LAYERS")
        cell.add_rectangle(0, 0, 5, 5, Layer(1))
        cell.add_rectangle(10, 0, 15, 5, Layer(2))
        results = PreparationPipeline().run_layers(cell, layers=[Layer(2)])
        assert list(results) == [Layer(2)]


class TestOverlapPolicy:
    """Regression: cross-shard overlaps must not double-count silently.

    The PR 1 engine documented (docstring caveat) that overlaps between
    polygons of different shards are exposed twice; with cached shard
    results such a layout would replay the double-count on every warm
    run.  Sharded planning now warns on it, or unions it away.
    """

    def overlapping_layout(self):
        """Two overlapping rectangles whose bbox centres land in
        different 20 µm fields."""
        return [
            Polygon.rectangle(0.0, 0.0, 18.0, 6.0),
            Polygon.rectangle(14.0, 0.0, 30.0, 6.0),
        ]

    def test_cross_shard_overlap_warns(self):
        with pytest.warns(ShardOverlapWarning):
            plan = plan_shards(self.overlapping_layout(), field_size=20.0)
        assert len(plan) == 2  # plan itself is unchanged by the warning

    def test_pipeline_run_surfaces_the_warning(self):
        with pytest.warns(ShardOverlapWarning):
            PreparationPipeline(field_size=20.0).run_polygons(
                self.overlapping_layout()
            )

    def test_union_policy_removes_double_count(self):
        polys = self.overlapping_layout()
        whole = PreparationPipeline().run_polygons(polys)
        with warnings.catch_warnings():
            warnings.simplefilter("error", ShardOverlapWarning)
            sharded = PreparationPipeline(
                field_size=20.0, overlap_policy="union"
            ).run_polygons(polys)
        assert sharded.fracture_report.total_area == pytest.approx(
            whole.fracture_report.total_area
        )

    def test_warn_policy_double_counts_as_documented(self):
        polys = self.overlapping_layout()
        whole = PreparationPipeline().run_polygons(polys)
        with pytest.warns(ShardOverlapWarning):
            sharded = PreparationPipeline(field_size=20.0).run_polygons(polys)
        overlap_area = 4.0 * 6.0  # x in [14, 18], y in [0, 6]
        assert sharded.fracture_report.total_area == pytest.approx(
            whole.fracture_report.total_area + overlap_area
        )

    def test_disjoint_layout_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", ShardOverlapWarning)
            plan_shards(grid_of_squares(6, 6), field_size=20.0)

    def test_abutting_polygons_do_not_warn(self):
        """Edge- and corner-touching across a field boundary is the
        normal mosaic case, not an overlap."""
        polys = [
            Polygon.rectangle(0.0, 0.0, 18.0, 6.0),
            Polygon.rectangle(18.0, 0.0, 36.0, 6.0),  # shares the x=18 edge
        ]
        with warnings.catch_warnings():
            warnings.simplefilter("error", ShardOverlapWarning)
            plan_shards(polys, field_size=18.0)

    def test_ignore_policy_skips_check(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", ShardOverlapWarning)
            plan_shards(
                self.overlapping_layout(),
                field_size=20.0,
                overlap_policy="ignore",
            )

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            plan_shards(grid_of_squares(2, 2), overlap_policy="explode")

    def test_same_shard_overlap_is_fine(self):
        """Overlap inside one shard is unioned by the fracture step."""
        polys = [
            Polygon.rectangle(0.0, 0.0, 6.0, 6.0),
            Polygon.rectangle(4.0, 0.0, 10.0, 6.0),
        ]
        with warnings.catch_warnings():
            warnings.simplefilter("error", ShardOverlapWarning)
            result = PreparationPipeline(field_size=50.0).run_polygons(polys)
        assert result.fracture_report.total_area == pytest.approx(
            10.0 * 6.0
        )


class TestExecutorClass:
    def test_corrector_requires_psf(self):
        with pytest.raises(ValueError):
            ShardedExecutor(
                TrapezoidFracturer(), corrector=IterativeDoseCorrector()
            )

    def test_execute_empty(self):
        outcome = ShardedExecutor(TrapezoidFracturer()).execute([])
        assert outcome.shots == []
        assert outcome.report.figure_count == 0
        assert outcome.corrected is False


class TestProgressCallback:
    """Per-shard progress reporting (the service's job status feed)."""

    def _run(self, executor, polygons, **kwargs):
        events = []
        executor.progress = lambda done, total: events.append((done, total))
        result = executor.execute(polygons, **kwargs)
        return result, events

    def test_serial_progress_counts_every_shard(self):
        executor = ShardedExecutor(TrapezoidFracturer(), field_size=10.0)
        polygons = grid_of_squares(3, 2)
        result, events = self._run(executor, polygons)
        total = result.stats.shard_count
        assert events[0] == (0, total)
        assert events[1:] == [(i + 1, total) for i in range(total)]

    def test_progress_never_changes_results(self):
        executor = ShardedExecutor(TrapezoidFracturer(), field_size=10.0)
        polygons = grid_of_squares(3, 3)
        silent = executor.execute(polygons)
        result, events = self._run(executor, polygons)
        assert [shot_key(s) for s in result.shots] == [
            shot_key(s) for s in silent.shots
        ]
        assert events  # the callback really fired

    def test_cache_hits_report_progress_immediately(self, tmp_path):
        from repro.core.cache import ShardCache

        cache = ShardCache(tmp_path / "cache")
        executor = ShardedExecutor(
            TrapezoidFracturer(), field_size=10.0, cache=cache
        )
        polygons = grid_of_squares(2, 2)
        executor.execute(polygons)  # cold: fill the cache
        result, events = self._run(executor, polygons)  # warm: all hits
        total = result.stats.shard_count
        assert result.stats.cache_hits == total
        assert events == [(0, total)] + [
            (i + 1, total) for i in range(total)
        ]

    def test_single_shard_still_reports(self):
        executor = ShardedExecutor(TrapezoidFracturer())
        _, events = self._run(executor, grid_of_squares(2, 1))
        assert events == [(0, 1), (1, 1)]

    def test_pipeline_threads_progress_through(self):
        events = []
        pipeline = PreparationPipeline(
            field_size=15.0,
            progress=lambda done, total: events.append((done, total)),
        )
        result = pipeline.run(generators.fresnel_zone_plate(), name="fzp")
        total = result.execution.shard_count
        assert events[0] == (0, total)
        assert events[-1] == (total, total)
        assert len(events) == total + 1

    def test_pooled_progress_reports_every_shard(self):
        executor = ShardedExecutor(
            TrapezoidFracturer(), field_size=10.0, workers=2
        )
        polygons = grid_of_squares(4, 2)
        result, events = self._run(executor, polygons)
        total = result.stats.shard_count
        # Pool completion order is nondeterministic, but the running
        # count is: one tick per shard, monotonically increasing.
        assert events[0] == (0, total)
        assert [done for done, _ in events[1:]] == list(range(1, total + 1))
        assert all(t == total for _, t in events)


class TestSharedPoolLifecycle:
    """The shared pool under concurrent use: leases and cancellation.

    A job server's worker threads hit the pool concurrently with
    per-job ``workers`` settings; a resize must never tear the pool
    down under another run, and a cancellation leaking out of the pool
    must degrade to the serial path instead of escaping (it is a
    BaseException on supported Pythons, so an escape would kill a
    service's queue-worker thread for good).
    """

    def test_resize_request_reuses_pool_while_leased(self):
        from repro.core import executor as ex

        ex.shutdown_worker_pool()
        try:
            first = ex._lease_pool(2)
            # A concurrent run asking for a different size must not
            # shut the leased pool down — it reuses the live one.
            assert ex._lease_pool(3) is first
            assert ex.worker_pool_status() == {"size": 2, "alive": True}
            ex._release_pool()
            ex._release_pool()
            # With every lease returned, a new size rebuilds the pool.
            rebuilt = ex._lease_pool(3)
            assert rebuilt is not first
            assert ex.worker_pool_status() == {"size": 3, "alive": True}
            ex._release_pool()
        finally:
            ex.shutdown_worker_pool()
        assert ex.worker_pool_status() == {"size": 0, "alive": False}

    @pytest.mark.parametrize("with_tick", [False, True])
    def test_cancelled_mid_map_falls_back_to_serial(
        self, monkeypatch, with_tick
    ):
        from concurrent.futures import CancelledError

        from repro.core import executor as ex

        class CancellingPool:
            def map(self, *args, **kwargs):
                raise CancelledError()

            def submit(self, *args, **kwargs):
                raise CancelledError()

        released = []
        monkeypatch.setattr(ex, "_lease_pool", lambda n: CancellingPool())
        monkeypatch.setattr(ex, "_release_pool", lambda: released.append(1))
        shards = plan_shards(grid_of_squares(4, 2), field_size=10.0)
        config = (TrapezoidFracturer(), None, None)
        ticks = []
        tick = (lambda: ticks.append(1)) if with_tick else None
        results, pooled, recovery = ex._map_shards(
            shards, config, workers=2, tick=tick
        )
        assert not pooled
        assert released == [1]
        assert recovery.pool_restarts == 0
        expected = [_process_shard(s, *config) for s in shards]
        assert [
            [shot_key(shot) for shot in r.shots] for r in results
        ] == [[shot_key(shot) for shot in r.shots] for r in expected]
        if with_tick:
            assert len(ticks) == len(shards)

    def test_explicit_shutdown_is_safe_and_idempotent(self):
        from repro.core import executor as ex

        ex.shutdown_worker_pool()
        ex.shutdown_worker_pool()
        assert ex.worker_pool_status() == {"size": 0, "alive": False}


class TestFaultRecovery:
    """Shard-level recovery: salvage on pool death, transient retry,
    fail-fast on deterministic failures — all with byte-identical
    results versus a clean serial run."""

    def _shards_and_config(self):
        shards = plan_shards(grid_of_squares(4, 2), field_size=10.0)
        config = (TrapezoidFracturer(), None, None)
        return shards, config

    def _keys(self, results):
        return [[shot_key(shot) for shot in r.shots] for r in results]

    def test_pool_death_salvages_completed_shards(self, monkeypatch):
        from concurrent.futures import BrokenExecutor, Future

        from repro.core import executor as ex
        from repro.core.executor import RetryPolicy

        shards, config = self._shards_and_config()
        n = len(shards)
        k = 3

        class InlinePool:
            def __init__(self):
                self.computed = 0

            def submit(self, fn, task):
                self.computed += 1
                future = Future()
                future.set_result(fn(task))
                return future

        class BreakingPool(InlinePool):
            """Completes k submissions, then the pool is broken."""

            def submit(self, fn, task):
                if self.computed >= k:
                    raise BrokenExecutor("worker died mid-shard")
                return super().submit(fn, task)

        pools = [BreakingPool(), InlinePool()]
        leased = []
        recycled = []
        monkeypatch.setattr(
            ex,
            "_lease_pool",
            lambda workers: leased.append(pools[len(leased)]) or leased[-1],
        )
        monkeypatch.setattr(ex, "_release_pool", lambda: None)
        monkeypatch.setattr(
            ex,
            "_recycle_pool",
            lambda pool, kill_workers=False: recycled.append(pool),
        )
        results, pooled, recovery = ex._map_shards(
            shards,
            config,
            workers=2,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
        )
        assert pooled
        assert recycled == [pools[0]]
        assert recovery.pool_restarts == 1
        assert recovery.salvaged == set(range(k))
        assert recovery.retry_total == 1  # only the shard whose submit broke
        # Salvage contract: completed shards keep their results; only
        # the unfinished remainder lands on the fresh pool.
        assert pools[0].computed == k
        assert pools[1].computed == n - k
        expected = [_process_shard(s, *config) for s in shards]
        assert self._keys(results) == self._keys(expected)

    def test_transient_fault_retries_to_identical_result(self, monkeypatch):
        from concurrent.futures import Future

        from repro.core import executor as ex
        from repro.core.executor import RetryPolicy
        from repro.core.faults import FaultPlan

        shards, config = self._shards_and_config()

        class InlinePool:
            def submit(self, fn, task):
                future = Future()
                try:
                    future.set_result(fn(task))
                except Exception as exc:
                    future.set_exception(exc)
                return future

        monkeypatch.setattr(ex, "_lease_pool", lambda workers: InlinePool())
        monkeypatch.setattr(ex, "_release_pool", lambda: None)
        plan = FaultPlan(transient=frozenset({(2, 0)})).arm()
        results, pooled, recovery = ex._map_shards(
            shards,
            config,
            workers=2,
            faults=plan,
            retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
        )
        assert pooled
        assert recovery.retries == {2: 1}
        assert recovery.pool_restarts == 0
        expected = [_process_shard(s, *config) for s in shards]
        assert self._keys(results) == self._keys(expected)

    def test_permanent_fault_fails_fast(self):
        from repro.core import executor as ex
        from repro.core.executor import RetryPolicy
        from repro.core.faults import FaultPlan, InjectedFaultError

        shards, config = self._shards_and_config()
        plan = FaultPlan(permanent=frozenset({(1, 0)})).arm()
        with pytest.raises(InjectedFaultError):
            ex._map_shards(
                shards,
                config,
                workers=1,
                faults=plan,
                retry=RetryPolicy(max_attempts=3, backoff_base=0.0),
            )

    def test_exhausted_transient_raises(self):
        from repro.core import executor as ex
        from repro.core.executor import RetryPolicy
        from repro.core.faults import FaultPlan, TransientFaultError

        shards, config = self._shards_and_config()
        plan = FaultPlan(
            transient=frozenset({(0, 0), (0, 1)})
        ).arm()
        with pytest.raises(TransientFaultError):
            ex._map_shards(
                shards,
                config,
                workers=1,
                faults=plan,
                retry=RetryPolicy(max_attempts=2, backoff_base=0.0),
            )


class TestWarmPoolFailureConsistency:
    """warm_worker_pool's failure paths must leave the shared-pool
    globals in a consistent state: released exactly once, reset unless
    a concurrent tenant still holds a lease."""

    def test_warm_failure_releases_and_resets(self, monkeypatch):
        from concurrent.futures import CancelledError

        from repro.core import executor as ex

        ex.shutdown_worker_pool()

        class DeadPool:
            def map(self, *args, **kwargs):
                raise CancelledError()

        released = []
        monkeypatch.setattr(ex, "_lease_pool", lambda n: DeadPool())
        monkeypatch.setattr(ex, "_release_pool", lambda: released.append(1))
        assert ex.warm_worker_pool(2) == 0
        assert released == [1]
        assert ex.worker_pool_status() == {"size": 0, "alive": False}

    def test_warm_lease_failure_returns_zero(self, monkeypatch):
        from concurrent.futures import BrokenExecutor

        from repro.core import executor as ex

        ex.shutdown_worker_pool()

        def refuse(workers):
            raise BrokenExecutor("platform refuses to spawn")

        monkeypatch.setattr(ex, "_lease_pool", refuse)
        assert ex.warm_worker_pool(2) == 0
        assert ex.worker_pool_status() == {"size": 0, "alive": False}

    def test_warm_failure_spares_leased_tenant(self, monkeypatch):
        from concurrent.futures import CancelledError

        from repro.core import executor as ex

        ex.shutdown_worker_pool()
        try:
            tenant = ex._lease_pool(2)  # a concurrent run's live lease
            assert tenant is not None

            class DeadPool:
                def map(self, *args, **kwargs):
                    raise CancelledError()

            monkeypatch.setattr(ex, "_lease_pool", lambda n: DeadPool())
            monkeypatch.setattr(ex, "_release_pool", lambda: None)
            assert ex.warm_worker_pool(2) == 0
            # The tenant's pool must survive the warm-up failure.
            assert ex.worker_pool_status() == {"size": 2, "alive": True}
        finally:
            monkeypatch.undo()
            ex._release_pool()
            ex.shutdown_worker_pool()

"""Tests for repro.geometry.point."""

import math

import pytest

from repro.geometry.point import ORIGIN, Point


class TestConstruction:
    def test_coerces_to_float(self):
        p = Point(1, 2)
        assert isinstance(p.x, float)
        assert isinstance(p.y, float)

    def test_of_passes_through_point(self):
        p = Point(1, 2)
        assert Point.of(p) is p

    def test_of_accepts_tuple(self):
        assert Point.of((3, 4)) == Point(3, 4)

    def test_immutable(self):
        p = Point(1, 2)
        with pytest.raises(AttributeError):
            p.x = 5.0

    def test_iteration_and_indexing(self):
        p = Point(1, 2)
        assert list(p) == [1.0, 2.0]
        assert p[0] == 1.0
        assert p[1] == 2.0
        assert len(p) == 2


class TestArithmetic:
    def test_addition(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)

    def test_addition_with_tuple(self):
        assert Point(1, 2) + (3, 4) == Point(4, 6)

    def test_subtraction(self):
        assert Point(5, 5) - Point(2, 3) == Point(3, 2)

    def test_rsub(self):
        assert (5, 5) - Point(2, 3) == Point(3, 2)

    def test_scalar_multiplication_both_sides(self):
        assert 2 * Point(1, 2) == Point(2, 4)
        assert Point(1, 2) * 2 == Point(2, 4)

    def test_division(self):
        assert Point(4, 6) / 2 == Point(2, 3)

    def test_negation(self):
        assert -Point(1, -2) == Point(-1, 2)


class TestGeometry:
    def test_dot(self):
        assert Point(1, 2).dot(Point(3, 4)) == 11.0

    def test_cross_sign(self):
        assert Point(1, 0).cross(Point(0, 1)) == 1.0
        assert Point(0, 1).cross(Point(1, 0)) == -1.0

    def test_norm(self):
        assert Point(3, 4).norm() == 5.0
        assert Point(3, 4).norm_squared() == 25.0

    def test_distance(self):
        assert Point(0, 0).distance(Point(3, 4)) == 5.0

    def test_unit(self):
        u = Point(3, 4).unit()
        assert math.isclose(u.norm(), 1.0)

    def test_unit_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            ORIGIN.unit()

    def test_perpendicular_is_90_ccw(self):
        assert Point(1, 0).perpendicular() == Point(0, 1)

    def test_rotated_quarter_turn(self):
        r = Point(1, 0).rotated(math.pi / 2)
        assert r.almost_equals(Point(0, 1))

    def test_rotated_about_center(self):
        r = Point(2, 1).rotated(math.pi, about=Point(1, 1))
        assert r.almost_equals(Point(0, 1))

    def test_angle(self):
        assert math.isclose(Point(0, 1).angle(), math.pi / 2)


class TestEquality:
    def test_equality_with_tuple(self):
        assert Point(1, 2) == (1, 2)

    def test_hashable(self):
        assert len({Point(1, 2), Point(1, 2), Point(2, 1)}) == 2

    def test_almost_equals_tolerance(self):
        assert Point(1, 2).almost_equals(Point(1 + 1e-12, 2), tol=1e-9)
        assert not Point(1, 2).almost_equals(Point(1.1, 2), tol=1e-9)

"""Tests for metrology on simulated images."""

import numpy as np
import pytest

from repro.geometry.rasterize import RasterFrame
from repro.physics.metrology import (
    dose_latitude,
    edge_placement_error,
    edge_positions,
    measure_linewidth,
    profile_along_x,
    profile_along_y,
)


def synthetic_line_image(frame, x_left, x_right, blur=1.0):
    """Smooth image of a vertical line from x_left to x_right."""
    from scipy.special import erf

    xs = frame.x_centers()
    profile = 0.5 * (erf((xs - x_left) / blur) - erf((xs - x_right) / blur))
    return np.tile(profile, (frame.ny, 1))


@pytest.fixture
def frame():
    return RasterFrame(0, 0, 0.1, 200, 50)


class TestProfiles:
    def test_profile_along_x_shape(self, frame):
        image = np.random.default_rng(0).random((frame.ny, frame.nx))
        xs, values = profile_along_x(image, frame, y=2.5)
        assert len(xs) == frame.nx
        assert len(values) == frame.nx

    def test_profile_interpolates_rows(self, frame):
        image = np.zeros((frame.ny, frame.nx))
        image[10, :] = 1.0
        # Exactly on row 10's centre.
        _, v_on = profile_along_x(image, frame, y=(10 + 0.5) * frame.pixel)
        assert v_on[0] == pytest.approx(1.0)
        # Halfway between rows 10 and 11.
        _, v_half = profile_along_x(image, frame, y=(11.0) * frame.pixel)
        assert v_half[0] == pytest.approx(0.5)

    def test_profile_along_y(self, frame):
        image = np.zeros((frame.ny, frame.nx))
        image[:, 20] = 1.0
        ys, values = profile_along_y(image, frame, x=(20 + 0.5) * frame.pixel)
        assert values[0] == pytest.approx(1.0)


class TestEdgePositions:
    def test_single_step(self):
        x = np.arange(10, dtype=float)
        v = np.where(x < 5, 0.0, 1.0)
        crossings = edge_positions(x, v, 0.5)
        assert len(crossings) == 1
        assert 4.0 <= crossings[0] <= 5.0

    def test_subpixel_interpolation(self):
        x = np.array([0.0, 1.0])
        v = np.array([0.0, 1.0])
        assert edge_positions(x, v, 0.25) == [pytest.approx(0.25)]

    def test_no_crossings(self):
        x = np.arange(5, dtype=float)
        assert edge_positions(x, np.zeros(5), 0.5) == []


class TestLinewidth:
    def test_measures_designed_width(self, frame):
        image = synthetic_line_image(frame, 8.0, 12.0, blur=0.5)
        width = measure_linewidth(image, frame, threshold=0.5, cut_y=2.5)
        assert width == pytest.approx(4.0, abs=0.05)

    def test_threshold_moves_edges(self, frame):
        image = synthetic_line_image(frame, 8.0, 12.0, blur=1.0)
        wide = measure_linewidth(image, frame, threshold=0.3, cut_y=2.5)
        narrow = measure_linewidth(image, frame, threshold=0.7, cut_y=2.5)
        assert wide > narrow

    def test_none_when_nothing_prints(self, frame):
        image = np.zeros((frame.ny, frame.nx))
        assert measure_linewidth(image, frame, 0.5, cut_y=2.5) is None

    def test_near_x_selects_feature(self, frame):
        image = synthetic_line_image(frame, 3.0, 5.0, blur=0.3)
        image += synthetic_line_image(frame, 14.0, 15.0, blur=0.3)
        w_left = measure_linewidth(image, frame, 0.5, cut_y=2.5, near_x=4.0)
        w_right = measure_linewidth(image, frame, 0.5, cut_y=2.5, near_x=14.5)
        assert w_left == pytest.approx(2.0, abs=0.05)
        assert w_right == pytest.approx(1.0, abs=0.05)

    def test_default_picks_widest(self, frame):
        image = synthetic_line_image(frame, 3.0, 8.0, blur=0.3)
        image += synthetic_line_image(frame, 14.0, 15.0, blur=0.3)
        assert measure_linewidth(image, frame, 0.5, cut_y=2.5) == pytest.approx(
            5.0, abs=0.05
        )


class TestEdgePlacement:
    def test_signed_errors(self, frame):
        image = synthetic_line_image(frame, 8.1, 12.2, blur=0.5)
        errors = edge_placement_error(
            image, frame, 0.5, cut_y=2.5, design_edges=[8.0, 12.0]
        )
        assert errors[0] == pytest.approx(0.1, abs=0.03)
        assert errors[1] == pytest.approx(0.2, abs=0.03)

    def test_nan_when_nothing_printed(self, frame):
        image = np.zeros((frame.ny, frame.nx))
        errors = edge_placement_error(
            image, frame, 0.5, cut_y=2.5, design_edges=[8.0]
        )
        assert np.isnan(errors[0])


class TestDoseLatitude:
    def test_window(self):
        doses = [0.8, 0.9, 1.0, 1.1, 1.2, 1.3]
        widths = [0.85, 0.93, 1.0, 1.05, 1.2, 1.4]
        latitude = dose_latitude(doses, widths, target_cd=1.0, tolerance=0.1)
        # In-spec doses: 0.9..1.1 (widths within 0.9-1.1).
        assert latitude == pytest.approx((1.1 - 0.9) / 1.0)

    def test_zero_when_never_in_spec(self):
        assert dose_latitude([1.0], [5.0], target_cd=1.0) == 0.0

    def test_none_widths_skipped(self):
        latitude = dose_latitude(
            [0.5, 1.0, 1.5], [None, 1.0, None], target_cd=1.0
        )
        assert latitude == pytest.approx(0.0)

"""Tests for repro.geometry.polygon."""

import math

import pytest

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.transform import Transform


@pytest.fixture
def unit_square():
    return Polygon.rectangle(0, 0, 1, 1)


@pytest.fixture
def triangle():
    return Polygon([(0, 0), (4, 0), (0, 3)])


class TestConstruction:
    def test_needs_three_vertices(self):
        with pytest.raises(ValueError):
            Polygon([(0, 0), (1, 1)])

    def test_strips_explicit_closure(self):
        p = Polygon([(0, 0), (1, 0), (1, 1), (0, 0)])
        assert len(p) == 3

    def test_rectangle_normalizes_corners(self):
        p = Polygon.rectangle(5, 5, 0, 0)
        assert p.bounding_box() == (0, 0, 5, 5)

    def test_square(self):
        p = Polygon.square((1, 1), 2)
        assert p.bounding_box() == (0, 0, 2, 2)

    def test_regular_polygon_area_converges_to_circle(self):
        p = Polygon.regular((0, 0), 1.0, 256)
        assert math.isclose(p.area(), math.pi, rel_tol=1e-3)

    def test_regular_needs_3_sides(self):
        with pytest.raises(ValueError):
            Polygon.regular((0, 0), 1.0, 2)

    def test_annulus_sector_area(self):
        p = Polygon.annulus_sector((0, 0), 1.0, 2.0, 0, math.pi, 256)
        expected = math.pi * (4 - 1) / 2
        assert math.isclose(p.area(), expected, rel_tol=1e-3)

    def test_annulus_sector_validates_radii(self):
        with pytest.raises(ValueError):
            Polygon.annulus_sector((0, 0), 2.0, 1.0, 0, 1.0)

    def test_from_path_straight_wire(self):
        p = Polygon.from_path([(0, 0), (10, 0)], width=2)
        assert math.isclose(p.area(), 20.0)

    def test_from_path_l_bend_area(self):
        p = Polygon.from_path([(0, 0), (10, 0), (10, 10)], width=2)
        # Two 2x10 arms sharing a mitred corner: exactly 40 µm².
        assert math.isclose(p.area(), 40.0, rel_tol=1e-9)

    def test_from_path_needs_width(self):
        with pytest.raises(ValueError):
            Polygon.from_path([(0, 0), (1, 0)], width=0)


class TestMeasures:
    def test_signed_area_ccw_positive(self, unit_square):
        assert unit_square.signed_area() == 1.0

    def test_signed_area_cw_negative(self):
        p = Polygon([(0, 0), (0, 1), (1, 1), (1, 0)])
        assert p.signed_area() == -1.0

    def test_triangle_area(self, triangle):
        assert triangle.area() == 6.0

    def test_perimeter(self, triangle):
        assert math.isclose(triangle.perimeter(), 12.0)

    def test_centroid_of_square(self, unit_square):
        assert unit_square.centroid().almost_equals(Point(0.5, 0.5))

    def test_centroid_of_triangle(self, triangle):
        assert triangle.centroid().almost_equals(Point(4 / 3, 1.0))

    def test_orientation(self, unit_square):
        assert unit_square.orientation() == 1
        reversed_sq = Polygon(list(reversed(unit_square.vertices)))
        assert reversed_sq.orientation() == -1


class TestPredicates:
    def test_contains_interior_point(self, unit_square):
        assert unit_square.contains_point((0.5, 0.5))

    def test_excludes_exterior_point(self, unit_square):
        assert not unit_square.contains_point((2, 2))

    def test_boundary_point_included_by_default(self, unit_square):
        assert unit_square.contains_point((0.5, 0))

    def test_boundary_point_excludable(self, unit_square):
        assert not unit_square.contains_point((0.5, 0), include_boundary=False)

    def test_concave_containment(self):
        # L-shape: notch at top right.
        p = Polygon([(0, 0), (4, 0), (4, 2), (2, 2), (2, 4), (0, 4)])
        assert p.contains_point((1, 3))
        assert not p.contains_point((3, 3))

    def test_convexity(self, unit_square, triangle):
        assert unit_square.is_convex()
        assert triangle.is_convex()
        concave = Polygon([(0, 0), (4, 0), (4, 4), (2, 1), (0, 4)])
        assert not concave.is_convex()

    def test_rectilinear(self, unit_square, triangle):
        assert unit_square.is_rectilinear()
        assert not triangle.is_rectilinear()


class TestOperations:
    def test_normalized_rewinds_ccw(self):
        cw = Polygon([(0, 0), (0, 1), (1, 1), (1, 0)])
        assert cw.normalized().orientation() == 1

    def test_normalized_removes_duplicates(self):
        p = Polygon([(0, 0), (0, 0), (1, 0), (1, 1), (1, 1), (0, 1)])
        assert len(p.normalized()) == 4

    def test_simplified_removes_collinear(self):
        p = Polygon([(0, 0), (0.5, 0), (1, 0), (1, 1), (0, 1)])
        assert len(p.simplified()) == 4

    def test_transformed_preserves_area(self, triangle):
        t = Transform.gdsii(origin=(5, 5), rotation_deg=30)
        assert math.isclose(triangle.transformed(t).area(), 6.0)

    def test_transformed_mirror_keeps_valid_winding(self, triangle):
        mirrored = triangle.transformed(Transform.mirror_x())
        assert mirrored.orientation() == triangle.orientation()

    def test_translated(self, unit_square):
        p = unit_square.translated(10, 20)
        assert p.bounding_box() == (10, 20, 11, 21)

    def test_scaled_about_point(self, unit_square):
        p = unit_square.scaled(2, about=(0.5, 0.5))
        assert p.bounding_box() == (-0.5, -0.5, 1.5, 1.5)

    def test_rotated_area_invariant(self, triangle):
        assert math.isclose(triangle.rotated(1.0).area(), 6.0)


class TestClipping:
    def test_clip_half_plane_keeps_inside(self, unit_square):
        clipped = unit_square.clip_half_plane((0.5, 0), (1, 0))
        assert clipped is not None
        assert math.isclose(clipped.area(), 0.5)

    def test_clip_half_plane_all_outside(self, unit_square):
        assert unit_square.clip_half_plane((5, 0), (1, 0)) is None

    def test_clip_box(self, triangle):
        clipped = triangle.clip_box(0, 0, 2, 2)
        assert clipped is not None
        assert clipped.area() < triangle.area()
        for v in clipped.vertices:
            assert -1e-9 <= v.x <= 2 + 1e-9
            assert -1e-9 <= v.y <= 2 + 1e-9

    def test_clip_box_no_overlap(self, unit_square):
        assert unit_square.clip_box(10, 10, 20, 20) is None

    def test_clip_box_full_containment(self, unit_square):
        clipped = unit_square.clip_box(-1, -1, 2, 2)
        assert math.isclose(clipped.area(), 1.0)

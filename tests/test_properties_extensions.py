"""Property-based tests for the extension modules.

Covers: offset monotonicity/containment, RLE round-trips, job-file
round-trips, field-partition area conservation, and the hierarchical
fracture equivalence.
"""


import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.fields import order_shots, partition_fields
from repro.core.hierarchical import fracture_hierarchical, transform_trapezoid
from repro.core.job import MachineJob
from repro.core.jobfile import dumps_job, loads_job
from repro.fracture.base import Shot
from repro.fracture.trapezoidal import TrapezoidFracturer
from repro.geometry.boolean import boolean_polygons
from repro.geometry.offset import offset
from repro.geometry.polygon import Polygon
from repro.geometry.transform import Transform
from repro.geometry.trapezoid import Trapezoid
from repro.layout.cell import Cell
from repro.machine.rle import encode_figures

coords = st.integers(min_value=-40, max_value=40)


@st.composite
def rectangles(draw):
    x0 = draw(coords)
    y0 = draw(coords)
    w = draw(st.integers(min_value=2, max_value=25))
    h = draw(st.integers(min_value=2, max_value=25))
    return Polygon.rectangle(x0, y0, x0 + w, y0 + h)


@st.composite
def rectangle_sets(draw, max_size=4):
    return draw(st.lists(rectangles(), min_size=1, max_size=max_size))


def net_area(polys):
    return sum(p.signed_area() for p in polys)


class TestOffsetProperties:
    @given(rectangle_sets(), st.floats(min_value=0.1, max_value=3.0))
    @settings(max_examples=20, deadline=None)
    def test_grow_contains_original(self, polys, delta):
        grown = offset(polys, delta)
        remains = boolean_polygons(polys, grown, "sub")
        assert net_area(remains) == pytest.approx(0.0, abs=1e-6)

    @given(rectangle_sets(), st.floats(min_value=0.1, max_value=3.0))
    @settings(max_examples=20, deadline=None)
    def test_shrink_contained_in_original(self, polys, delta):
        shrunk = offset(polys, -delta)
        outside = boolean_polygons(shrunk, polys, "sub")
        assert net_area(outside) == pytest.approx(0.0, abs=1e-6)

    @given(rectangle_sets(), st.floats(min_value=0.1, max_value=2.0))
    @settings(max_examples=15, deadline=None)
    def test_grow_monotone_in_delta(self, polys, delta):
        small = net_area(offset(polys, delta))
        large = net_area(offset(polys, delta * 1.5))
        assert large >= small - 1e-6

    @given(rectangles(), st.floats(min_value=0.25, max_value=2.0))
    @settings(max_examples=20, deadline=None)
    def test_single_rectangle_grow_exact(self, rect, delta):
        bbox = rect.bounding_box()
        w = bbox[2] - bbox[0]
        h = bbox[3] - bbox[1]
        grown = offset(rect, delta)
        expected = (w + 2 * delta) * (h + 2 * delta)
        # Database-grid snapping moves each edge by up to half a grid.
        slack = 2 * (w + h + 4 * delta) * 1e-3
        assert net_area(grown) == pytest.approx(expected, abs=slack)

    @given(rectangles(), st.floats(min_value=0.25, max_value=2.0))
    @settings(max_examples=20, deadline=None)
    def test_single_rectangle_shrink_exact(self, rect, delta):
        bbox = rect.bounding_box()
        w = bbox[2] - bbox[0]
        h = bbox[3] - bbox[1]
        shrunk = offset(rect, -delta)
        expected = max(0.0, w - 2 * delta) * max(0.0, h - 2 * delta)
        slack = 2 * (w + h) * 1e-3 + 1e-6
        assert net_area(shrunk) == pytest.approx(expected, abs=slack)


class TestRleProperties:
    @given(rectangle_sets(max_size=3), st.sampled_from([0.25, 0.5, 1.0]))
    @settings(max_examples=20, deadline=None)
    def test_written_addresses_approximate_area(self, polys, unit):
        figures = TrapezoidFracturer().fracture(polys)
        assume(figures)
        pattern = encode_figures(figures, address_unit=unit)
        area = pattern.written_addresses() * unit * unit
        expected = sum(f.area() for f in figures)
        perimeter_slack = sum(
            2 * ((f.bounding_box()[2] - f.bounding_box()[0])
                 + (f.bounding_box()[3] - f.bounding_box()[1]))
            for f in figures
        ) * unit
        assert abs(area - expected) <= perimeter_slack + unit * unit

    @given(rectangle_sets(max_size=3))
    @settings(max_examples=15, deadline=None)
    def test_runs_sorted_and_disjoint(self, polys):
        figures = TrapezoidFracturer().fracture(polys)
        assume(figures)
        pattern = encode_figures(figures, address_unit=0.5)
        for runs in pattern.lines.values():
            for (s0, l0), (s1, _) in zip(runs, runs[1:]):
                assert s0 + l0 < s1  # disjoint with a gap


class TestJobFileProperties:
    @given(
        st.lists(
            st.tuples(
                coords, coords,
                st.integers(min_value=1, max_value=20),
                st.integers(min_value=1, max_value=20),
                st.floats(min_value=0.1, max_value=8.0),
            ),
            min_size=1,
            max_size=10,
        ),
        st.floats(min_value=0.5, max_value=100.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip(self, specs, base_dose):
        shots = [
            Shot(Trapezoid.from_rectangle(x, y, x + w, y + h), round(d, 3))
            for x, y, w, h, d in specs
        ]
        job = MachineJob(shots, base_dose=base_dose)
        restored = loads_job(dumps_job(job))
        assert restored.figure_count() == job.figure_count()
        assert restored.pattern_area() == pytest.approx(
            job.pattern_area(), rel=1e-3
        )
        for a, b in zip(job.shots, restored.shots):
            assert b.dose == pytest.approx(a.dose, abs=5e-4)


class TestFieldProperties:
    @given(rectangle_sets(max_size=4), st.sampled_from([10.0, 25.0, 60.0]))
    @settings(max_examples=20, deadline=None)
    def test_partition_conserves_area(self, polys, field_size):
        shots = TrapezoidFracturer().fracture_to_shots(polys)
        assume(shots)
        job = MachineJob(shots)
        fielded = partition_fields(job, field_size)
        total = sum(
            s.area() for group in fielded.fields.values() for s in group
        )
        assert total == pytest.approx(job.pattern_area(), rel=1e-9)

    @given(rectangle_sets(max_size=4))
    @settings(max_examples=15, deadline=None)
    def test_ordering_is_permutation(self, polys):
        shots = TrapezoidFracturer().fracture_to_shots(polys)
        assume(len(shots) >= 2)
        for strategy in ("scanline", "nearest"):
            ordered = order_shots(shots, strategy)
            assert sorted(id(s) for s in ordered) == sorted(id(s) for s in shots)


class TestHierarchicalProperties:
    @given(
        rectangle_sets(max_size=3),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=4),
        st.sampled_from([0.0, 180.0]),
        st.booleans(),
    )
    @settings(max_examples=15, deadline=None)
    def test_matches_flat_fracture_area(self, polys, cols, rows, rot, mirror):
        child = Cell("CHILD")
        for p in polys:
            child.add_polygon(p)
        top = Cell("TOP")
        # Pitch larger than the child extent so instances stay disjoint.
        pitch = 220.0
        for c in range(cols):
            for r in range(rows):
                top.instantiate(
                    child,
                    (c * pitch, r * pitch),
                    rotation_deg=rot,
                    x_reflection=mirror,
                )
        result = fracture_hierarchical(top)
        child_area = sum(
            t.area() for t in TrapezoidFracturer().fracture(polys)
        )
        assert result.total_area() == pytest.approx(
            child_area * cols * rows, rel=1e-9
        )
        assert result.instances_fallback == 0

    @given(
        st.floats(min_value=-50, max_value=50),
        st.floats(min_value=-50, max_value=50),
        st.sampled_from([0.0, 180.0]),
        st.booleans(),
        st.floats(min_value=0.5, max_value=3.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_transform_trapezoid_matches_polygon_transform(
        self, dx, dy, rot, mirror, mag
    ):
        trap = Trapezoid(0, 2, 0, 10, 2, 8)
        t = Transform.gdsii(
            origin=(dx, dy), rotation_deg=rot, magnification=mag,
            x_reflection=mirror,
        )
        via_trap = transform_trapezoid(trap, t)
        via_poly = trap.to_polygon().transformed(t)
        assert via_trap.area() == pytest.approx(via_poly.area(), rel=1e-9)
        assert via_trap.bounding_box() == pytest.approx(
            via_poly.bounding_box(), abs=1e-9
        )

"""Tests for repro.geometry.transform."""

import math

import pytest

from repro.geometry.point import Point
from repro.geometry.transform import Transform


class TestConstructors:
    def test_identity(self):
        t = Transform.identity()
        assert t.is_identity()
        assert t(Point(3, 4)) == Point(3, 4)

    def test_translation(self):
        t = Transform.translation(2, -1)
        assert t(Point(1, 1)) == Point(3, 0)

    def test_rotation_quarter_turn(self):
        t = Transform.rotation(math.pi / 2)
        assert t(Point(1, 0)).almost_equals(Point(0, 1))

    def test_rotation_about_point(self):
        t = Transform.rotation(math.pi, about=(1, 1))
        assert t(Point(2, 1)).almost_equals(Point(0, 1))

    def test_scaling_isotropic(self):
        t = Transform.scaling(2)
        assert t(Point(1, 2)) == Point(2, 4)

    def test_scaling_anisotropic(self):
        t = Transform.scaling(2, 3)
        assert t(Point(1, 1)) == Point(2, 3)

    def test_mirror_x(self):
        assert Transform.mirror_x()(Point(1, 2)) == Point(1, -2)

    def test_mirror_y(self):
        assert Transform.mirror_y()(Point(1, 2)) == Point(-1, 2)


class TestGdsiiOrder:
    def test_gdsii_reflection_applied_before_rotation(self):
        # Mirror then rotate 90: (1, 0) -> (1, 0) -> (0, 1)
        t = Transform.gdsii(rotation_deg=90, x_reflection=True)
        assert t(Point(1, 0)).almost_equals(Point(0, 1))
        # (0, 1) -> mirrored (0, -1) -> rotated (1, 0)
        assert t(Point(0, 1)).almost_equals(Point(1, 0))

    def test_gdsii_full_stack(self):
        t = Transform.gdsii(
            origin=(10, 20), rotation_deg=90, magnification=2, x_reflection=False
        )
        assert t(Point(1, 0)).almost_equals(Point(10, 22))

    def test_gdsii_identity_default(self):
        assert Transform.gdsii().is_identity()


class TestComposition:
    def test_matmul_order(self):
        t = Transform.translation(1, 0) @ Transform.rotation(math.pi / 2)
        # Rotation first, then translation.
        assert t(Point(1, 0)).almost_equals(Point(1, 1))

    def test_inverse_roundtrip(self):
        t = Transform.gdsii(origin=(3, 4), rotation_deg=37, magnification=1.5)
        inv = t.inverse()
        p = Point(2.5, -1.0)
        assert inv(t(p)).almost_equals(p, tol=1e-9)

    def test_inverse_singular_raises(self):
        with pytest.raises(ZeroDivisionError):
            Transform(0, 0, 0, 0).inverse()

    def test_determinant_of_mirror_negative(self):
        assert Transform.mirror_x().determinant() == -1.0
        assert not Transform.mirror_x().is_orientation_preserving()

    def test_magnification(self):
        t = Transform.gdsii(magnification=2.5)
        assert math.isclose(t.magnification(), 2.5)


class TestIntrospection:
    def test_axis_aligned_for_90_deg(self):
        assert Transform.rotation(math.pi / 2).is_axis_aligned(tol=1e-9)
        assert not Transform.rotation(math.pi / 4).is_axis_aligned()

    def test_apply_vector_ignores_translation(self):
        t = Transform.translation(100, 100)
        assert t.apply_vector(Point(1, 2)) == Point(1, 2)

    def test_apply_many(self):
        t = Transform.translation(1, 1)
        pts = t.apply_many([(0, 0), (1, 1)])
        assert pts == [Point(1, 1), Point(2, 2)]

    def test_as_matrix_shape(self):
        m = Transform.identity().as_matrix()
        assert m[0] == (1.0, 0.0, 0.0)
        assert m[2] == (0.0, 0.0, 1.0)

    def test_equality_and_hash(self):
        a = Transform.translation(1, 2)
        b = Transform.translation(1, 2)
        assert a == b
        assert hash(a) == hash(b)

"""Tests for stage, deflection and stitching models."""

import numpy as np
import pytest

from repro.machine.deflection import DeflectionField
from repro.machine.stage import Stage
from repro.machine.stitching import StitchingModel, overlay_budget


class TestStage:
    def test_validation(self):
        with pytest.raises(ValueError):
            Stage(velocity=0)
        with pytest.raises(ValueError):
            Stage(settle_time=-1)

    def test_zero_move_is_free(self):
        assert Stage().move_time(0) == 0.0

    def test_short_move_accel_limited(self):
        stage = Stage(velocity=1e4, acceleration=1e5, settle_time=0.0)
        # Short move never reaches cruise velocity.
        t_short = stage.move_time(10.0)
        assert t_short == pytest.approx(2 * (10.0 / 1e5) ** 0.5)

    def test_long_move_velocity_limited(self):
        stage = Stage(velocity=1e4, acceleration=1e12, settle_time=0.0)
        assert stage.move_time(1e5) == pytest.approx(10.0, rel=0.01)

    def test_settle_added(self):
        fast = Stage(settle_time=0.0)
        slow = Stage(settle_time=0.5)
        assert slow.move_time(100.0) == pytest.approx(
            fast.move_time(100.0) + 0.5
        )

    def test_continuous_stage_is_transit_only(self):
        stage = Stage(velocity=1e4, continuous=True, settle_time=1.0)
        assert stage.move_time(1e4) == pytest.approx(1.0)

    def test_serpentine_move_count(self):
        stage = Stage(settle_time=0.0)
        t_one = stage.move_time(100.0)
        assert stage.serpentine_time(100.0, 4, 3) == pytest.approx(11 * t_one)

    def test_serpentine_validates(self):
        with pytest.raises(ValueError):
            Stage().serpentine_time(100.0, 0, 3)


class TestDeflectionField:
    def test_validation(self):
        with pytest.raises(ValueError):
            DeflectionField(size=0)

    def test_distortion_zero_at_center(self):
        f = DeflectionField()
        dx, dy = f.distortion(np.array([0.0]), np.array([0.0]))
        assert dx[0] == pytest.approx(0.0)
        assert dy[0] == pytest.approx(0.0)

    def test_distortion_grows_toward_corner(self):
        f = DeflectionField(size=2000.0)
        dx_mid, dy_mid = f.distortion(np.array([500.0]), np.array([0.0]))
        dx_corner, dy_corner = f.distortion(np.array([1000.0]), np.array([1000.0]))
        assert np.hypot(dx_corner, dy_corner)[0] > np.hypot(dx_mid, dy_mid)[0]

    def test_calibration_reduces_residual_with_order(self):
        f = DeflectionField()
        uncal = f.calibrate(order=0)
        linear = f.calibrate(order=1)
        cubic = f.calibrate(order=3)
        assert cubic.residual_rms < linear.residual_rms < uncal.residual_rms

    def test_fifth_order_fits_everything(self):
        f = DeflectionField()
        r = f.calibrate(order=5)
        assert r.residual_rms < 1e-9

    def test_noise_floors_the_residual(self):
        f = DeflectionField()
        clean = f.calibrate(order=3, noise=0.0)
        noisy = f.calibrate(order=3, noise=0.05, seed=1)
        assert noisy.residual_rms > clean.residual_rms

    def test_marks_validated(self):
        with pytest.raises(ValueError):
            DeflectionField().calibrate(order=5, marks=3)

    def test_edge_residual_at_least_rms_shape(self):
        # Pincushion residuals concentrate at the boundary.
        f = DeflectionField(gain_error=0.0, rotation_urad=0.0)
        r = f.calibrate(order=1)
        assert r.edge_residual_rms > 0.5 * r.residual_rms


class TestStitching:
    def test_butting_error_distribution(self):
        model = StitchingModel(stage=Stage(position_noise=0.05))
        report = model.simulate(columns=4, rows=4, seed=0)
        assert report.samples > 0
        assert report.rms > 0
        assert report.maximum >= report.rms

    def test_stage_noise_dominates_when_large(self):
        model = StitchingModel(stage=Stage(position_noise=0.5))
        report = model.simulate(seed=0)
        assert report.stage_contribution_rms > report.deflection_contribution_rms

    def test_deflection_dominates_without_calibration(self):
        model = StitchingModel(
            field=DeflectionField(pincushion=5e-3),
            stage=Stage(position_noise=0.001),
            calibration_order=None,
        )
        report = model.simulate(seed=0)
        assert report.deflection_contribution_rms > report.stage_contribution_rms

    def test_calibration_improves_butting(self):
        raw = StitchingModel(
            stage=Stage(position_noise=0.001), calibration_order=None
        ).simulate(seed=0)
        calibrated = StitchingModel(
            stage=Stage(position_noise=0.001), calibration_order=3
        ).simulate(seed=0)
        assert calibrated.rms < raw.rms

    def test_single_field_raises(self):
        with pytest.raises(ValueError):
            StitchingModel().simulate(columns=1, rows=1)


class _AsymmetricField(DeflectionField):
    """Distortion that differs between the right and top field edges.

    ``dx = c · (y / half)²`` varies quadratically along the right edge
    (x = +half, y swept) but is the constant ``c`` along the top edge
    (y = +half, x swept); ``dy = 0`` everywhere.
    """

    AMPLITUDE = 0.01

    def distortion(self, x, y):
        half = self.size / 2.0
        yn = np.asarray(y, dtype=float) / half
        dx = self.AMPLITUDE * yn**2
        return dx, np.zeros_like(dx)


class TestStitchingEdgeSelection:
    """Regression: horizontal boundaries must use top-edge residuals.

    The pre-fix code sampled only the right edge (``xs = half``) and fed
    those residuals to *every* boundary; with the asymmetric field above
    the analytic butting error differs between the orientations, so the
    wrong-edge reuse is provably visible in the RMS.
    """

    C = _AsymmetricField.AMPLITUDE

    def _model(self):
        return StitchingModel(
            field=_AsymmetricField(),
            stage=Stage(position_noise=0.0),
            calibration_order=None,
        )

    def test_horizontal_boundaries_use_top_edge(self):
        # Rows-only mosaic: every boundary is horizontal.  Top-edge
        # residual is the constant c, the mirrored bottom edge gives -c,
        # so every sample's butting error is exactly 2c.  The old code
        # reused the right edge (c·yn²) and reported RMS(2c·yn²) =
        # 2c·sqrt(mean(yn⁴)) ≈ 0.66·2c instead.
        report = self._model().simulate(columns=1, rows=3, seed=0)
        assert report.rms == pytest.approx(2 * self.C, rel=1e-12)
        assert report.maximum == pytest.approx(2 * self.C, rel=1e-12)

    def test_vertical_boundaries_unchanged(self):
        # Columns-only mosaic: every boundary is vertical, right-edge
        # residuals apply, mismatch 2c·yn² over the symmetric sweep.
        report = self._model().simulate(columns=3, rows=1, samples_per_edge=21, seed=0)
        yn = np.linspace(-1.0, 1.0, 21)
        expected = float(np.sqrt(np.mean((2 * self.C * yn**2) ** 2)))
        assert report.rms == pytest.approx(expected, rel=1e-12)
        assert report.rms < 2 * self.C * 0.8

    def test_mixed_mosaic_between_the_extremes(self):
        mixed = self._model().simulate(columns=2, rows=2, seed=0)
        vertical = self._model().simulate(columns=3, rows=1, seed=0)
        horizontal = self._model().simulate(columns=1, rows=3, seed=0)
        assert vertical.rms < mixed.rms < horizontal.rms


class TestOverlayBudget:
    def test_rss(self):
        total, share = overlay_budget({"a": 3.0, "b": 4.0})
        assert total == pytest.approx(5.0)
        assert share["a"] == pytest.approx(9 / 25)
        assert share["b"] == pytest.approx(16 / 25)

    def test_zero_budget(self):
        total, share = overlay_budget({"a": 0.0})
        assert total == 0.0
        assert share["a"] == 0.0

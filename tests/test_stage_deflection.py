"""Tests for stage, deflection and stitching models."""

import numpy as np
import pytest

from repro.machine.deflection import DeflectionField
from repro.machine.stage import Stage
from repro.machine.stitching import StitchingModel, overlay_budget


class TestStage:
    def test_validation(self):
        with pytest.raises(ValueError):
            Stage(velocity=0)
        with pytest.raises(ValueError):
            Stage(settle_time=-1)

    def test_zero_move_is_free(self):
        assert Stage().move_time(0) == 0.0

    def test_short_move_accel_limited(self):
        stage = Stage(velocity=1e4, acceleration=1e5, settle_time=0.0)
        # Short move never reaches cruise velocity.
        t_short = stage.move_time(10.0)
        assert t_short == pytest.approx(2 * (10.0 / 1e5) ** 0.5)

    def test_long_move_velocity_limited(self):
        stage = Stage(velocity=1e4, acceleration=1e12, settle_time=0.0)
        assert stage.move_time(1e5) == pytest.approx(10.0, rel=0.01)

    def test_settle_added(self):
        fast = Stage(settle_time=0.0)
        slow = Stage(settle_time=0.5)
        assert slow.move_time(100.0) == pytest.approx(
            fast.move_time(100.0) + 0.5
        )

    def test_continuous_stage_is_transit_only(self):
        stage = Stage(velocity=1e4, continuous=True, settle_time=1.0)
        assert stage.move_time(1e4) == pytest.approx(1.0)

    def test_serpentine_move_count(self):
        stage = Stage(settle_time=0.0)
        t_one = stage.move_time(100.0)
        assert stage.serpentine_time(100.0, 4, 3) == pytest.approx(11 * t_one)

    def test_serpentine_validates(self):
        with pytest.raises(ValueError):
            Stage().serpentine_time(100.0, 0, 3)


class TestDeflectionField:
    def test_validation(self):
        with pytest.raises(ValueError):
            DeflectionField(size=0)

    def test_distortion_zero_at_center(self):
        f = DeflectionField()
        dx, dy = f.distortion(np.array([0.0]), np.array([0.0]))
        assert dx[0] == pytest.approx(0.0)
        assert dy[0] == pytest.approx(0.0)

    def test_distortion_grows_toward_corner(self):
        f = DeflectionField(size=2000.0)
        dx_mid, dy_mid = f.distortion(np.array([500.0]), np.array([0.0]))
        dx_corner, dy_corner = f.distortion(np.array([1000.0]), np.array([1000.0]))
        assert np.hypot(dx_corner, dy_corner)[0] > np.hypot(dx_mid, dy_mid)[0]

    def test_calibration_reduces_residual_with_order(self):
        f = DeflectionField()
        uncal = f.calibrate(order=0)
        linear = f.calibrate(order=1)
        cubic = f.calibrate(order=3)
        assert cubic.residual_rms < linear.residual_rms < uncal.residual_rms

    def test_fifth_order_fits_everything(self):
        f = DeflectionField()
        r = f.calibrate(order=5)
        assert r.residual_rms < 1e-9

    def test_noise_floors_the_residual(self):
        f = DeflectionField()
        clean = f.calibrate(order=3, noise=0.0)
        noisy = f.calibrate(order=3, noise=0.05, seed=1)
        assert noisy.residual_rms > clean.residual_rms

    def test_marks_validated(self):
        with pytest.raises(ValueError):
            DeflectionField().calibrate(order=5, marks=3)

    def test_edge_residual_at_least_rms_shape(self):
        # Pincushion residuals concentrate at the boundary.
        f = DeflectionField(gain_error=0.0, rotation_urad=0.0)
        r = f.calibrate(order=1)
        assert r.edge_residual_rms > 0.5 * r.residual_rms


class TestStitching:
    def test_butting_error_distribution(self):
        model = StitchingModel(stage=Stage(position_noise=0.05))
        report = model.simulate(columns=4, rows=4, seed=0)
        assert report.samples > 0
        assert report.rms > 0
        assert report.maximum >= report.rms

    def test_stage_noise_dominates_when_large(self):
        model = StitchingModel(stage=Stage(position_noise=0.5))
        report = model.simulate(seed=0)
        assert report.stage_contribution_rms > report.deflection_contribution_rms

    def test_deflection_dominates_without_calibration(self):
        model = StitchingModel(
            field=DeflectionField(pincushion=5e-3),
            stage=Stage(position_noise=0.001),
            calibration_order=None,
        )
        report = model.simulate(seed=0)
        assert report.deflection_contribution_rms > report.stage_contribution_rms

    def test_calibration_improves_butting(self):
        raw = StitchingModel(
            stage=Stage(position_noise=0.001), calibration_order=None
        ).simulate(seed=0)
        calibrated = StitchingModel(
            stage=Stage(position_noise=0.001), calibration_order=3
        ).simulate(seed=0)
        assert calibrated.rms < raw.rms

    def test_single_field_raises(self):
        with pytest.raises(ValueError):
            StitchingModel().simulate(columns=1, rows=1)


class TestOverlayBudget:
    def test_rss(self):
        total, share = overlay_budget({"a": 3.0, "b": 4.0})
        assert total == pytest.approx(5.0)
        assert share["a"] == pytest.approx(9 / 25)
        assert share["b"] == pytest.approx(16 / 25)

    def test_zero_budget(self):
        total, share = overlay_budget({"a": 0.0})
        assert total == 0.0
        assert share["a"] == 0.0

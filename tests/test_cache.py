"""Tests for the content-addressed shard cache.

Covers the three guarantees of :mod:`repro.core.cache`: keys change iff
an input changes (hypothesis-swept), payload round-trips are exact, and
cached execution is byte-identical to cold serial execution.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from layout_strategies import grid_of_squares

from repro.core.cache import (
    CACHE_SCHEMA_VERSION,
    ShardCache,
    fingerprint,
    shard_cache_key,
)
from repro.core.executor import Shard, ShardedExecutor, _process_shard
from repro.core.jobfile import (
    JobFileError,
    dumps_shard_result,
    loads_shard_result,
)
from repro.core.pipeline import PreparationPipeline
from repro.fracture.shots import ShotFracturer
from repro.fracture.trapezoidal import TrapezoidFracturer
from repro.geometry.polygon import Polygon
from repro.pec.dose_iter import IterativeDoseCorrector
from repro.physics.psf import DoubleGaussianPSF

PSF = DoubleGaussianPSF(alpha=0.2, beta=2.0, eta=0.74)


# -- strategies -------------------------------------------------------------

coords = st.integers(min_value=-40, max_value=40)


@st.composite
def rectangles(draw):
    x0 = draw(coords)
    y0 = draw(coords)
    w = draw(st.integers(min_value=1, max_value=20))
    h = draw(st.integers(min_value=1, max_value=20))
    return Polygon.rectangle(x0, y0, x0 + w, y0 + h)


@st.composite
def shards(draw):
    index = (
        draw(st.integers(min_value=0, max_value=5)),
        draw(st.integers(min_value=0, max_value=5)),
    )
    polys = draw(st.lists(rectangles(), min_size=1, max_size=4))
    return Shard(index=index, polygons=tuple(polys))


@st.composite
def fracturer_configs(draw):
    if draw(st.booleans()):
        return TrapezoidFracturer(
            merge=draw(st.booleans()),
            max_height=draw(
                st.one_of(st.none(), st.floats(min_value=0.5, max_value=4.0))
            ),
        )
    return ShotFracturer(
        max_shot=draw(st.floats(min_value=0.5, max_value=4.0)),
        avoid_slivers=draw(st.booleans()),
    )


# -- key properties ---------------------------------------------------------


class TestCacheKeys:
    @given(shard=shards(), fracturer=fracturer_configs())
    @settings(max_examples=40, deadline=None)
    def test_equal_inputs_equal_keys(self, shard, fracturer):
        """Independently rebuilt but identical inputs share a key."""
        clone = Shard(
            index=shard.index,
            polygons=tuple(
                Polygon([(v.x, v.y) for v in p.vertices])
                for p in shard.polygons
            ),
        )
        rebuilt = type(fracturer)(**_config_of(fracturer))
        assert shard_cache_key(shard, fracturer, None, PSF) == shard_cache_key(
            clone, rebuilt, None, PSF
        )

    @given(shard=shards())
    @settings(max_examples=40, deadline=None)
    def test_field_index_perturbation_changes_key(self, shard):
        moved = Shard(
            index=(shard.index[0] + 1, shard.index[1]),
            polygons=shard.polygons,
        )
        fracturer = TrapezoidFracturer()
        assert shard_cache_key(shard, fracturer) != shard_cache_key(
            moved, fracturer
        )

    @given(shard=shards(), delta=st.floats(min_value=1e-6, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_vertex_perturbation_changes_key(self, shard, delta):
        first = shard.polygons[0]
        moved_vertices = [(v.x, v.y) for v in first.vertices]
        moved_vertices[0] = (
            moved_vertices[0][0] + delta,
            moved_vertices[0][1],
        )
        perturbed = Shard(
            index=shard.index,
            polygons=(Polygon(moved_vertices),) + shard.polygons[1:],
        )
        fracturer = TrapezoidFracturer()
        assert shard_cache_key(shard, fracturer) != shard_cache_key(
            perturbed, fracturer
        )

    @given(shard=shards(), factor=st.floats(min_value=1.01, max_value=3.0))
    @settings(max_examples=40, deadline=None)
    def test_psf_beta_perturbation_changes_key(self, shard, factor):
        fracturer = TrapezoidFracturer()
        corrector = IterativeDoseCorrector()
        scaled = DoubleGaussianPSF(PSF.alpha, PSF.beta * factor, PSF.eta)
        assert shard_cache_key(
            shard, fracturer, corrector, PSF
        ) != shard_cache_key(shard, fracturer, corrector, scaled)

    @given(shard=shards(), factor=st.floats(min_value=1.5, max_value=8.0))
    @settings(max_examples=40, deadline=None)
    def test_fracture_grid_perturbation_changes_key(self, shard, factor):
        base = TrapezoidFracturer()
        finer = TrapezoidFracturer(grid=base.grid * factor)
        assert shard_cache_key(shard, base) != shard_cache_key(shard, finer)

    def test_corrector_parameters_enter_key(self):
        shard = Shard(index=(0, 0), polygons=(Polygon.rectangle(0, 0, 2, 2),))
        fracturer = TrapezoidFracturer()
        a = shard_cache_key(
            shard, fracturer, IterativeDoseCorrector(max_iterations=30), PSF
        )
        b = shard_cache_key(
            shard, fracturer, IterativeDoseCorrector(max_iterations=10), PSF
        )
        assert a != b

    def test_no_corrector_differs_from_corrector(self):
        shard = Shard(index=(0, 0), polygons=(Polygon.rectangle(0, 0, 2, 2),))
        fracturer = TrapezoidFracturer()
        assert shard_cache_key(shard, fracturer, None, PSF) != shard_cache_key(
            shard, fracturer, IterativeDoseCorrector(), PSF
        )

    def test_salt_changes_key(self):
        shard = Shard(index=(0, 0), polygons=(Polygon.rectangle(0, 0, 2, 2),))
        fracturer = TrapezoidFracturer()
        assert shard_cache_key(shard, fracturer) != shard_cache_key(
            shard, fracturer, salt=CACHE_SCHEMA_VERSION + 1
        )

    def test_corrector_runtime_state_is_volatile(self):
        """A corrector that has already run hashes like a fresh one."""
        shard = Shard(index=(0, 0), polygons=(Polygon.rectangle(0, 0, 2, 2),))
        fracturer = TrapezoidFracturer()
        corrector = IterativeDoseCorrector()
        before = shard_cache_key(shard, fracturer, corrector, PSF)
        corrector.correct(
            fracturer.fracture_to_shots([Polygon.rectangle(0, 0, 2, 2)]), PSF
        )
        assert corrector.last_trace is not None
        assert shard_cache_key(shard, fracturer, corrector, PSF) == before

    def test_fingerprint_is_type_tagged(self):
        assert fingerprint(1) != fingerprint(1.0)
        assert fingerprint("1") != fingerprint(1)
        assert fingerprint((1, 2)) != fingerprint([1, [2]])


def _config_of(fracturer):
    if isinstance(fracturer, TrapezoidFracturer):
        return {
            "grid": fracturer.grid,
            "max_height": fracturer.max_height,
            "merge": fracturer.merge,
        }
    return {
        "max_shot": fracturer.max_shot,
        "grid": fracturer.grid,
        "avoid_slivers": fracturer.avoid_slivers,
        "allow_trapezoids": fracturer.allow_trapezoids,
    }


# -- payload round-trips ----------------------------------------------------


class TestShardPayload:
    def _result(self):
        shard = Shard(
            index=(2, 3),
            polygons=(
                Polygon.rectangle(0, 0, 3, 3),
                Polygon([(4, 0), (7, 0), (5.5, 2.5)]),
            ),
        )
        return _process_shard(
            shard, TrapezoidFracturer(), IterativeDoseCorrector(), PSF
        )

    def test_round_trip_is_exact(self):
        result = self._result()
        loaded = loads_shard_result(dumps_shard_result(result))
        assert loaded.index == result.index
        assert loaded.reference_area == result.reference_area
        assert loaded.report == result.report
        assert [
            (s.trapezoid.y_bottom, s.trapezoid.y_top, s.dose)
            for s in loaded.shots
        ] == [
            (s.trapezoid.y_bottom, s.trapezoid.y_top, s.dose)
            for s in result.shots
        ]
        # Serialization is canonical: a round-trip re-serializes to the
        # same bytes.
        assert dumps_shard_result(loaded) == dumps_shard_result(result)

    def test_truncated_payload_rejected(self):
        data = dumps_shard_result(self._result())
        with pytest.raises(JobFileError):
            loads_shard_result(data[:-4])

    def test_bad_magic_rejected(self):
        data = dumps_shard_result(self._result())
        with pytest.raises(JobFileError):
            loads_shard_result(b"XXXX" + data[4:])

    def test_kernel_fallback_counters_round_trip(self):
        from repro.geometry.scanline_fast import KernelFallbacks

        result = self._result()
        result.kernel_fallbacks = KernelFallbacks(
            coord_limit=3, rational_slab=17
        )
        loaded = loads_shard_result(dumps_shard_result(result))
        assert loaded.kernel_fallbacks == KernelFallbacks(3, 17)
        assert dumps_shard_result(loaded) == dumps_shard_result(result)

    def test_previous_payload_version_rejected(self):
        # Pre-v2 payloads have no fallback counters; an old cache entry
        # must read as a miss, not as garbage counters.
        from repro.core import jobfile

        data = dumps_shard_result(self._result())
        header = jobfile._SHARD_HEADER
        magic, version, count, col, row = header.unpack_from(data, 0)
        assert version == jobfile.SHARD_PAYLOAD_VERSION
        downgraded = (
            header.pack(magic, version - 1, count, col, row)
            + data[header.size :]
        )
        with pytest.raises(JobFileError):
            loads_shard_result(downgraded)


# -- the on-disk store ------------------------------------------------------


class TestShardCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ShardCache(tmp_path)
        shard = Shard(index=(0, 0), polygons=(Polygon.rectangle(0, 0, 2, 2),))
        fracturer = TrapezoidFracturer()
        key = cache.key_for(shard, fracturer)
        assert cache.get(key) is None
        result = _process_shard(shard, fracturer, None, None)
        cache.put(key, result)
        loaded = cache.get(key)
        assert loaded is not None
        assert dumps_shard_result(loaded) == dumps_shard_result(result)
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert cache.entry_count() == 1

    def test_corrupt_entry_is_evicted(self, tmp_path):
        cache = ShardCache(tmp_path)
        shard = Shard(index=(0, 0), polygons=(Polygon.rectangle(0, 0, 2, 2),))
        fracturer = TrapezoidFracturer()
        key = cache.key_for(shard, fracturer)
        cache.put(key, _process_shard(shard, fracturer, None, None))
        cache.path_for(key).write_bytes(b"garbage")
        assert cache.get(key) is None
        assert cache.stats.evictions == 1
        assert not cache.path_for(key).exists()

    def test_no_staging_files_left_behind(self, tmp_path):
        cache = ShardCache(tmp_path)
        shard = Shard(index=(0, 0), polygons=(Polygon.rectangle(0, 0, 2, 2),))
        fracturer = TrapezoidFracturer()
        cache.put(
            cache.key_for(shard, fracturer),
            _process_shard(shard, fracturer, None, None),
        )
        leftovers = [p for p in tmp_path.iterdir() if p.name.startswith(".tmp")]
        assert leftovers == []

    def test_clear(self, tmp_path):
        cache = ShardCache(tmp_path)
        shard = Shard(index=(0, 0), polygons=(Polygon.rectangle(0, 0, 2, 2),))
        fracturer = TrapezoidFracturer()
        cache.put(
            cache.key_for(shard, fracturer),
            _process_shard(shard, fracturer, None, None),
        )
        assert cache.clear() == 1
        assert cache.entry_count() == 0

    def test_salted_caches_do_not_collide(self, tmp_path):
        shard = Shard(index=(0, 0), polygons=(Polygon.rectangle(0, 0, 2, 2),))
        fracturer = TrapezoidFracturer()
        a = ShardCache(tmp_path, salt="a")
        b = ShardCache(tmp_path, salt="b")
        key = a.key_for(shard, fracturer)
        a.put(key, _process_shard(shard, fracturer, None, None))
        assert b.get(b.key_for(shard, fracturer)) is None


# -- cached execution: byte-identical, incremental --------------------------


class TestCachedExecution:
    def pipeline(self, tmp_path, **kwargs):
        return PreparationPipeline(
            corrector=IterativeDoseCorrector(),
            psf=PSF,
            field_size=20.0,
            cache_dir=tmp_path / "shard-cache",
            **kwargs,
        )

    def test_cold_warm_parallel_byte_identical(self, tmp_path):
        """The acceptance oracle: cached, cold and parallel runs produce
        byte-identical job digests."""
        polys = grid_of_squares(6, 6)
        pipe = self.pipeline(tmp_path)
        cold = pipe.run_polygons(polys)
        warm = pipe.run_polygons(polys)
        parallel = pipe.run_polygons(polys, workers=2)
        uncached = pipe.run_polygons(polys, cache=False)
        assert cold.execution.cache_misses == cold.execution.shard_count
        assert warm.execution.cache_hits == warm.execution.shard_count
        assert (
            cold.job.digest()
            == warm.job.digest()
            == parallel.job.digest()
            == uncached.job.digest()
        )
        assert warm.fracture_report == cold.fracture_report
        assert warm.corrected and cold.corrected

    def test_one_field_edit_recomputes_one_shard(self, tmp_path):
        polys = grid_of_squares(4, 4, pitch=10.0, side=4.0)
        pipe = self.pipeline(tmp_path)
        cold = pipe.run_polygons(polys)
        shard_count = cold.execution.shard_count
        edited = list(polys)
        edited[0] = Polygon.rectangle(1.0, 1.0, 4.0, 4.0)  # same field
        rerun = pipe.run_polygons(edited)
        assert rerun.execution.cache_misses == 1
        assert rerun.execution.cache_hits == shard_count - 1
        reference = pipe.run_polygons(edited, cache=False)
        assert rerun.job.digest() == reference.job.digest()

    def test_cache_disabled_reports_no_lookups(self, tmp_path):
        pipe = self.pipeline(tmp_path)
        result = pipe.run_polygons(grid_of_squares(2, 2), cache=False)
        assert result.execution.cache_enabled is False
        assert result.execution.cache_hits == 0
        assert result.execution.cache_misses == 0

    def test_uncached_pipeline_never_touches_disk(self):
        pipe = PreparationPipeline(field_size=20.0)
        result = pipe.run_polygons(grid_of_squares(3, 3))
        assert result.execution.cache_enabled is False

    def test_cache_true_without_cache_raises(self):
        pipe = PreparationPipeline(field_size=20.0)
        with pytest.raises(ValueError):
            pipe.run_polygons(grid_of_squares(2, 2), cache=True)

    def test_executor_explicit_cache_override(self, tmp_path):
        polys = grid_of_squares(3, 3)
        executor = ShardedExecutor(TrapezoidFracturer(), field_size=20.0)
        override = ShardCache(tmp_path / "explicit")
        first = executor.execute(polys, cache=override)
        second = executor.execute(polys, cache=override)
        assert first.stats.cache_misses == first.stats.shard_count
        assert second.stats.cache_hits == second.stats.shard_count

    def test_run_many_shares_cache_across_sources(self, tmp_path):
        pipe = self.pipeline(tmp_path)
        polys = grid_of_squares(4, 4)
        results = pipe.executor.execute_many([polys, polys])
        # The second copy of the same layout hits on every shard the
        # first copy stored... unless both were looked up before either
        # stored, which is the documented single-pass behaviour: lookups
        # happen before processing.  Both layouts must agree regardless.
        assert [s.dose for s in results[0].shots] == [
            s.dose for s in results[1].shots
        ]
        warm = pipe.executor.execute_many([polys, polys])
        for outcome in warm:
            assert outcome.stats.cache_hits == outcome.stats.shard_count


class TestReviewRegressions:
    """Regressions for the key-coverage and fault-tolerance review."""

    def test_numpy_scalar_configs_do_not_collide(self):
        import numpy as np

        shard = Shard(index=(0, 0), polygons=(Polygon.rectangle(0, 0, 2, 2),))
        a = shard_cache_key(shard, ShotFracturer(max_shot=np.float64(1.0)))
        b = shard_cache_key(shard, ShotFracturer(max_shot=np.float64(2.0)))
        assert a != b
        assert fingerprint(np.int64(3)) != fingerprint(np.int64(5))
        assert fingerprint(np.float32(0.2)) != fingerprint(np.float32(2.0))

    def test_numpy_scalar_matches_python_value_within_dtype(self):
        import numpy as np

        shard = Shard(index=(0, 0), polygons=(Polygon.rectangle(0, 0, 2, 2),))
        assert shard_cache_key(
            shard, ShotFracturer(max_shot=np.float64(1.5))
        ) != shard_cache_key(shard, ShotFracturer(max_shot=np.float32(1.5)))

    def test_callable_config_attribute_rejected(self):
        from repro.core.cache import CacheKeyError

        fracturer = TrapezoidFracturer()
        fracturer.postprocess = lambda shots: shots
        shard = Shard(index=(0, 0), polygons=(Polygon.rectangle(0, 0, 2, 2),))
        with pytest.raises(CacheKeyError):
            shard_cache_key(shard, fracturer)

    def test_user_salt_composes_with_schema_version(self):
        """A salted cache must still miss after a schema bump: the user
        salt augments CACHE_SCHEMA_VERSION instead of replacing it."""
        shard = Shard(index=(0, 0), polygons=(Polygon.rectangle(0, 0, 2, 2),))
        fracturer = TrapezoidFracturer()
        salted = ShardCache("unused", salt="site-a")
        unsalted_key = shard_cache_key(
            shard, fracturer, salt=CACHE_SCHEMA_VERSION
        )
        composed_key = shard_cache_key(
            shard, fracturer, salt=(CACHE_SCHEMA_VERSION, "site-a")
        )
        bare_user_salt_key = shard_cache_key(shard, fracturer, salt="site-a")
        assert salted.key_for(shard, fracturer) == composed_key
        assert salted.key_for(shard, fracturer) != unsalted_key
        assert salted.key_for(shard, fracturer) != bare_user_salt_key

    def test_put_failure_degrades_to_no_store(self, tmp_path):
        # A plain file where the cache root should be makes every write
        # fail with NotADirectoryError (permission tricks don't work
        # when the suite runs as root).
        target = tmp_path / "not-a-dir"
        target.write_bytes(b"occupied")
        cache = ShardCache(target)
        shard = Shard(index=(0, 0), polygons=(Polygon.rectangle(0, 0, 2, 2),))
        fracturer = TrapezoidFracturer()
        result = _process_shard(shard, fracturer, None, None)
        cache.put(cache.key_for(shard, fracturer), result)  # must not raise
        assert cache.stats.write_errors == 1
        assert cache.stats.stores == 0
        assert cache.entry_count() == 0

    def test_root_expands_home_directory(self):
        cache = ShardCache("~/some-cache")
        assert "~" not in str(cache.root)


class TestKernelFallbackObservability:
    """The fallback counters are observability, not identity: they ride
    along with cached payloads but must never perturb cache keys."""

    #: Layout units that snap beyond the fast kernel's 2**53 dbu range
    #: at the default 1e-3 grid — guaranteed coord-limit fallback.
    FAR = (1 << 53) * 1e-3 * 2.0

    def _far_polygons(self):
        far = self.FAR
        return [Polygon.rectangle(far, far, far + 5.0, far + 5.0)]

    def test_fallback_state_never_enters_cache_key(self):
        shard = Shard(index=(0, 0), polygons=(Polygon.rectangle(0, 0, 2, 2),))
        fracturer = TrapezoidFracturer()
        before = shard_cache_key(shard, fracturer)
        fracturer.fracture(self._far_polygons())
        assert fracturer.last_fallbacks.coord_limit == 1
        assert shard_cache_key(shard, fracturer) == before

    def test_executor_aggregates_fallback_counters(self):
        executor = ShardedExecutor(TrapezoidFracturer(), field_size=20.0)
        result = executor.execute(
            self._far_polygons() + [Polygon.rectangle(0, 0, 5, 5)]
        )
        stats = result.stats
        assert stats.kernel_coord_fallbacks >= 1
        assert stats.kernel_fallbacks == (
            stats.kernel_coord_fallbacks + stats.kernel_slab_fallbacks
        )

    def test_warm_cache_reports_cold_run_counters(self, tmp_path):
        # The counters describe the shard's geometry, so a cache hit
        # must replay them — a warm run may not pretend the kernel
        # never degraded.
        executor = ShardedExecutor(TrapezoidFracturer(), field_size=20.0)
        cache = ShardCache(tmp_path)
        polys = self._far_polygons()
        cold = executor.execute(polys, cache=cache)
        warm = executor.execute(polys, cache=cache)
        assert warm.stats.cache_hits == warm.stats.shard_count
        assert cold.stats.kernel_coord_fallbacks >= 1
        assert warm.stats.kernel_fallbacks == cold.stats.kernel_fallbacks
        assert (
            warm.stats.kernel_coord_fallbacks
            == cold.stats.kernel_coord_fallbacks
        )
        assert (
            warm.stats.kernel_slab_fallbacks
            == cold.stats.kernel_slab_fallbacks
        )

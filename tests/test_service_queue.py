"""Job-queue semantics: priority, concurrency, cancellation, failure.

These tests drive :class:`~repro.service.queue.JobQueue` with
controllable fake runners (events instead of real pipeline runs), so
every scheduling property is asserted deterministically.
"""

import threading

import pytest

from repro.core.recipe import PrepRecipe
from repro.service.jobs import JobStore
from repro.service.queue import JobQueue
from repro.service.schemas import JobSpec

_TIMEOUT = 10.0


def make_spec(priority=0, workload="grating"):
    return JobSpec(workload=workload, recipe=PrepRecipe(), priority=priority)


class RecordingRunner:
    """Runner that logs execution order and optionally blocks."""

    def __init__(self, store, gate=None):
        self.store = store
        self.gate = gate
        self.order = []
        self.started = threading.Semaphore(0)

    def __call__(self, job):
        self.order.append(job.id)
        self.started.release()
        if self.gate is not None:
            assert self.gate.wait(_TIMEOUT)
        self.store.to_done(job.id, {"ok": True})


@pytest.fixture
def store():
    return JobStore()


def drain(queue):
    assert queue.wait_idle(timeout=_TIMEOUT)
    queue.shutdown()


class TestPriorityOrdering:
    def test_higher_priority_runs_first(self, store):
        gate = threading.Event()
        runner = RecordingRunner(store, gate=gate)
        queue = JobQueue(store, runner, concurrency=1)
        # Occupy the single worker so the rest queue up.
        blocker = store.create(make_spec())
        queue.start()
        queue.submit(blocker)
        assert runner.started.acquire(timeout=_TIMEOUT)
        low = store.create(make_spec(priority=0))
        high = store.create(make_spec(priority=5))
        mid = store.create(make_spec(priority=1))
        for job in (low, high, mid):
            queue.submit(job)
        gate.set()
        drain(queue)
        assert runner.order == [blocker.id, high.id, mid.id, low.id]

    def test_fifo_within_a_priority_class(self, store):
        gate = threading.Event()
        runner = RecordingRunner(store, gate=gate)
        queue = JobQueue(store, runner, concurrency=1)
        blocker = store.create(make_spec())
        queue.start()
        queue.submit(blocker)
        assert runner.started.acquire(timeout=_TIMEOUT)
        same = [store.create(make_spec(priority=3)) for _ in range(4)]
        for job in same:
            queue.submit(job)
        gate.set()
        drain(queue)
        assert runner.order[1:] == [job.id for job in same]


class TestConcurrencyLimit:
    def test_never_more_than_concurrency_running(self, store):
        gate = threading.Event()
        runner = RecordingRunner(store, gate=gate)
        queue = JobQueue(store, runner, concurrency=2)
        queue.start()
        jobs = [store.create(make_spec()) for _ in range(5)]
        for job in jobs:
            queue.submit(job)
        # Exactly two start; the other three wait in the queue.
        assert runner.started.acquire(timeout=_TIMEOUT)
        assert runner.started.acquire(timeout=_TIMEOUT)
        assert not runner.started.acquire(timeout=0.2)
        assert queue.running_count() == 2
        assert queue.depth() == 3
        assert store.counts()["running"] == 2
        gate.set()
        drain(queue)
        assert sorted(runner.order) == sorted(job.id for job in jobs)

    def test_concurrency_must_be_positive(self, store):
        with pytest.raises(ValueError):
            JobQueue(store, lambda job: None, concurrency=0)


class TestCancellation:
    def test_cancel_queued_job_never_runs(self, store):
        gate = threading.Event()
        runner = RecordingRunner(store, gate=gate)
        queue = JobQueue(store, runner, concurrency=1)
        blocker = store.create(make_spec())
        victim = store.create(make_spec())
        queue.start()
        queue.submit(blocker)
        assert runner.started.acquire(timeout=_TIMEOUT)
        queue.submit(victim)
        assert queue.cancel(victim.id) == "cancelled"
        assert store.get(victim.id).state == "cancelled"
        gate.set()
        drain(queue)
        assert victim.id not in runner.order
        assert store.get(victim.id).state == "cancelled"
        assert store.get(victim.id).finished_at is not None

    def test_cancel_running_job_requests_cooperative_stop(self, store):
        """Cancelling a *running* job flags it for cooperative stop:
        the queue answers "cancelling" and sets the store flag; it's
        the runner's duty to observe the flag at a shard boundary (this
        fake runner never looks, so the job still lands done)."""
        gate = threading.Event()
        runner = RecordingRunner(store, gate=gate)
        queue = JobQueue(store, runner, concurrency=1)
        job = store.create(make_spec())
        queue.start()
        queue.submit(job)
        assert runner.started.acquire(timeout=_TIMEOUT)
        assert queue.cancel(job.id) == "cancelling"
        assert store.get(job.id).state == "running"
        assert store.cancel_requested(job.id)
        gate.set()
        drain(queue)
        assert store.get(job.id).state == "done"

    def test_cancel_finished_and_missing(self, store):
        runner = RecordingRunner(store)
        queue = JobQueue(store, runner, concurrency=1)
        job = store.create(make_spec())
        queue.start()
        queue.submit(job)
        drain(queue)
        assert queue.cancel(job.id) == "finished"
        assert queue.cancel("nope") == "missing"


class TestFailureCapture:
    def test_exception_marks_failed_and_worker_survives(self, store):
        calls = []

        def runner(job):
            calls.append(job.id)
            if len(calls) == 1:
                raise RuntimeError("shard exploded")
            store.to_done(job.id, {"ok": True})

        queue = JobQueue(store, runner, concurrency=1)
        bad = store.create(make_spec())
        good = store.create(make_spec())
        queue.start()
        queue.submit(bad)
        queue.submit(good)
        drain(queue)
        assert store.get(bad.id).state == "failed"
        assert store.get(bad.id).error == "RuntimeError: shard exploded"
        # The worker survived the poisoned job and ran the next one.
        assert store.get(good.id).state == "done"
        assert queue.workers_alive() == 0  # after shutdown


class TestJobStore:
    def test_sequence_orders_submissions(self, store):
        a, b = store.create(make_spec()), store.create(make_spec())
        assert a.sequence < b.sequence
        assert [j.id for j in store.list()] == [a.id, b.id]

    def test_state_machine_guards(self, store):
        job = store.create(make_spec())
        assert store.to_running(job.id)
        assert not store.to_running(job.id)
        assert not store.to_cancelled(job.id)
        store.to_done(job.id, {"ok": True})
        assert store.get(job.id).state == "done"

    def test_progress_is_monotonic(self, store):
        job = store.create(make_spec())
        store.update_progress(job.id, 3, 10)
        store.update_progress(job.id, 2, 10)
        assert store.get(job.id).shards_done == 3
        assert store.get(job.id).shards_total == 10

    def test_counts_key_every_state(self, store):
        counts = store.counts()
        assert set(counts) == {
            "queued",
            "running",
            "done",
            "failed",
            "cancelled",
        }


class TestShutdownSemantics:
    def test_shutdown_does_not_drain_queued_jobs(self, store):
        """shutdown() promises queued jobs stay queued — workers must
        exit at the stop flag instead of draining the heap first."""
        gate = threading.Event()
        runner = RecordingRunner(store, gate=gate)
        queue = JobQueue(store, runner, concurrency=1)
        blocker = store.create(make_spec())
        queue.start()
        queue.submit(blocker)
        assert runner.started.acquire(timeout=_TIMEOUT)
        queued = [store.create(make_spec()) for _ in range(3)]
        for job in queued:
            queue.submit(job)
        stopper = threading.Thread(target=queue.shutdown)
        stopper.start()
        # Release the running job only once the stop flag is set, so
        # the worker's next pickup attempt observes it.
        deadline = threading.Event()
        for _ in range(1000):
            if queue._stopping:
                break
            deadline.wait(0.01)
        assert queue._stopping
        gate.set()
        stopper.join(timeout=_TIMEOUT)
        assert not stopper.is_alive()
        assert runner.order == [blocker.id]
        for job in queued:
            assert store.get(job.id).state == "queued"


class TestCancelWakesWaiters:
    def test_cancel_purges_heap_so_wait_idle_progresses(self, store):
        """A cancelled entry must not linger in the heap: wait_idle()
        and depth() agree immediately, without relying on some future
        submission to wake a worker."""
        queue = JobQueue(store, lambda job: None, concurrency=1)
        victim = store.create(make_spec())
        queue.submit(victim)  # workers never started — nothing drains
        assert queue.cancel(victim.id) == "cancelled"
        assert queue.depth() == 0
        assert queue.wait_idle(timeout=1.0)


class TestCancellationErrorCapture:
    def test_cancelled_error_fails_job_but_worker_survives(self, store):
        """CancelledError is a BaseException on supported Pythons; it
        must be captured on the job like any failure, not kill the
        worker thread (which would silently shrink concurrency and
        wedge /readyz at 503)."""
        from concurrent.futures import CancelledError

        calls = []

        def runner(job):
            calls.append(job.id)
            if len(calls) == 1:
                raise CancelledError("pool torn down mid-map")
            store.to_done(job.id, {"ok": True})

        queue = JobQueue(store, runner, concurrency=1)
        bad = store.create(make_spec())
        good = store.create(make_spec())
        queue.start()
        queue.submit(bad)
        queue.submit(good)
        assert queue.wait_idle(timeout=_TIMEOUT)
        assert queue.workers_alive() == 1
        queue.shutdown()
        assert store.get(bad.id).state == "failed"
        assert "CancelledError" in store.get(bad.id).error
        assert store.get(good.id).state == "done"


class TestStoreSnapshots:
    def test_snapshot_is_a_point_in_time_copy(self, store):
        job = store.create(make_spec())
        snap = store.snapshot(job.id)
        assert store.to_running(job.id)
        store.to_done(job.id, {"ok": True}, job_path="/tmp/x.ebj")
        assert snap.state == "queued"
        assert snap.result is None
        done = store.snapshot(job.id)
        assert done.state == "done"
        assert done.result == {"ok": True}
        assert done.job_path == "/tmp/x.ebj"
        assert store.snapshot("nope") is None

    def test_list_returns_copies(self, store):
        job = store.create(make_spec())
        listed = store.list()[0]
        assert store.to_running(job.id)
        assert listed.state == "queued"

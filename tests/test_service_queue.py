"""Job-queue semantics: priority, concurrency, cancellation, failure.

These tests drive :class:`~repro.service.queue.JobQueue` with
controllable fake runners (events instead of real pipeline runs), so
every scheduling property is asserted deterministically.
"""

import threading

import pytest

from repro.core.recipe import PrepRecipe
from repro.service.jobs import JobStore
from repro.service.queue import JobQueue
from repro.service.schemas import JobSpec

_TIMEOUT = 10.0


def make_spec(priority=0, workload="grating"):
    return JobSpec(workload=workload, recipe=PrepRecipe(), priority=priority)


class RecordingRunner:
    """Runner that logs execution order and optionally blocks."""

    def __init__(self, store, gate=None):
        self.store = store
        self.gate = gate
        self.order = []
        self.started = threading.Semaphore(0)

    def __call__(self, job):
        self.order.append(job.id)
        self.started.release()
        if self.gate is not None:
            assert self.gate.wait(_TIMEOUT)
        self.store.to_done(job.id, {"ok": True})


@pytest.fixture
def store():
    return JobStore()


def drain(queue):
    assert queue.wait_idle(timeout=_TIMEOUT)
    queue.shutdown()


class TestPriorityOrdering:
    def test_higher_priority_runs_first(self, store):
        gate = threading.Event()
        runner = RecordingRunner(store, gate=gate)
        queue = JobQueue(store, runner, concurrency=1)
        # Occupy the single worker so the rest queue up.
        blocker = store.create(make_spec())
        queue.start()
        queue.submit(blocker)
        assert runner.started.acquire(timeout=_TIMEOUT)
        low = store.create(make_spec(priority=0))
        high = store.create(make_spec(priority=5))
        mid = store.create(make_spec(priority=1))
        for job in (low, high, mid):
            queue.submit(job)
        gate.set()
        drain(queue)
        assert runner.order == [blocker.id, high.id, mid.id, low.id]

    def test_fifo_within_a_priority_class(self, store):
        gate = threading.Event()
        runner = RecordingRunner(store, gate=gate)
        queue = JobQueue(store, runner, concurrency=1)
        blocker = store.create(make_spec())
        queue.start()
        queue.submit(blocker)
        assert runner.started.acquire(timeout=_TIMEOUT)
        same = [store.create(make_spec(priority=3)) for _ in range(4)]
        for job in same:
            queue.submit(job)
        gate.set()
        drain(queue)
        assert runner.order[1:] == [job.id for job in same]


class TestConcurrencyLimit:
    def test_never_more_than_concurrency_running(self, store):
        gate = threading.Event()
        runner = RecordingRunner(store, gate=gate)
        queue = JobQueue(store, runner, concurrency=2)
        queue.start()
        jobs = [store.create(make_spec()) for _ in range(5)]
        for job in jobs:
            queue.submit(job)
        # Exactly two start; the other three wait in the queue.
        assert runner.started.acquire(timeout=_TIMEOUT)
        assert runner.started.acquire(timeout=_TIMEOUT)
        assert not runner.started.acquire(timeout=0.2)
        assert queue.running_count() == 2
        assert queue.depth() == 3
        assert store.counts()["running"] == 2
        gate.set()
        drain(queue)
        assert sorted(runner.order) == sorted(job.id for job in jobs)

    def test_concurrency_must_be_positive(self, store):
        with pytest.raises(ValueError):
            JobQueue(store, lambda job: None, concurrency=0)


class TestCancellation:
    def test_cancel_queued_job_never_runs(self, store):
        gate = threading.Event()
        runner = RecordingRunner(store, gate=gate)
        queue = JobQueue(store, runner, concurrency=1)
        blocker = store.create(make_spec())
        victim = store.create(make_spec())
        queue.start()
        queue.submit(blocker)
        assert runner.started.acquire(timeout=_TIMEOUT)
        queue.submit(victim)
        assert queue.cancel(victim.id) == "cancelled"
        assert store.get(victim.id).state == "cancelled"
        gate.set()
        drain(queue)
        assert victim.id not in runner.order
        assert store.get(victim.id).state == "cancelled"
        assert store.get(victim.id).finished_at is not None

    def test_cancel_running_job_is_refused(self, store):
        gate = threading.Event()
        runner = RecordingRunner(store, gate=gate)
        queue = JobQueue(store, runner, concurrency=1)
        job = store.create(make_spec())
        queue.start()
        queue.submit(job)
        assert runner.started.acquire(timeout=_TIMEOUT)
        assert queue.cancel(job.id) == "running"
        assert store.get(job.id).state == "running"
        gate.set()
        drain(queue)
        assert store.get(job.id).state == "done"

    def test_cancel_finished_and_missing(self, store):
        runner = RecordingRunner(store)
        queue = JobQueue(store, runner, concurrency=1)
        job = store.create(make_spec())
        queue.start()
        queue.submit(job)
        drain(queue)
        assert queue.cancel(job.id) == "finished"
        assert queue.cancel("nope") == "missing"


class TestFailureCapture:
    def test_exception_marks_failed_and_worker_survives(self, store):
        calls = []

        def runner(job):
            calls.append(job.id)
            if len(calls) == 1:
                raise RuntimeError("shard exploded")
            store.to_done(job.id, {"ok": True})

        queue = JobQueue(store, runner, concurrency=1)
        bad = store.create(make_spec())
        good = store.create(make_spec())
        queue.start()
        queue.submit(bad)
        queue.submit(good)
        drain(queue)
        assert store.get(bad.id).state == "failed"
        assert store.get(bad.id).error == "RuntimeError: shard exploded"
        # The worker survived the poisoned job and ran the next one.
        assert store.get(good.id).state == "done"
        assert queue.workers_alive() == 0  # after shutdown


class TestJobStore:
    def test_sequence_orders_submissions(self, store):
        a, b = store.create(make_spec()), store.create(make_spec())
        assert a.sequence < b.sequence
        assert [j.id for j in store.list()] == [a.id, b.id]

    def test_state_machine_guards(self, store):
        job = store.create(make_spec())
        assert store.to_running(job.id)
        assert not store.to_running(job.id)
        assert not store.to_cancelled(job.id)
        store.to_done(job.id, {"ok": True})
        assert store.get(job.id).state == "done"

    def test_progress_is_monotonic(self, store):
        job = store.create(make_spec())
        store.update_progress(job.id, 3, 10)
        store.update_progress(job.id, 2, 10)
        assert store.get(job.id).shards_done == 3
        assert store.get(job.id).shards_total == 10

    def test_counts_key_every_state(self, store):
        counts = store.counts()
        assert set(counts) == {
            "queued",
            "running",
            "done",
            "failed",
            "cancelled",
        }

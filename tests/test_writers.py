"""Tests for the three machine writer models and the datapath."""

import pytest

from repro.core.job import MachineJob
from repro.fracture.base import Shot
from repro.geometry.trapezoid import Trapezoid
from repro.machine.base import WriteTimeBreakdown
from repro.machine.column import Column, LAB6
from repro.machine.datapath import (
    ChannelCheck,
    bitmap_bytes,
    data_volume_report,
    figure_stream_bytes,
    raster_channel_check,
    rle_bytes_estimate,
    vector_channel_check,
)
from repro.machine.raster import RasterScanWriter
from repro.machine.vector import VectorScanWriter
from repro.machine.vsb import ShapedBeamWriter


def job_with_density(density: float, chip: float = 1000.0, n: int = 100):
    """A job of n equal square shots at the requested pattern density."""
    side = (density * chip * chip / n) ** 0.5
    pitch = chip / int(n**0.5)
    shots = []
    k = int(n**0.5)
    for i in range(k):
        for j in range(k):
            x = i * pitch
            y = j * pitch
            shots.append(Shot(Trapezoid.from_rectangle(x, y, x + side, y + side)))
    return MachineJob(shots, base_dose=1.0, bounding_box=(0, 0, chip, chip))


class TestWriteTimeBreakdown:
    def test_total_sums_components(self):
        bd = WriteTimeBreakdown(1.0, 2.0, 3.0, 4.0, 5.0)
        assert bd.total == 15.0

    def test_addition(self):
        a = WriteTimeBreakdown(exposure=1.0)
        b = WriteTimeBreakdown(stage=2.0)
        assert (a + b).total == 3.0

    def test_as_dict(self):
        d = WriteTimeBreakdown(exposure=1.0).as_dict()
        assert d["exposure"] == 1.0
        assert d["total"] == 1.0


class TestRasterWriter:
    def test_density_independence(self):
        writer = RasterScanWriter(calibration_time=0.0)
        sparse = writer.write_time(job_with_density(0.05))
        dense = writer.write_time(job_with_density(0.5))
        assert sparse.exposure == pytest.approx(dense.exposure, rel=1e-6)

    def test_time_scales_with_chip_area(self):
        writer = RasterScanWriter(calibration_time=0.0)
        small = writer.write_time(job_with_density(0.2, chip=500.0))
        large = writer.write_time(job_with_density(0.2, chip=1000.0))
        assert large.exposure == pytest.approx(4 * small.exposure, rel=0.01)

    def test_finer_address_slower(self):
        coarse = RasterScanWriter(address_unit=0.5, calibration_time=0.0)
        fine = RasterScanWriter(address_unit=0.25, calibration_time=0.0)
        job = job_with_density(0.2)
        assert fine.write_time(job).exposure > coarse.write_time(job).exposure

    def test_current_limit_slows_rate_for_slow_resist(self):
        writer = RasterScanWriter(address_unit=0.25)
        fast_rate = writer.effective_pixel_rate(1.0)
        slow_rate = writer.effective_pixel_rate(1e4)  # PMMA-class dose
        assert slow_rate < fast_rate
        assert fast_rate == writer.pixel_rate

    def test_required_current_formula(self):
        writer = RasterScanWriter(address_unit=0.5, pixel_rate=2e7)
        # D = 1 µC/cm² over (0.5 µm)² at 20 MHz: I = D·f·a².
        expected = 1.0 * 1e-6 / 1e8 * 2e7 * 0.25
        assert writer.required_current(1.0, 2e7) == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            RasterScanWriter(address_unit=0)
        with pytest.raises(ValueError):
            RasterScanWriter(stripe_addresses=0)


class TestVectorWriter:
    def test_time_proportional_to_density(self):
        writer = VectorScanWriter(field_calibration=0.0, figure_settle=0.0)
        sparse = writer.write_time(job_with_density(0.05))
        dense = writer.write_time(job_with_density(0.5))
        assert dense.exposure == pytest.approx(10 * sparse.exposure, rel=0.01)

    def test_figure_overhead_scales_with_count(self):
        writer = VectorScanWriter(figure_settle=1e-5)
        few = writer.write_time(job_with_density(0.2, n=100))
        many = writer.write_time(job_with_density(0.2, n=400))
        assert many.figure_overhead == pytest.approx(
            4 * few.figure_overhead, rel=0.01
        )

    def test_corrected_doses_cost_time(self):
        writer = VectorScanWriter(field_calibration=0.0, figure_settle=0.0)
        job = job_with_density(0.2)
        boosted = MachineJob(
            [s.with_dose(2.0) for s in job.shots],
            base_dose=1.0,
            bounding_box=job.bounding_box,
        )
        assert writer.write_time(boosted).exposure == pytest.approx(
            2 * writer.write_time(job).exposure, rel=1e-6
        )

    def test_beam_current_derated(self):
        column = Column(LAB6)
        full = VectorScanWriter(column=column, current_derating=1.0)
        half = VectorScanWriter(column=column, current_derating=0.5)
        assert half.beam_current() == pytest.approx(full.beam_current() / 2)

    def test_field_grid_calibration(self):
        writer = VectorScanWriter(field_size=500.0, field_calibration=0.1)
        bd = writer.write_time(job_with_density(0.1, chip=1000.0))
        assert bd.calibration == pytest.approx(4 * 0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            VectorScanWriter(spot_size=0)
        with pytest.raises(ValueError):
            VectorScanWriter(current_derating=0)


class TestShapedBeamWriter:
    def test_flash_time_size_independent(self):
        writer = ShapedBeamWriter(current_density=20.0)
        assert writer.flash_time(10.0) == pytest.approx(10.0 * 1e-6 / 20.0)

    def test_time_scales_with_shot_count_not_area(self):
        writer = ShapedBeamWriter(field_calibration=0.0, shot_settle=1e-6)
        few_large = writer.write_time(job_with_density(0.3, n=100))
        many_small = writer.write_time(job_with_density(0.3, n=2500))
        assert many_small.figure_overhead > few_large.figure_overhead
        # Flash time identical (same dose, same shot count scaling).
        assert many_small.exposure == pytest.approx(
            25 * few_large.exposure, rel=0.01
        )

    def test_beam_current_from_density(self):
        writer = ShapedBeamWriter(max_shot=2.0, current_density=20.0)
        assert writer.beam_current() == pytest.approx(20.0 * 4.0 / 1e8)

    def test_validation(self):
        with pytest.raises(ValueError):
            ShapedBeamWriter(max_shot=0)
        with pytest.raises(ValueError):
            ShapedBeamWriter(current_density=0)


class TestDatapath:
    def test_figure_stream_bytes(self):
        figs = [Trapezoid.from_rectangle(0, 0, 1, 1)] * 10
        assert figure_stream_bytes(figs) == 120

    def test_bitmap_bytes(self):
        assert bitmap_bytes(100.0, 100.0, 0.5) == (200 * 200 + 7) // 8

    def test_rle_smaller_than_bitmap_for_sparse(self):
        figs = [Trapezoid.from_rectangle(0, 0, 10, 10)]
        rle = rle_bytes_estimate(figs, height=1000.0, address_unit=0.5)
        bmp = bitmap_bytes(1000.0, 1000.0, 0.5)
        assert rle < bmp

    def test_data_volume_report(self):
        figs = [Trapezoid.from_rectangle(0, 0, 1, 1)] * 5
        report = data_volume_report(figs, source_bytes=30, width=10, height=10,
                                    address_unit=0.5)
        assert report.figure_count == 5
        assert report.expansion_ratio == pytest.approx(60 / 30)

    def test_channel_check_limited(self):
        check = ChannelCheck(required_rate=10e6, channel_rate=5e6)
        assert check.limited
        assert check.slowdown == pytest.approx(2.0)

    def test_channel_check_unlimited(self):
        check = ChannelCheck(required_rate=1e6, channel_rate=5e6)
        assert not check.limited
        assert check.slowdown == 1.0

    def test_raster_channel_check(self):
        check = raster_channel_check(
            pixel_rate=2e7, rle_bytes_total=1_000_000, write_time=0.1
        )
        assert check.required_rate == pytest.approx(1e7)
        assert check.limited

    def test_vector_channel_check(self):
        check = vector_channel_check(figures_per_second=1e5)
        assert check.required_rate == pytest.approx(1.2e6)
        assert not check.limited

    def test_validation(self):
        with pytest.raises(ValueError):
            bitmap_bytes(10, 10, 0)
        with pytest.raises(ValueError):
            raster_channel_check(1e7, 100, 0.0)

"""Tests for the workload generators and hierarchy stats."""

import math

import pytest

from repro.layout import generators
from repro.layout.flatten import flat_area, flat_polygon_count, flatten_cell
from repro.layout.stats import library_stats


def flat(lib):
    return flatten_cell(lib.top_cell())


class TestGrating:
    def test_line_count_and_area(self):
        lib = generators.grating(pitch=2.0, duty=0.5, lines=10, length=20.0)
        f = flat(lib)
        assert flat_polygon_count(f) == 10
        assert flat_area(f) == pytest.approx(10 * 1.0 * 20.0)

    def test_duty_validation(self):
        with pytest.raises(ValueError):
            generators.grating(duty=1.5)

    def test_duty_sets_density(self):
        lib = generators.grating(pitch=2.0, duty=0.25, lines=10, length=20.0)
        assert flat_area(flat(lib)) == pytest.approx(10 * 0.5 * 20.0)


class TestContactArray:
    def test_flat_count(self):
        lib = generators.contact_array(columns=8, rows=4)
        assert flat_polygon_count(flat(lib)) == 32

    def test_hierarchical_variant_same_flat_geometry(self):
        flat_lib = generators.contact_array(columns=8, rows=4)
        hier_lib = generators.contact_array(columns=8, rows=4, hierarchical=True)
        assert flat_area(flat(flat_lib)) == pytest.approx(
            flat_area(flat(hier_lib))
        )
        assert len(hier_lib) == 2  # top + unit cell

    def test_size_validation(self):
        with pytest.raises(ValueError):
            generators.contact_array(size=5.0, pitch=4.0)


class TestRandomLogic:
    def test_deterministic(self):
        a = generators.random_logic(seed=7)
        b = generators.random_logic(seed=7)
        assert flat_area(flat(a)) == pytest.approx(flat_area(flat(b)))

    def test_seeds_differ(self):
        a = generators.random_logic(seed=1)
        b = generators.random_logic(seed=2)
        assert flat_area(flat(a)) != pytest.approx(flat_area(flat(b)))

    def test_density_target_met(self):
        chip = 100.0
        lib = generators.random_logic(chip_size=chip, target_density=0.25, seed=3)
        raw_density = flat_area(flat(lib)) / (chip * chip)
        assert 0.25 <= raw_density <= 0.30

    def test_density_validation(self):
        with pytest.raises(ValueError):
            generators.random_logic(target_density=0.95)


class TestMemoryArray:
    def test_hierarchy_shape(self):
        lib = generators.memory_array(words=4, bits=4, blocks=(2, 3))
        stats = library_stats(lib)
        assert stats.cell_count == 3
        assert stats.depth == 3
        assert stats.flat_polygons == 3 * 4 * 4 * 2 * 3

    def test_compaction_ratio_grows_with_array(self):
        small = library_stats(generators.memory_array(words=2, bits=2, blocks=(2, 2)))
        large = library_stats(generators.memory_array(words=8, bits=8, blocks=(4, 4)))
        assert large.compaction_ratio > small.compaction_ratio


class TestFresnelZonePlate:
    def test_zone_radii(self):
        wavelength, focal = 0.5, 100.0
        lib = generators.fresnel_zone_plate(
            wavelength=wavelength, focal_length=focal, zones=6
        )
        box = lib.top_cell().bounding_box()
        r_max_expected = math.sqrt(
            6 * wavelength * focal + (6 * wavelength / 2) ** 2
        )
        assert box[2] == pytest.approx(r_max_expected, rel=1e-3)

    def test_alternate_zones_only(self):
        lib = generators.fresnel_zone_plate(zones=8)
        # 4 opaque zones, each as two half-annuli.
        assert flat_polygon_count(flat(lib)) == 8

    def test_needs_two_zones(self):
        with pytest.raises(ValueError):
            generators.fresnel_zone_plate(zones=1)


class TestOtherWorkloads:
    def test_serpentine_is_single_polygon(self):
        lib = generators.serpentine(turns=6)
        assert flat_polygon_count(flat(lib)) == 1

    def test_serpentine_pitch_validation(self):
        with pytest.raises(ValueError):
            generators.serpentine(wire_width=3.0, pitch=4.0)

    def test_density_ladder_pads(self):
        lib = generators.density_ladder(densities=(0.2, 0.8))
        f = flat(lib)
        assert flat_area(f) > 0
        # Second pad is 4x denser than the first.
        polys = [p for v in f.values() for p in v]
        xs = sorted(set(round(p.bounding_box()[0]) for p in polys))
        assert len(xs) > 2

    def test_density_ladder_validation(self):
        with pytest.raises(ValueError):
            generators.density_ladder(densities=(1.5,))

    def test_line_and_pad_geometry(self):
        lib = generators.isolated_line_with_pad(
            line_width=0.5, line_length=30.0, pad_size=20.0
        )
        f = flat(lib)
        assert flat_polygon_count(f) == 2
        assert flat_area(f) == pytest.approx(400.0 + 15.0)

    def test_checkerboard_count(self):
        lib = generators.checkerboard(cells=4)
        assert flat_polygon_count(flat(lib)) == 8

    def test_all_workloads_nonempty(self):
        for name, lib in generators.all_workloads():
            assert flat_area(flat(lib)) > 0, name

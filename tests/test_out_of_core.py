"""Out-of-core preparation: streaming readers, spilling executor, and
end-to-end byte identity.

The contract under test is *bit identity*: the streaming path — cursor
readers, windowed execution with spilled shard results, incremental
job/program assembly — must produce artifacts byte-identical to the
materialized path for any worker count, cold or warm cache, and local
or distributed dispatch.  Reader equivalence is swept with hypothesis
over the full generator parameter space; pipeline identity is asserted
on the artifacts themselves with ``filecmp``.
"""

from __future__ import annotations

import filecmp
import threading
import warnings
from pathlib import Path

import pytest
from hypothesis import given, settings

from repro.core.executor import (
    RetryPolicy,
    ShardedExecutor,
    SpillDegradedWarning,
    shutdown_worker_pool,
)
from repro.core.faults import FaultPlan
from repro.core.jobfile import (
    JobFileError,
    JobFileWriter,
    write_job,
)
from repro.core.pipeline import PreparationPipeline
from repro.core.recipe import PrepRecipe
from repro.dist import (
    DistPolicy,
    WorkerDaemon,
    coordinator_for,
    shutdown_coordinators,
)
from repro.fracture.trapezoidal import TrapezoidFracturer
from repro.layout import generators
from repro.layout.cell import Cell
from repro.layout.cif import dumps_cif, loads_cif
from repro.layout.flatten import flatten_cell, flatten_library
from repro.layout.gdsii import dumps_gdsii, loads_gdsii, write_gdsii
from repro.layout.library import Library
from repro.layout.stream import (
    CifStream,
    GdsiiStream,
    GdsiiStreamWriter,
    MemoryStream,
    open_layout_stream,
)
from repro.pec.dose_iter import IterativeDoseCorrector
from repro.physics.psf import psf_for

from layout_strategies import generated_libraries

FIELD_SIZE = 15.0


def _flat_sequence(library):
    """The exact polygon sequence the materialized pipeline prepares:
    flatten_cell's per-layer lists concatenated in dict order."""
    flat = flatten_cell(library.top_cell())
    return [poly for polys in flat.values() for poly in polys]


def _vertices(polys):
    return [tuple(v.as_tuple() for v in p.vertices) for p in polys]


# ---------------------------------------------------------------------------
# Cursor readers: bit-equivalent to the materialized loaders
# ---------------------------------------------------------------------------


class TestStreamingReaders:
    @given(library=generated_libraries())
    @settings(max_examples=25, deadline=None)
    def test_gdsii_stream_matches_materialized(self, library, tmp_path_factory):
        path = tmp_path_factory.mktemp("gds") / "lib.gds"
        write_gdsii(library, path)
        materialized = loads_gdsii(path.read_bytes())
        with GdsiiStream(path) as stream:
            streamed = list(stream.iter_flat())
            assert _vertices(streamed) == _vertices(_flat_sequence(materialized))
            # Materializing the skeleton reproduces the loaded library
            # exactly (same cells, same order, same polygons).
            assert dumps_gdsii(stream.materialize()) == dumps_gdsii(materialized)

    @given(library=generated_libraries())
    @settings(max_examples=25, deadline=None)
    def test_cif_stream_matches_materialized(self, library, tmp_path_factory):
        path = tmp_path_factory.mktemp("cif") / "lib.cif"
        text = dumps_cif(library)
        path.write_text(text)
        materialized = loads_cif(text)
        with CifStream(path) as stream:
            streamed = list(stream.iter_flat())
            assert _vertices(streamed) == _vertices(_flat_sequence(materialized))
            assert dumps_cif(stream.materialize()) == dumps_cif(materialized)

    def test_memory_stream_walks_like_flatten(self):
        library = generators.memory_array(words=2, bits=2, blocks=(2, 2))
        stream = MemoryStream(library)
        assert _vertices(list(stream.iter_flat())) == _vertices(_flat_sequence(library))

    def test_open_layout_stream_picks_reader_by_suffix(self, tmp_path):
        library = generators.grating(lines=3)
        gds = tmp_path / "a.gds"
        cif = tmp_path / "a.cif"
        write_gdsii(library, gds)
        cif.write_text(dumps_cif(library))
        with open_layout_stream(gds) as stream:
            assert isinstance(stream, GdsiiStream)
        with open_layout_stream(cif) as stream:
            assert isinstance(stream, CifStream)

    def test_layer_filter_matches_flatten(self, tmp_path):
        from repro.layout.layer import Layer

        top = Cell("TWO_LAYERS")
        top.add_rectangle(0, 0, 2, 2, Layer(1, 0))
        top.add_rectangle(5, 5, 8, 8, Layer(2, 0))
        library = Library("L").add(top)
        path = tmp_path / "two.gds"
        write_gdsii(library, path)
        with GdsiiStream(path) as stream:
            only = list(stream.iter_flat(layers={Layer(2, 0)}))
        flat = flatten_cell(loads_gdsii(path.read_bytes()).top_cell())
        assert _vertices(only) == _vertices(flat[Layer(2, 0)])


# ---------------------------------------------------------------------------
# Incremental GDSII writer
# ---------------------------------------------------------------------------


class TestStreamWriter:
    @given(library=generated_libraries())
    @settings(max_examples=25, deadline=None)
    def test_write_cell_matches_dumps(self, library, tmp_path_factory):
        path = tmp_path_factory.mktemp("out") / "lib.gds"
        with GdsiiStreamWriter(
            path,
            name=library.name,
            unit=library.unit,
            precision=library.precision,
        ) as writer:
            for cell in library:
                writer.write_cell(cell)
        assert path.read_bytes() == dumps_gdsii(library)

    def test_incremental_cell_matches_dumps(self, tmp_path):
        library = generators.contact_array(columns=2, rows=2, hierarchical=True)
        path = tmp_path / "inc.gds"
        with GdsiiStreamWriter(path, name=library.name) as writer:
            for cell in library:
                writer.begin_cell(cell.name)
                for layer in sorted(cell.polygons):
                    for poly in cell.polygons[layer]:
                        writer.write_polygon(poly, layer)
                for ref in cell.references:
                    writer.write_reference(ref)
                writer.end_cell()
        assert path.read_bytes() == dumps_gdsii(library)

    def test_full_reticle_flat_writer_matches_dumps(self, tmp_path):
        tiles, pitch = 2, 100.0
        path = tmp_path / "reticle.gds"
        n = generators.write_full_reticle(path, tiles=tiles, pitch=pitch)
        assert n == path.stat().st_size
        die = generators.fresnel_zone_plate().top_cell()
        top = Cell("RETICLE")
        for layer in sorted(die.polygons):
            for row in range(tiles):
                for col in range(tiles):
                    for poly in die.polygons[layer]:
                        top.add_polygon(
                            poly.translated(col * pitch, row * pitch), layer
                        )
        reference = Library("RETICLE_LIB").add(top)
        assert path.read_bytes() == dumps_gdsii(reference)


# ---------------------------------------------------------------------------
# The sized synthetic reticle
# ---------------------------------------------------------------------------


class TestFullReticle:
    def test_default_is_100x_the_single_die(self):
        die_polys = sum(
            len(v)
            for v in flatten_library(generators.fresnel_zone_plate()).values()
        )
        reticle = generators.full_reticle()
        flat = sum(len(v) for v in flatten_library(reticle).values())
        assert die_polys == 20
        assert flat == 100 * die_polys

    def test_size_is_a_parameter(self):
        flat = flatten_library(generators.full_reticle(tiles=3))
        assert sum(len(v) for v in flat.values()) == 9 * 20

    def test_hierarchical_file_round_trips(self, tmp_path):
        path = tmp_path / "h.gds"
        generators.write_full_reticle(path, tiles=2, flat=False)
        back = loads_gdsii(path.read_bytes())
        assert sum(len(v) for v in flatten_library(back).values()) == 4 * 20

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            generators.full_reticle(tiles=0)
        with pytest.raises(ValueError):
            generators.write_full_reticle(tmp_path / "x.gds", pitch=0.0)


# ---------------------------------------------------------------------------
# Incremental job-file writer
# ---------------------------------------------------------------------------


class TestJobFileWriter:
    def _shots(self):
        polys = _flat_sequence(generators.grating(lines=4))
        shards = ShardedExecutor(TrapezoidFracturer()).execute(polys)
        return shards.shots

    def test_byte_identical_to_write_job(self, tmp_path):
        from repro.core.job import MachineJob

        shots = self._shots()
        job = MachineJob(shots, base_dose=1.5)
        write_job(job, tmp_path / "whole.ebj")
        with JobFileWriter(tmp_path / "inc.ebj", len(shots), base_dose=1.5) as writer:
            for shot in shots:
                writer.write_shot(shot)
        assert filecmp.cmp(tmp_path / "whole.ebj", tmp_path / "inc.ebj", shallow=False)

    def test_undercount_raises_and_discards(self, tmp_path):
        shots = self._shots()
        writer = JobFileWriter(tmp_path / "short.ebj", len(shots))
        writer.write_shot(shots[0])
        with pytest.raises(JobFileError, match="wrote 1"):
            writer.close()
        assert not (tmp_path / "short.ebj").exists()
        assert not list(tmp_path.iterdir())

    def test_overcount_raises_immediately(self, tmp_path):
        shots = self._shots()
        writer = JobFileWriter(tmp_path / "over.ebj", 1)
        writer.write_shot(shots[0])
        with pytest.raises(JobFileError, match="declared 1"):
            writer.write_shot(shots[1])
        writer.abort()
        assert not list(tmp_path.iterdir())

    def test_exception_aborts_staging(self, tmp_path):
        shots = self._shots()
        with pytest.raises(RuntimeError):
            with JobFileWriter(tmp_path / "boom.ebj", len(shots)) as writer:
                writer.write_shot(shots[0])
                raise RuntimeError("mid-stream failure")
        assert not list(tmp_path.iterdir())


# ---------------------------------------------------------------------------
# Streaming pipeline: byte identity with the in-memory path
# ---------------------------------------------------------------------------


def _materialized_artifacts(pipe, library, tmp_path, **kwargs):
    result = pipe.run(library, program_path=tmp_path / "mat.ebp", **kwargs)
    write_job(result.job, tmp_path / "mat.ebj")
    return result


class TestStreamingPipeline:
    @pytest.fixture(autouse=True)
    def _clean_pool(self):
        yield
        shutdown_worker_pool()

    @pytest.mark.parametrize("workers", [1, 2])
    def test_byte_identity_cold_and_warm(self, tmp_path, workers):
        library = generators.fresnel_zone_plate()
        pipe = PreparationPipeline(
            field_size=FIELD_SIZE,
            cache_dir=tmp_path / "cache",
            machine="vsb",
        )
        mat = _materialized_artifacts(pipe, library, tmp_path, workers=workers)
        for run in ("cold", "warm"):
            res = pipe.run_streaming(
                library,
                workers=workers,
                program_path=tmp_path / f"{run}.ebp",
                job_path=tmp_path / f"{run}.ebj",
            )
            assert filecmp.cmp(
                tmp_path / "mat.ebj", tmp_path / f"{run}.ebj", shallow=False
            ), run
            assert filecmp.cmp(
                tmp_path / "mat.ebp", tmp_path / f"{run}.ebp", shallow=False
            ), run
            assert res.job.digest() == mat.job.digest()
            assert res.job_bytes == (tmp_path / f"{run}.ebj").stat().st_size
        # The warm run answered every window from the cache.
        assert res.execution.cache_hits > 0
        assert res.execution.cache_misses == 0

    def test_corrected_aggregates_match(self, tmp_path):
        library = generators.fresnel_zone_plate(zones=8)
        pipe = PreparationPipeline(
            corrector=IterativeDoseCorrector(max_iterations=3),
            psf=psf_for(20.0),
            field_size=FIELD_SIZE,
        )
        mat = pipe.run(library)
        res = pipe.run_streaming(library)
        assert res.corrected and mat.corrected
        assert res.job.digest() == mat.job.digest()
        assert res.job.dose_range() == mat.job.dose_range()
        assert res.job.figure_count() == mat.job.figure_count()
        assert res.job.pattern_area() == mat.job.pattern_area()
        assert res.job.dose_weighted_area() == mat.job.dose_weighted_area()
        assert res.job.dose_weighted_count() == mat.job.dose_weighted_count()
        assert res.job.bounding_box == mat.job.bounding_box
        for name, breakdown in mat.write_times.items():
            assert res.write_times[name].total == breakdown.total

    def test_memory_witness_on_stats(self, tmp_path):
        res = PreparationPipeline(field_size=FIELD_SIZE).run_streaming(
            generators.fresnel_zone_plate(), job_path=tmp_path / "w.ebj"
        )
        stats = res.execution
        assert stats.streamed
        assert stats.stream_windows > 1
        assert stats.peak_window_bytes > 0
        assert stats.shards_spilled >= stats.occupied_shards > 0
        assert stats.spill_bytes > 0
        assert stats.spill_fallbacks == 0

    def test_file_source_streams_identically(self, tmp_path):
        library = generators.fresnel_zone_plate()
        path = tmp_path / "fzp.gds"
        write_gdsii(library, path)
        pipe = PreparationPipeline(field_size=FIELD_SIZE, machine="raster")
        mat = _materialized_artifacts(pipe, loads_gdsii(path.read_bytes()), tmp_path)
        res = pipe.run_streaming(
            path, program_path=tmp_path / "st.ebp", job_path=tmp_path / "st.ebj"
        )
        assert filecmp.cmp(tmp_path / "mat.ebj", tmp_path / "st.ebj", shallow=False)
        assert filecmp.cmp(tmp_path / "mat.ebp", tmp_path / "st.ebp", shallow=False)
        assert res.job.name == mat.job.name

    def test_raw_polygon_iterable_source(self, tmp_path):
        polys = _flat_sequence(generators.grating(lines=6))
        pipe = PreparationPipeline(field_size=4.0)
        mat = pipe.run_polygons(polys)
        res = pipe.run_streaming(iter(polys), job_path=tmp_path / "raw.ebj")
        write_job(mat.job, tmp_path / "mat.ebj")
        assert filecmp.cmp(tmp_path / "mat.ebj", tmp_path / "raw.ebj", shallow=False)
        assert res.source_polygons == len(polys)

    def test_union_overlap_policy_rejected(self):
        pipe = PreparationPipeline(field_size=FIELD_SIZE, overlap_policy="union")
        with pytest.raises(ValueError, match="union"):
            pipe.run_streaming(generators.fresnel_zone_plate())

    def test_closed_execution_refuses_reads(self):
        executor = ShardedExecutor(TrapezoidFracturer(), field_size=FIELD_SIZE)
        polys = _flat_sequence(generators.fresnel_zone_plate())
        execution = executor.execute_stream(polys)
        execution.close()
        with pytest.raises(RuntimeError, match="closed"):
            list(execution.iter_results())


# ---------------------------------------------------------------------------
# Spill degradation: ENOSPC during spill never kills the run
# ---------------------------------------------------------------------------


class TestSpillDegradation:
    def test_enospc_spill_degrades_to_resident(self, tmp_path):
        library = generators.fresnel_zone_plate()
        mat = PreparationPipeline(field_size=FIELD_SIZE).run(library)
        write_job(mat.job, tmp_path / "mat.ebj")
        plan = FaultPlan(enospc_puts=tuple(range(64)))
        pipe = PreparationPipeline(
            field_size=FIELD_SIZE, cache_dir=tmp_path / "cache", faults=plan
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            res = pipe.run_streaming(library, job_path=tmp_path / "deg.ebj")
        spill_warnings = [
            w for w in caught if issubclass(w.category, SpillDegradedWarning)
        ]
        assert len(spill_warnings) == 1
        stats = res.execution
        assert stats.shards_spilled == 0
        assert stats.spill_fallbacks >= stats.occupied_shards > 0
        assert filecmp.cmp(tmp_path / "mat.ebj", tmp_path / "deg.ebj", shallow=False)


# ---------------------------------------------------------------------------
# Distributed dispatch: streaming is byte-identical on a worker fleet
# ---------------------------------------------------------------------------


class TestDistributedStreaming:
    def test_fleet_run_matches_serial(self, tmp_path):
        library = generators.grating(pitch=2.0, duty=0.5, lines=12, length=24.0)
        serial = PreparationPipeline(field_size=4.0).run(library)
        write_job(serial.job, tmp_path / "serial.ebj")

        server = coordinator_for("127.0.0.1:0")
        host, port = server.server_address[:2]
        endpoint = f"{host}:{port}"
        daemons, threads = [], []
        try:
            for i in range(2):
                daemon = WorkerDaemon(endpoint, worker_id=f"w{i}")
                daemons.append(daemon)
                thread = threading.Thread(target=daemon.run, daemon=True)
                thread.start()
                threads.append(thread)
            pipe = PreparationPipeline(
                field_size=4.0,
                dispatch="distributed",
                workers_endpoint=endpoint,
                dist_policy=DistPolicy(
                    lease_deadline=1.0,
                    heartbeat_interval=0.1,
                    heartbeat_timeout=0.5,
                    worker_grace=2.0,
                    speculate_after=0.3,
                ),
                retry=RetryPolicy(max_attempts=4, backoff_base=0.0),
            )
            res = pipe.run_streaming(library, job_path=tmp_path / "dist.ebj")
        finally:
            for daemon in daemons:
                daemon.stop()
            for thread in threads:
                thread.join(timeout=5.0)
            shutdown_coordinators()
            shutdown_worker_pool()
        assert filecmp.cmp(
            tmp_path / "serial.ebj", tmp_path / "dist.ebj", shallow=False
        )
        assert res.execution.streamed
        assert res.execution.dispatch == "distributed"


# ---------------------------------------------------------------------------
# Recipe and service wiring
# ---------------------------------------------------------------------------


class TestStreamingWiring:
    def test_recipe_streaming_round_trips(self):
        recipe = PrepRecipe(streaming=True)
        assert PrepRecipe.from_dict(recipe.to_dict()) == recipe

    def test_recipe_rejects_streaming_cells(self):
        with pytest.raises(ValueError, match="hierarchy='flat'"):
            PrepRecipe(streaming=True, hierarchy="cells")

    def test_recipe_rejects_non_bool_streaming(self):
        with pytest.raises(ValueError, match="streaming"):
            PrepRecipe(streaming="yes")

    def test_service_runner_streams_byte_identically(self, tmp_path):
        from repro.service.jobs import JobStore
        from repro.service.runner import JobRunner
        from repro.service.schemas import JobSpec

        store = JobStore()
        assert "spill_fallbacks" in store.FAULT_KEYS
        paths = {}
        for streaming, sub in ((False, "mat"), (True, "stream")):
            recipe = PrepRecipe(field_size=20.0, machine="vsb", streaming=streaming)
            job = store.create(JobSpec(workload="fzp", recipe=recipe))
            JobRunner(store, tmp_path / sub, cache=None)(job)
            record = store.get(job.id)
            assert record.state == "done", record.error
            paths[sub] = record
            if streaming:
                memory = record.result["execution"]["memory"]
                assert memory["streamed"]
                assert memory["stream_windows"] > 0
                assert memory["peak_window_bytes"] > 0
                assert (
                    record.result["job_bytes"]
                    == Path(record.job_path).stat().st_size
                )
        assert filecmp.cmp(
            paths["mat"].job_path, paths["stream"].job_path, shallow=False
        )
        assert filecmp.cmp(
            paths["mat"].program_path,
            paths["stream"].program_path,
            shallow=False,
        )

    def test_cli_stream_prep_byte_identical(self, tmp_path, capsys):
        from repro.cli import main

        library = generators.fresnel_zone_plate()
        gds = tmp_path / "fzp.gds"
        write_gdsii(library, gds)
        base = [
            "prep", str(gds), "--field-size", "15", "--machine", "vsb",
        ]
        assert main(base + ["--output", str(tmp_path / "mat.ebj")]) == 0
        assert main(base + ["--stream", "--output", str(tmp_path / "st.ebj")]) == 0
        out = capsys.readouterr().out
        assert "memory:" in out
        assert "streamed in" in out
        assert filecmp.cmp(tmp_path / "mat.ebj", tmp_path / "st.ebj", shallow=False)
        assert filecmp.cmp(
            tmp_path / "mat.vsb.ebp", tmp_path / "st.vsb.ebp", shallow=False
        )

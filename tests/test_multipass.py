"""Tests for multipass writing in the stitching model."""

import pytest

from repro.machine.deflection import DeflectionField
from repro.machine.stage import Stage
from repro.machine.stitching import StitchingModel


class TestMultipass:
    def test_validation(self):
        with pytest.raises(ValueError):
            StitchingModel().simulate(passes=0)

    def test_multipass_reduces_stage_butting(self):
        model = StitchingModel(
            stage=Stage(position_noise=0.1), calibration_order=3
        )
        single = model.simulate(seed=5, passes=1)
        quad = model.simulate(seed=5, passes=4)
        # Stage component averages down by ~1/sqrt(passes).
        assert quad.stage_contribution_rms < single.stage_contribution_rms
        assert quad.rms < single.rms

    def test_multipass_scaling_near_sqrt(self):
        model = StitchingModel(
            stage=Stage(position_noise=0.2),
            field=DeflectionField(pincushion=0.0, gain_error=0.0,
                                  rotation_urad=0.0, fifth_order=0.0),
            calibration_order=None,
        )
        single = model.simulate(seed=11, passes=1, columns=8, rows=8)
        quad = model.simulate(seed=11, passes=4, columns=8, rows=8)
        ratio = single.stage_contribution_rms / quad.stage_contribution_rms
        assert ratio == pytest.approx(2.0, rel=0.35)

    def test_systematic_deflection_does_not_average(self):
        model = StitchingModel(
            stage=Stage(position_noise=0.0),
            field=DeflectionField(pincushion=5e-3),
            calibration_order=None,
        )
        single = model.simulate(seed=0, passes=1)
        multi = model.simulate(seed=0, passes=8)
        assert multi.deflection_contribution_rms == pytest.approx(
            single.deflection_contribution_rms
        )
        assert multi.rms == pytest.approx(single.rms, rel=1e-9)

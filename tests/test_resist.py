"""Tests for resist response models."""

import numpy as np
import pytest

from repro.physics.resist import COP, PBS, PMMA, Resist


class TestValidation:
    def test_tone(self):
        with pytest.raises(ValueError):
            Resist("x", tone="neutral", sensitivity=1, contrast=1)

    def test_positive_parameters(self):
        with pytest.raises(ValueError):
            Resist("x", tone="positive", sensitivity=0, contrast=1)
        with pytest.raises(ValueError):
            Resist("x", tone="positive", sensitivity=1, contrast=-1)
        with pytest.raises(ValueError):
            Resist("x", tone="positive", sensitivity=1, contrast=1, thickness=0)


class TestNegativeResist:
    resist = Resist("neg", tone="negative", sensitivity=1.0, contrast=2.0)

    def test_below_gel_dose_clears(self):
        assert self.resist.remaining_thickness(0.5) == 0.0

    def test_at_gel_dose_zero(self):
        assert self.resist.remaining_thickness(1.0) == pytest.approx(0.0)

    def test_saturation(self):
        assert self.resist.remaining_thickness(
            self.resist.saturation_dose
        ) == pytest.approx(1.0)
        assert self.resist.remaining_thickness(100.0) == 1.0

    def test_monotone_increasing(self):
        doses = np.geomspace(0.1, 100, 50)
        t = self.resist.remaining_thickness(doses)
        assert np.all(np.diff(t) >= 0)

    def test_threshold_dose_gives_half(self):
        assert self.resist.remaining_thickness(
            self.resist.threshold_dose
        ) == pytest.approx(0.5)

    def test_higher_contrast_steeper(self):
        soft = Resist("s", tone="negative", sensitivity=1.0, contrast=1.0)
        hard = Resist("h", tone="negative", sensitivity=1.0, contrast=4.0)
        assert hard.exposure_latitude() < soft.exposure_latitude()


class TestPositiveResist:
    resist = Resist("pos", tone="positive", sensitivity=10.0, contrast=2.0)

    def test_underexposed_remains(self):
        assert self.resist.remaining_thickness(1.0) == 1.0

    def test_fully_cleared(self):
        assert self.resist.remaining_thickness(
            self.resist.saturation_dose
        ) == pytest.approx(0.0)

    def test_monotone_decreasing(self):
        doses = np.geomspace(1, 1000, 50)
        t = self.resist.remaining_thickness(doses)
        assert np.all(np.diff(t) <= 0)


class TestDevelopment:
    def test_negative_develop_keeps_exposed(self):
        resist = Resist("neg", tone="negative", sensitivity=1.0, contrast=2.0)
        absorbed = np.array([[0.1, 2.0], [0.5, 3.0]])
        developed = resist.develop(absorbed, base_dose=1.0)
        assert developed.tolist() == [[False, True], [False, True]]

    def test_prints_respects_tone(self):
        neg = Resist("neg", tone="negative", sensitivity=1.0, contrast=2.0)
        pos = Resist("pos", tone="positive", sensitivity=1.0, contrast=2.0)
        assert neg.prints(2.0, base_dose=1.0)
        assert not neg.prints(0.5, base_dose=1.0)
        assert pos.prints(2.0, base_dose=1.0)  # clears
        assert not pos.prints(0.5, base_dose=1.0)

    def test_base_dose_scales(self):
        resist = Resist("neg", tone="negative", sensitivity=10.0, contrast=2.0)
        absorbed = np.array([1.0])
        assert not resist.develop(absorbed, base_dose=1.0)[0]
        assert resist.develop(absorbed, base_dose=100.0)[0]


class TestStandardResists:
    def test_pmma_is_slow_positive(self):
        assert PMMA.tone == "positive"
        assert PMMA.sensitivity > 10 * PBS.sensitivity

    def test_cop_is_fast_negative(self):
        assert COP.tone == "negative"
        assert COP.sensitivity < 1.0

    def test_scalar_and_array_api(self):
        scalar = PMMA.remaining_thickness(10.0)
        array = PMMA.remaining_thickness(np.array([10.0, 20.0]))
        assert isinstance(scalar, float)
        assert array.shape == (2,)

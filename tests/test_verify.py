"""Tests for XOR pattern verification."""

import pytest

from repro.analysis.verify import verify_patterns
from repro.fracture.shots import ShotFracturer
from repro.fracture.trapezoidal import TrapezoidFracturer
from repro.geometry.polygon import Polygon
from repro.geometry.trapezoid import Trapezoid


class TestCleanComparisons:
    def test_identical_polygons(self):
        pattern = [Polygon.rectangle(0, 0, 10, 10)]
        report = verify_patterns(pattern, pattern)
        assert report.clean
        assert report.xor_area == pytest.approx(0.0)
        assert "CLEAN" in report.summary()

    def test_fracture_against_source_is_clean(self):
        source = [
            Polygon.rectangle(0, 0, 10, 10),
            Polygon([(20, 0), (30, 0), (25, 8)]),
        ]
        figures = TrapezoidFracturer().fracture(source)
        report = verify_patterns(source, figures, tolerance=1e-3)
        assert report.clean

    def test_vsb_tiling_is_clean(self):
        source = [Polygon.rectangle(0, 0, 7, 5)]
        shots = ShotFracturer(max_shot=2.0).fracture(source)
        report = verify_patterns(source, shots, tolerance=1e-3)
        assert report.clean

    def test_mixed_geometry_inputs(self):
        ref = [Trapezoid.from_rectangle(0, 0, 4, 4)]
        cand = [Polygon.rectangle(0, 0, 4, 4)]
        assert verify_patterns(ref, cand).clean


class TestMismatches:
    def test_missing_figure_detected(self):
        ref = [
            Polygon.rectangle(0, 0, 5, 5),
            Polygon.rectangle(20, 0, 25, 5),
        ]
        cand = [Polygon.rectangle(0, 0, 5, 5)]
        report = verify_patterns(ref, cand)
        assert not report.clean
        assert report.xor_area == pytest.approx(25.0)
        assert len(report.sites) == 1
        assert report.sites[0].bounding_box == pytest.approx((20, 0, 25, 5))
        assert "MISMATCH" in report.summary()

    def test_shifted_figure_two_slivers_one_site(self):
        ref = [Polygon.rectangle(0, 0, 10, 10)]
        cand = [Polygon.rectangle(0.5, 0, 10.5, 10)]
        report = verify_patterns(ref, cand, cluster_distance=20.0)
        assert report.xor_area == pytest.approx(10.0)
        assert len(report.sites) == 1

    def test_distant_defects_stay_separate(self):
        ref = [
            Polygon.rectangle(0, 0, 5, 5),
            Polygon.rectangle(100, 100, 105, 105),
        ]
        cand = []
        report = verify_patterns(ref, cand, cluster_distance=1.0)
        assert len(report.sites) == 2
        # Largest first.
        assert report.sites[0].area >= report.sites[1].area

    def test_error_fraction(self):
        ref = [Polygon.rectangle(0, 0, 10, 10)]
        cand = [Polygon.rectangle(0, 0, 10, 9)]
        report = verify_patterns(ref, cand)
        assert report.error_fraction == pytest.approx(0.1)

    def test_extra_geometry_detected(self):
        ref = [Polygon.rectangle(0, 0, 5, 5)]
        cand = [Polygon.rectangle(0, 0, 5, 5), Polygon.rectangle(8, 8, 9, 9)]
        report = verify_patterns(ref, cand)
        assert report.xor_area == pytest.approx(1.0)

    def test_tolerance_permits_grid_slack(self):
        ref = [Polygon.rectangle(0, 0, 10, 10)]
        cand = [Polygon.rectangle(0, 0, 10, 10.0004)]
        report = verify_patterns(ref, cand, tolerance=0.01)
        assert report.clean

    def test_empty_reference_with_candidate(self):
        report = verify_patterns([], [Polygon.rectangle(0, 0, 1, 1)])
        assert not report.clean
        assert report.error_fraction == float("inf")

    def test_site_extent(self):
        ref = [Polygon.rectangle(0, 0, 8, 2)]
        report = verify_patterns(ref, [])
        assert report.sites[0].extent == pytest.approx(8.0)

"""Tests for the machine-program export backend.

Covers the container round-trip, the per-mode segment encodings, the
determinism contract (workers / cache / cold-warm byte identity), the
segment cache, the bounded-memory streaming witness and the pipeline /
CLI threading.
"""

import numpy as np
import pytest

from repro.cli import main
from repro.core.cache import CACHE_SCHEMA_VERSION, ShardCache
from repro.core.executor import ShardedExecutor
from repro.core.jobfile import (
    JobFileError,
    dumps_program,
    loads_program,
    read_program,
)
from repro.core.pipeline import PreparationPipeline
from repro.fracture.trapezoidal import TrapezoidFracturer
from repro.geometry.polygon import Polygon
from repro.layout import generators
from repro.machine.datapath import BYTES_PER_FIGURE
from repro.machine.program import (
    MachineProgramError,
    MachineSpec,
    SHOT_RECORD_BYTES,
    decode_raster_segment,
    decode_shot_segment,
    export_program,
    raster_coverage_lines,
)
from repro.machine.rle import decode_to_coverage, encode_figures
from repro.machine.vsb import ShapedBeamWriter
from repro.pec.dose_iter import IterativeDoseCorrector
from repro.physics.psf import DoubleGaussianPSF

PSF = DoubleGaussianPSF(alpha=0.2, beta=2.0, eta=0.74)


def grating_polygons(lines=8):
    return [
        Polygon.rectangle(i * 2.0, 0.0, i * 2.0 + 1.0, 16.0)
        for i in range(lines)
    ]


def executed(polygons, field_size=None, workers=1, cache=None):
    executor = ShardedExecutor(
        TrapezoidFracturer(),
        field_size=field_size,
        cache=cache,
    )
    return executor.execute(polygons, workers=workers)


class TestMachineSpec:
    def test_validation(self):
        with pytest.raises(MachineProgramError):
            MachineSpec(mode="mebes")
        with pytest.raises(MachineProgramError):
            MachineSpec(mode="raster", address_unit=0.0)
        with pytest.raises(MachineProgramError):
            MachineSpec(mode="raster", channel_rate=0.0)

    def test_machine_matches_mode(self):
        assert MachineSpec("raster", address_unit=0.25).machine().address_unit == 0.25
        assert MachineSpec("vsb").machine().name == "shaped-beam"
        assert MachineSpec("vector").machine().name == "vector"


class TestRasterExport:
    def test_roundtrip_matches_direct_encode(self, tmp_path):
        result = executed(grating_polygons())
        from repro.core.job import MachineJob

        job = MachineJob(result.shots, name="g")
        spec = MachineSpec("raster", address_unit=0.5)
        program = export_program(result.shard_results, job, spec, tmp_path / "g.ebp")
        image = read_program(tmp_path / "g.ebp")
        assert image.mode == "raster"
        assert image.address_unit == 0.5
        assert image.origin == (job.bounding_box[0], job.bounding_box[1])

        # The program's merged scanlines equal a direct global encode.
        direct = encode_figures(
            [s.trapezoid for s in result.shots], 0.5, origin=image.origin
        )
        assert raster_coverage_lines(image) == direct.lines
        assert program.run_count == direct.run_count()
        assert program.stream_bytes == direct.encoded_bytes()
        assert program.digest
        assert program.file_bytes == (tmp_path / "g.ebp").stat().st_size

    def test_sharded_coverage_equals_unsharded(self, tmp_path):
        polys = grating_polygons()
        single = executed(polys)
        sharded = executed(polys, field_size=5.0)
        from repro.core.job import MachineJob

        spec = MachineSpec("raster", address_unit=0.5)
        p1 = export_program(
            single.shard_results,
            MachineJob(single.shots, name="s"),
            spec,
            tmp_path / "one.ebp",
        )
        p2 = export_program(
            sharded.shard_results,
            MachineJob(sharded.shots, name="m"),
            spec,
            tmp_path / "many.ebp",
        )
        img1 = read_program(tmp_path / "one.ebp")
        img2 = read_program(tmp_path / "many.ebp")
        lines1 = raster_coverage_lines(img1)
        lines2 = raster_coverage_lines(img2)
        assert lines1 == lines2
        assert p1.run_count == p2.run_count
        # The sharded stream re-announces scanlines per shard column.
        assert p2.segment_count > 1
        assert p2.line_count >= p1.line_count

    def test_exact_bytes_bounded_by_estimate_single_shard(self, tmp_path):
        result = executed(grating_polygons())
        from repro.core.job import MachineJob

        job = MachineJob(result.shots, name="g")
        program = export_program(
            result.shard_results,
            job,
            MachineSpec("raster", address_unit=0.5),
            tmp_path / "g.ebp",
        )
        assert 0 < program.stream_bytes <= program.estimate_bytes

    def test_bounded_memory_witness(self, tmp_path):
        result = executed(grating_polygons(), field_size=5.0)
        from repro.core.job import MachineJob

        job = MachineJob(result.shots, name="g")
        program = export_program(
            result.shard_results,
            job,
            MachineSpec("raster", address_unit=0.5),
            tmp_path / "g.ebp",
        )
        assert program.segment_count > 1
        # Streaming: no more than one shard's runs ever in memory.
        assert 0 < program.peak_segment_bytes < program.stream_bytes

    def test_cross_shard_abutting_column_not_double_written(self, tmp_path):
        # Two rectangles abutting at x = 11.0 — exactly a pixel centre at
        # a 1 µm address unit — land in different 10 µm shards, so no run
        # merging can dedupe them: the half-open x convention must keep
        # the segments disjoint (the shared column belongs to the
        # right-hand shard only).
        from repro.core.job import MachineJob

        polys = [
            Polygon.rectangle(0.5, 0.0, 11.0, 3.0),
            Polygon.rectangle(11.0, 0.0, 19.5, 3.0),
        ]
        sharded = executed(polys, field_size=10.0)
        single = executed(polys)
        spec = MachineSpec("raster", address_unit=1.0)
        p_sharded = export_program(
            sharded.shard_results,
            MachineJob(sharded.shots, name="s"),
            spec,
            tmp_path / "sharded.ebp",
        )
        p_single = export_program(
            single.shard_results,
            MachineJob(single.shots, name="u"),
            spec,
            tmp_path / "single.ebp",
        )
        assert p_sharded.segment_count == 2
        image = read_program(tmp_path / "sharded.ebp")
        per_line: dict = {}
        for seg in image.segments:
            first, seg_lines = decode_raster_segment(seg.payload)
            for k, runs in enumerate(seg_lines):
                for start, length in runs:
                    cells = per_line.setdefault(first + k, set())
                    span = set(range(start, start + length))
                    assert not (cells & span), (
                        f"line {first + k}: addresses {cells & span} "
                        "written by two shards"
                    )
                    cells |= span
        # And the sharded stream writes exactly the unsharded addresses.
        total = sum(len(cells) for cells in per_line.values())
        single_lines = raster_coverage_lines(read_program(tmp_path / "single.ebp"))
        single_total = sum(
            length for runs in single_lines.values() for _, length in runs
        )
        assert p_single.segment_count == 1
        assert total == single_total

    def test_decode_raster_segment_rejects_garbage(self):
        with pytest.raises(JobFileError):
            decode_raster_segment(
                b"\x00\x00\x00\x00\x00\x00\x00\x01\x00\x02garbage"
            )


class TestShotExport:
    def _program(self, tmp_path, mode, base_dose=1.0, doses=None):
        result = executed(grating_polygons(lines=3))
        if doses is not None:
            for shot, dose in zip(result.shots, doses):
                shot.dose = dose
        from repro.core.job import MachineJob

        job = MachineJob(result.shots, base_dose=base_dose, name="g")
        spec = MachineSpec(mode)
        program = export_program(
            result.shard_results, job, spec, tmp_path / f"g.{mode}.ebp"
        )
        return program, read_program(tmp_path / f"g.{mode}.ebp"), job

    def test_vsb_records_roundtrip(self, tmp_path):
        program, image, job = self._program(tmp_path, "vsb")
        records = [
            r for seg in image.segments for r in decode_shot_segment(seg.payload)
        ]
        assert len(records) == len(job.shots) == program.figure_count
        assert program.stream_bytes == len(records) * SHOT_RECORD_BYTES
        writer = ShapedBeamWriter()
        flash_ns = writer.flash_time(job.base_dose) * 1e9
        for record, shot in zip(records, job.shots):
            t = shot.trapezoid
            assert record.y_bottom == round(t.y_bottom / 1e-3)
            assert record.x_bottom_left == round(t.x_bottom_left / 1e-3)
            assert record.dose_milli == round(shot.dose * 1000)
            assert record.beam_ns == round(flash_ns * shot.dose)

    def test_vector_dwell_scales_with_area(self, tmp_path):
        program, image, job = self._program(tmp_path, "vector")
        records = [
            r for seg in image.segments for r in decode_shot_segment(seg.payload)
        ]
        areas = [s.trapezoid.area() for s in job.shots]
        times = [r.beam_ns for r in records]
        ratios = {round(t / a) for t, a in zip(times, areas)}
        assert len(ratios) == 1  # ns per µm² constant at uniform dose

    def test_dosed_records_carry_dose(self, tmp_path):
        program, image, job = self._program(
            tmp_path, "vsb", doses=[0.5, 1.25, 2.0] * 20
        )
        records = [
            r for seg in image.segments for r in decode_shot_segment(seg.payload)
        ]
        assert {r.dose_milli for r in records} == {500, 1250, 2000}

    def test_estimate_uses_record_size(self, tmp_path):
        program, image, job = self._program(tmp_path, "vsb")
        assert program.estimate_bytes == len(job.shots) * SHOT_RECORD_BYTES
        assert SHOT_RECORD_BYTES > BYTES_PER_FIGURE  # exact record is richer


class TestContainer:
    def test_dumps_is_loads_inverse(self, tmp_path):
        result = executed(grating_polygons(), field_size=5.0)
        from repro.core.job import MachineJob

        job = MachineJob(result.shots, name="g")
        export_program(
            result.shard_results,
            job,
            MachineSpec("raster"),
            tmp_path / "g.ebp",
        )
        data = (tmp_path / "g.ebp").read_bytes()
        assert dumps_program(loads_program(data)) == data

    def test_bad_magic_and_truncation(self, tmp_path):
        with pytest.raises(JobFileError):
            loads_program(b"NOPE" + b"\x00" * 64)
        result = executed(grating_polygons(lines=2))
        from repro.core.job import MachineJob

        job = MachineJob(result.shots, name="g")
        path = tmp_path / "g.ebp"
        export_program(result.shard_results, job, MachineSpec("raster"), path)
        data = path.read_bytes()
        with pytest.raises(JobFileError):
            loads_program(data[:-3])
        with pytest.raises(JobFileError):
            loads_program(data + b"\x00")


class TestProgramCache:
    def test_second_export_hits_every_segment(self, tmp_path):
        cache = ShardCache(tmp_path / "cache")
        result = executed(grating_polygons(), field_size=5.0)
        from repro.core.job import MachineJob

        job = MachineJob(result.shots, name="g")
        spec = MachineSpec("raster")
        cold = export_program(
            result.shard_results, job, spec, tmp_path / "a.ebp", cache=cache
        )
        warm = export_program(
            result.shard_results, job, spec, tmp_path / "b.ebp", cache=cache
        )
        assert cold.cache_misses == cold.segment_count > 0
        assert cold.cache_hits == 0
        assert warm.cache_hits == warm.segment_count
        assert warm.cache_misses == 0
        assert (tmp_path / "a.ebp").read_bytes() == (tmp_path / "b.ebp").read_bytes()
        assert cold.digest == warm.digest

    def test_corrupt_blob_is_evicted(self, tmp_path):
        cache = ShardCache(tmp_path / "cache")
        cache.put_blob("ab" + "0" * 62, b"payload")
        path = cache.path_for("ab" + "0" * 62)
        path.write_bytes(b"torn")
        assert cache.get_blob("ab" + "0" * 62) is None
        assert not path.exists()

    def test_blob_roundtrip(self, tmp_path):
        cache = ShardCache(tmp_path / "cache")
        key = "cd" + "1" * 62
        cache.put_blob(key, b"\x01\x02\x03")
        assert cache.get_blob(key) == b"\x01\x02\x03"

    def test_key_sensitivity(self, tmp_path):
        cache = ShardCache(tmp_path / "cache")
        result = executed(grating_polygons(lines=2))
        shard = result.shard_results[0]
        base = cache.program_key_for(shard, MachineSpec("raster"), (0.0, 0.0), 1.0)
        assert base == cache.program_key_for(
            shard, MachineSpec("raster"), (0.0, 0.0), 1.0
        )
        assert base != cache.program_key_for(
            shard, MachineSpec("vsb"), (0.0, 0.0), 1.0
        )
        assert base != cache.program_key_for(
            shard, MachineSpec("raster", address_unit=0.25), (0.0, 0.0), 1.0
        )
        assert base != cache.program_key_for(
            shard, MachineSpec("raster"), (0.5, 0.0), 1.0
        )
        assert base != cache.program_key_for(
            shard, MachineSpec("raster"), (0.0, 0.0), 2.0
        )
        original = result.shots[0].dose
        result.shots[0].dose = original + 0.25
        try:
            assert base != cache.program_key_for(
                shard, MachineSpec("raster"), (0.0, 0.0), 1.0
            )
        finally:
            result.shots[0].dose = original

    def test_schema_version_bumped_for_programs(self):
        assert CACHE_SCHEMA_VERSION >= 3


class TestPipelineThreading:
    def test_run_exports_and_records_stats(self, tmp_path):
        pipe = PreparationPipeline(
            machine="raster", program_dir=tmp_path, field_size=6.0
        )
        result = pipe.run_polygons(grating_polygons(), name="grating job")
        program = result.machine_program
        assert program is not None
        assert result.execution.program is program
        assert program.path.exists()
        assert program.path.parent == tmp_path
        assert program.mode == "raster"
        assert program.stream_bytes > 0
        assert program.breakdown.total > 0
        assert program.channel.channel_rate > 0

    def test_workers_and_cache_byte_identical(self, tmp_path):
        def build(cache_dir):
            return PreparationPipeline(
                corrector=IterativeDoseCorrector(),
                psf=PSF,
                machine="vsb",
                program_dir=tmp_path,
                field_size=6.0,
                cache_dir=cache_dir,
            )

        polys = grating_polygons()
        pipe = build(tmp_path / "cache")
        cold = pipe.run_polygons(polys, name="a", program_path=tmp_path / "cold.ebp")
        warm = pipe.run_polygons(polys, name="a", program_path=tmp_path / "warm.ebp")
        parallel = build(None).run_polygons(
            polys,
            name="a",
            workers=2,
            program_path=tmp_path / "par.ebp",
        )
        cold_bytes = (tmp_path / "cold.ebp").read_bytes()
        assert cold_bytes == (tmp_path / "warm.ebp").read_bytes()
        assert cold_bytes == (tmp_path / "par.ebp").read_bytes()
        assert warm.machine_program.cache_hits == warm.execution.shard_count
        assert cold.machine_program.digest == parallel.machine_program.digest

    def test_per_run_override_and_off(self, tmp_path):
        pipe = PreparationPipeline(program_dir=tmp_path)
        none = pipe.run_polygons(grating_polygons(lines=2), name="n")
        assert none.machine_program is None
        on = pipe.run_polygons(grating_polygons(lines=2), name="n", machine="vector")
        assert on.machine_program.mode == "vector"
        off = PreparationPipeline(
            machine="raster", program_dir=tmp_path
        ).run_polygons(grating_polygons(lines=2), name="n", machine="off")
        assert off.machine_program is None

    def test_program_dir_created_on_demand(self, tmp_path):
        # The documented program_dir usage must work even when the
        # directory does not exist yet.
        pipe = PreparationPipeline(
            machine="raster", program_dir=tmp_path / "programs" / "nested"
        )
        result = pipe.run_polygons(grating_polygons(lines=2), name="n")
        assert result.machine_program.path.exists()

    def test_failed_export_preserves_existing_program(self, tmp_path):
        from repro.core.job import MachineJob

        result = executed(grating_polygons(lines=2))
        job = MachineJob(result.shots, name="g")
        path = tmp_path / "g.ebp"
        export_program(result.shard_results, job, MachineSpec("vsb"), path)
        good = path.read_bytes()
        result.shots[0].dose = 100.0  # dose‰ overflows the u16 record
        with pytest.raises(MachineProgramError):
            export_program(result.shard_results, job, MachineSpec("vsb"), path)
        # The previous good program survives and no staging file leaks.
        assert path.read_bytes() == good
        assert list(tmp_path.glob(".*.tmp-*")) == []

    def test_invalid_machine_rejected(self):
        with pytest.raises(ValueError, match="machine"):
            PreparationPipeline(machine="ebes")
        pipe = PreparationPipeline()
        with pytest.raises(ValueError, match="machine"):
            pipe.run_polygons(grating_polygons(lines=1), machine="ebes")

    def test_run_layers_per_layer_programs(self, tmp_path):
        lib = generators.memory_array(words=2, bits=2, blocks=(2, 2))
        pipe = PreparationPipeline(
            machine="raster", program_dir=tmp_path, overlap_policy="ignore"
        )
        results = pipe.run_layers(lib)
        assert results
        paths = {r.machine_program.path for r in results.values()}
        assert len(paths) == len(results)
        for r in results.values():
            assert r.machine_program.path.exists()

    def test_run_many_colliding_names_get_distinct_programs(self, tmp_path):
        # Two raw polygon sources both infer the name "job"; their
        # default program paths must not overwrite each other.
        pipe = PreparationPipeline(machine="raster", program_dir=tmp_path)
        a = grating_polygons(lines=2)
        b = [Polygon.rectangle(0, 0, 3, 7)]
        results = pipe.run_many([a, b])
        paths = [r.machine_program.path for r in results]
        assert len(set(paths)) == 2
        for r in results:
            import hashlib

            on_disk = hashlib.sha256(r.machine_program.path.read_bytes())
            assert on_disk.hexdigest() == r.machine_program.digest

    def test_library_source_with_machine(self, tmp_path):
        lib = generators.grating(lines=4)
        pipe = PreparationPipeline(machine="raster", program_dir=tmp_path)
        result = pipe.run(lib)
        image = read_program(result.machine_program.path)
        merged = raster_coverage_lines(image)
        width = max(
            start + length
            for runs in merged.values()
            for start, length in runs
        )
        grid = np.zeros((max(merged) + 1, width), dtype=bool)
        for j, runs in merged.items():
            for start, length in runs:
                grid[j, start : start + length] = True
        direct = encode_figures(
            [s.trapezoid for s in result.job.shots],
            0.5,
            origin=image.origin,
        )
        assert (grid == decode_to_coverage(direct, width)[: grid.shape[0]]).all()


class TestCli:
    def test_demo_machine_raster(self, tmp_path, capsys):
        out_path = tmp_path / "prog.ebp"
        assert (
            main(
                [
                    "demo",
                    "--workload",
                    "grating",
                    "--machine",
                    "raster",
                    "--machine-output",
                    str(out_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "machine:   raster program" in out
        assert "bytes exact" in out
        assert "channel:" in out
        assert "write:" in out
        assert out_path.exists()
        assert read_program(out_path).mode == "raster"

    def test_demo_machine_default_path(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["demo", "--workload", "grating", "--machine", "vsb"]) == 0
        assert (tmp_path / "grating.vsb.ebp").exists()

    def test_machine_output_derived_from_output(self, tmp_path, capsys):
        out = tmp_path / "job.ebj"
        assert (
            main(
                [
                    "demo",
                    "--workload",
                    "grating",
                    "--machine",
                    "vector",
                    "--output",
                    str(out),
                ]
            )
            == 0
        )
        assert (tmp_path / "job.vector.ebp").exists()

    def test_machine_output_requires_machine(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "demo",
                    "--workload",
                    "grating",
                    "--machine-output",
                    str(tmp_path / "x.ebp"),
                ]
            )
        assert "--machine-output requires --machine" in capsys.readouterr().err

    def test_address_unit_flag(self, tmp_path, capsys):
        coarse = tmp_path / "coarse.ebp"
        fine = tmp_path / "fine.ebp"
        for path, unit in ((coarse, "1.0"), (fine, "0.25")):
            assert (
                main(
                    [
                        "demo",
                        "--workload",
                        "grating",
                        "--machine",
                        "raster",
                        "--address-unit",
                        unit,
                        "--machine-output",
                        str(path),
                    ]
                )
                == 0
            )
        assert read_program(fine).address_unit == 0.25
        assert fine.stat().st_size > coarse.stat().st_size

"""Tests for repro.layout.layer."""

import pytest

from repro.layout.layer import DEFAULT_LAYER, Layer


class TestLayer:
    def test_defaults(self):
        layer = Layer(8)
        assert layer.number == 8
        assert layer.datatype == 0

    def test_range_validation(self):
        with pytest.raises(ValueError):
            Layer(-1)
        with pytest.raises(ValueError):
            Layer(40000)
        with pytest.raises(ValueError):
            Layer(1, -2)

    def test_of_coercions(self):
        assert Layer.of(5) == Layer(5, 0)
        assert Layer.of((5, 2)) == Layer(5, 2)
        layer = Layer(1, 1)
        assert Layer.of(layer) is layer

    def test_equality_with_tuple_and_int(self):
        assert Layer(8, 0) == (8, 0)
        assert Layer(8, 0) == 8
        assert Layer(8, 1) != 8

    def test_name_not_part_of_identity(self):
        assert Layer(8, 0, name="metal") == Layer(8, 0, name="poly")
        assert hash(Layer(8, 0, name="metal")) == hash(Layer(8, 0))

    def test_sortable(self):
        layers = [Layer(2, 1), Layer(1, 5), Layer(2, 0)]
        assert sorted(layers) == [Layer(1, 5), Layer(2, 0), Layer(2, 1)]

    def test_default_layer(self):
        assert DEFAULT_LAYER.key() == (0, 0)

    def test_repr_contains_numbers(self):
        assert "8/1" in repr(Layer(8, 1))

"""Tests for repro.layout.reference."""


import pytest

from repro.geometry.point import Point
from repro.layout.cell import Cell
from repro.layout.reference import CellArray, CellReference


@pytest.fixture
def child():
    cell = Cell("CHILD")
    cell.add_rectangle(0, 0, 1, 1)
    return cell


class TestCellReference:
    def test_transform_translates(self, child):
        ref = CellReference(child, (5, 7))
        assert ref.transform()(Point(0, 0)) == Point(5, 7)

    def test_transform_rotates_then_translates(self, child):
        ref = CellReference(child, (10, 0), rotation_deg=90)
        assert ref.transform()(Point(1, 0)).almost_equals(Point(10, 1))

    def test_x_reflection_before_rotation(self, child):
        ref = CellReference(child, (0, 0), rotation_deg=90, x_reflection=True)
        # (0,1) -> reflect (0,-1) -> rotate 90 -> (1, 0)
        assert ref.transform()(Point(0, 1)).almost_equals(Point(1, 0))

    def test_magnification(self, child):
        ref = CellReference(child, (0, 0), magnification=2.5)
        assert ref.transform()(Point(1, 1)).almost_equals(Point(2.5, 2.5))

    def test_magnification_must_be_positive(self, child):
        with pytest.raises(ValueError):
            CellReference(child, (0, 0), magnification=0)

    def test_placements_single(self, child):
        ref = CellReference(child, (1, 2))
        assert len(list(ref.placements())) == 1
        assert ref.placement_count() == 1


class TestCellArray:
    def test_dimensions_validated(self, child):
        with pytest.raises(ValueError):
            CellArray(child, 0, 1, (1, 0), (0, 1))

    def test_placement_count(self, child):
        array = CellArray(child, 4, 3, (10, 0), (0, 10))
        assert array.placement_count() == 12
        assert len(list(array.placements())) == 12

    def test_placement_positions(self, child):
        array = CellArray(child, 2, 2, (10, 0), (0, 20), origin=(100, 100))
        origins = sorted(
            (t(Point(0, 0)).x, t(Point(0, 0)).y) for t in array.placements()
        )
        assert origins == [
            (100.0, 100.0),
            (100.0, 120.0),
            (110.0, 100.0),
            (110.0, 120.0),
        ]

    def test_skewed_array_vectors(self, child):
        array = CellArray(child, 2, 1, (10, 5), (0, 10))
        positions = [t(Point(0, 0)) for t in array.placements()]
        assert positions[1].almost_equals(Point(10, 5))

    def test_rotated_array_rotates_instances_not_lattice(self, child):
        # GDSII AREF: lattice vectors are given in parent coordinates.
        array = CellArray(
            child, 2, 1, (10, 0), (0, 10), origin=(0, 0), rotation_deg=90
        )
        positions = [t(Point(0, 0)) for t in array.placements()]
        assert positions[0].almost_equals(Point(0, 0))
        assert positions[1].almost_equals(Point(10, 0))
        # But the cell contents rotate.
        corner = [t(Point(1, 0)) for t in array.placements()]
        assert corner[0].almost_equals(Point(0, 1))

    def test_corner_positions(self, child):
        array = CellArray(child, 3, 2, (10, 0), (0, 10), origin=(5, 5))
        corners = array.corner_positions()
        assert corners[0] == Point(5, 5)
        assert corners[1] == Point(35, 5)
        assert corners[2] == Point(5, 25)

"""Tests for repro.layout.cell."""

import pytest

from repro.geometry.polygon import Polygon
from repro.layout.cell import Cell
from repro.layout.layer import Layer


@pytest.fixture
def leaf():
    cell = Cell("LEAF")
    cell.add_rectangle(0, 0, 2, 1)
    return cell


class TestBuilding:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            Cell("")

    def test_add_polygon_chains(self):
        cell = Cell("A")
        result = cell.add_polygon(Polygon.rectangle(0, 0, 1, 1))
        assert result is cell
        assert cell.polygon_count() == 1

    def test_add_polygons_on_layer(self):
        cell = Cell("A")
        cell.add_polygons(
            [Polygon.rectangle(0, 0, 1, 1), Polygon.rectangle(2, 0, 3, 1)],
            layer=(8, 1),
        )
        assert cell.layers() == [Layer(8, 1)]
        assert cell.polygon_count() == 2

    def test_layer_coercion(self):
        cell = Cell("A")
        cell.add_rectangle(0, 0, 1, 1, layer=3)
        assert cell.layers() == [Layer(3, 0)]

    def test_instantiate(self, leaf):
        top = Cell("TOP")
        top.instantiate(leaf, (10, 0), rotation_deg=90)
        assert top.reference_count() == 1
        assert top.instance_count() == 1

    def test_instantiate_array(self, leaf):
        top = Cell("TOP")
        top.instantiate_array(leaf, 4, 3, 5.0, 5.0)
        assert top.reference_count() == 1
        assert top.instance_count() == 12


class TestQueries:
    def test_vertex_count(self, leaf):
        assert leaf.vertex_count() == 4

    def test_children_unique(self, leaf):
        top = Cell("TOP")
        top.instantiate(leaf, (0, 0))
        top.instantiate(leaf, (5, 0))
        assert len(top.children()) == 1

    def test_descendants_two_levels(self, leaf):
        mid = Cell("MID")
        mid.instantiate(leaf, (0, 0))
        top = Cell("TOP")
        top.instantiate(mid, (0, 0))
        names = sorted(c.name for c in top.descendants())
        assert names == ["LEAF", "MID"]

    def test_descendants_detects_cycle(self):
        a = Cell("A")
        b = Cell("B")
        a.instantiate(b, (0, 0))
        b.instantiate(a, (0, 0))
        with pytest.raises(ValueError, match="cycle"):
            a.descendants()

    def test_area_by_layer(self):
        cell = Cell("A")
        cell.add_rectangle(0, 0, 2, 2, layer=1)
        cell.add_rectangle(0, 0, 3, 1, layer=2)
        assert cell.area(layer=1) == pytest.approx(4.0)
        assert cell.area(layer=2) == pytest.approx(3.0)
        assert cell.area() == pytest.approx(7.0)


class TestBoundingBox:
    def test_empty_cell_has_no_bbox(self):
        assert Cell("EMPTY").bounding_box() is None

    def test_direct_polygons(self, leaf):
        assert leaf.bounding_box() == (0, 0, 2, 1)

    def test_includes_translated_reference(self, leaf):
        top = Cell("TOP")
        top.instantiate(leaf, (10, 10))
        assert top.bounding_box() == (10, 10, 12, 11)

    def test_includes_rotated_reference(self, leaf):
        top = Cell("TOP")
        top.instantiate(leaf, (0, 0), rotation_deg=90)
        x0, y0, x1, y1 = top.bounding_box()
        assert (x0, y0) == pytest.approx((-1, 0))
        assert (x1, y1) == pytest.approx((0, 2))

    def test_includes_array_extent(self, leaf):
        top = Cell("TOP")
        top.instantiate_array(leaf, 3, 2, 10.0, 10.0)
        assert top.bounding_box() == (0, 0, 22, 11)

    def test_reference_to_empty_child_ignored(self):
        top = Cell("TOP")
        top.instantiate(Cell("EMPTY"), (5, 5))
        assert top.bounding_box() is None

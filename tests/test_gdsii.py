"""Tests for the GDSII stream reader/writer, including failure injection."""

import struct

import pytest
from hypothesis import given, settings

import layout_strategies
from layout_strategies import flat_perimeter
from repro.geometry.polygon import Polygon
from repro.layout.cell import Cell
from repro.layout.flatten import flatten_cell
from repro.layout.gdsii import dumps_gdsii, loads_gdsii, read_gdsii, write_gdsii
from repro.layout.gdsii_records import (
    DataType,
    GdsiiError,
    RecordType,
    decode_real8,
    encode_real8,
    iter_records,
    pack_ascii,
    pack_int16,
    pack_record,
)
from repro.layout.library import Library
from repro.layout.reference import CellArray
from repro.layout import generators


def flat_area(cell):
    flat = flatten_cell(cell)
    return sum(p.area() for v in flat.values() for p in v)


def flat_vertices(cell):
    flat = flatten_cell(cell)
    return sorted(
        (round(v.x, 6), round(v.y, 6))
        for polys in flat.values()
        for p in polys
        for v in p.vertices
    )


class TestReal8:
    @pytest.mark.parametrize(
        "value",
        [0.0, 1.0, -1.0, 1e-9, 1e-6, 0.001, 3.14159265, 12345.678, -2.5e-4],
    )
    def test_roundtrip(self, value):
        assert decode_real8(encode_real8(value)) == pytest.approx(value, rel=1e-14)

    def test_zero_encoding(self):
        assert encode_real8(0.0) == b"\x00" * 8

    def test_sign_bit(self):
        assert encode_real8(-1.0)[0] & 0x80

    def test_decode_validates_length(self):
        with pytest.raises(GdsiiError):
            decode_real8(b"\x00" * 4)


class TestRecords:
    def test_pack_and_iter(self):
        data = pack_int16(RecordType.HEADER, [600]) + pack_record(
            RecordType.ENDLIB, DataType.NONE
        )
        records = list(iter_records(data))
        assert records[0][0] == RecordType.HEADER
        assert records[1][0] == RecordType.ENDLIB

    def test_odd_payload_rejected(self):
        with pytest.raises(GdsiiError):
            pack_record(RecordType.LIBNAME, DataType.ASCII, b"abc")

    def test_ascii_pads_to_even(self):
        record = pack_ascii(RecordType.LIBNAME, "abc")
        assert len(record) % 2 == 0

    def test_truncated_header_raises(self):
        with pytest.raises(GdsiiError, match="truncated"):
            list(iter_records(b"\x00\x08\x00"))

    def test_truncated_payload_raises(self):
        bad = struct.pack(">HBB", 100, 0x02, 6) + b"xy"
        with pytest.raises(GdsiiError, match="truncated"):
            list(iter_records(bad))

    def test_zero_padding_tail_tolerated(self):
        data = pack_int16(RecordType.HEADER, [600]) + b"\x00\x00\x00\x00"
        assert len(list(iter_records(data))) == 1


class TestRoundTrip:
    def test_simple_polygon(self):
        lib = Library("T")
        cell = lib.new_cell("TOP")
        cell.add_polygon(Polygon([(0, 0), (10, 0), (5, 8)]), layer=(3, 1))
        lib2 = loads_gdsii(dumps_gdsii(lib))
        assert lib2.name == "T"
        cell2 = lib2["TOP"]
        assert cell2.layers()[0].key() == (3, 1)
        assert flat_area(cell2) == pytest.approx(40.0, abs=1e-6)

    def test_units_roundtrip(self):
        lib = Library("U", unit=1e-6, precision=1e-9)
        lib.new_cell("TOP").add_rectangle(0, 0, 1, 1)
        lib2 = loads_gdsii(dumps_gdsii(lib))
        assert lib2.unit == pytest.approx(1e-6)
        assert lib2.precision == pytest.approx(1e-9)

    def test_sref_with_transform(self):
        lib = Library("T")
        child = lib.new_cell("CHILD")
        child.add_rectangle(0, 0, 2, 1)
        top = lib.new_cell("TOP")
        top.instantiate(child, (5, 5), rotation_deg=90, x_reflection=True)
        lib2 = loads_gdsii(dumps_gdsii(lib))
        assert flat_vertices(lib2.top_cell()) == flat_vertices(top)

    def test_sref_with_magnification(self):
        lib = Library("T")
        child = lib.new_cell("CHILD")
        child.add_rectangle(0, 0, 2, 1)
        top = lib.new_cell("TOP")
        top.instantiate(child, (0, 0), magnification=3.0)
        lib2 = loads_gdsii(dumps_gdsii(lib))
        assert flat_area(lib2.top_cell()) == pytest.approx(18.0, abs=1e-6)

    def test_aref_roundtrip(self):
        lib = generators.memory_array()
        lib2 = loads_gdsii(dumps_gdsii(lib))
        assert flat_area(lib2.top_cell()) == pytest.approx(
            flat_area(lib.top_cell()), rel=1e-9
        )
        top2 = lib2.top_cell()
        assert isinstance(top2.references[0], CellArray)

    def test_file_roundtrip(self, tmp_path):
        lib = generators.contact_array(columns=4, rows=4, hierarchical=True)
        path = tmp_path / "test.gds"
        n = write_gdsii(lib, path)
        assert path.stat().st_size == n
        lib2 = read_gdsii(path)
        assert flat_area(lib2.top_cell()) == pytest.approx(16.0, abs=1e-6)

    def test_coordinates_snap_to_precision(self):
        lib = Library("T", unit=1e-6, precision=1e-9)
        lib.new_cell("TOP").add_rectangle(0, 0, 1.0000004, 1)
        lib2 = loads_gdsii(dumps_gdsii(lib))
        box = lib2.top_cell().bounding_box()
        assert box[2] == pytest.approx(1.0, abs=1e-9)


class TestMalformedStreams:
    def test_missing_header(self):
        lib = Library("T")
        lib.new_cell("TOP").add_rectangle(0, 0, 1, 1)
        data = dumps_gdsii(lib)
        # Strip the HEADER record (6 bytes).
        with pytest.raises(GdsiiError, match="HEADER"):
            loads_gdsii(data[6:])

    def test_missing_units(self):
        data = pack_int16(RecordType.HEADER, [600]) + pack_record(
            RecordType.ENDLIB, DataType.NONE
        )
        with pytest.raises(GdsiiError, match="UNITS"):
            loads_gdsii(data)

    def test_boundary_outside_structure(self):
        from repro.layout.gdsii_records import pack_real8

        data = (
            pack_int16(RecordType.HEADER, [600])
            + pack_real8(RecordType.UNITS, [1e-3, 1e-9])
            + pack_record(RecordType.BOUNDARY, DataType.NONE)
        )
        with pytest.raises(GdsiiError, match="outside a structure"):
            loads_gdsii(data)

    def test_dangling_reference(self):
        lib = Library("T")
        child = Cell("CHILD")
        child.add_rectangle(0, 0, 1, 1)
        top = lib.new_cell("TOP")
        top.instantiate(child, (0, 0))
        # CHILD was never registered, so it is absent from the stream.
        data = dumps_gdsii(lib)
        with pytest.raises(GdsiiError, match="undefined cell"):
            loads_gdsii(data)

    def test_oversized_polygon_rejected_on_write(self):
        lib = Library("T")
        big = Polygon.regular((0, 0), 10, 700)
        lib.new_cell("TOP").add_polygon(big)
        with pytest.raises(GdsiiError, match="exceeds"):
            dumps_gdsii(lib)

    def test_garbage_bytes(self):
        with pytest.raises(GdsiiError):
            loads_gdsii(b"\x00\x01\x02")


class TestWriteReadWriteProperty:
    """Hypothesis sweep: the writer is idempotent over its own output.

    The first write quantizes coordinates to the database grid; reading
    that stream preserves cell order and exact (integer) coordinates,
    so writing the parsed library again must reproduce the stream byte
    for byte, across every workload family the generators produce
    (hierarchies, AREFs, curved data).
    """

    @given(library=layout_strategies.generated_libraries())
    @settings(max_examples=25, deadline=None)
    def test_write_read_write_identical_bytes(self, library):
        first = dumps_gdsii(library)
        second = dumps_gdsii(loads_gdsii(first))
        assert first == second

    @given(library=layout_strategies.generated_libraries())
    @settings(max_examples=10, deadline=None)
    def test_round_trip_preserves_flat_geometry(self, library):
        loaded = loads_gdsii(dumps_gdsii(library))
        original = flat_area(library.top_cell())
        # Quantizing to the database grid moves each vertex by at most
        # half a grid step, so the area drift is bounded by the total
        # flat perimeter times the grid (with slack for corner cases).
        budget = library.grid * flat_perimeter(library.top_cell()) + 1e-9
        assert abs(flat_area(loaded.top_cell()) - original) <= budget

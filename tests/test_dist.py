"""The distributed execution layer: protocol, lease queue, fleet runs.

Three levels, cheapest first:

* wire-protocol framing (socketpairs, no server);
* the :class:`~repro.dist.coordinator.LeaseQueue` state machine driven
  with simulated clocks — including hypothesis properties over random
  grant/commit/reclaim schedules;
* full pipeline runs against in-process worker threads, asserting the
  distributed path is byte-identical to the serial one under every
  injected network fault.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import ShardCache
from repro.core.executor import RetryPolicy, shutdown_worker_pool
from repro.core.faults import FaultPlan
from repro.core.jobfile import dumps_job
from repro.core.pipeline import PreparationPipeline
from repro.dist import (
    DIST_ENV_VAR,
    CoordinatorServer,
    DistPolicy,
    LeaseQueue,
    ProtocolError,
    WorkerDaemon,
    coordinator_for,
    parse_endpoint,
    shutdown_coordinators,
)
from repro.dist.protocol import (
    _FRAME,
    MAX_PART,
    recv_frame,
    request,
    send_frame,
)
from repro.layout import generators

FIELD_SIZE = 4.0
FAST_RETRY = RetryPolicy(max_attempts=4, backoff_base=0.0)
FAST_POLICY = DistPolicy(
    lease_deadline=1.0,
    heartbeat_interval=0.1,
    heartbeat_timeout=0.5,
    worker_grace=2.0,
    speculate_after=0.3,
)


@pytest.fixture(autouse=True)
def clean_slate():
    shutdown_worker_pool()
    yield
    shutdown_coordinators()
    shutdown_worker_pool()


@pytest.fixture
def endpoint():
    server = coordinator_for("127.0.0.1:0")
    host, port = server.server_address[:2]
    return f"{host}:{port}"


@pytest.fixture
def fleet(endpoint):
    workers = []
    threads = []

    def spawn(n=2, **kwargs):
        spawned = []
        for _ in range(n):
            daemon = WorkerDaemon(
                endpoint, worker_id=f"w{len(workers)}", **kwargs
            )
            workers.append(daemon)
            spawned.append(daemon)
            thread = threading.Thread(target=daemon.run, daemon=True)
            thread.start()
            threads.append(thread)
        return spawned

    yield spawn
    for daemon in workers:
        daemon.stop()
    for thread in threads:
        thread.join(timeout=5.0)


def grating_library():
    return generators.grating(pitch=2.0, duty=0.5, lines=12, length=24.0)


def serial_bytes(library):
    result = PreparationPipeline(field_size=FIELD_SIZE).run(library)
    return dumps_job(result.job)


def run_distributed(endpoint, library, faults=None, retry=FAST_RETRY,
                    policy=FAST_POLICY, cache_dir=None):
    pipeline = PreparationPipeline(
        field_size=FIELD_SIZE,
        dispatch="distributed",
        workers_endpoint=endpoint,
        dist_policy=policy,
        retry=retry,
        faults=faults,
        cache_dir=cache_dir,
    )
    return pipeline.run(grating_library() if library is None else library)


# ---------------------------------------------------------------------------
# Wire protocol
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_parse_endpoint(self):
        assert parse_endpoint("127.0.0.1:8765") == ("127.0.0.1", 8765)
        assert parse_endpoint("node-3.rack:0") == ("node-3.rack", 0)

    @pytest.mark.parametrize(
        "bad", ["", "nocolon", ":8765", "host:", "host:http", "host:70000"]
    )
    def test_parse_endpoint_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_endpoint(bad)

    def test_frame_round_trip(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, {"type": "commit", "lease": 7}, b"payload")
            header, payload = recv_frame(right)
            assert header == {"type": "commit", "lease": 7}
            assert payload == b"payload"
        finally:
            left.close()
            right.close()

    def test_truncated_frame_raises_protocol_error(self):
        left, right = socket.socketpair()
        try:
            head = json.dumps({"type": "commit"}).encode()
            # Declare a 10-byte payload but deliver only 3, then close.
            left.sendall(_FRAME.pack(len(head), 10) + head + b"abc")
            left.close()
            with pytest.raises(ProtocolError):
                recv_frame(right)
        finally:
            right.close()

    def test_protocol_error_is_transient_to_retry_policy(self):
        # Garbled conversations must be retried like dropped ones.
        assert isinstance(ProtocolError("half a frame"), OSError)
        assert RetryPolicy().is_transient(ProtocolError("half a frame"))

    def test_oversized_frame_part_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall(_FRAME.pack(MAX_PART + 1, 0))
            with pytest.raises(ProtocolError):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_non_object_header_rejected(self):
        left, right = socket.socketpair()
        try:
            head = b"[1, 2]"
            left.sendall(_FRAME.pack(len(head), 0) + head)
            with pytest.raises(ProtocolError):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_server_answers_ping(self, endpoint):
        reply, payload = request(parse_endpoint(endpoint), {"type": "ping"})
        assert reply == {"type": "pong"}
        assert payload == b""

    def test_server_rejects_unknown_type(self, endpoint):
        reply, _ = request(parse_endpoint(endpoint), {"type": "gossip"})
        assert reply["type"] == "error"
        assert "gossip" in reply["message"]


class TestDistPolicy:
    def test_rejects_negative_knobs(self):
        with pytest.raises(ValueError):
            DistPolicy(lease_deadline=-1.0)
        with pytest.raises(ValueError):
            DistPolicy(heartbeat_timeout=-0.1)

    def test_defaults_are_valid(self):
        policy = DistPolicy()
        assert policy.lease_deadline > 0
        assert policy.speculate

    def test_from_env_unset_returns_none(self):
        assert DistPolicy.from_env({}) is None
        assert DistPolicy.from_env({DIST_ENV_VAR: "   "}) is None

    def test_from_env_overrides_knobs(self):
        policy = DistPolicy.from_env(
            {DIST_ENV_VAR: '{"speculate": false, "heartbeat_timeout": 1.5}'}
        )
        assert policy is not None
        assert policy.speculate is False
        assert policy.heartbeat_timeout == 1.5
        # Untouched knobs keep their defaults.
        assert policy.lease_deadline == DistPolicy().lease_deadline

    def test_from_json_names_unknown_key(self):
        with pytest.raises(ValueError, match="lease_deadlin"):
            DistPolicy.from_json('{"lease_deadlin": 5}')

    def test_from_json_rejects_non_object(self):
        with pytest.raises(ValueError, match="JSON object"):
            DistPolicy.from_json("[1, 2]")
        with pytest.raises(ValueError, match="not valid JSON"):
            DistPolicy.from_json("{nope")

    def test_from_json_rejects_bad_values(self):
        with pytest.raises(ValueError, match="speculate"):
            DistPolicy.from_json('{"speculate": "yes"}')
        with pytest.raises(ValueError, match="heartbeat_timeout"):
            DistPolicy.from_json('{"heartbeat_timeout": -2}')


# ---------------------------------------------------------------------------
# LeaseQueue state machine (simulated clock)
# ---------------------------------------------------------------------------


class TestLeaseQueue:
    def make(self, n=4, max_attempts=3, **policy_kwargs):
        policy = DistPolicy(
            lease_deadline=10.0,
            heartbeat_interval=1.0,
            heartbeat_timeout=5.0,
            speculate_after=2.0,
            **policy_kwargs,
        )
        retry = RetryPolicy(max_attempts=max_attempts, backoff_base=0.0)
        return LeaseQueue(n, retry=retry, policy=policy)

    def test_grants_positions_in_order_with_deadlines(self):
        queue = self.make(n=3)
        leases = [queue.grant("w0", now=0.0) for _ in range(3)]
        assert [lease.position for lease in leases] == [0, 1, 2]
        assert all(lease.attempt == 0 for lease in leases)
        assert all(lease.deadline == 10.0 for lease in leases)
        assert queue.grant("w0", now=0.0) is None  # dry, too young to spec
        assert queue.stats.leases_granted == 3

    def test_commit_finishes_the_batch(self):
        queue = self.make(n=2)
        a = queue.grant("w0", now=0.0)
        b = queue.grant("w1", now=0.0)
        queue.commit(a.lease_id, "w0", a.position, b"ra", now=1.0)
        queue.commit(b.lease_id, "w1", b.position, b"rb", now=1.0)
        state = queue.state(now=1.0)
        assert state.finished and state.error is None
        assert queue.take_new_commits() == [(0, b"ra"), (1, b"rb")]
        assert queue.take_new_commits() == []  # delivered exactly once

    def test_duplicate_identical_commit_discarded_and_counted(self):
        queue = self.make(n=1)
        lease = queue.grant("w0", now=0.0)
        assert queue.commit(lease.lease_id, "w0", 0, b"r", now=1.0) == (
            "accepted"
        )
        assert queue.commit(lease.lease_id, "w0", 0, b"r", now=1.1) == (
            "duplicate"
        )
        assert queue.stats.duplicate_commits == 1
        assert queue.error is None

    def test_conflicting_commit_poisons_the_batch(self):
        queue = self.make(n=1)
        lease = queue.grant("w0", now=0.0)
        queue.commit(lease.lease_id, "w0", 0, b"r", now=1.0)
        outcome = queue.commit(999, "w1", 0, b"DIFFERENT", now=1.1)
        assert outcome == "conflict"
        assert "determinism" in queue.error

    def test_out_of_range_commit_poisons(self):
        queue = self.make(n=2)
        queue.grant("w0", now=0.0)
        assert queue.commit(1, "w0", 7, b"r", now=0.5) == "conflict"
        assert "outside batch" in queue.error

    def test_commit_after_reclaim_still_accepted(self):
        # At-least-once delivery: the reclaimed lease's bytes are just
        # as correct as the retry's.
        queue = self.make(n=1)
        lease = queue.grant("w0", now=0.0)
        queue.scan(now=11.0)  # past the lease deadline → reclaimed
        assert queue.stats.leases_reclaimed == 1
        assert queue.commit(lease.lease_id, "w0", 0, b"r", now=11.5) == (
            "accepted"
        )
        # The requeued retry is cancelled by the commit.
        assert queue.grant("w9", now=11.6) is None
        assert queue.state(now=11.6).finished

    def test_expired_lease_requeues_exactly_once(self):
        queue = self.make(n=1)
        queue.grant("w0", now=0.0)
        queue.scan(now=11.0)
        queue.scan(now=11.0)  # a second scan must not double-queue
        retry = queue.grant("w1", now=11.0)
        assert (retry.position, retry.attempt) == (0, 1)
        assert queue.grant("w2", now=11.0) is None
        assert queue.stats.leases_reclaimed == 1

    def test_attempt_budget_exhaustion_marks_spent(self):
        queue = self.make(n=1, max_attempts=2)
        queue.grant("w0", now=0.0)
        queue.scan(now=11.0)
        queue.grant("w0", now=11.0)
        queue.scan(now=22.0)
        assert queue.grant("w0", now=22.0) is None
        assert queue.spent_positions() == [0]
        assert queue.state(now=22.0).finished

    def test_transient_failure_requeues_permanent_poisons(self):
        queue = self.make(n=2)
        a = queue.grant("w0", now=0.0)
        queue.grant("w1", now=0.0)
        queue.fail(a.lease_id, "w0", a.position, True, "flaky", now=0.5)
        retry = queue.grant("w0", now=0.6)
        assert (retry.position, retry.attempt) == (0, 1)
        queue.fail(retry.lease_id, "w0", 0, False, "deterministic", now=0.7)
        assert queue.error == "deterministic"

    def test_dead_worker_reclaims_all_its_leases(self):
        queue = self.make(n=3)
        queue.grant("dying", now=0.0)
        queue.grant("dying", now=0.0)
        queue.grant("healthy", now=0.0)
        queue.touch_worker("healthy", now=6.0)
        queue.scan(now=6.0)  # "dying" silent past heartbeat_timeout
        assert queue.stats.worker_deaths == 1
        assert queue.stats.leases_reclaimed == 2
        positions = {
            queue.grant("healthy", now=6.0).position for _ in range(2)
        }
        assert positions == {0, 1}

    def test_missed_heartbeat_flagged_once_per_silence(self):
        queue = self.make(n=1)
        queue.grant("w0", now=0.0)
        queue.scan(now=3.0)  # silent > 2×interval, < timeout
        queue.scan(now=3.5)
        assert queue.stats.heartbeats_missed == 1
        queue.touch_worker("w0", now=4.0)  # contact clears the flag
        queue.scan(now=7.0)
        assert queue.stats.heartbeats_missed == 2

    def test_heartbeat_reports_reclaimed_lease_dead(self):
        queue = self.make(n=1)
        lease = queue.grant("w0", now=0.0)
        assert queue.heartbeat("w0", lease.lease_id, now=1.0)
        queue.scan(now=12.0)
        assert not queue.heartbeat("w0", lease.lease_id, now=12.1)

    def test_speculation_duplicates_the_oldest_straggler(self):
        queue = self.make(n=2)
        slow = queue.grant("w0", now=0.0)
        queue.grant("w1", now=1.0)
        # Queue dry; w2 asks before the straggler is old enough.
        assert queue.grant("w2", now=1.5) is None
        spec = queue.grant("w2", now=2.5)
        assert spec is not None and spec.speculative
        assert spec.position == slow.position
        assert queue.stats.speculative_leases == 1
        # Only one duplicate per position (and position 1 is too young).
        assert queue.grant("w3", now=2.6) is None

    def test_speculative_win_and_loss_accounting(self):
        queue = self.make(n=1)
        queue.grant("slow", now=0.0)
        spec = queue.grant("fast", now=3.0)
        queue.commit(spec.lease_id, "fast", 0, b"r", now=3.5)
        assert queue.stats.speculative_wins == 1
        assert queue.stats.speculative_losses == 0

        queue = self.make(n=1)
        slow = queue.grant("slow", now=0.0)
        queue.grant("fast", now=3.0)
        queue.commit(slow.lease_id, "slow", 0, b"r", now=3.5)
        assert queue.stats.speculative_wins == 0
        assert queue.stats.speculative_losses == 1

    def test_speculation_can_be_disabled(self):
        queue = self.make(n=1, speculate=False)
        queue.grant("w0", now=0.0)
        assert queue.grant("w1", now=100.0) is None

    def test_abandon_remaining_spends_everything_unfinished(self):
        queue = self.make(n=3)
        lease = queue.grant("w0", now=0.0)
        queue.commit(lease.lease_id, "w0", lease.position, b"r", now=0.5)
        queue.abandon_remaining()
        assert queue.spent_positions() == [1, 2]
        assert queue.state(now=1.0).finished
        assert queue.grant("w1", now=1.0) is None

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            LeaseQueue(-1)


# ---------------------------------------------------------------------------
# Property tests: random schedules against the state machine
# ---------------------------------------------------------------------------


def payload_for(position: int) -> bytes:
    """The deterministic 'result bytes' of a simulated shard."""
    return b"result-%d" % position


OPS = st.lists(
    st.tuples(
        st.sampled_from(
            ["grant", "commit", "drop", "fail", "advance", "scan"]
        ),
        st.integers(min_value=0, max_value=3),  # worker index
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=120, deadline=None)
@given(ops=OPS, n=st.integers(min_value=1, max_value=5))
def test_lease_queue_random_schedules_stay_consistent(ops, n):
    """Any interleaving of grants, commits, drops, failures and clock
    jumps keeps the invariants: no position is ever pending twice, no
    committed position is re-granted, attempt budgets hold, and the
    batch never poisons (every commit carries the honest bytes)."""
    retry = RetryPolicy(max_attempts=3, backoff_base=0.0)
    policy = DistPolicy(
        lease_deadline=10.0,
        heartbeat_interval=1.0,
        heartbeat_timeout=5.0,
        speculate_after=2.0,
    )
    queue = LeaseQueue(n, retry=retry, policy=policy)
    clock = 0.0
    held = []  # leases a simulated worker is sitting on
    delivered = {}

    for op, worker in ops:
        name = f"w{worker}"
        if op == "grant":
            lease = queue.grant(name, now=clock)
            if lease is not None:
                held.append(lease)
        elif op == "commit" and held:
            lease = held.pop(0)
            outcome = queue.commit(
                lease.lease_id,
                lease.worker,
                lease.position,
                payload_for(lease.position),
                now=clock,
            )
            assert outcome in ("accepted", "duplicate")
        elif op == "drop" and held:
            held.pop(0)  # worker silently walks away from the lease
        elif op == "fail" and held:
            lease = held.pop(0)
            queue.fail(
                lease.lease_id,
                lease.worker,
                lease.position,
                True,
                "transient",
                now=clock,
            )
        elif op == "advance":
            clock += 3.0
        elif op == "scan":
            queue.scan(now=clock)

        # Invariants, checked after every step.
        assert queue.error is None
        with queue._lock:
            pending_positions = [entry[0] for entry in queue._pending]
            assert len(pending_positions) == len(set(pending_positions))
            for position in pending_positions:
                assert position not in queue._committed
                assert position not in queue._spent
            for used in queue._attempts_used:
                assert used <= retry.max_attempts

        for position, payload in queue.take_new_commits():
            assert position not in delivered
            delivered[position] = payload

    # Drain: one diligent worker finishes whatever is left.
    for _ in range(10 * n * (retry.max_attempts + 1)):
        if queue.state(clock).finished:
            break
        lease = queue.grant("closer", now=clock)
        if lease is None:
            clock += 11.0  # expire in-flight leases from dropped workers
            queue.scan(now=clock)
            continue
        queue.commit(
            lease.lease_id,
            "closer",
            lease.position,
            payload_for(lease.position),
            now=clock,
        )
    for position, payload in queue.take_new_commits():
        assert position not in delivered
        delivered[position] = payload

    state = queue.state(clock)
    assert state.finished and state.error is None
    spent = set(queue.spent_positions())
    # Every position either carries its honest bytes or went to the
    # local ladder — and was handed to the caller exactly once.
    for position in range(n):
        if position in spent:
            assert position not in delivered
        else:
            assert delivered[position] == payload_for(position)


@settings(max_examples=60, deadline=None)
@given(
    wrong=st.integers(min_value=0, max_value=4),
    n=st.integers(min_value=1, max_value=5),
)
def test_lease_queue_detects_any_nondeterministic_commit(wrong, n):
    """Committing different bytes for an already-committed position
    always poisons the batch, whatever the position."""
    wrong %= n
    queue = LeaseQueue(n, retry=RetryPolicy(backoff_base=0.0))
    leases = [queue.grant("w0", now=0.0) for _ in range(n)]
    for lease in leases:
        queue.commit(
            lease.lease_id,
            "w0",
            lease.position,
            payload_for(lease.position),
            now=1.0,
        )
    assert queue.error is None
    assert (
        queue.commit(0, "evil", wrong, b"different-bytes", now=2.0)
        == "conflict"
    )
    assert "determinism" in queue.error


@settings(max_examples=60, deadline=None)
@given(
    reclaims=st.integers(min_value=1, max_value=3),
    scans=st.integers(min_value=1, max_value=4),
)
def test_reclaimed_lease_reenters_queue_exactly_once(reclaims, scans):
    """However many times a lease expires and however many redundant
    scans observe it, each reclaim produces exactly one requeue."""
    retry = RetryPolicy(max_attempts=reclaims + 1, backoff_base=0.0)
    queue = LeaseQueue(1, retry=retry, policy=DistPolicy(lease_deadline=5.0))
    clock = 0.0
    for attempt in range(reclaims):
        lease = queue.grant("w0", now=clock)
        assert lease is not None and lease.attempt == attempt
        clock += 6.0
        for _ in range(scans):
            queue.scan(now=clock)
        assert queue.stats.leases_reclaimed == attempt + 1
    final = queue.grant("w0", now=clock)
    assert final is not None and final.attempt == reclaims
    assert queue.grant("w1", now=clock) is None


# ---------------------------------------------------------------------------
# Fleet integration: in-process worker threads against a real server
# ---------------------------------------------------------------------------


class TestDistributedRuns:
    def test_two_workers_byte_identical_to_serial(self, endpoint, fleet):
        library = grating_library()
        expected = serial_bytes(library)
        fleet(2)
        result = run_distributed(endpoint, library)
        assert dumps_job(result.job) == expected
        stats = result.execution
        assert stats.dispatch == "distributed"
        assert 1 <= stats.dist_workers <= 2
        assert stats.leases_granted >= stats.shard_count
        assert stats.dist_local_fallbacks == 0

    def test_local_dispatch_reports_local(self):
        result = PreparationPipeline(field_size=FIELD_SIZE).run(
            grating_library()
        )
        assert result.execution.dispatch == "local"
        assert result.execution.dist_workers == 0

    def test_no_workers_falls_back_to_local_ladder(self, endpoint):
        library = grating_library()
        expected = serial_bytes(library)
        policy = DistPolicy(worker_grace=0.3)
        result = run_distributed(endpoint, library, policy=policy)
        assert dumps_job(result.job) == expected
        stats = result.execution
        assert stats.dist_local_fallbacks == stats.shard_count
        assert stats.dist_workers == 0

    def test_dead_worker_is_reclaimed_and_byte_identical(
        self, endpoint, fleet
    ):
        library = grating_library()
        expected = serial_bytes(library)
        fleet(2)
        faults = FaultPlan(dead_worker=frozenset({(0, 0)}))
        # Speculation off so the recovery must come from death
        # detection + lease reclaim, not a speculative duplicate.
        policy = DistPolicy(
            lease_deadline=5.0,
            heartbeat_interval=0.1,
            heartbeat_timeout=0.5,
            worker_grace=3.0,
            speculate=False,
        )
        result = run_distributed(
            endpoint, library, faults=faults, policy=policy
        )
        assert dumps_job(result.job) == expected
        stats = result.execution
        assert stats.leases_reclaimed >= 1
        assert stats.worker_deaths >= 1

    def test_dropped_commit_connection_recovers(self, endpoint, fleet):
        library = grating_library()
        expected = serial_bytes(library)
        fleet(2)
        faults = FaultPlan(drop_conn=frozenset({(1, 0)}))
        # Speculation off: the lost commit must surface as a lease
        # deadline expiry and a reclaimed retry.
        policy = DistPolicy(
            lease_deadline=1.0,
            heartbeat_interval=0.1,
            heartbeat_timeout=2.0,
            worker_grace=3.0,
            speculate=False,
        )
        result = run_distributed(
            endpoint, library, faults=faults, policy=policy
        )
        assert dumps_job(result.job) == expected
        assert result.execution.leases_reclaimed >= 1

    def test_duplicate_commit_discarded(self, endpoint, fleet):
        library = grating_library()
        expected = serial_bytes(library)
        fleet(2)
        faults = FaultPlan(duplicate_commit=frozenset({(2, 0)}))
        result = run_distributed(endpoint, library, faults=faults)
        assert dumps_job(result.job) == expected
        assert result.execution.duplicate_commits >= 1

    def test_late_heartbeat_counted_and_recovered(self, endpoint, fleet):
        library = grating_library()
        expected = serial_bytes(library)
        fleet(2)
        faults = FaultPlan(late_heartbeat=frozenset({(3, 0)}))
        result = run_distributed(endpoint, library, faults=faults)
        assert dumps_job(result.job) == expected
        # The silent shard is either reclaimed (slow) or its commit
        # lands first (fast) — both end byte-identical; degraded runs
        # surface in the counters when the reclaim happened.
        stats = result.execution
        assert stats.heartbeats_missed + stats.leases_reclaimed >= 0

    def test_straggler_speculation_wins(self, endpoint):
        library = grating_library()
        expected = serial_bytes(library)
        stalled = threading.Event()
        release = threading.Event()

        def throttle(position, attempt):
            # The straggler stalls on shard 0 until the run is over;
            # speculation must route the shard around it.
            if position == 0:
                stalled.set()
                release.wait(timeout=30.0)

        slow = WorkerDaemon(endpoint, worker_id="slow", throttle=throttle)
        fast = WorkerDaemon(endpoint, worker_id="fast")

        def fast_runner():
            # Let the straggler claim shard 0 first (grants follow
            # position order), so the stall is deterministic.
            stalled.wait(timeout=30.0)
            fast.run()

        threads = [
            threading.Thread(target=slow.run, daemon=True),
            threading.Thread(target=fast_runner, daemon=True),
        ]
        for thread in threads:
            thread.start()
        policy = DistPolicy(
            lease_deadline=60.0,  # the straggler is *slow*, not hung
            heartbeat_interval=0.1,
            heartbeat_timeout=5.0,
            worker_grace=10.0,
            speculate_after=0.2,
        )
        try:
            result = run_distributed(endpoint, library, policy=policy)
        finally:
            release.set()
            slow.stop()
            fast.stop()
            for thread in threads:
                thread.join(timeout=5.0)
        assert dumps_job(result.job) == expected
        assert result.execution.speculative_wins >= 1

    def test_workers_populate_shared_cache(self, endpoint, fleet, tmp_path):
        cache_dir = tmp_path / "shard-cache"
        fleet(2, cache=ShardCache(cache_dir))
        library = grating_library()
        first = run_distributed(endpoint, library, cache_dir=cache_dir)
        assert first.execution.cache_misses > 0
        # Workers stored every computed shard, so a local re-run hits.
        second = PreparationPipeline(
            field_size=FIELD_SIZE, cache_dir=cache_dir
        ).run(library)
        assert second.execution.cache_hits == second.execution.shard_count
        assert dumps_job(first.job) == dumps_job(second.job)

    def test_shard_level_faults_still_fire_remotely(self, endpoint, fleet):
        # The existing shard-fault kinds ride the same config blob and
        # fire inside the worker daemon's _process_shard_task call.
        library = grating_library()
        expected = serial_bytes(library)
        fleet(2)
        faults = FaultPlan(transient=frozenset({(0, 0), (2, 0)}))
        result = run_distributed(endpoint, library, faults=faults)
        assert dumps_job(result.job) == expected

    def test_coordinator_registry_reuses_and_resolves_port_zero(self):
        server = coordinator_for("127.0.0.1:0")
        host, port = server.server_address[:2]
        assert coordinator_for(f"{host}:{port}") is server
        assert coordinator_for("127.0.0.1:0") is server

    def test_worker_daemon_idle_exit(self, endpoint):
        daemon = WorkerDaemon(endpoint, idle_exit=0.2, worker_id="loner")
        assert daemon.run() == 0  # no batches → drains away on its own

    def test_concurrent_batches_share_one_fleet(self, endpoint, fleet):
        fleet(2)
        library = grating_library()
        expected = serial_bytes(library)
        results = [None, None]
        errors = []

        def go(slot):
            try:
                results[slot] = run_distributed(endpoint, library)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=go, args=(slot,)) for slot in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors
        for result in results:
            assert result is not None
            assert dumps_job(result.job) == expected


class TestRecipeAndServerPlumbing:
    def test_recipe_validates_dispatch(self):
        from repro.core.recipe import PrepRecipe

        with pytest.raises(ValueError):
            PrepRecipe(dispatch="cloud")
        with pytest.raises(ValueError):
            PrepRecipe(dispatch="distributed")  # endpoint required
        with pytest.raises(ValueError):
            PrepRecipe(
                dispatch="distributed", workers_endpoint="not-an-endpoint"
            )
        recipe = PrepRecipe(
            dispatch="distributed", workers_endpoint="127.0.0.1:9999"
        )
        assert recipe.dispatch == "distributed"

    def test_executor_requires_endpoint_for_distributed(self):
        from repro.core.executor import ShardedExecutor
        from repro.fracture.trapezoidal import TrapezoidFracturer

        fracturer = TrapezoidFracturer()
        with pytest.raises(ValueError):
            ShardedExecutor(
                fracturer, field_size=4.0, dispatch="distributed"
            )
        with pytest.raises(ValueError):
            ShardedExecutor(fracturer, field_size=4.0, dispatch="teleport")

    def test_server_stop_is_clean(self):
        server = CoordinatorServer(("127.0.0.1", 0))
        server.start()
        host, port = server.server_address[:2]
        reply, _ = request((host, port), {"type": "ping"})
        assert reply["type"] == "pong"
        server.stop()
        with pytest.raises(OSError):
            request((host, port), {"type": "ping"}, timeout=0.5)

    def test_batch_ids_unique_across_server_instances(self):
        # Sequential numbering restarts in every coordinator process; a
        # long-lived worker keys its config cache by batch id, so the
        # first batches of two coordinators must not collide.
        s1 = CoordinatorServer(("127.0.0.1", 0))
        s2 = CoordinatorServer(("127.0.0.1", 0))
        try:
            b1 = s1.submit_batch([b"x"], b"cfg")
            b2 = s2.submit_batch([b"x"], b"cfg")
            assert b1.id != b2.id
        finally:
            s1.server_close()
            s2.server_close()

    def test_worker_outliving_a_coordinator_fetches_fresh_config(self):
        # Regression: a worker daemon that served coordinator A once
        # reused A's cached (config, faults) bundle for coordinator B's
        # batch of the same sequential id — silently running B's shards
        # with A's fault plan (and pipeline config).  The worker must
        # see B's dead_worker schedule and die.
        library = grating_library()
        expected = serial_bytes(library)
        server = coordinator_for("127.0.0.1:0")
        host, port = server.server_address[:2]
        endpoint = f"{host}:{port}"
        daemon = WorkerDaemon(endpoint, worker_id="survivor")
        thread = threading.Thread(target=daemon.run, daemon=True)
        thread.start()
        try:
            clean = run_distributed(endpoint, library)
            assert dumps_job(clean.job) == expected
            # Coordinator dies; its successor binds the same port, so
            # the worker reconnects to a server whose batch numbering
            # restarts at 1.
            shutdown_coordinators()
            coordinator_for(endpoint)
            faults = FaultPlan(dead_worker=frozenset({(0, 0)}))
            policy = DistPolicy(
                lease_deadline=5.0,
                heartbeat_interval=0.1,
                heartbeat_timeout=0.5,
                worker_grace=2.0,
                speculate=False,
            )
            result = run_distributed(
                endpoint, library, faults=faults, policy=policy
            )
            assert dumps_job(result.job) == expected
            assert result.execution.worker_deaths >= 1
        finally:
            daemon.stop()
            thread.join(timeout=5.0)

"""Golden-job regression suite.

Snapshots the fully prepared :class:`~repro.core.job.MachineJob` (shot
list + dose map digests) for three small canonical layouts and pins
every execution path to it: a cold run, a warm-cache re-run and a
``workers=2`` run must all reproduce the stored digests.  Any change to
fracture order, PEC dosing, shard planning or the cache payload that
alters the prepared job — intentionally or not — fails here first.

After an intentional change, refresh the snapshots with::

    pytest tests/test_golden_jobs.py --update-golden

Digests are ``portable_digest`` values (9 significant digits) so they
survive last-ulp drift in transcendental library routines across
platforms, while the cross-path comparisons within one run use the
exact bit-level digest.
"""

import json
from pathlib import Path

import pytest

from repro.core.pipeline import PreparationPipeline
from repro.layout import generators
from repro.pec.dose_iter import IterativeDoseCorrector
from repro.physics.psf import DoubleGaussianPSF

GOLDEN_DIR = Path(__file__).parent / "golden"
PSF = DoubleGaussianPSF(alpha=0.2, beta=2.0, eta=0.74)
FIELD_SIZE = 20.0

#: The three canonical layouts: a line/space grating (machine-friendly
#: Manhattan data), a Fresnel zone-plate ring (curved, fracture-hostile)
#: and a pseudo-random logic cell (overlap-heavy wiring, pre-unioned by
#: the ``union`` overlap policy).
CANONICAL_LAYOUTS = {
    "grating": lambda: generators.grating(
        pitch=2.0, duty=0.5, lines=12, length=24.0
    ),
    "fzp_ring": lambda: generators.fresnel_zone_plate(
        zones=6, points_per_arc=24
    ),
    "logic_cell": lambda: generators.random_logic(
        chip_size=40.0, wire_width=1.0, target_density=0.15, seed=7
    ),
}


def build_pipeline(cache_dir=None):
    return PreparationPipeline(
        corrector=IterativeDoseCorrector(),
        psf=PSF,
        field_size=FIELD_SIZE,
        cache_dir=cache_dir,
        overlap_policy="union",
    )


def snapshot_of(result):
    job = result.job
    return {
        "figure_count": job.figure_count(),
        "job_digest": job.portable_digest(),
        "dose_digest": job.dose_digest(),
    }


#: Every key a golden snapshot may carry; an unknown (e.g. renamed and
#: orphaned) key in a committed file is an error, not silently ignored.
GOLDEN_KEYS = {
    "figure_count",
    "job_digest",
    "dose_digest",
    "raster_program_digest",
    "vsb_program_digest",
}


def golden_path(name):
    return GOLDEN_DIR / f"{name}.json"


def load_golden(name):
    path = golden_path(name)
    if not path.exists():
        pytest.fail(
            f"missing golden snapshot {path}; generate it with "
            f"`pytest tests/test_golden_jobs.py --update-golden`"
        )
    golden = json.loads(path.read_text())
    stale = set(golden) - GOLDEN_KEYS
    assert not stale, f"golden snapshot {path} carries unknown keys {stale}"
    return golden


@pytest.mark.parametrize("name", sorted(CANONICAL_LAYOUTS))
def test_prepared_job_matches_golden(name, update_golden, tmp_path):
    """Cold, warm-cache and workers=2 runs all reproduce the snapshot."""
    layout = CANONICAL_LAYOUTS[name]()
    pipe = build_pipeline(cache_dir=tmp_path / "cache")

    cold = pipe.run(layout)
    warm = pipe.run(layout)
    parallel = pipe.run(layout, workers=2, cache=False)

    # Within one session the three paths must be bit-identical, not just
    # digit-identical — the engine's determinism contract.
    assert cold.job.digest() == warm.job.digest() == parallel.job.digest()
    assert warm.execution.cache_hits == warm.execution.shard_count
    assert warm.execution.cache_misses == 0

    record = snapshot_of(cold)
    assert record == snapshot_of(warm)
    assert record == snapshot_of(parallel)

    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        merged = {}
        if golden_path(name).exists():
            merged = json.loads(golden_path(name).read_text())
        merged.update(record)
        golden_path(name).write_text(json.dumps(merged, indent=2) + "\n")
        return
    golden = load_golden(name)
    assert record == {k: golden.get(k) for k in record}, (
        f"prepared job for {name!r} diverged from the golden snapshot; "
        f"if the change is intentional, re-run with --update-golden"
    )


@pytest.mark.parametrize("name", sorted(CANONICAL_LAYOUTS))
def test_machine_programs_match_golden(name, update_golden, tmp_path):
    """Raster and VSB machine programs are deterministic and pinned.

    Cold, warm-cache and ``workers=2`` exports must be byte-identical on
    disk, and their stream digests must match the committed snapshots —
    any change to fracture order, dosing, shard planning, RLE encoding
    or the program container fails here.
    """
    layout = CANONICAL_LAYOUTS[name]()
    pipe = build_pipeline(cache_dir=tmp_path / "cache")

    record = {}
    for mode in ("raster", "vsb"):
        paths = {
            which: tmp_path / f"{which}.{mode}.ebp"
            for which in ("cold", "warm", "parallel")
        }
        cold = pipe.run(layout, machine=mode, program_path=paths["cold"])
        warm = pipe.run(layout, machine=mode, program_path=paths["warm"])
        parallel = pipe.run(
            layout,
            workers=2,
            cache=False,
            machine=mode,
            program_path=paths["parallel"],
        )
        cold_bytes = paths["cold"].read_bytes()
        assert cold_bytes == paths["warm"].read_bytes()
        assert cold_bytes == paths["parallel"].read_bytes()
        # The warm export answers every segment from the program cache.
        assert warm.machine_program.cache_hits == warm.machine_program.segment_count
        assert warm.machine_program.cache_misses == 0
        assert cold.machine_program.stream_bytes > 0
        assert parallel.machine_program.digest == cold.machine_program.digest
        record[f"{mode}_program_digest"] = cold.machine_program.digest

    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        merged = {}
        if golden_path(name).exists():
            merged = json.loads(golden_path(name).read_text())
        merged.update(record)
        golden_path(name).write_text(json.dumps(merged, indent=2) + "\n")
        return
    golden = load_golden(name)
    assert record == {k: golden.get(k) for k in record}, (
        f"machine programs for {name!r} diverged from the golden "
        f"snapshot; if the change is intentional, re-run with "
        f"--update-golden"
    )


def test_golden_snapshots_are_committed():
    """Every canonical layout has a snapshot on disk (guards against a
    fresh checkout silently skipping the comparison)."""
    for name in CANONICAL_LAYOUTS:
        assert golden_path(name).exists(), (
            f"tests/golden/{name}.json is missing from the repository"
        )


def test_snapshots_distinguish_layouts():
    """The three goldens are genuinely different jobs."""
    digests = [load_golden(name)["job_digest"] for name in CANONICAL_LAYOUTS]
    assert len(set(digests)) == len(digests)

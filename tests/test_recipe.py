"""Tests for the shared CLI/service preparation recipe."""

import pytest

from repro.core.pipeline import PreparationPipeline
from repro.core.recipe import PrepRecipe
from repro.fracture.shots import ShotFracturer
from repro.fracture.trapezoidal import TrapezoidFracturer
from repro.layout import generators


class TestValidation:
    def test_defaults_are_valid(self):
        recipe = PrepRecipe()
        assert recipe.fracture == "trapezoid"
        assert recipe.machine is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"fracture": "squares"},
            {"pec_matrix": "banded"},
            {"hierarchy": "deep"},
            {"machine": "laser"},
            {"max_shot": 0.0},
            {"max_shot": -1.0},
            {"energy": -3.0},
            {"dose": 0.0},
            {"address_unit": -0.5},
            {"pec_grid_cell": 0.0},
            {"field_size": -15.0},
            {"workers": -1},
            {"workers": 1.5},
            {"workers": True},
            {"pec": "yes"},
            {"dose": "high"},
            {"shard_retries": -1},
            {"shard_retries": 1.5},
            {"shard_retries": True},
            {"shard_timeout": 0.0},
            {"shard_timeout": -5.0},
            {"shard_timeout": True},
            {"shard_timeout": "later"},
        ],
    )
    def test_bad_values_raise_value_error(self, kwargs):
        with pytest.raises(ValueError):
            PrepRecipe(**kwargs)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown recipe option"):
            PrepRecipe.from_dict({"fractur": "vsb"})

    def test_round_trips_through_dict(self):
        recipe = PrepRecipe(pec=True, field_size=15.0, machine="raster")
        assert PrepRecipe.from_dict(recipe.to_dict()) == recipe

    def test_retry_knobs_round_trip(self):
        recipe = PrepRecipe(shard_retries=5, shard_timeout=2.5)
        assert PrepRecipe.from_dict(recipe.to_dict()) == recipe
        assert recipe.shard_retries == 5
        assert recipe.shard_timeout == 2.5

    def test_recipes_are_hashable_and_comparable(self):
        assert PrepRecipe() == PrepRecipe()
        assert len({PrepRecipe(), PrepRecipe(), PrepRecipe(pec=True)}) == 2


class TestBuildPipeline:
    def test_builds_trapezoid_pipeline(self):
        pipeline = PrepRecipe().build_pipeline()
        assert isinstance(pipeline, PreparationPipeline)
        assert isinstance(pipeline.fracturer, TrapezoidFracturer)
        assert pipeline.corrector is None
        assert pipeline.cache is None

    def test_builds_vsb_pec_pipeline(self):
        recipe = PrepRecipe(
            fracture="vsb", max_shot=1.5, pec=True, pec_matrix="sparse"
        )
        pipeline = recipe.build_pipeline()
        assert isinstance(pipeline.fracturer, ShotFracturer)
        assert pipeline.fracturer.max_shot == 1.5
        assert pipeline.corrector is not None
        assert pipeline.corrector.matrix_mode == "sparse"
        assert pipeline.psf is not None

    def test_explicit_cache_wins_over_cache_dir(self, tmp_path):
        from repro.core.cache import ShardCache

        cache = ShardCache(tmp_path / "a")
        pipeline = PrepRecipe().build_pipeline(
            cache=cache, cache_dir=tmp_path / "b"
        )
        assert pipeline.cache is cache

    def test_cache_dir_builds_cache(self, tmp_path):
        pipeline = PrepRecipe().build_pipeline(cache_dir=tmp_path / "c")
        assert pipeline.cache is not None
        assert pipeline.cache.root == tmp_path / "c"

    def test_recipe_run_matches_direct_pipeline(self):
        recipe = PrepRecipe(field_size=15.0)
        via_recipe = recipe.build_pipeline().run(
            generators.fresnel_zone_plate(), name="fzp"
        )
        direct = PreparationPipeline(field_size=15.0).run(
            generators.fresnel_zone_plate(), name="fzp"
        )
        assert via_recipe.job.digest() == direct.job.digest()

"""Equivalence suite: the vectorized kernel vs. the Fraction oracle.

The fast kernel's whole contract is *bit-identity* with the reference
scanline engine — same trapezoids, same floats, same order.  These
tests assert exactly that (``Trapezoid.__eq__`` compares exact float
values) over generator-drawn layouts and over the degenerate inputs the
sweep is most fragile on: collinear/shared edges, shared vertices,
zero-height slab candidates, self-touching polygons and proper interior
crossings (which exercise the rational-slab scalar path).
"""

import math
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import scanline_fast
from repro.geometry.boolean import boolean_trapezoids
from repro.geometry.polygon import Polygon
from repro.geometry.scanline import snap_polygon
from repro.geometry.scanline_fast import (
    COORD_LIMIT,
    KernelFallbacks,
    sweep_trapezoids_fast,
)
from repro.geometry.transform import Transform
from repro.geometry.trapezoid import Trapezoid
from repro.geometry.vertex_array import (
    snap_rings,
    transform_polygons,
    transform_trapezoid_array,
    trapezoid_array,
    trapezoids_from_array,
)
from repro.core.hierarchical import transform_trapezoid
from repro.layout.flatten import flatten_cell

from layout_strategies import (
    crossing_dense_polygons,
    generated_libraries,
    large_coordinate_polygons,
)


def both_kernels(polys_a, polys_b=(), operation="or", **kwargs):
    exact = boolean_trapezoids(
        polys_a, polys_b, operation, kernel="exact", **kwargs
    )
    fast = boolean_trapezoids(
        polys_a, polys_b, operation, kernel="fast", **kwargs
    )
    return exact, fast


def assert_identical(polys_a, polys_b=(), operation="or", **kwargs):
    exact, fast = both_kernels(polys_a, polys_b, operation, **kwargs)
    assert fast == exact  # Trapezoid equality is exact float equality
    return exact


class TestGeneratedLayouts:
    @settings(max_examples=30, deadline=None)
    @given(generated_libraries())
    def test_union_bit_identical(self, library):
        flat = flatten_cell(library.top_cell())
        polys = [p for v in flat.values() for p in v]
        assert_identical(polys)

    @settings(max_examples=15, deadline=None)
    @given(generated_libraries(), generated_libraries())
    def test_binary_operations_bit_identical(self, lib_a, lib_b):
        polys_a = [
            p for v in flatten_cell(lib_a.top_cell()).values() for p in v
        ]
        polys_b = [
            p for v in flatten_cell(lib_b.top_cell()).values() for p in v
        ]
        for operation in ("or", "and", "sub", "xor"):
            assert_identical(polys_a, polys_b, operation)

    @settings(max_examples=15, deadline=None)
    @given(generated_libraries())
    def test_evenodd_and_unmerged_bit_identical(self, library):
        flat = flatten_cell(library.top_cell())
        polys = [p for v in flat.values() for p in v]
        assert_identical(polys, fill_rule="evenodd")
        assert_identical(polys, merge=False)


@st.composite
def crossing_triangles(draw):
    """Triangles with random slanted edges — proper interior crossings
    (rational slab boundaries) are the norm here, not the exception."""
    coord = st.floats(
        min_value=-40.0, max_value=40.0, allow_nan=False, allow_infinity=False
    )
    tris = []
    for _ in range(draw(st.integers(min_value=2, max_value=5))):
        pts = [(draw(coord), draw(coord)) for _ in range(3)]
        ax, ay = pts[0]
        bx, by = pts[1]
        cx, cy = pts[2]
        if abs((bx - ax) * (cy - ay) - (by - ay) * (cx - ax)) < 1e-3:
            continue  # degenerate sliver; the fixed cases cover those
        tris.append(Polygon(pts))
    return tris


class TestCrossingHeavyLayouts:
    @settings(max_examples=40, deadline=None)
    @given(crossing_triangles(), crossing_triangles())
    def test_crossing_triangles_bit_identical(self, tris_a, tris_b):
        for operation in ("or", "and", "sub", "xor"):
            assert_identical(tris_a, tris_b, operation)


class TestDegenerateInputs:
    def test_collinear_overlapping_edges(self):
        a = Polygon.rectangle(0, 0, 10, 10)
        b = Polygon.rectangle(0, 5, 10, 15)  # shares the full x-range
        c = Polygon.rectangle(3, 2, 7, 10)  # right edge inside a's interior
        for operation in ("or", "and", "sub", "xor"):
            assert_identical([a, c], [b], operation)

    def test_shared_vertices(self):
        a = Polygon([(0, 0), (10, 0), (5, 8)])
        b = Polygon([(5, 8), (10, 16), (0, 16)])  # touches a at its apex
        c = Polygon([(10, 0), (20, 0), (20, 8)])  # shares a corner with a
        assert_identical([a, b, c])
        assert_identical([a, b], [c], "xor")

    def test_zero_height_slab_candidates(self):
        # Horizontal edges at many shared ys produce coincident slab
        # boundaries; the sweep must not emit zero-height slabs.
        polys = [
            Polygon.rectangle(i * 2.0, 0.0, i * 2.0 + 1.0, 5.0)
            for i in range(6)
        ]
        polys.append(Polygon.rectangle(0.0, 5.0, 11.0, 5.0 + 1e-9))
        assert_identical(polys)

    def test_self_touching_polygon(self):
        # A bow-tie-like ring that touches itself at one point.
        p = Polygon([(0, 0), (4, 4), (8, 0), (8, 8), (4, 4), (0, 8)])
        assert_identical([p])
        assert_identical([p], fill_rule="evenodd")

    def test_self_intersecting_polygon(self):
        bowtie = Polygon([(0, 0), (10, 10), (10, 0), (0, 10)])
        assert_identical([bowtie])
        assert_identical([bowtie], fill_rule="evenodd")

    def test_duplicate_and_sliver_polygons(self):
        a = Polygon.rectangle(0, 0, 10, 10)
        sliver = Polygon([(0, 0), (10, 0), (10, 1e-12)])  # snaps flat
        assert_identical([a, a, sliver])

    def test_proper_interior_crossings(self):
        tri1 = Polygon([(0, 0), (10, 1), (5, 9)])
        tri2 = Polygon([(1, 5), (9, 0.5), (8, 8)])
        for operation in ("or", "and", "sub", "xor"):
            assert_identical([tri1], [tri2], operation)

    def test_shared_y_band_triangle_row(self):
        # Many disjoint slanted edges sharing one y band: the worst
        # case for crossing-candidate generation (every pair y-overlaps
        # but none cross).  Guards the batched-pruning path.
        polys = [
            Polygon(
                [(i * 3.0, 0.0), (i * 3.0 + 2.0, 0.1), (i * 3.0 + 1.0, 10.0)]
            )
            for i in range(300)
        ]
        traps = assert_identical(polys)
        assert len(traps) >= 300

    def test_rotated_squares_star(self):
        base = Polygon.square((0.0, 0.0), 10.0)
        rotated = [
            base.rotated(math.radians(angle)) for angle in (0, 15, 30, 45)
        ]
        assert_identical(rotated)

    def test_empty_inputs(self):
        assert sweep_trapezoids_fast([], [], "or") == []
        a = Polygon.rectangle(0, 0, 5, 5)
        assert_identical([a], [], "and")


def assert_fast_path(polys_a, polys_b=(), operation="or", **kwargs):
    """Bit-identity AND zero degradation: the sweep must complete on
    the vectorized path with every fallback counter untouched."""
    fallbacks = KernelFallbacks()
    fast = sweep_trapezoids_fast(
        polys_a, polys_b, operation, fallbacks=fallbacks, **kwargs
    )
    assert fast is not None
    assert fallbacks.total() == 0
    exact = boolean_trapezoids(
        polys_a, polys_b, operation, kernel="exact", **kwargs
    )
    assert fast == exact  # Trapezoid equality is exact float equality
    return fast


def shifted_triangles(dx, dy):
    """A fixed overlapping slanted-triangle cluster translated so its
    extreme coordinate lands exactly where the caller aims it."""
    base = [
        Polygon([(0, 0), (60, 13), (17, 41)]),
        Polygon([(5, -8), (47, 30), (-11, 22)]),
        Polygon([(-20, 5), (33, -17), (28, 35)]),
    ]
    return [
        Polygon([(v.x + dx, v.y + dy) for v in p.vertices]) for p in base
    ]


class TestCoordinateLimitFallback:
    def test_oversized_coordinates_fall_back_to_exact(self):
        # Beyond 2**53 database units integers are no longer exactly
        # representable in the snapped float64 arrays, so the kernel
        # must defer to the reference engine — and say so.
        far = COORD_LIMIT * 1e-3 * 2.0
        a = Polygon.rectangle(far, far, far + 10.0, far + 10.0)
        fallbacks = KernelFallbacks()
        assert sweep_trapezoids_fast([a], [], "or", fallbacks=fallbacks) is None
        assert fallbacks.coord_limit == 1
        assert fallbacks.rational_slab == 0
        exact = assert_identical([a])  # public API falls back silently
        assert len(exact) == 1

    def test_astronomical_raw_coordinates_fall_back_before_snap(self):
        # 1e30 / grid overflows int64 — the raw-peak pre-check must
        # refuse (counted) before float->int conversion goes undefined.
        a = Polygon.rectangle(0.0, 0.0, 1e30, 1e30)
        fallbacks = KernelFallbacks()
        assert sweep_trapezoids_fast([a], [], "or", fallbacks=fallbacks) is None
        assert fallbacks.coord_limit == 1

    def test_within_limit_uses_fast_path(self):
        a = Polygon.rectangle(0, 0, 10, 10)
        assert sweep_trapezoids_fast([a], [], "or") is not None


class TestOrderEmbeddingBoundaries:
    """Pins at every regime boundary of the widened order embedding
    (grid=1.0 so layout units are database units verbatim)."""

    def test_old_float_key_boundary_stays_fast(self):
        # 2**24 was the old kernel's hard fallback limit; both sides of
        # it must now run vectorized and bit-identical.
        for off in ((1 << 24) - 100, 1 << 24, (1 << 24) + 1):
            assert_fast_path(
                shifted_triangles(off, off),
                shifted_triangles(off + 13, off - 7),
                "xor",
                grid=1.0,
            )

    def test_int64_key_boundary_stays_fast(self):
        # 2**31 - 1 separates the pure-int64 keys from the big-integer
        # digit-word keys; both regimes must agree with the oracle.
        for off in ((1 << 31) - 1000, (1 << 31) + 1):
            assert_fast_path(
                shifted_triangles(off, -off),
                shifted_triangles(off - 29, -off + 11),
                "or",
                grid=1.0,
            )

    def test_full_range_up_to_2_53_stays_fast(self):
        # The docstring proof covers |coord| <= 2**53 inclusive: a
        # vertex exactly at the limit must still take the fast path.
        lim = 1 << 53
        polys = [
            Polygon([(lim - 80, lim - 90), (lim, lim - 25), (lim - 55, lim)]),
            Polygon([(lim - 95, lim - 60), (lim - 10, lim - 70),
                     (lim - 30, lim - 5)]),
        ]
        assert_fast_path(polys, (), "or", grid=1.0)

    def test_just_beyond_2_53_falls_back_counted(self):
        # lim + 2, not lim + 1: odd integers above 2**53 are not float64
        # values, so lim + 1 would round back to the limit in the input
        # Polygon before the kernel ever saw it.
        lim = 1 << 53
        polys = [Polygon([(lim - 80, 0), (lim + 2, 40), (lim - 30, 90)])]
        fallbacks = KernelFallbacks()
        assert (
            sweep_trapezoids_fast(polys, (), "or", grid=1.0,
                                  fallbacks=fallbacks)
            is None
        )
        assert fallbacks.coord_limit == 1


class TestExactCrossingArithmetic:
    """Crossing ys that only collide after float rounding: detection,
    dedup and slab assembly must compare exact rationals throughout."""

    N = 1 << 28

    def _collision_cluster(self, y_off=0):
        # The slanted edges cross the vertical edge x=1 at
        # y = y_off + (N+1)/(N+2) and y = y_off + (N+2)/(N+3):
        # distinct rationals whose float64 renderings coincide.
        n = self.N
        tri1 = Polygon([(0, y_off), (n + 2, y_off + n + 1),
                        (0, y_off + n + 1)])
        tri2 = Polygon([(0, y_off), (n + 3, y_off + n + 2),
                        (0, y_off + n + 2)])
        rect = Polygon.rectangle(1, y_off - 10, 2, y_off + n)
        return [tri1, tri2, rect]

    def test_crossing_ys_collide_only_as_floats(self):
        n = self.N
        a = Fraction(n + 1, n + 2)
        b = Fraction(n + 2, n + 3)
        assert a != b
        assert float(a) == float(b)  # the construction's whole point

    def test_float_colliding_crossings_bit_identical(self):
        polys = self._collision_cluster()
        for operation in ("or", "and", "xor"):
            assert_fast_path(polys[:2], polys[2:], operation, grid=1.0)

    def test_subulp_slab_at_large_magnitude(self):
        # Translated to y ~ 2**48 the two crossing ys still differ as
        # rationals but render to the *same* float64, so the slab
        # between them has exact positive height and zero rendered
        # height.  Regression: the reference engine used to crash here
        # ("y_top must exceed y_bottom") and the fast kernel, falling
        # back at 2**24, crashed with it; both engines now drop the
        # zero-area slab and stay bit-identical.
        k = 1 << 48
        n = self.N
        assert float(k + Fraction(n + 1, n + 2)) == float(
            k + Fraction(n + 2, n + 3)
        )
        polys = self._collision_cluster(y_off=k)
        for operation in ("or", "xor"):
            assert_fast_path(polys[:2], polys[2:], operation, grid=1.0)


class TestRationalSlabVectorization:
    def test_crossing_rich_sweep_never_hits_scalar_loop(self, monkeypatch):
        # The scalar ScanEdge+Fraction slab loop must be dead code for
        # every reachable input: make it explode and sweep a
        # crossing-dense layout through all operations.
        def _boom(*args, **kwargs):
            raise AssertionError("scalar slab path reached")

        monkeypatch.setattr(scanline_fast, "_sweep_scalar_slab", _boom)
        tris = [
            Polygon([(i * 3, (i * 7) % 11), (i * 3 + 40, (i * 5) % 13 + 2),
                     (i * 3 + 15, 35 + (i * 3) % 7)])
            for i in range(12)
        ]
        for operation in ("or", "and", "sub", "xor"):
            assert_fast_path(tris[:6], tris[6:], operation, grid=1.0)
        # ... including at coordinates that force the big-integer keys.
        wide = [
            Polygon([(v.x + (1 << 40), v.y - (1 << 40)) for v in p.vertices])
            for p in tris
        ]
        assert_fast_path(wide[:6], wide[6:], "xor", grid=1.0)

    def test_safety_valve_is_counted_and_still_exact(self, monkeypatch):
        # Force every rational slab through the (normally unreachable)
        # scalar valve: the result must stay bit-identical and every
        # degraded slab must be counted.
        monkeypatch.setattr(scanline_fast, "_MAX_FRACTION_WORDS", 0)
        tri1 = Polygon([(0, 0), (10, 1), (5, 9)])
        tri2 = Polygon([(1, 5), (9, 0), (8, 8)])
        fallbacks = KernelFallbacks()
        fast = sweep_trapezoids_fast(
            [tri1], [tri2], "or", grid=1.0, fallbacks=fallbacks
        )
        exact = boolean_trapezoids(
            [tri1], [tri2], "or", grid=1.0, kernel="exact"
        )
        assert fast == exact
        assert fallbacks.rational_slab > 0
        assert fallbacks.coord_limit == 0


class TestWideCoordinateEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(large_coordinate_polygons(), st.sampled_from(
        ["or", "and", "sub", "xor"]
    ))
    def test_large_coordinates_bit_identical_no_fallbacks(
        self, polys, operation
    ):
        half = len(polys) // 2
        assert_fast_path(polys[:half], polys[half:], operation, grid=1.0)

    @settings(max_examples=40, deadline=None)
    @given(crossing_dense_polygons(), st.sampled_from(
        ["or", "and", "sub", "xor"]
    ))
    def test_crossing_dense_bit_identical_no_fallbacks(
        self, polys, operation
    ):
        half = len(polys) // 2
        assert_fast_path(polys[:half], polys[half:], operation, grid=1.0)

    @settings(max_examples=20, deadline=None)
    @given(large_coordinate_polygons())
    def test_large_coordinates_evenodd_and_unmerged(self, polys):
        assert_fast_path(polys, (), "or", grid=1.0, fill_rule="evenodd")
        assert_fast_path(polys, (), "or", grid=1.0, merge=False)


class TestVertexArrayHelpers:
    @settings(max_examples=20, deadline=None)
    @given(generated_libraries())
    def test_snap_rings_matches_snap_polygon(self, library):
        flat = flatten_cell(library.top_cell())
        polys = [p for v in flat.values() for p in v]
        ints, offsets = snap_rings(polys, 1e-3)
        for i, poly in enumerate(polys):
            ring = [tuple(v) for v in ints[offsets[i] : offsets[i + 1]].tolist()]
            assert ring == snap_polygon(poly, 1e-3)

    def test_snap_rings_drops_closing_duplicate(self):
        p = Polygon([(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (1e-5, 1e-5)])
        ints, offsets = snap_rings([p], 1e-3)
        assert [tuple(v) for v in ints.tolist()] == snap_polygon(p, 1e-3)

    @settings(max_examples=20, deadline=None)
    @given(generated_libraries())
    def test_transform_polygons_matches_scalar(self, library):
        flat = flatten_cell(library.top_cell())
        polys = [p for v in flat.values() for p in v]
        t = Transform.gdsii(
            origin=(3.25, -7.5), rotation_deg=180.0,
            magnification=1.5, x_reflection=True,
        )
        batch = transform_polygons(polys, t)
        scalar = [p.transformed(t) for p in polys]
        assert batch == scalar  # Polygon equality is exact Point equality

    def test_transform_trapezoid_array_matches_scalar(self):
        traps = [
            Trapezoid(0, 2, 0, 10, 2, 8),
            Trapezoid(-3, -1, -5, 5, -5, 5),
            Trapezoid(1, 4, 2, 2, 0, 6),  # zero-length bottom edge
        ]
        transforms = [
            Transform.translation(5, 7),
            Transform.mirror_x(),
            Transform.mirror_y(),
            Transform.rotation(math.pi),
            Transform.gdsii(origin=(2, 3), rotation_deg=180.0,
                            magnification=2.0, x_reflection=True),
        ]
        for t in transforms:
            batch = trapezoids_from_array(
                transform_trapezoid_array(trapezoid_array(traps), t)
            )
            scalar = [transform_trapezoid(trap, t) for trap in traps]
            assert batch == scalar  # exact float equality per corner

    def test_transform_trapezoid_array_rejects_tilt(self):
        arr = trapezoid_array([Trapezoid(0, 1, 0, 1, 0, 1)])
        with pytest.raises(ValueError):
            transform_trapezoid_array(arr, Transform.rotation(0.3))

    def test_trapezoid_array_round_trip(self):
        traps = [Trapezoid(0, 2, 0, 10, 2, 8), Trapezoid(5, 6, 1, 2, 1, 2)]
        arr = trapezoid_array(traps)
        assert arr.shape == (2, 6)
        assert trapezoids_from_array(arr) == traps
        assert trapezoids_from_array(np.empty((0, 6))) == []

"""Equivalence suite: the vectorized kernel vs. the Fraction oracle.

The fast kernel's whole contract is *bit-identity* with the reference
scanline engine — same trapezoids, same floats, same order.  These
tests assert exactly that (``Trapezoid.__eq__`` compares exact float
values) over generator-drawn layouts and over the degenerate inputs the
sweep is most fragile on: collinear/shared edges, shared vertices,
zero-height slab candidates, self-touching polygons and proper interior
crossings (which exercise the rational-slab scalar path).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.boolean import boolean_trapezoids
from repro.geometry.polygon import Polygon
from repro.geometry.scanline import snap_polygon
from repro.geometry.scanline_fast import COORD_LIMIT, sweep_trapezoids_fast
from repro.geometry.transform import Transform
from repro.geometry.trapezoid import Trapezoid
from repro.geometry.vertex_array import (
    snap_rings,
    transform_polygons,
    transform_trapezoid_array,
    trapezoid_array,
    trapezoids_from_array,
)
from repro.core.hierarchical import transform_trapezoid
from repro.layout.flatten import flatten_cell

from layout_strategies import generated_libraries


def both_kernels(polys_a, polys_b=(), operation="or", **kwargs):
    exact = boolean_trapezoids(
        polys_a, polys_b, operation, kernel="exact", **kwargs
    )
    fast = boolean_trapezoids(
        polys_a, polys_b, operation, kernel="fast", **kwargs
    )
    return exact, fast


def assert_identical(polys_a, polys_b=(), operation="or", **kwargs):
    exact, fast = both_kernels(polys_a, polys_b, operation, **kwargs)
    assert fast == exact  # Trapezoid equality is exact float equality
    return exact


class TestGeneratedLayouts:
    @settings(max_examples=30, deadline=None)
    @given(generated_libraries())
    def test_union_bit_identical(self, library):
        flat = flatten_cell(library.top_cell())
        polys = [p for v in flat.values() for p in v]
        assert_identical(polys)

    @settings(max_examples=15, deadline=None)
    @given(generated_libraries(), generated_libraries())
    def test_binary_operations_bit_identical(self, lib_a, lib_b):
        polys_a = [
            p for v in flatten_cell(lib_a.top_cell()).values() for p in v
        ]
        polys_b = [
            p for v in flatten_cell(lib_b.top_cell()).values() for p in v
        ]
        for operation in ("or", "and", "sub", "xor"):
            assert_identical(polys_a, polys_b, operation)

    @settings(max_examples=15, deadline=None)
    @given(generated_libraries())
    def test_evenodd_and_unmerged_bit_identical(self, library):
        flat = flatten_cell(library.top_cell())
        polys = [p for v in flat.values() for p in v]
        assert_identical(polys, fill_rule="evenodd")
        assert_identical(polys, merge=False)


@st.composite
def crossing_triangles(draw):
    """Triangles with random slanted edges — proper interior crossings
    (rational slab boundaries) are the norm here, not the exception."""
    coord = st.floats(
        min_value=-40.0, max_value=40.0, allow_nan=False, allow_infinity=False
    )
    tris = []
    for _ in range(draw(st.integers(min_value=2, max_value=5))):
        pts = [(draw(coord), draw(coord)) for _ in range(3)]
        ax, ay = pts[0]
        bx, by = pts[1]
        cx, cy = pts[2]
        if abs((bx - ax) * (cy - ay) - (by - ay) * (cx - ax)) < 1e-3:
            continue  # degenerate sliver; the fixed cases cover those
        tris.append(Polygon(pts))
    return tris


class TestCrossingHeavyLayouts:
    @settings(max_examples=40, deadline=None)
    @given(crossing_triangles(), crossing_triangles())
    def test_crossing_triangles_bit_identical(self, tris_a, tris_b):
        for operation in ("or", "and", "sub", "xor"):
            assert_identical(tris_a, tris_b, operation)


class TestDegenerateInputs:
    def test_collinear_overlapping_edges(self):
        a = Polygon.rectangle(0, 0, 10, 10)
        b = Polygon.rectangle(0, 5, 10, 15)  # shares the full x-range
        c = Polygon.rectangle(3, 2, 7, 10)  # right edge inside a's interior
        for operation in ("or", "and", "sub", "xor"):
            assert_identical([a, c], [b], operation)

    def test_shared_vertices(self):
        a = Polygon([(0, 0), (10, 0), (5, 8)])
        b = Polygon([(5, 8), (10, 16), (0, 16)])  # touches a at its apex
        c = Polygon([(10, 0), (20, 0), (20, 8)])  # shares a corner with a
        assert_identical([a, b, c])
        assert_identical([a, b], [c], "xor")

    def test_zero_height_slab_candidates(self):
        # Horizontal edges at many shared ys produce coincident slab
        # boundaries; the sweep must not emit zero-height slabs.
        polys = [
            Polygon.rectangle(i * 2.0, 0.0, i * 2.0 + 1.0, 5.0)
            for i in range(6)
        ]
        polys.append(Polygon.rectangle(0.0, 5.0, 11.0, 5.0 + 1e-9))
        assert_identical(polys)

    def test_self_touching_polygon(self):
        # A bow-tie-like ring that touches itself at one point.
        p = Polygon([(0, 0), (4, 4), (8, 0), (8, 8), (4, 4), (0, 8)])
        assert_identical([p])
        assert_identical([p], fill_rule="evenodd")

    def test_self_intersecting_polygon(self):
        bowtie = Polygon([(0, 0), (10, 10), (10, 0), (0, 10)])
        assert_identical([bowtie])
        assert_identical([bowtie], fill_rule="evenodd")

    def test_duplicate_and_sliver_polygons(self):
        a = Polygon.rectangle(0, 0, 10, 10)
        sliver = Polygon([(0, 0), (10, 0), (10, 1e-12)])  # snaps flat
        assert_identical([a, a, sliver])

    def test_proper_interior_crossings(self):
        tri1 = Polygon([(0, 0), (10, 1), (5, 9)])
        tri2 = Polygon([(1, 5), (9, 0.5), (8, 8)])
        for operation in ("or", "and", "sub", "xor"):
            assert_identical([tri1], [tri2], operation)

    def test_shared_y_band_triangle_row(self):
        # Many disjoint slanted edges sharing one y band: the worst
        # case for crossing-candidate generation (every pair y-overlaps
        # but none cross).  Guards the batched-pruning path.
        polys = [
            Polygon(
                [(i * 3.0, 0.0), (i * 3.0 + 2.0, 0.1), (i * 3.0 + 1.0, 10.0)]
            )
            for i in range(300)
        ]
        traps = assert_identical(polys)
        assert len(traps) >= 300

    def test_rotated_squares_star(self):
        base = Polygon.square((0.0, 0.0), 10.0)
        rotated = [
            base.rotated(math.radians(angle)) for angle in (0, 15, 30, 45)
        ]
        assert_identical(rotated)

    def test_empty_inputs(self):
        assert sweep_trapezoids_fast([], [], "or") == []
        a = Polygon.rectangle(0, 0, 5, 5)
        assert_identical([a], [], "and")


class TestCoordinateLimitFallback:
    def test_oversized_coordinates_fall_back_to_exact(self):
        # 2**24 database units is 16.7 mm at the 1 nm default grid;
        # beyond it the fast kernel must defer to the reference.
        far = COORD_LIMIT * 1e-3 * 2.0
        a = Polygon.rectangle(far, far, far + 10.0, far + 10.0)
        assert sweep_trapezoids_fast([a], [], "or") is None
        exact = assert_identical([a])  # public API falls back silently
        assert len(exact) == 1

    def test_within_limit_uses_fast_path(self):
        a = Polygon.rectangle(0, 0, 10, 10)
        assert sweep_trapezoids_fast([a], [], "or") is not None


class TestVertexArrayHelpers:
    @settings(max_examples=20, deadline=None)
    @given(generated_libraries())
    def test_snap_rings_matches_snap_polygon(self, library):
        flat = flatten_cell(library.top_cell())
        polys = [p for v in flat.values() for p in v]
        ints, offsets = snap_rings(polys, 1e-3)
        for i, poly in enumerate(polys):
            ring = [tuple(v) for v in ints[offsets[i] : offsets[i + 1]].tolist()]
            assert ring == snap_polygon(poly, 1e-3)

    def test_snap_rings_drops_closing_duplicate(self):
        p = Polygon([(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (1e-5, 1e-5)])
        ints, offsets = snap_rings([p], 1e-3)
        assert [tuple(v) for v in ints.tolist()] == snap_polygon(p, 1e-3)

    @settings(max_examples=20, deadline=None)
    @given(generated_libraries())
    def test_transform_polygons_matches_scalar(self, library):
        flat = flatten_cell(library.top_cell())
        polys = [p for v in flat.values() for p in v]
        t = Transform.gdsii(
            origin=(3.25, -7.5), rotation_deg=180.0,
            magnification=1.5, x_reflection=True,
        )
        batch = transform_polygons(polys, t)
        scalar = [p.transformed(t) for p in polys]
        assert batch == scalar  # Polygon equality is exact Point equality

    def test_transform_trapezoid_array_matches_scalar(self):
        traps = [
            Trapezoid(0, 2, 0, 10, 2, 8),
            Trapezoid(-3, -1, -5, 5, -5, 5),
            Trapezoid(1, 4, 2, 2, 0, 6),  # zero-length bottom edge
        ]
        transforms = [
            Transform.translation(5, 7),
            Transform.mirror_x(),
            Transform.mirror_y(),
            Transform.rotation(math.pi),
            Transform.gdsii(origin=(2, 3), rotation_deg=180.0,
                            magnification=2.0, x_reflection=True),
        ]
        for t in transforms:
            batch = trapezoids_from_array(
                transform_trapezoid_array(trapezoid_array(traps), t)
            )
            scalar = [transform_trapezoid(trap, t) for trap in traps]
            assert batch == scalar  # exact float equality per corner

    def test_transform_trapezoid_array_rejects_tilt(self):
        arr = trapezoid_array([Trapezoid(0, 1, 0, 1, 0, 1)])
        with pytest.raises(ValueError):
            transform_trapezoid_array(arr, Transform.rotation(0.3))

    def test_trapezoid_array_round_trip(self):
        traps = [Trapezoid(0, 2, 0, 10, 2, 8), Trapezoid(5, 6, 1, 2, 1, 2)]
        arr = trapezoid_array(traps)
        assert arr.shape == (2, 6)
        assert trapezoids_from_array(arr) == traps
        assert trapezoids_from_array(np.empty((0, 6))) == []

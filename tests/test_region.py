"""Tests for repro.geometry.region."""

import pytest

from repro.geometry.polygon import Polygon
from repro.geometry.region import Region
from repro.geometry.transform import Transform


@pytest.fixture
def left():
    return Region([Polygon.rectangle(0, 0, 10, 10)])


@pytest.fixture
def right():
    return Region([Polygon.rectangle(5, 5, 15, 15)])


class TestAlgebra:
    def test_or(self, left, right):
        assert (left | right).area() == pytest.approx(175.0)

    def test_and(self, left, right):
        assert (left & right).area() == pytest.approx(25.0)

    def test_sub(self, left, right):
        assert (left - right).area() == pytest.approx(75.0)

    def test_xor(self, left, right):
        assert (left ^ right).area() == pytest.approx(150.0)

    def test_merged_resolves_overlap(self):
        r = Region(
            [Polygon.rectangle(0, 0, 10, 10), Polygon.rectangle(5, 0, 15, 10)]
        )
        assert r.raw_area() == pytest.approx(200.0)
        assert r.merged().raw_area() == pytest.approx(150.0)

    def test_chained_operations(self, left, right):
        ring = (left | right) - (left & right)
        assert ring.area() == pytest.approx(150.0)

    def test_empty_region(self):
        e = Region.empty()
        assert e.is_empty()
        assert not e
        assert len(e) == 0

    def test_operation_with_empty(self, left):
        assert (left | Region.empty()).area() == pytest.approx(100.0)
        assert (left & Region.empty()).area() == pytest.approx(0.0)


class TestQueries:
    def test_area_counts_overlap_once(self):
        r = Region(
            [Polygon.rectangle(0, 0, 10, 10), Polygon.rectangle(0, 0, 10, 10)]
        )
        assert r.area() == pytest.approx(100.0)

    def test_bounding_box(self, left, right):
        assert (left | right).bounding_box() == pytest.approx((0, 0, 15, 15))

    def test_bounding_box_empty_raises(self):
        with pytest.raises(ValueError):
            Region.empty().bounding_box()

    def test_contains_point(self, left):
        assert left.contains_point((5, 5))
        assert not left.contains_point((50, 50))

    def test_from_rectangles(self):
        r = Region.from_rectangles([(0, 0, 1, 1), (2, 2, 3, 3)])
        assert r.area() == pytest.approx(2.0)

    def test_trapezoids_cover_area(self, left, right):
        u = left | right
        assert sum(t.area() for t in u.trapezoids()) == pytest.approx(175.0)


class TestTransforms:
    def test_translated(self, left):
        moved = left.translated(100, 0)
        assert moved.bounding_box() == pytest.approx((100, 0, 110, 10))
        assert moved.area() == pytest.approx(100.0)

    def test_transformed_rotation_preserves_area(self, left):
        import math

        rotated = left.transformed(Transform.rotation(math.radians(45)))
        assert rotated.area() == pytest.approx(100.0, rel=1e-4)

    def test_immutability(self, left, right):
        _ = left | right
        assert left.area() == pytest.approx(100.0)
        assert len(left.polygons) == 1

"""Tests for the core pipeline, job, metrics and comparison harness."""

import pytest

from repro.core.compare import compare_machines
from repro.core.job import MachineJob
from repro.core.metrics import fidelity_report
from repro.core.pipeline import PreparationPipeline
from repro.fracture.base import Shot
from repro.fracture.shots import ShotFracturer
from repro.geometry.polygon import Polygon
from repro.geometry.trapezoid import Trapezoid
from repro.layout import generators
from repro.layout.cell import Cell
from repro.layout.layer import Layer
from repro.machine.raster import RasterScanWriter
from repro.machine.vector import VectorScanWriter
from repro.machine.vsb import ShapedBeamWriter
from repro.pec.dose_iter import IterativeDoseCorrector
from repro.physics.psf import DoubleGaussianPSF, psf_for
from repro.physics.resist import Resist


@pytest.fixture
def psf():
    return DoubleGaussianPSF(alpha=0.15, beta=2.0, eta=0.74)


class TestMachineJob:
    def test_bbox_from_shots(self):
        shots = [
            Shot(Trapezoid.from_rectangle(0, 0, 2, 2)),
            Shot(Trapezoid.from_rectangle(8, 8, 10, 10)),
        ]
        job = MachineJob(shots)
        assert job.bounding_box == (0, 0, 10, 10)
        assert job.chip_area() == 100.0

    def test_explicit_bbox(self):
        job = MachineJob(
            [Shot(Trapezoid.from_rectangle(0, 0, 1, 1))],
            bounding_box=(0, 0, 10, 10),
        )
        assert job.pattern_density() == pytest.approx(0.01)

    def test_dose_accounting(self):
        shots = [
            Shot(Trapezoid.from_rectangle(0, 0, 2, 2), dose=1.0),
            Shot(Trapezoid.from_rectangle(3, 0, 5, 2), dose=2.0),
        ]
        job = MachineJob(shots)
        assert job.pattern_area() == pytest.approx(8.0)
        assert job.dose_weighted_area() == pytest.approx(4.0 + 8.0)
        assert job.dose_weighted_count() == pytest.approx(3.0)
        assert job.dose_range() == (1.0, 2.0)

    def test_empty_job(self):
        job = MachineJob([])
        assert job.figure_count() == 0
        assert job.pattern_density() == 0.0
        assert job.dose_range() == (0.0, 0.0)

    def test_base_dose_validation(self):
        with pytest.raises(ValueError):
            MachineJob([], base_dose=0)


class TestPipeline:
    def test_runs_on_library(self):
        pipe = PreparationPipeline(machines=[RasterScanWriter()])
        result = pipe.run(generators.grating(lines=5))
        assert result.job.figure_count() == 5
        assert "raster" in result.write_times
        assert result.job.name == "GRATING"

    def test_runs_on_cell(self):
        cell = Cell("X")
        cell.add_rectangle(0, 0, 10, 10)
        result = PreparationPipeline().run(cell)
        assert result.job.figure_count() == 1

    def test_runs_on_polygons(self):
        result = PreparationPipeline().run([Polygon.rectangle(0, 0, 1, 1)])
        assert result.job.figure_count() == 1
        assert result.source_polygons == 1

    def test_layer_filter(self):
        cell = Cell("X")
        cell.add_rectangle(0, 0, 1, 1, layer=1)
        cell.add_rectangle(2, 0, 3, 1, layer=2)
        result = PreparationPipeline().run(cell, layer=Layer(2))
        assert result.job.figure_count() == 1

    def test_correction_requires_psf(self):
        with pytest.raises(ValueError, match="PSF"):
            PreparationPipeline(corrector=IterativeDoseCorrector())

    def test_correction_applied(self, psf):
        pipe = PreparationPipeline(
            corrector=IterativeDoseCorrector(), psf=psf
        )
        result = pipe.run(generators.isolated_line_with_pad())
        assert result.corrected
        lo, hi = result.job.dose_range()
        assert hi > lo

    def test_vsb_fracturer(self):
        pipe = PreparationPipeline(
            fracturer=ShotFracturer(max_shot=2.0),
            machines=[ShapedBeamWriter(max_shot=2.0)],
        )
        result = pipe.run(generators.grating(lines=3))
        for shot in result.job.shots:
            bbox = shot.trapezoid.bounding_box()
            assert bbox[2] - bbox[0] <= 2.0 + 1e-9
            assert bbox[3] - bbox[1] <= 2.0 + 1e-9

    def test_fracture_report_attached(self):
        result = PreparationPipeline().run(generators.grating(lines=7))
        assert result.fracture_report.figure_count == 7
        assert result.fracture_report.area_error == pytest.approx(0.0)

    def test_total_write_time_accessor(self):
        pipe = PreparationPipeline(machines=[VectorScanWriter()])
        result = pipe.run(generators.grating(lines=3))
        assert result.total_write_time("vector") > 0


class TestFidelity:
    def test_perfect_dose_prints_accurately(self, psf):
        design = [Polygon.rectangle(0, 0, 10, 10)]
        shots = [Shot(Trapezoid.from_rectangle(0, 0, 10, 10), dose=1.0)]
        job = MachineJob(shots)
        report = fidelity_report(job, design, psf, pixel=0.2)
        # A 10 µm pad at threshold 0.5 prints close to nominal.
        assert report.error_fraction < 0.15
        assert report.area_ratio == pytest.approx(1.0, abs=0.15)

    def test_underdose_shrinks_pattern(self, psf):
        design = [Polygon.rectangle(0, 0, 10, 10)]
        shots = [Shot(Trapezoid.from_rectangle(0, 0, 10, 10), dose=0.55)]
        job = MachineJob(shots)
        report = fidelity_report(job, design, psf, pixel=0.2)
        assert report.area_ratio < 1.0

    def test_resist_threshold_used(self, psf):
        design = [Polygon.rectangle(0, 0, 10, 10)]
        shots = [Shot(Trapezoid.from_rectangle(0, 0, 10, 10))]
        job = MachineJob(shots, base_dose=2.0)
        resist = Resist("t", tone="negative", sensitivity=1.0, contrast=2.0)
        report = fidelity_report(job, design, psf, resist=resist, pixel=0.2)
        assert report.threshold_level == pytest.approx(
            resist.threshold_dose / 2.0
        )

    def test_empty_job_raises(self, psf):
        with pytest.raises(ValueError):
            fidelity_report(MachineJob([]), [], psf)

    def test_pec_equalizes_cd_across_density(self):
        """The PEC claim: dense and sparse features print the same CD.

        Raw exposure prints lines inside a dense pad wider than isolated
        ones (backscatter fog); dose correction closes that gap even
        though the absolute CD may shift slightly.
        """
        from repro.geometry.rasterize import RasterFrame
        from repro.physics.exposure import ExposureSimulator, shot_dose_map
        from repro.physics.metrology import measure_linewidth

        psf = psf_for(20.0)
        # One 0.6 µm line inside a dense grating, one isolated.
        line_w = 0.6
        polys = [Polygon.rectangle(i * 1.2, 0, i * 1.2 + line_w, 12)
                 for i in range(9)]
        polys.append(Polygon.rectangle(25, 0, 25 + line_w, 12))
        dense_center = 4 * 1.2 + line_w / 2
        iso_center = 25 + line_w / 2

        def measure(job):
            frame = RasterFrame.around((0, 0, 26, 12), 0.05, margin=6.0)
            sim = ExposureSimulator(psf, frame)
            image = sim.absorbed_energy(shot_dose_map(job.shots, frame))
            dense = measure_linewidth(
                image, frame, 0.5, cut_y=6.0, near_x=dense_center
            )
            iso = measure_linewidth(
                image, frame, 0.5, cut_y=6.0, near_x=iso_center
            )
            assert dense is not None and iso is not None
            return abs(dense - iso)

        raw = PreparationPipeline().run_polygons(polys)
        pec = PreparationPipeline(
            corrector=IterativeDoseCorrector(), psf=psf
        ).run_polygons(polys)
        assert measure(pec.job) < measure(raw.job)


class TestCompare:
    def test_rows_cover_workloads_and_machines(self):
        machines = [RasterScanWriter(), VectorScanWriter(), ShapedBeamWriter()]
        rows = compare_machines(
            [("grating", generators.grating(lines=10))], machines
        )
        assert len(rows) == 1
        row = rows[0]
        assert set(row.times) == {"raster", "vector", "shaped-beam"}
        assert row.winner in row.times
        assert 0 < row.density <= 1

    def test_vsb_gets_matched_fracturer(self):
        machines = [ShapedBeamWriter(max_shot=1.0)]
        rows = compare_machines(
            [("grating", generators.grating(lines=3, length=10.0))], machines
        )
        # 1x10 µm lines at max_shot=1: at least 10 shots per line.
        assert rows[0].figure_counts["shaped-beam"] >= 30

    def test_row_renders(self):
        rows = compare_machines(
            [("grating", generators.grating(lines=3))], [RasterScanWriter()]
        )
        assert "grating" in rows[0].row()


class TestJobDigests:
    def shots(self, dose=1.0):
        return [
            Shot(Trapezoid.from_rectangle(0, 0, 2, 1), dose),
            Shot(Trapezoid.from_rectangle(3, 0, 5, 1), dose),
        ]

    def test_digest_is_deterministic(self):
        a = MachineJob(self.shots(), name="a")
        b = MachineJob(self.shots(), name="b")  # name is not content
        assert a.digest() == b.digest()
        assert a.portable_digest() == b.portable_digest()
        assert a.dose_digest() == b.dose_digest()

    def test_digest_sees_geometry_and_dose(self):
        base = MachineJob(self.shots())
        moved = MachineJob(
            [Shot(Trapezoid.from_rectangle(0, 0, 2.0001, 1), 1.0)]
            + self.shots()[1:]
        )
        dosed = MachineJob(self.shots(dose=1.5))
        rebased = MachineJob(self.shots(), base_dose=2.0)
        assert base.digest() != moved.digest()
        assert base.digest() != dosed.digest()
        assert base.digest() != rebased.digest()
        assert base.dose_digest() != dosed.dose_digest()
        # The dose map alone ignores geometry.
        assert base.dose_digest() == moved.dose_digest()

    def test_digest_sees_shot_order(self):
        shots = self.shots()
        assert (
            MachineJob(shots).digest()
            != MachineJob(list(reversed(shots))).digest()
        )

    def test_portable_digest_absorbs_last_ulp_noise(self):
        shots = self.shots()
        wobble = [
            Shot(s.trapezoid, s.dose * (1.0 + 2e-16)) for s in shots
        ]
        assert (
            MachineJob(shots).portable_digest()
            == MachineJob(wobble).portable_digest()
        )

"""Tests for repro.geometry.trapezoid."""


import pytest

from repro.geometry.trapezoid import Trapezoid


@pytest.fixture
def rect():
    return Trapezoid.from_rectangle(0, 0, 4, 2)


@pytest.fixture
def slanted():
    # Bottom [0, 10], top [2, 8]: an isosceles trapezoid of height 2.
    return Trapezoid(0, 2, 0, 10, 2, 8)


class TestConstruction:
    def test_validates_height(self):
        with pytest.raises(ValueError):
            Trapezoid(1, 1, 0, 1, 0, 1)
        with pytest.raises(ValueError):
            Trapezoid(2, 1, 0, 1, 0, 1)

    def test_validates_x_order(self):
        with pytest.raises(ValueError):
            Trapezoid(0, 1, 5, 0, 0, 1)

    def test_rectangle_constructor_sorts(self):
        t = Trapezoid.from_rectangle(4, 2, 0, 0)
        assert t.bounding_box() == (0, 0, 4, 2)


class TestMeasures:
    def test_rect_area(self, rect):
        assert rect.area() == 8.0

    def test_slanted_area(self, slanted):
        assert slanted.area() == (10 + 6) / 2 * 2

    def test_triangle_degenerate_top(self):
        t = Trapezoid(0, 3, 0, 6, 3, 3)
        assert t.area() == 9.0

    def test_bounding_box(self, slanted):
        assert slanted.bounding_box() == (0, 0, 10, 2)

    def test_centroid_of_rect(self, rect):
        c = rect.centroid()
        assert c.almost_equals((2, 1))

    def test_width_at(self, slanted):
        assert slanted.width_at(0) == 10.0
        assert slanted.width_at(2) == 6.0
        assert slanted.width_at(1) == 8.0
        assert slanted.width_at(5) == 0.0

    def test_min_width(self, slanted):
        assert slanted.min_width() == 6.0

    def test_is_rectangle(self, rect, slanted):
        assert rect.is_rectangle()
        assert not slanted.is_rectangle()

    def test_is_degenerate(self):
        t = Trapezoid(0, 1, 5, 5, 5, 5)
        assert t.is_degenerate()


class TestOperations:
    def test_to_polygon_area_matches(self, slanted):
        assert slanted.to_polygon().area() == pytest.approx(slanted.area())

    def test_to_polygon_collapses_triangle_tip(self):
        t = Trapezoid(0, 3, 0, 6, 3, 3)
        assert len(t.to_polygon()) == 3

    def test_translated(self, rect):
        t = rect.translated(10, 5)
        assert t.bounding_box() == (10, 5, 14, 7)
        assert t.area() == rect.area()

    def test_split_at_y_preserves_area(self, slanted):
        lower, upper = slanted.split_at_y(0.75)
        assert lower.area() + upper.area() == pytest.approx(slanted.area())
        assert lower.y_top == 0.75
        assert upper.y_bottom == 0.75
        # The cut edge widths must agree.
        assert lower.x_top_left == upper.x_bottom_left
        assert lower.x_top_right == upper.x_bottom_right

    def test_split_outside_raises(self, rect):
        with pytest.raises(ValueError):
            rect.split_at_y(5.0)

    def test_equality_and_hash(self, rect):
        same = Trapezoid.from_rectangle(0, 0, 4, 2)
        assert rect == same
        assert hash(rect) == hash(same)

"""Tests for the electron-optical column model."""

import math

import pytest

from repro.machine.column import Column, FIELD_EMISSION, LAB6, TUNGSTEN


@pytest.fixture
def column():
    return Column(LAB6, energy_kev=20.0)


class TestSources:
    def test_brightness_ordering(self):
        assert TUNGSTEN.brightness < LAB6.brightness < FIELD_EMISSION.brightness

    def test_brightness_scales_with_voltage(self):
        assert LAB6.brightness_at(40.0) == pytest.approx(2 * LAB6.brightness)

    def test_brightness_validates(self):
        with pytest.raises(ValueError):
            LAB6.brightness_at(0)


class TestSpotSize:
    def test_validates_inputs(self, column):
        with pytest.raises(ValueError):
            column.spot_size(0, 0.01)
        with pytest.raises(ValueError):
            column.spot_size(1e-9, 0)

    def test_contributions_all_positive(self, column):
        contributions = column.spot_contributions(1e-9, 5e-3)
        assert all(c > 0 for c in contributions)

    def test_total_is_quadrature_sum(self, column):
        contributions = column.spot_contributions(1e-9, 5e-3)
        assert column.spot_size(1e-9, 5e-3) == pytest.approx(
            math.sqrt(sum(c * c for c in contributions))
        )

    def test_gauss_term_dominates_at_small_aperture(self, column):
        d_g, d_s, d_c, d_d = column.spot_contributions(1e-8, 1e-3)
        assert d_g > d_s

    def test_sphere_term_dominates_at_large_aperture(self, column):
        d_g, d_s, d_c, d_d = column.spot_contributions(1e-9, 4e-2)
        assert d_s > d_g

    def test_diffraction_negligible(self, column):
        # The 1979 claim: electron wavelength never limits e-beam spots.
        _, _, _, d_d = column.spot_contributions(1e-9, 5e-3)
        assert d_d < 2e-3  # a nanometre-scale term, far below the spot


class TestOptimization:
    def test_optimal_angle_minimizes(self, column):
        best_angle = column.optimal_half_angle(1e-8)
        best = column.spot_size(1e-8, best_angle)
        for factor in (0.5, 2.0):
            assert column.spot_size(1e-8, best_angle * factor) >= best

    def test_best_spot_grows_with_current(self, column):
        assert column.best_spot_size(1e-7) > column.best_spot_size(1e-9)

    def test_brighter_source_smaller_spot(self):
        lab6 = Column(LAB6).best_spot_size(1e-8)
        fe = Column(FIELD_EMISSION).best_spot_size(1e-8)
        assert fe < lab6

    def test_max_current_inverts_best_spot(self, column):
        current = column.max_current_for_spot(0.25)
        assert column.best_spot_size(current) == pytest.approx(0.25, rel=0.01)

    def test_unachievable_spot_raises(self, column):
        with pytest.raises(ValueError, match="unachievable"):
            column.max_current_for_spot(1e-6)

    def test_current_density_reasonable(self, column):
        # LaB6 columns delivered ~1-100 A/cm² into sub-µm spots.
        j = column.current_density(1e-8)
        assert 0.1 < j < 1e4

    def test_validation(self):
        with pytest.raises(ValueError):
            Column(LAB6, energy_kev=0)
        with pytest.raises(ValueError):
            Column(LAB6, spherical_aberration_mm=0)
        with pytest.raises(ValueError):
            Column(LAB6).max_current_for_spot(0)

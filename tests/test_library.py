"""Tests for repro.layout.library."""

import pytest

from repro.layout.cell import Cell
from repro.layout.library import Library


def make_chain(depth: int):
    """A linear hierarchy CHAIN_0 -> CHAIN_1 -> ... of given depth."""
    cells = [Cell(f"CHAIN_{i}") for i in range(depth)]
    for parent, child in zip(cells, cells[1:]):
        parent.instantiate(child, (0, 0))
    cells[-1].add_rectangle(0, 0, 1, 1)
    return cells


class TestUnits:
    def test_defaults_micron_nanometre(self):
        lib = Library()
        assert lib.unit == 1e-6
        assert lib.precision == 1e-9
        assert lib.grid == pytest.approx(1e-3)

    def test_validates_units(self):
        with pytest.raises(ValueError):
            Library(unit=0)
        with pytest.raises(ValueError):
            Library(unit=1e-9, precision=1e-6)


class TestCellManagement:
    def test_add_includes_descendants(self):
        cells = make_chain(3)
        lib = Library()
        lib.add(cells[0])
        assert len(lib) == 3
        assert "CHAIN_2" in lib

    def test_add_rejects_name_collision(self):
        lib = Library()
        lib.add(Cell("X"))
        with pytest.raises(ValueError, match="collision"):
            lib.add(Cell("X"))

    def test_add_same_object_idempotent(self):
        lib = Library()
        cell = Cell("X")
        lib.add(cell)
        lib.add(cell)
        assert len(lib) == 1

    def test_new_cell(self):
        lib = Library()
        cell = lib.new_cell("FRESH")
        assert lib["FRESH"] is cell

    def test_getitem_missing_raises(self):
        with pytest.raises(KeyError):
            Library()["NOPE"]


class TestHierarchy:
    def test_top_cells(self):
        cells = make_chain(3)
        lib = Library()
        lib.add(cells[0])
        tops = lib.top_cells()
        assert [c.name for c in tops] == ["CHAIN_0"]
        assert lib.top_cell() is cells[0]

    def test_multiple_tops_raises(self):
        lib = Library()
        lib.add(Cell("A"), Cell("B"))
        with pytest.raises(ValueError, match="one top cell"):
            lib.top_cell()

    def test_depth(self):
        cells = make_chain(4)
        lib = Library()
        lib.add(cells[0])
        assert lib.depth() == 4

    def test_depth_flat(self):
        lib = Library()
        lib.add(Cell("ONLY"))
        assert lib.depth() == 1

    def test_check_acyclic_passes(self):
        cells = make_chain(3)
        lib = Library()
        lib.add(cells[0])
        lib.check_acyclic()

    def test_check_acyclic_detects_cycle(self):
        a, b = Cell("A"), Cell("B")
        a.instantiate(b, (0, 0))
        lib = Library()
        lib.add(a)
        # Introduce the cycle after adding to dodge add()'s traversal.
        b.instantiate(a, (0, 0))
        with pytest.raises(ValueError, match="cycle"):
            lib.check_acyclic()

    def test_hierarchy_graph_edges(self):
        cells = make_chain(3)
        lib = Library()
        lib.add(cells[0])
        graph = lib.hierarchy_graph()
        assert graph.has_edge("CHAIN_0", "CHAIN_1")
        assert graph.has_edge("CHAIN_1", "CHAIN_2")
        assert not graph.has_edge("CHAIN_2", "CHAIN_0")

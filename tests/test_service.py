"""HTTP-level tests of the prep service.

A real server runs on a loopback socket (port 0 → ephemeral); requests
go through ``urllib`` exactly as an external client's would.  The
load-bearing assertion is the service determinism contract: a job
submitted over HTTP yields byte-identical artifacts and digests to the
same job run through the CLI.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.core.recipe import PrepRecipe
from repro.service import create_server
from repro.service.schemas import (
    SchemaError,
    job_view,
    parse_job_spec,
)

_TIMEOUT = 60.0


class Client:
    """Tiny JSON/bytes client for one server instance."""

    def __init__(self, server):
        host, port = server.server_address[:2]
        self.base = f"http://{host}:{port}"

    def request(self, method, path, payload=None):
        data = json.dumps(payload).encode() if payload is not None else None
        req = urllib.request.Request(
            self.base + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(req, timeout=_TIMEOUT) as response:
                return response.status, response.read(), dict(response.headers)
        except urllib.error.HTTPError as err:
            return err.code, err.read(), dict(err.headers)

    def get_json(self, path):
        status, body, _ = self.request("GET", path)
        return status, json.loads(body)

    def post_json(self, path, payload):
        status, body, headers = self.request("POST", path, payload)
        return status, json.loads(body), headers

    def submit(self, payload):
        status, body, _ = self.post_json("/jobs", payload)
        assert status == 201, body
        return body["id"]

    def wait(self, job_id, states=("done", "failed", "cancelled")):
        deadline = time.time() + _TIMEOUT
        while time.time() < deadline:
            status, view = self.get_json(f"/jobs/{job_id}")
            assert status == 200
            if view["state"] in states:
                return view
            time.sleep(0.05)
        raise AssertionError(f"job {job_id} never reached {states}")


@pytest.fixture
def server(tmp_path):
    srv = create_server(
        port=0,
        work_dir=tmp_path / "service",
        cache_dir=tmp_path / "service" / "shard-cache",
        concurrency=2,
    )
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.stop()
    thread.join(timeout=10.0)


@pytest.fixture
def client(server):
    return Client(server)


class TestHealth:
    def test_healthz(self, client):
        status, body = client.get_json("/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["uptime_s"] >= 0

    def test_readyz(self, client):
        status, body = client.get_json("/readyz")
        assert status == 200
        assert body["ready"] is True
        assert body["checks"]["queue_workers"]["ok"] is True
        assert body["checks"]["cache_dir"]["ok"] is True

    def test_readyz_degrades_when_workers_die(self, server, client):
        server.queue.shutdown(wait=True)
        status, body = client.get_json("/readyz")
        assert status == 503
        assert body["ready"] is False
        # Liveness is unaffected — the process still serves HTTP.
        status, _ = client.get_json("/healthz")
        assert status == 200

    def test_stats_shape(self, client):
        status, body = client.get_json("/stats")
        assert status == 200
        assert body["queue"]["concurrency"] == 2
        assert body["cache"]["enabled"] is True
        assert "hit_rate" in body["cache"]
        assert set(body["jobs"]) == {
            "queued",
            "running",
            "done",
            "failed",
            "cancelled",
        }
        assert "size" in body["pool"] and "alive" in body["pool"]
        from repro.service.jobs import JobStore

        assert set(body["faults"]) == set(JobStore.FAULT_KEYS)
        assert all(v == 0 for v in body["faults"].values())


class TestSubmission:
    def test_submit_and_complete(self, client):
        status, view, headers = client.post_json(
            "/jobs", {"workload": "grating"}
        )
        assert status == 201
        assert headers["Location"] == f"/jobs/{view['id']}"
        assert view["state"] == "queued"
        done = client.wait(view["id"])
        assert done["state"] == "done"
        assert done["result"]["figure_count"] == 50
        assert done["progress"]["shards_total"] >= 1
        assert done["progress"]["shards_done"] == (
            done["progress"]["shards_total"]
        )
        assert done["result"]["execution"]["cache_enabled"] is True
        # Kernel degradation counters are part of the stats contract:
        # built-in workloads must run entirely on the fast path.
        execution = done["result"]["execution"]
        assert execution["kernel_fallbacks"] == 0
        assert execution["kernel_coord_fallbacks"] == 0
        assert execution["kernel_slab_fallbacks"] == 0

    def test_rejects_bad_payloads(self, client):
        cases = [
            {"workload": "nope"},
            {"workload": "grating", "fractur": "vsb"},
            {"workload": "grating", "dose": -1.0},
            {"workload": "grating", "priority": "high"},
            {"priority": 1},
            ["not", "an", "object"],
        ]
        for payload in cases:
            status, body, _ = client.post_json("/jobs", payload)
            assert status == 400, payload
            assert "error" in body
        # A rejected submission never creates a job.
        status, listing = client.get_json("/jobs")
        assert listing["jobs"] == []

    def test_unknown_routes_and_jobs_are_404(self, client):
        assert client.request("GET", "/nope")[0] == 404
        assert client.request("GET", "/jobs/nope")[0] == 404
        assert client.request("DELETE", "/jobs/nope")[0] == 404
        assert client.request("GET", "/jobs/nope/result")[0] == 404

    def test_job_listing(self, client):
        first = client.submit({"workload": "grating"})
        second = client.submit({"workload": "grating", "priority": 2})
        status, listing = client.get_json("/jobs")
        assert status == 200
        assert [j["id"] for j in listing["jobs"]] == [first, second]
        client.wait(first)
        client.wait(second)


class TestDeterminism:
    """The acceptance criterion: HTTP ≡ CLI, byte for byte."""

    def test_http_job_matches_cli_artifacts(self, client, tmp_path):
        payload = {
            "workload": "fzp",
            "field_size": 15.0,
            "machine": "raster",
        }
        job_id = client.submit(payload)
        view = client.wait(job_id)
        assert view["state"] == "done", view["error"]

        cli_job = tmp_path / "cli.ebj"
        cli_prog = tmp_path / "cli.raster.ebp"
        assert (
            main(
                [
                    "demo",
                    "--workload",
                    "fzp",
                    "--field-size",
                    "15",
                    "--machine",
                    "raster",
                    "--no-cache",
                    "--output",
                    str(cli_job),
                    "--machine-output",
                    str(cli_prog),
                ]
            )
            == 0
        )
        status, http_job, _ = client.request(
            "GET", f"/jobs/{job_id}/result"
        )
        assert status == 200
        assert http_job == cli_job.read_bytes()
        status, http_prog, _ = client.request(
            "GET", f"/jobs/{job_id}/result?artifact=program"
        )
        assert status == 200
        assert http_prog == cli_prog.read_bytes()
        assert view["result"]["program"]["mode"] == "raster"

    def test_second_submission_is_all_cache_hits(self, client):
        payload = {"workload": "fzp", "field_size": 15.0}
        first = client.wait(client.submit(payload))
        second = client.wait(client.submit(payload))
        assert first["state"] == second["state"] == "done"
        stats1 = first["result"]["execution"]
        stats2 = second["result"]["execution"]
        assert stats1["cache_misses"] == stats1["shard_count"]
        assert stats2["cache_hits"] == stats2["shard_count"]
        assert stats2["cache_misses"] == 0
        assert first["result"]["digest"] == second["result"]["digest"]
        body1 = client.request("GET", f"/jobs/{first['id']}/result")[1]
        body2 = client.request("GET", f"/jobs/{second['id']}/result")[1]
        assert body1 == body2
        status, stats = client.get_json("/stats")
        assert stats["cache"]["hits"] >= stats2["cache_hits"]


class TestResults:
    def test_result_of_running_job_is_409(self, server, client):
        gate = threading.Event()
        original = server.queue.runner

        def blocking_runner(job):
            assert gate.wait(_TIMEOUT)
            original(job)

        server.queue.runner = blocking_runner
        try:
            job_id = client.submit({"workload": "grating"})
            deadline = time.time() + _TIMEOUT
            while client.get_json(f"/jobs/{job_id}")[1]["state"] != "running":
                assert time.time() < deadline
                time.sleep(0.02)
            status, body, _ = client.request("GET", f"/jobs/{job_id}/result")
            assert status == 409
        finally:
            gate.set()
        client.wait(job_id)

    def test_program_artifact_absent_without_machine_mode(self, client):
        job_id = client.submit({"workload": "grating"})
        view = client.wait(job_id)
        assert view["state"] == "done"
        assert "program" not in view.get("artifacts", {})
        status, _, _ = client.request(
            "GET", f"/jobs/{job_id}/result?artifact=program"
        )
        assert status == 404
        status, _, _ = client.request(
            "GET", f"/jobs/{job_id}/result?artifact=bogus"
        )
        assert status == 400


class TestCancellation:
    def test_cancel_queued_then_conflict_on_finished(self, server, client):
        gate = threading.Event()
        original = server.queue.runner

        def blocking_runner(job):
            assert gate.wait(_TIMEOUT)
            original(job)

        server.queue.runner = blocking_runner
        try:
            # Fill both workers, then queue a victim behind them.
            blockers = [
                client.submit({"workload": "grating"}) for _ in range(2)
            ]
            victim = client.submit({"workload": "grating"})
            status, view = self._delete(client, victim)
            assert status == 200
            assert view["state"] == "cancelled"
            # Cancelling again conflicts: the job is terminal now.
            status, view = self._delete(client, victim)
            assert status == 409
        finally:
            gate.set()
        for job_id in blockers:
            assert client.wait(job_id)["state"] == "done"
        # A cancelled job has no result to download.
        status, _, _ = client.request("GET", f"/jobs/{victim}/result")
        assert status == 404

    def test_cancel_running_stops_cooperatively(self, server, client):
        """DELETE on a *running* job is accepted (202) and the runner
        observes the flag at the next shard boundary: the job lands in
        ``cancelled`` and the worker survives to serve the next job."""
        gate = threading.Event()
        original = server.queue.runner

        def blocking_runner(job):
            assert gate.wait(_TIMEOUT)
            original(job)

        server.queue.runner = blocking_runner
        try:
            job_id = client.submit({"workload": "grating"})
            deadline = time.time() + _TIMEOUT
            while client.get_json(f"/jobs/{job_id}")[1]["state"] != "running":
                assert time.time() < deadline
                time.sleep(0.02)
            status, view = self._delete(client, job_id)
            assert status == 202
            assert view["state"] == "running"
            assert view["cancel_requested"] is True
        finally:
            gate.set()
        done = client.wait(job_id)
        assert done["state"] == "cancelled"
        # Terminal now: a second DELETE conflicts.
        status, _ = self._delete(client, job_id)
        assert status == 409
        # The worker that hosted the cancelled run still serves jobs.
        follow_up = client.submit({"workload": "grating"})
        assert client.wait(follow_up)["state"] == "done"
        status, stats = client.get_json("/stats")
        assert stats["faults"]["cancelled_while_running"] == 1

    @staticmethod
    def _delete(client, job_id):
        status, body, _ = client.request("DELETE", f"/jobs/{job_id}")
        return status, json.loads(body)


class TestFailedJobs:
    def test_runtime_failure_surfaces_and_server_stays_healthy(
        self, server, client
    ):
        original = server.queue.runner

        def exploding_runner(job):
            if job.spec.workload == "serpentine":
                raise RuntimeError("synthetic shard failure")
            original(job)

        server.queue.runner = exploding_runner
        bad = client.submit({"workload": "serpentine"})
        view = client.wait(bad)
        assert view["state"] == "failed"
        assert view["error"] == "RuntimeError: synthetic shard failure"
        # Failed jobs have no downloadable result.
        status, _, _ = client.request("GET", f"/jobs/{bad}/result")
        assert status == 404
        # The server is still healthy and still runs jobs.
        assert client.get_json("/readyz")[0] == 200
        good = client.submit({"workload": "grating"})
        assert client.wait(good)["state"] == "done"
        status, stats = client.get_json("/stats")
        assert stats["jobs"]["failed"] == 1
        assert stats["jobs"]["done"] == 1


class TestJobFaultKnobs:
    def test_job_timeout_fails_without_retry(self, server, client):
        """A job that blows its wall-clock budget fails at the next
        shard boundary, is never retried (retries cover *transient*
        faults, a timeout only recurs), and is counted in /stats."""
        job_id = client.submit(
            {"workload": "grating", "timeout": 1e-6, "retries": 3}
        )
        view = client.wait(job_id)
        assert view["state"] == "failed"
        assert "JobTimeoutError" in view["error"]
        assert view["attempts"] == 1
        status, stats = client.get_json("/stats")
        assert stats["faults"]["job_timeouts"] == 1
        assert stats["faults"]["jobs_retried"] == 0
        # The worker survives and still serves jobs.
        follow_up = client.submit({"workload": "grating"})
        assert client.wait(follow_up)["state"] == "done"

    def test_job_retries_recover_transient_failure(self, server, client):
        """With ``retries`` in the spec, a run that fails once is
        re-run in place and the job still lands done."""
        calls = []
        original = server.runner._run_once

        def flaky_run_once(job):
            calls.append(job.id)
            if len(calls) == 1:
                raise OSError("synthetic infrastructure failure")
            original(job)

        server.runner._run_once = flaky_run_once
        job_id = client.submit({"workload": "grating", "retries": 2})
        view = client.wait(job_id)
        assert view["state"] == "done"
        assert view["attempts"] == 2
        assert calls == [job_id, job_id]
        status, stats = client.get_json("/stats")
        assert stats["faults"]["jobs_retried"] == 1

    def test_retries_exhausted_marks_failed(self, server, client):
        original = server.runner._run_once

        def doomed_run_once(job):
            raise OSError("always down")

        server.runner._run_once = doomed_run_once
        try:
            job_id = client.submit({"workload": "grating", "retries": 1})
            view = client.wait(job_id)
        finally:
            server.runner._run_once = original
        assert view["state"] == "failed"
        assert view["error"] == "OSError: always down"
        assert view["attempts"] == 2
        status, stats = client.get_json("/stats")
        assert stats["faults"]["jobs_retried"] == 1


class TestSchemas:
    def test_parse_round_trip(self):
        spec = parse_job_spec(
            {
                "workload": "fzp",
                "pec": True,
                "field_size": 15.0,
                "machine": "raster",
                "priority": 7,
                "name": "hot-lot",
            }
        )
        assert spec.workload == "fzp"
        assert spec.priority == 7
        assert spec.job_name == "hot-lot"
        assert spec.recipe == PrepRecipe(
            pec=True, field_size=15.0, machine="raster"
        )

    def test_default_name_is_workload(self):
        assert parse_job_spec({"workload": "fzp"}).job_name == "fzp"

    def test_fault_knob_defaults_and_round_trip(self):
        spec = parse_job_spec({"workload": "fzp"})
        assert spec.timeout is None
        assert spec.retries == 0
        spec = parse_job_spec(
            {"workload": "fzp", "timeout": 30.0, "retries": 2}
        )
        assert spec.timeout == 30.0
        assert spec.retries == 2

    @pytest.mark.parametrize(
        "payload",
        [
            None,
            42,
            {},
            {"workload": ""},
            {"workload": 3},
            {"workload": "fzp", "priority": True},
            {"workload": "fzp", "name": 5},
            {"workload": "fzp", "bogus_knob": 1},
            {"workload": "fzp", "timeout": 0},
            {"workload": "fzp", "timeout": -2.0},
            {"workload": "fzp", "timeout": True},
            {"workload": "fzp", "timeout": "soon"},
            {"workload": "fzp", "retries": -1},
            {"workload": "fzp", "retries": 1.5},
            {"workload": "fzp", "retries": True},
        ],
    )
    def test_bad_payloads_raise_schema_error(self, payload):
        with pytest.raises(SchemaError):
            parse_job_spec(payload)

    def test_job_view_of_fresh_job(self):
        from repro.service.jobs import JobStore

        store = JobStore()
        job = store.create(parse_job_spec({"workload": "grating"}))
        view = job_view(job)
        assert view["state"] == "queued"
        assert view["recipe"]["fracture"] == "trapezoid"
        assert view["error"] is None
        assert view["timeout"] is None
        assert view["retries"] == 0
        assert view["attempts"] == 0
        assert view["cancel_requested"] is False
        assert "artifacts" not in view


class TestLateFailureFraming:
    def test_exception_after_headers_closes_connection(
        self, server, monkeypatch
    ):
        """A failure after response bytes are on the wire must close
        the connection — writing a second (500) response would corrupt
        HTTP/1.1 keep-alive framing for the client."""
        import http.client

        from repro.service.app import PrepRequestHandler

        original = PrepRequestHandler._route

        def exploding(handler, method, parts, query):
            if parts == ["boom"]:
                handler._begin_response(200)
                handler.send_header("Content-Type", "application/octet-stream")
                handler.send_header("Content-Length", "1024")
                handler.end_headers()
                handler.wfile.write(b"x" * 10)
                raise OSError("disk vanished mid-stream")
            return original(handler, method, parts, query)

        monkeypatch.setattr(PrepRequestHandler, "_route", exploding)
        host, port = server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=_TIMEOUT)
        try:
            conn.request("GET", "/boom")
            response = conn.getresponse()
            assert response.status == 200
            with pytest.raises(http.client.IncompleteRead) as excinfo:
                response.read()
            # Only the truncated body arrives: no 500 spliced after it.
            assert excinfo.value.partial == b"x" * 10
        finally:
            conn.close()


class TestDistributedService:
    """Distributed dispatch through the job server: recipe knobs ride
    the submission, results stay byte-identical, and the scheduling
    counters surface in ``GET /stats``."""

    def test_dist_totals_zero_by_default(self, client):
        from repro.service.jobs import JobStore

        status, stats = client.get_json("/stats")
        assert status == 200
        assert set(stats["dist"]) == set(JobStore.DIST_KEYS)
        assert all(v == 0 for v in stats["dist"].values())

    def test_distributed_job_matches_local_and_feeds_stats(self, client):
        from repro.dist import (
            WorkerDaemon,
            coordinator_for,
            shutdown_coordinators,
        )

        coordinator = coordinator_for("127.0.0.1:0")
        host, port = coordinator.server_address[:2]
        endpoint = f"{host}:{port}"
        daemon = WorkerDaemon(endpoint, worker_id="svc-worker")
        thread = threading.Thread(target=daemon.run, daemon=True)
        thread.start()
        try:
            # Distributed first: the shared cache is cold, so shards
            # really cross the wire.  The local job then replays from
            # the cache the distributed run populated.
            dist_id = client.submit(
                {
                    "workload": "grating",
                    "dispatch": "distributed",
                    "workers_endpoint": endpoint,
                }
            )
            dist = client.wait(dist_id)
        finally:
            daemon.stop()
            thread.join(timeout=5.0)
            shutdown_coordinators()
        assert dist["state"] == "done"

        local_id = client.submit({"workload": "grating"})
        local = client.wait(local_id)
        assert local["state"] == "done"
        assert dist["result"]["digest"] == local["result"]["digest"]
        execution = dist["result"]["execution"]
        assert execution["dispatch"] == "distributed"
        assert execution["dist"]["leases_granted"] >= 1

        status, stats = client.get_json("/stats")
        assert stats["dist"]["distributed_jobs"] == 1
        assert stats["dist"]["leases_granted"] >= 1

    def test_bad_dispatch_knobs_rejected_at_submission(self, client):
        status, body, _ = client.post_json(
            "/jobs", {"workload": "grating", "dispatch": "cloud"}
        )
        assert status == 400
        assert "dispatch" in body["error"]
        status, body, _ = client.post_json(
            "/jobs", {"workload": "grating", "dispatch": "distributed"}
        )
        assert status == 400
        assert "workers_endpoint" in body["error"]


class TestCancelInterruptsBackoff:
    def test_running_cancel_fires_attached_interrupt(self):
        """The store must invoke the runner's registered backoff
        interrupt when a running job is cancelled — this is what stops
        a cancel from waiting out a sleeping retry backoff."""
        from repro.service.jobs import JobStore

        store = JobStore()
        job = store.create(parse_job_spec({"workload": "grating"}))
        assert store.to_running(job.id)
        fired = []
        store.attach_interrupt(job.id, lambda: fired.append(1))
        assert store.request_running_cancel(job.id)
        assert fired == [1]
        assert store.cancel_requested(job.id)

    def test_cancel_of_queued_job_never_calls_interrupt(self):
        from repro.service.jobs import JobStore

        store = JobStore()
        job = store.create(parse_job_spec({"workload": "grating"}))
        fired = []
        store.attach_interrupt(job.id, lambda: fired.append(1))
        assert not store.request_running_cancel(job.id)  # still queued
        assert store.to_cancelled(job.id)
        assert fired == []

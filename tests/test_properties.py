"""Property-based tests (hypothesis) on core invariants.

These cover the algebraic identities that unit tests cannot sweep:
boolean-op area identities, fracture area preservation, transform
round-trips, format round-trips, PSF normalization and dose positivity.
"""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.fracture.rectangles import RectangleFracturer
from repro.fracture.shots import ShotFracturer
from repro.fracture.trapezoidal import TrapezoidFracturer
from repro.geometry.boolean import boolean_trapezoids, trapezoids_to_polygons
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.transform import Transform
from repro.layout.gdsii import dumps_gdsii, loads_gdsii
from repro.layout.gdsii_records import decode_real8, encode_real8
from repro.layout.library import Library
from repro.physics.psf import DoubleGaussianPSF


def area_of(traps):
    return sum(t.area() for t in traps)


# -- strategies -------------------------------------------------------------

coords = st.integers(min_value=-50, max_value=50)


@st.composite
def rectangles(draw):
    x0 = draw(coords)
    y0 = draw(coords)
    w = draw(st.integers(min_value=1, max_value=30))
    h = draw(st.integers(min_value=1, max_value=30))
    return Polygon.rectangle(x0, y0, x0 + w, y0 + h)


@st.composite
def rectangle_sets(draw, max_size=5):
    return draw(st.lists(rectangles(), min_size=1, max_size=max_size))


@st.composite
def convex_polygons(draw):
    """Random well-conditioned convex polygon via angles around a centre.

    Vertices sit on a circle at angles drawn from a 10° grid (so no two
    can collide or go collinear after duplicate-point collapse) and must
    span more than a half turn (centre strictly inside), which keeps the
    hull fat enough that fracture never produces degenerate slivers.
    """
    n = draw(st.integers(min_value=3, max_value=10))
    radius = draw(st.integers(min_value=2, max_value=20))
    cx = draw(coords)
    cy = draw(coords)
    steps = draw(
        st.lists(
            st.integers(min_value=0, max_value=35),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    angles = sorted(2.0 * math.pi * step / 36.0 for step in steps)
    gaps = [b - a for a, b in zip(angles, angles[1:])]
    gaps.append(2.0 * math.pi - angles[-1] + angles[0])
    assume(max(gaps) < math.pi)
    pts = [
        (cx + radius * math.cos(a), cy + radius * math.sin(a)) for a in angles
    ]
    poly = Polygon(pts)
    assume(poly.area() > 1.0)
    return poly


# -- boolean algebra ---------------------------------------------------------


class TestBooleanProperties:
    @given(rectangle_sets(), rectangle_sets())
    @settings(max_examples=40, deadline=None)
    def test_inclusion_exclusion(self, a, b):
        union = area_of(boolean_trapezoids(a, b, "or"))
        inter = area_of(boolean_trapezoids(a, b, "and"))
        area_a = area_of(boolean_trapezoids(a, [], "or"))
        area_b = area_of(boolean_trapezoids(b, [], "or"))
        assert union + inter == pytest.approx(area_a + area_b, abs=1e-6)

    @given(rectangle_sets(), rectangle_sets())
    @settings(max_examples=40, deadline=None)
    def test_xor_is_union_minus_intersection(self, a, b):
        xor = area_of(boolean_trapezoids(a, b, "xor"))
        union = area_of(boolean_trapezoids(a, b, "or"))
        inter = area_of(boolean_trapezoids(a, b, "and"))
        assert xor == pytest.approx(union - inter, abs=1e-6)

    @given(rectangle_sets(), rectangle_sets())
    @settings(max_examples=40, deadline=None)
    def test_difference_partition(self, a, b):
        # A = (A \ B) ∪ (A ∩ B), disjointly.
        diff = area_of(boolean_trapezoids(a, b, "sub"))
        inter = area_of(boolean_trapezoids(a, b, "and"))
        area_a = area_of(boolean_trapezoids(a, [], "or"))
        assert diff + inter == pytest.approx(area_a, abs=1e-6)

    @given(rectangle_sets(), rectangle_sets())
    @settings(max_examples=40, deadline=None)
    def test_operation_symmetry(self, a, b):
        assert area_of(boolean_trapezoids(a, b, "or")) == pytest.approx(
            area_of(boolean_trapezoids(b, a, "or")), abs=1e-6
        )
        assert area_of(boolean_trapezoids(a, b, "and")) == pytest.approx(
            area_of(boolean_trapezoids(b, a, "and")), abs=1e-6
        )

    @given(rectangle_sets())
    @settings(max_examples=40, deadline=None)
    def test_union_idempotent(self, a):
        once = area_of(boolean_trapezoids(a, [], "or"))
        twice = area_of(boolean_trapezoids(a, a, "or"))
        assert once == pytest.approx(twice, abs=1e-6)

    @given(convex_polygons())
    @settings(max_examples=30, deadline=None)
    def test_trapezoidation_preserves_convex_area(self, poly):
        traps = boolean_trapezoids([poly], [], "or")
        assert area_of(traps) == pytest.approx(poly.area(), rel=1e-3, abs=1e-4)

    @given(rectangle_sets(max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_polygon_reassembly_preserves_signed_area(self, a):
        traps = boolean_trapezoids(a, [], "or")
        polys = trapezoids_to_polygons(traps)
        assert sum(p.signed_area() for p in polys) == pytest.approx(
            area_of(traps), rel=1e-6, abs=1e-6
        )


# -- fracture ----------------------------------------------------------------


class TestFractureProperties:
    @given(rectangle_sets())
    @settings(max_examples=30, deadline=None)
    def test_trapezoid_fracture_preserves_area(self, polys):
        reference = area_of(boolean_trapezoids(polys, [], "or"))
        figs = TrapezoidFracturer().fracture(polys)
        assert area_of(figs) == pytest.approx(reference, abs=1e-6)

    @given(rectangle_sets())
    @settings(max_examples=30, deadline=None)
    def test_rectangle_fracture_exact_for_rectilinear(self, polys):
        reference = area_of(boolean_trapezoids(polys, [], "or"))
        figs = RectangleFracturer(address_unit=0.5).fracture(polys)
        assert area_of(figs) == pytest.approx(reference, abs=1e-6)
        assert all(f.is_rectangle(tol=1e-9) for f in figs)

    @given(rectangle_sets(max_size=3), st.floats(min_value=0.8, max_value=5.0))
    @settings(max_examples=30, deadline=None)
    def test_vsb_shots_respect_max_size(self, polys, max_shot):
        figs = ShotFracturer(max_shot=max_shot).fracture(polys)
        reference = area_of(boolean_trapezoids(polys, [], "or"))
        assert area_of(figs) == pytest.approx(reference, rel=1e-6, abs=1e-6)
        for f in figs:
            bbox = f.bounding_box()
            assert bbox[2] - bbox[0] <= max_shot + 1e-6
            assert bbox[3] - bbox[1] <= max_shot + 1e-6

    @given(convex_polygons())
    @settings(max_examples=20, deadline=None)
    def test_fracture_figures_disjoint(self, poly):
        figs = TrapezoidFracturer().fracture([poly])
        for i, f in enumerate(figs):
            c = f.centroid()
            for j, g in enumerate(figs):
                if i != j:
                    assert not g.to_polygon().contains_point(
                        c, include_boundary=False
                    )


# -- transforms ----------------------------------------------------------------


class TestTransformProperties:
    @given(
        st.floats(-100, 100),
        st.floats(-100, 100),
        st.floats(0, 360),
        st.floats(0.1, 10),
        st.booleans(),
        st.floats(-20, 20),
        st.floats(-20, 20),
    )
    @settings(max_examples=60, deadline=None)
    def test_inverse_roundtrip(self, dx, dy, rot, mag, mirror, px, py):
        t = Transform.gdsii(
            origin=(dx, dy),
            rotation_deg=rot,
            magnification=mag,
            x_reflection=mirror,
        )
        p = Point(px, py)
        assert t.inverse()(t(p)).almost_equals(p, tol=1e-6)

    @given(st.floats(0, 360), st.floats(0.5, 2.0))
    @settings(max_examples=40, deadline=None)
    def test_area_scales_with_det(self, rot, mag):
        t = Transform.gdsii(rotation_deg=rot, magnification=mag)
        poly = Polygon.rectangle(0, 0, 3, 2)
        assert poly.transformed(t).area() == pytest.approx(
            6.0 * mag * mag, rel=1e-9
        )


# -- formats ---------------------------------------------------------------


class TestFormatProperties:
    @given(
        st.floats(
            min_value=1e-12, max_value=1e12, allow_nan=False, allow_infinity=False
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_real8_roundtrip(self, value):
        assert decode_real8(encode_real8(value)) == pytest.approx(
            value, rel=1e-13
        )

    @given(rectangle_sets(max_size=4))
    @settings(max_examples=20, deadline=None)
    def test_gdsii_roundtrip_vertices(self, polys):
        lib = Library("P")
        cell = lib.new_cell("TOP")
        for p in polys:
            cell.add_polygon(p)
        lib2 = loads_gdsii(dumps_gdsii(lib))
        original = sorted(
            (round(v.x, 6), round(v.y, 6))
            for p in polys
            for v in p.vertices
        )
        restored = sorted(
            (round(v.x, 6), round(v.y, 6))
            for plist in lib2["TOP"].polygons.values()
            for p in plist
            for v in p.vertices
        )
        assert original == restored


# -- physics ------------------------------------------------------------------


class TestPhysicsProperties:
    @given(
        st.floats(min_value=0.01, max_value=1.0),
        st.floats(min_value=1.0, max_value=10.0),
        st.floats(min_value=0.0, max_value=2.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_psf_kernel_normalized(self, alpha, beta, eta):
        psf = DoubleGaussianPSF(alpha=alpha, beta=beta, eta=eta)
        kernel = psf.kernel(pixel=beta / 8.0)
        assert kernel.sum() == pytest.approx(1.0, abs=5e-3)
        assert (kernel >= 0).all()

    @given(
        st.floats(min_value=0.01, max_value=1.0),
        st.floats(min_value=1.0, max_value=10.0),
        st.floats(min_value=0.0, max_value=2.0),
        st.floats(min_value=0.0, max_value=20.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_encircled_energy_bounded(self, alpha, beta, eta, radius):
        psf = DoubleGaussianPSF(alpha=alpha, beta=beta, eta=eta)
        value = psf.encircled_energy(radius)
        assert 0.0 <= value <= 1.0


# -- PEC -----------------------------------------------------------------------


class TestPecProperties:
    @given(rectangle_sets(max_size=4))
    @settings(max_examples=15, deadline=None)
    def test_dose_correction_positive_and_bounded(self, polys):
        from repro.pec.dose_iter import IterativeDoseCorrector
        from repro.fracture.trapezoidal import TrapezoidFracturer

        psf = DoubleGaussianPSF(alpha=0.2, beta=2.0, eta=0.74)
        shots = TrapezoidFracturer().fracture_to_shots(polys)
        assume(shots)
        corrector = IterativeDoseCorrector(dose_limits=(0.1, 8.0))
        corrected = corrector.correct(shots, psf)
        for shot in corrected:
            assert 0.1 <= shot.dose <= 8.0

    @given(rectangle_sets(max_size=3))
    @settings(max_examples=15, deadline=None)
    def test_correction_never_worsens_uniformity(self, polys):
        from repro.pec.dose_iter import IterativeDoseCorrector
        from repro.pec.report import correction_report
        from repro.fracture.trapezoidal import TrapezoidFracturer

        psf = DoubleGaussianPSF(alpha=0.2, beta=2.0, eta=0.74)
        shots = TrapezoidFracturer().fracture_to_shots(polys)
        assume(len(shots) >= 2)
        before = correction_report(shots, psf)
        after = correction_report(
            IterativeDoseCorrector().correct(shots, psf), psf
        )
        assert after.spread <= before.spread + 1e-6

"""Tests for throughput analysis and tables."""

import pytest

from repro.analysis.tables import Table, format_table
from repro.analysis.throughput import ThroughputModel
from repro.core.job import MachineJob
from repro.fracture.base import Shot
from repro.geometry.trapezoid import Trapezoid
from repro.machine.raster import RasterScanWriter
from repro.machine.vector import VectorScanWriter


def simple_job(chip=2000.0, density=0.2, dose=1.0):
    side = (density * chip * chip) ** 0.5
    return MachineJob(
        [Shot(Trapezoid.from_rectangle(0, 0, side, side))],
        base_dose=dose,
        bounding_box=(0, 0, chip, chip),
    )


class TestThroughputModel:
    def test_chips_per_wafer(self):
        model = ThroughputModel()
        chips = model.chips_per_wafer(5000.0, 5000.0)
        assert 50 < chips < 200  # 5x5 mm chips on a 3-inch wafer

    def test_chips_validation(self):
        with pytest.raises(ValueError):
            ThroughputModel().chips_per_wafer(0, 100)

    def test_wafer_time_includes_overheads(self):
        model = ThroughputModel(load_time=100.0, global_alignment_time=50.0)
        report = model.report(RasterScanWriter(), simple_job(), chips=1)
        assert report.wafer_time > 150.0

    def test_wafers_per_hour_inverse(self):
        model = ThroughputModel()
        report = model.report(RasterScanWriter(), simple_job(), chips=10)
        assert report.wafers_per_hour == pytest.approx(3600.0 / report.wafer_time)

    def test_raster_insensitive_to_dose_until_ceiling(self):
        model = ThroughputModel()
        fast = model.report(RasterScanWriter(), simple_job(dose=0.5), chips=10)
        slow = model.report(RasterScanWriter(), simple_job(dose=2.0), chips=10)
        assert fast.chip_time == pytest.approx(slow.chip_time, rel=0.01)

    def test_raster_slows_for_insensitive_resist(self):
        model = ThroughputModel()
        fast = model.report(RasterScanWriter(), simple_job(dose=1.0), chips=10)
        pmma = model.report(RasterScanWriter(), simple_job(dose=5e4), chips=10)
        assert pmma.chip_time > fast.chip_time * 2

    def test_vector_scales_with_dose(self):
        model = ThroughputModel()
        writer = VectorScanWriter(field_calibration=0.0, figure_settle=0.0)
        d1 = model.report(writer, simple_job(dose=1.0), chips=1)
        d2 = model.report(writer, simple_job(dose=2.0), chips=1)
        # Exposure dominates at these densities; chip time ~ doubles.
        assert d2.chip_time > d1.chip_time * 1.5

    def test_sensitivity_sweep(self):
        model = ThroughputModel()
        results = model.sensitivity_sweep(
            machine_factory=lambda: RasterScanWriter(),
            job_factory=lambda dose: simple_job(dose=dose),
            sensitivities=[1.0, 10.0, 100.0],
        )
        assert len(results) == 3
        assert results[1.0].wafers_per_hour >= results[100.0].wafers_per_hour

    def test_validation(self):
        with pytest.raises(ValueError):
            ThroughputModel(wafer_diameter=0)


class TestTables:
    def test_render_alignment(self):
        table = Table(["name", "value"])
        table.add_row(["a", 1])
        table.add_row(["bb", 2.5])
        text = table.render()
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_title(self):
        table = Table(["x"], title="T1")
        table.add_row([1])
        assert table.render().startswith("T1")

    def test_number_formats(self):
        table = Table(["v"])
        table.add_row([1234567.0])
        table.add_row([0.00001])
        table.add_row([0])
        table.add_row([True])
        text = table.render()
        assert "1.235e+06" in text
        assert "1.000e-05" in text
        assert "yes" in text

    def test_format_table_helper(self):
        text = format_table(["a", "b"], [[1, 2], [3, 4]])
        assert "3" in text and "4" in text

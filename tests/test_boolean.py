"""Tests for the scanline boolean engine."""

import math

import pytest

from repro.geometry.boolean import (
    boolean_polygons,
    boolean_trapezoids,
    difference,
    intersection,
    symmetric_difference,
    trapezoids_to_polygons,
    union,
)
from repro.geometry.polygon import Polygon


def area_of(traps):
    return sum(t.area() for t in traps)


@pytest.fixture
def a():
    return Polygon.rectangle(0, 0, 10, 10)


@pytest.fixture
def b():
    return Polygon.rectangle(5, 5, 15, 15)


class TestRectanglePairs:
    def test_union_area(self, a, b):
        assert area_of(boolean_trapezoids([a], [b], "or")) == pytest.approx(175.0)

    def test_intersection_area(self, a, b):
        assert area_of(boolean_trapezoids([a], [b], "and")) == pytest.approx(25.0)

    def test_difference_area(self, a, b):
        assert area_of(boolean_trapezoids([a], [b], "sub")) == pytest.approx(75.0)

    def test_xor_area(self, a, b):
        assert area_of(boolean_trapezoids([a], [b], "xor")) == pytest.approx(150.0)

    def test_inclusion_exclusion(self, a, b):
        u = area_of(boolean_trapezoids([a], [b], "or"))
        i = area_of(boolean_trapezoids([a], [b], "and"))
        assert u + i == pytest.approx(a.area() + b.area())

    def test_disjoint_rectangles(self):
        p = Polygon.rectangle(0, 0, 1, 1)
        q = Polygon.rectangle(5, 5, 6, 6)
        assert area_of(boolean_trapezoids([p], [q], "or")) == pytest.approx(2.0)
        assert boolean_trapezoids([p], [q], "and") == []

    def test_identical_rectangles(self, a):
        assert area_of(boolean_trapezoids([a], [a], "or")) == pytest.approx(100.0)
        assert area_of(boolean_trapezoids([a], [a], "xor")) == pytest.approx(0.0)

    def test_contained_rectangle_difference_is_donut(self, a):
        inner = Polygon.rectangle(3, 3, 7, 7)
        traps = boolean_trapezoids([a], [inner], "sub")
        assert area_of(traps) == pytest.approx(84.0)


class TestNonRectilinear:
    def test_triangle_area_preserved(self):
        t = Polygon([(0, 0), (10, 0), (5, 8)])
        assert area_of(boolean_trapezoids([t], [], "or")) == pytest.approx(
            t.area(), rel=1e-6
        )

    def test_rotated_square_self_union(self):
        sq = Polygon.rectangle(0, 0, 10, 10).rotated(math.radians(30))
        assert area_of(boolean_trapezoids([sq], [], "or")) == pytest.approx(
            100.0, rel=1e-4
        )

    def test_triangle_rect_intersection(self):
        t = Polygon([(0, 0), (10, 0), (5, 10)])
        r = Polygon.rectangle(0, 0, 10, 2)
        # Trapezoid with parallel sides 10 (y=0) and 8 (y=2).
        assert area_of(boolean_trapezoids([t], [r], "and")) == pytest.approx(
            18.0, rel=1e-6
        )

    def test_circle_approx_minus_half_plane_box(self):
        circle = Polygon.regular((0, 0), 5, 128)
        box = Polygon.rectangle(-6, 0, 6, 6)
        top = area_of(boolean_trapezoids([circle], [box], "and"))
        assert top == pytest.approx(circle.area() / 2, rel=1e-3)


class TestFillRules:
    def test_overlapping_same_group_nonzero_counts_once(self):
        p = Polygon.rectangle(0, 0, 10, 10)
        q = Polygon.rectangle(5, 0, 15, 10)
        assert area_of(boolean_trapezoids([p, q], [], "or")) == pytest.approx(150.0)

    def test_evenodd_cancels_overlap(self):
        p = Polygon.rectangle(0, 0, 10, 10)
        q = Polygon.rectangle(5, 0, 15, 10)
        traps = boolean_trapezoids([p, q], [], "or", fill_rule="evenodd")
        assert area_of(traps) == pytest.approx(100.0)

    def test_unknown_operation_raises(self, a):
        with pytest.raises(ValueError, match="unknown operation"):
            boolean_trapezoids([a], [], "nand")

    def test_unknown_fill_rule_raises(self, a):
        with pytest.raises(ValueError, match="fill rule"):
            boolean_trapezoids([a], [], "or", fill_rule="winding")


class TestEdgeCases:
    def test_empty_inputs(self):
        assert boolean_trapezoids([], [], "or") == []

    def test_empty_second_operand_difference(self, a):
        assert area_of(boolean_trapezoids([a], [], "sub")) == pytest.approx(100.0)

    def test_difference_with_self_is_empty(self, a):
        assert area_of(boolean_trapezoids([a], [a], "sub")) == pytest.approx(0.0)

    def test_corner_touching_squares(self):
        p = Polygon.rectangle(0, 0, 5, 5)
        q = Polygon.rectangle(5, 5, 10, 10)
        assert area_of(boolean_trapezoids([p], [q], "or")) == pytest.approx(50.0)
        assert area_of(boolean_trapezoids([p], [q], "and")) == pytest.approx(0.0)

    def test_edge_touching_squares_union_merges(self):
        p = Polygon.rectangle(0, 0, 5, 10)
        q = Polygon.rectangle(5, 0, 10, 10)
        traps = boolean_trapezoids([p], [q], "or")
        assert area_of(traps) == pytest.approx(100.0)
        assert len(traps) == 1  # merged into one rectangle

    def test_sub_micron_grid_snapping(self):
        # Features below half a database unit vanish by snapping.
        tiny = Polygon.rectangle(0, 0, 4e-4, 4e-4)
        assert boolean_trapezoids([tiny], [], "or", grid=1e-3) == []

    def test_trapezoids_are_disjoint(self, a, b):
        traps = boolean_trapezoids([a], [b], "or")
        # Pairwise interior-disjoint: sample midpoints cannot be inside
        # another trapezoid.
        polys = [t.to_polygon() for t in traps]
        for i, t in enumerate(traps):
            c = t.centroid()
            for j, p in enumerate(polys):
                if i != j:
                    assert not p.contains_point(c, include_boundary=False)


class TestPolygonReassembly:
    def test_union_single_polygon(self, a, b):
        polys = boolean_polygons([a], [b], "or")
        assert len(polys) == 1
        assert polys[0].area() == pytest.approx(175.0)

    def test_donut_produces_hole(self, a):
        inner = Polygon.rectangle(3, 3, 7, 7)
        polys = boolean_polygons([a], [inner], "sub")
        signed = sorted(p.signed_area() for p in polys)
        assert signed[0] == pytest.approx(-16.0)  # CW hole
        assert signed[1] == pytest.approx(100.0)  # CCW outer

    def test_net_signed_area_equals_trap_area(self, a, b):
        traps = boolean_trapezoids([a], [b], "xor")
        polys = trapezoids_to_polygons(traps)
        assert sum(p.signed_area() for p in polys) == pytest.approx(
            area_of(traps), rel=1e-9
        )

    def test_reassembly_of_checkerboard_corners(self):
        squares = [
            Polygon.rectangle(i * 5, j * 5, i * 5 + 5, j * 5 + 5)
            for i in range(4)
            for j in range(4)
            if (i + j) % 2 == 0
        ]
        traps = boolean_trapezoids(squares, [], "or")
        polys = trapezoids_to_polygons(traps)
        assert sum(p.signed_area() for p in polys) == pytest.approx(8 * 25.0)

    def test_empty_input(self):
        assert trapezoids_to_polygons([]) == []


class TestConvenienceWrappers:
    def test_union_wrapper(self, a, b):
        polys = union([a, b])
        assert sum(p.signed_area() for p in polys) == pytest.approx(175.0)

    def test_intersection_wrapper(self, a, b):
        polys = intersection([a], [b])
        assert sum(p.signed_area() for p in polys) == pytest.approx(25.0)

    def test_difference_wrapper(self, a, b):
        polys = difference([a], [b])
        assert sum(p.signed_area() for p in polys) == pytest.approx(75.0)

    def test_symmetric_difference_wrapper(self, a, b):
        polys = symmetric_difference([a], [b])
        assert sum(p.signed_area() for p in polys) == pytest.approx(150.0)

"""Tests for repro.layout.flatten."""

import pytest

from repro.geometry.transform import Transform
from repro.layout.cell import Cell
from repro.layout.flatten import (
    flat_area,
    flat_polygon_count,
    flat_vertex_count,
    flatten_cell,
    flatten_library,
)
from repro.layout.layer import Layer
from repro.layout.library import Library


@pytest.fixture
def two_level():
    leaf = Cell("LEAF")
    leaf.add_rectangle(0, 0, 2, 1, layer=1)
    leaf.add_rectangle(0, 2, 1, 3, layer=2)
    top = Cell("TOP")
    top.add_rectangle(-5, -5, -4, -4, layer=1)
    top.instantiate(leaf, (10, 0))
    top.instantiate(leaf, (0, 10), rotation_deg=90)
    return top


class TestFlattening:
    def test_counts(self, two_level):
        flat = flatten_cell(two_level)
        assert flat_polygon_count(flat) == 5
        assert flat_vertex_count(flat) == 20

    def test_layers_preserved(self, two_level):
        flat = flatten_cell(two_level)
        assert Layer(1) in flat
        assert Layer(2) in flat
        assert len(flat[Layer(1)]) == 3

    def test_area_preserved(self, two_level):
        flat = flatten_cell(two_level)
        assert flat_area(flat) == pytest.approx(1 + 2 * 3.0)
        assert flat_area(flat, Layer(2)) == pytest.approx(2.0)

    def test_transform_applied(self, two_level):
        flat = flatten_cell(two_level)
        boxes = [p.bounding_box() for p in flat[Layer(1)]]
        assert any(b == pytest.approx((10, 0, 12, 1)) for b in boxes)
        # Rotated placement: rectangle rotated 90° about (0, 10).
        assert any(b == pytest.approx((-1, 10, 0, 12)) for b in boxes)

    def test_root_transform(self, two_level):
        flat = flatten_cell(two_level, transform=Transform.translation(100, 0))
        boxes = [p.bounding_box() for p in flat[Layer(1)]]
        assert any(b == pytest.approx((110, 0, 112, 1)) for b in boxes)

    def test_layer_filter(self, two_level):
        flat = flatten_cell(two_level, layers={Layer(2)})
        assert list(flat) == [Layer(2)]

    def test_max_depth_zero_keeps_only_own_polygons(self, two_level):
        flat = flatten_cell(two_level, max_depth=0)
        assert flat_polygon_count(flat) == 1

    def test_max_depth_one(self, two_level):
        flat = flatten_cell(two_level, max_depth=1)
        assert flat_polygon_count(flat) == 5

    def test_cycle_detection(self):
        a, b = Cell("A"), Cell("B")
        a.instantiate(b, (0, 0))
        b.instantiate(a, (0, 0))
        with pytest.raises(ValueError, match="cycle"):
            flatten_cell(a)

    def test_nested_arrays_expand(self):
        leaf = Cell("LEAF")
        leaf.add_rectangle(0, 0, 1, 1)
        mid = Cell("MID")
        mid.instantiate_array(leaf, 3, 1, 2.0, 2.0)
        top = Cell("TOP")
        top.instantiate_array(mid, 1, 4, 10.0, 10.0)
        flat = flatten_cell(top)
        assert flat_polygon_count(flat) == 12


class TestFlattenLibrary:
    def test_uses_top_cell(self, two_level):
        lib = Library("T")
        lib.add(two_level)
        flat = flatten_library(lib)
        assert flat_polygon_count(flat) == 5

    def test_named_top(self, two_level):
        lib = Library("T")
        lib.add(two_level)
        flat = flatten_library(lib, top="LEAF")
        assert flat_polygon_count(flat) == 2

"""Tests for the binary machine job-file format."""

import pytest

from repro.core.job import MachineJob
from repro.core.jobfile import (
    JobFileError,
    dumps_job,
    job_file_bytes,
    loads_job,
    read_job,
    write_job,
)
from repro.fracture.base import Shot
from repro.fracture.trapezoidal import TrapezoidFracturer
from repro.geometry.polygon import Polygon
from repro.geometry.trapezoid import Trapezoid


def sample_job():
    shots = [
        Shot(Trapezoid.from_rectangle(0, 0, 2.5, 1.25), dose=1.0),
        Shot(Trapezoid(1.0, 3.0, 5.0, 9.0, 6.0, 8.0), dose=1.732),
        Shot(Trapezoid.from_rectangle(-4, -2, -1, 0), dose=0.25),
    ]
    return MachineJob(shots, base_dose=5.0, name="sample")


class TestRoundTrip:
    def test_shot_geometry_and_doses(self):
        job = sample_job()
        restored = loads_job(dumps_job(job))
        assert restored.base_dose == pytest.approx(5.0)
        assert restored.figure_count() == 3
        for original, loaded in zip(job.shots, restored.shots):
            ot, lt = original.trapezoid, loaded.trapezoid
            assert lt.y_bottom == pytest.approx(ot.y_bottom, abs=1e-3)
            assert lt.y_top == pytest.approx(ot.y_top, abs=1e-3)
            assert lt.x_bottom_left == pytest.approx(ot.x_bottom_left, abs=1e-3)
            assert lt.x_top_right == pytest.approx(ot.x_top_right, abs=1e-3)
            assert loaded.dose == pytest.approx(original.dose, abs=1e-3)

    def test_area_preserved(self):
        job = sample_job()
        restored = loads_job(dumps_job(job))
        assert restored.pattern_area() == pytest.approx(
            job.pattern_area(), rel=1e-3
        )

    def test_file_roundtrip(self, tmp_path):
        job = sample_job()
        path = tmp_path / "job.ebj"
        n = write_job(job, path)
        assert path.stat().st_size == n
        restored = read_job(path)
        assert restored.name == "job"
        assert restored.figure_count() == 3

    def test_fractured_pattern_roundtrip(self):
        polys = [Polygon([(0, 0), (10, 0), (5, 8)])]
        shots = TrapezoidFracturer().fracture_to_shots(polys, dose=2.0)
        job = MachineJob(shots, base_dose=1.0)
        restored = loads_job(dumps_job(job))
        assert restored.pattern_area() == pytest.approx(40.0, rel=1e-3)

    def test_size_accounting(self):
        job = sample_job()
        assert len(dumps_job(job)) == job_file_bytes(3)


class TestFailureModes:
    def test_bad_magic(self):
        data = bytearray(dumps_job(sample_job()))
        data[:4] = b"XXXX"
        with pytest.raises(JobFileError, match="magic"):
            loads_job(bytes(data))

    def test_truncated_header(self):
        with pytest.raises(JobFileError, match="header"):
            loads_job(b"EB")

    def test_truncated_records(self):
        data = dumps_job(sample_job())
        with pytest.raises(JobFileError, match="truncated records"):
            loads_job(data[:-4])

    def test_unit_validation(self):
        with pytest.raises(JobFileError):
            dumps_job(sample_job(), unit=0.0)

    def test_dose_range_enforced(self):
        job = MachineJob(
            [Shot(Trapezoid.from_rectangle(0, 0, 1, 1), dose=100.0)]
        )
        with pytest.raises(JobFileError, match="dose"):
            dumps_job(job)

    def test_extreme_slant_rejected(self):
        trapezoid = Trapezoid(0, 0.001, 0, 0.5, 100.0, 100.5)
        job = MachineJob([Shot(trapezoid)])
        with pytest.raises(JobFileError, match="slant"):
            dumps_job(job)

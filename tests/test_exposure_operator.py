"""Tests for the exposure-operator protocol (dense / sparse / hybrid).

The sparse backend's contract is *tolerance zero*: the CSR matrix must
hold exactly the dense matrix's within-cutoff entries (same nonzero
pattern, bit-identical values) on arbitrary hypothesis-drawn shot
lists.  The hybrid backend's contract is a tolerance: its exposure must
track the dense reference within a small absolute error.  The
``matrix_mode`` knob must reach the shard cache key, the pipeline and
the CLI.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import shard_cache_key
from repro.core.executor import Shard, ShardedExecutor
from repro.core.pipeline import PreparationPipeline
from repro.fracture.base import Shot
from repro.fracture.trapezoidal import TrapezoidFracturer
from repro.geometry.polygon import Polygon
from repro.geometry.trapezoid import Trapezoid
from repro.pec.base import (
    edge_sample_points,
    exposure_at_points,
    interaction_matrix_at_points,
    interaction_matrix_csr,
    shot_sample_points,
    trapezoid_exposure,
)
from repro.pec.dose_iter import IterativeDoseCorrector
from repro.pec.dose_matrix import MatrixDoseCorrector
from repro.pec.ghost import GhostCorrector, GhostExposure, split_ghost
from repro.pec.operator import (
    MATRIX_MODES,
    build_exposure_operator,
    validate_matrix_mode,
)
from repro.physics.psf import DoubleGaussianPSF

PSF = DoubleGaussianPSF(alpha=0.2, beta=2.0, eta=0.74)


# -- hypothesis strategies ----------------------------------------------

coordinate = st.floats(
    min_value=-40.0, max_value=40.0, allow_nan=False, allow_infinity=False
).map(lambda v: round(v, 3))

extent = st.floats(
    min_value=0.05, max_value=12.0, allow_nan=False, allow_infinity=False
).map(lambda v: round(v, 3))


@st.composite
def trapezoids(draw):
    """Arbitrary positive-area horizontal trapezoids, triangles included
    (at most one parallel edge collapses — the fracturer invariant)."""
    yb = draw(coordinate)
    height = draw(extent)
    xbl = draw(coordinate)
    xtl = draw(coordinate)
    bottom = draw(st.one_of(st.just(0.0), extent))
    if bottom == 0.0:
        top = draw(extent)
    else:
        top = draw(st.one_of(st.just(0.0), extent))
    return Trapezoid(yb, yb + height, xbl, xbl + bottom, xtl, xtl + top)


@st.composite
def shot_lists(draw, min_size=1, max_size=40):
    traps = draw(
        st.lists(trapezoids(), min_size=min_size, max_size=max_size)
    )
    doses = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=4.0).map(
                lambda v: round(v, 3)
            ),
            min_size=len(traps),
            max_size=len(traps),
        )
    )
    return [Shot(t, d) for t, d in zip(traps, doses)]


# -- sparse == dense, tolerance zero ------------------------------------


class TestSparseEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(shots=shot_lists())
    def test_csr_equals_dense_bitwise(self, shots):
        points = shot_sample_points(shots, "centroid")
        dense = interaction_matrix_at_points(points, shots, PSF)
        sparse = interaction_matrix_csr(points, shots, PSF)
        assert sparse.shape == dense.shape
        full = sparse.toarray()
        assert np.array_equal(full, dense)
        assert np.array_equal(full != 0, dense != 0)

    @settings(max_examples=25, deadline=None)
    @given(shots=shot_lists(), factor=st.sampled_from([1.0, 2.5, 6.0]))
    def test_csr_equals_dense_across_cutoffs(self, shots, factor):
        points, _ = edge_sample_points(shots)
        dense = interaction_matrix_at_points(
            points, shots, PSF, cutoff_factor=factor
        )
        sparse = interaction_matrix_csr(
            points, shots, PSF, cutoff_factor=factor
        )
        assert np.array_equal(sparse.toarray(), dense)

    def test_empty_inputs(self):
        empty = np.empty((0, 2))
        assert interaction_matrix_csr(empty, [], PSF).shape == (0, 0)
        op = build_exposure_operator(empty, [], PSF, mode="sparse")
        assert (op @ np.empty(0)).shape == (0,)

    @settings(max_examples=25, deadline=None)
    @given(shots=shot_lists())
    def test_operator_apply_matches_dense_levels(self, shots):
        points = shot_sample_points(shots, "centroid")
        doses = np.array([s.dose for s in shots])
        dense = build_exposure_operator(points, shots, PSF, mode="dense")
        sparse = build_exposure_operator(points, shots, PSF, mode="sparse")
        np.testing.assert_allclose(
            sparse @ doses, dense @ doses, rtol=1e-12, atol=1e-15
        )

    @settings(max_examples=15, deadline=None)
    @given(shots=shot_lists(min_size=2, max_size=25))
    def test_sparse_doses_match_dense_digest(self, shots):
        from repro.core.job import MachineJob

        dense = IterativeDoseCorrector(matrix_mode="dense").correct(
            shots, PSF
        )
        sparse = IterativeDoseCorrector(matrix_mode="sparse").correct(
            shots, PSF
        )
        assert (
            MachineJob(sparse).dose_digest()
            == MachineJob(dense).dose_digest()
        )


# -- hybrid within tolerance --------------------------------------------


class TestHybridAccuracy:
    @settings(max_examples=30, deadline=None)
    @given(shots=shot_lists(min_size=1, max_size=25))
    def test_hybrid_exposure_tracks_dense(self, shots):
        points = shot_sample_points(shots, "centroid")
        doses = np.array([s.dose for s in shots])
        dense = build_exposure_operator(points, shots, PSF, mode="dense")
        hybrid = build_exposure_operator(points, shots, PSF, mode="hybrid")
        reference = dense @ doses
        # Absolute tolerance in large-pad units: the backscatter grid
        # is the only approximation, and its error is a small fraction
        # of the η/(1+η) background scale.
        np.testing.assert_allclose(
            hybrid @ doses, reference, atol=0.02 * max(doses.max(), 1.0)
        )

    def test_grid_cell_knob_tightens_error(self):
        shots = TrapezoidFracturer().fracture_to_shots(
            [Polygon.rectangle(i * 1.5, 0, i * 1.5 + 0.9, 12) for i in range(8)]
        )
        points = shot_sample_points(shots, "centroid")
        doses = np.ones(len(shots))
        reference = (
            build_exposure_operator(points, shots, PSF, mode="dense")
            @ doses
        )
        errors = []
        for cell in (2.0, 0.25):
            hybrid = build_exposure_operator(
                points, shots, PSF, mode="hybrid", grid_cell=cell
            )
            errors.append(np.abs(hybrid @ doses - reference).max())
        assert errors[1] < errors[0]

    def test_hybrid_memory_below_dense(self):
        from repro.fracture.shots import ShotFracturer

        shots = ShotFracturer(max_shot=2.0).fracture_to_shots(
            [Polygon.rectangle(i * 2.0, 0, i * 2.0 + 1.0, 60) for i in range(60)]
        )
        points = shot_sample_points(shots, "centroid")
        dense = build_exposure_operator(points, shots, PSF, mode="dense")
        hybrid = build_exposure_operator(points, shots, PSF, mode="hybrid")
        sparse = build_exposure_operator(points, shots, PSF, mode="sparse")
        assert hybrid.matrix_nbytes < dense.matrix_nbytes / 10
        assert sparse.matrix_nbytes < dense.matrix_nbytes / 10

    def test_invalid_grid_cell(self):
        shots = [Shot(Trapezoid.from_rectangle(0, 0, 1, 1))]
        points = shot_sample_points(shots)
        with pytest.raises(ValueError):
            build_exposure_operator(
                points, shots, PSF, mode="hybrid", grid_cell=0.0
            )


# -- solve paths ---------------------------------------------------------


class TestOperatorSolve:
    def _shots(self):
        return TrapezoidFracturer().fracture_to_shots(
            [
                Polygon.rectangle(0, 0, 20, 20),
                Polygon.rectangle(22, 0, 22.5, 20),
            ]
        )

    def test_sparse_solve_matches_dense(self):
        shots = self._shots()
        dense = MatrixDoseCorrector(matrix_mode="dense").correct(shots, PSF)
        sparse = MatrixDoseCorrector(matrix_mode="sparse").correct(
            shots, PSF
        )
        np.testing.assert_allclose(
            [s.dose for s in sparse], [s.dose for s in dense], rtol=1e-9
        )

    def test_hybrid_solve_close_to_dense(self):
        shots = self._shots()
        dense = MatrixDoseCorrector(matrix_mode="dense").correct(shots, PSF)
        hybrid = MatrixDoseCorrector(matrix_mode="hybrid").correct(
            shots, PSF
        )
        np.testing.assert_allclose(
            [s.dose for s in hybrid], [s.dose for s in dense], rtol=0.05
        )

    def test_regularized_sparse_solve(self):
        shots = self._shots()
        dense = MatrixDoseCorrector(
            matrix_mode="dense", regularization=1e-3
        ).correct(shots, PSF)
        sparse = MatrixDoseCorrector(
            matrix_mode="sparse", regularization=1e-3
        ).correct(shots, PSF)
        np.testing.assert_allclose(
            [s.dose for s in sparse], [s.dose for s in dense], rtol=1e-6
        )


# -- mode validation and wiring -----------------------------------------


class TestModeWiring:
    def test_validate_matrix_mode(self):
        for mode in MATRIX_MODES:
            assert validate_matrix_mode(mode) == mode
        with pytest.raises(ValueError):
            validate_matrix_mode("csr")

    def test_corrector_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            IterativeDoseCorrector(matrix_mode="banana")
        with pytest.raises(ValueError):
            MatrixDoseCorrector(matrix_mode="banana")

    def test_matrix_mode_changes_shard_cache_key(self):
        shard = Shard(
            index=(0, 0),
            polygons=(Polygon.rectangle(0, 0, 4, 4),),
        )
        fracturer = TrapezoidFracturer()
        keys = {
            mode: shard_cache_key(
                shard,
                fracturer,
                IterativeDoseCorrector(matrix_mode=mode),
                PSF,
            )
            for mode in MATRIX_MODES
        }
        assert len(set(keys.values())) == len(MATRIX_MODES)
        # Equal configuration still collides on the same key.
        assert keys["sparse"] == shard_cache_key(
            shard,
            fracturer,
            IterativeDoseCorrector(matrix_mode="sparse"),
            PSF,
        )

    def test_grid_cell_changes_shard_cache_key(self):
        shard = Shard(
            index=(0, 0),
            polygons=(Polygon.rectangle(0, 0, 4, 4),),
        )
        fracturer = TrapezoidFracturer()
        a = shard_cache_key(
            shard,
            fracturer,
            IterativeDoseCorrector(matrix_mode="hybrid", grid_cell=0.5),
            PSF,
        )
        b = shard_cache_key(
            shard,
            fracturer,
            IterativeDoseCorrector(matrix_mode="hybrid", grid_cell=0.25),
            PSF,
        )
        assert a != b

    def test_executor_threads_matrix_mode_to_corrector(self):
        corrector = IterativeDoseCorrector()
        executor = ShardedExecutor(
            TrapezoidFracturer(),
            corrector=corrector,
            psf=PSF,
            matrix_mode="sparse",
        )
        assert executor.corrector.matrix_mode == "sparse"
        # The caller's corrector is never mutated — it may be shared
        # with other pipelines.
        assert corrector.matrix_mode == "dense"

    def test_executor_rejects_mode_without_corrector(self):
        with pytest.raises(ValueError):
            ShardedExecutor(TrapezoidFracturer(), matrix_mode="sparse")
        with pytest.raises(ValueError):
            ShardedExecutor(
                TrapezoidFracturer(),
                corrector=GhostCorrector(),
                psf=PSF,
                matrix_mode="sparse",
            )

    def test_pipeline_sparse_mode_digest_matches_dense(self):
        layout = [
            Polygon.rectangle(i * 2.0, 0, i * 2.0 + 1.0, 18.0)
            for i in range(9)
        ]
        results = {}
        for mode in ("dense", "sparse"):
            pipe = PreparationPipeline(
                corrector=IterativeDoseCorrector(),
                psf=PSF,
                matrix_mode=mode,
            )
            results[mode] = pipe.run_polygons(layout)
        assert (
            results["sparse"].job.dose_digest()
            == results["dense"].job.dose_digest()
        )
        assert (
            results["sparse"].job.portable_digest()
            == results["dense"].job.portable_digest()
        )


# -- vectorized sample helpers stay bit-identical ------------------------


class TestVectorizedSampling:
    @settings(max_examples=60, deadline=None)
    @given(shots=shot_lists(max_size=30))
    def test_centroid_matches_scalar_loop(self, shots):
        expected = np.empty((len(shots), 2))
        for i, shot in enumerate(shots):
            c = shot.trapezoid.centroid()
            expected[i] = (c.x, c.y)
        assert np.array_equal(
            shot_sample_points(shots, "centroid"), expected
        )

    @settings(max_examples=40, deadline=None)
    @given(shots=shot_lists(max_size=30))
    def test_center_matches_scalar_loop(self, shots):
        expected = np.empty((len(shots), 2))
        for i, shot in enumerate(shots):
            b = shot.trapezoid.bounding_box()
            expected[i] = ((b[0] + b[2]) / 2.0, (b[1] + b[3]) / 2.0)
        assert np.array_equal(
            shot_sample_points(shots, "center"), expected
        )

    @settings(max_examples=40, deadline=None)
    @given(shots=shot_lists(max_size=30))
    def test_edge_points_match_scalar_loop(self, shots):
        n = len(shots)
        expected = np.empty((2 * n, 2))
        owners = np.empty(2 * n, dtype=int)
        for i, shot in enumerate(shots):
            t = shot.trapezoid
            y_mid = 0.5 * (t.y_bottom + t.y_top)
            left = 0.5 * (t.x_bottom_left + t.x_top_left)
            right = 0.5 * (t.x_bottom_right + t.x_top_right)
            inset = 0.02 * max(right - left, 1e-9)
            expected[2 * i] = (left + inset, y_mid)
            expected[2 * i + 1] = (right - inset, y_mid)
            owners[2 * i] = i
            owners[2 * i + 1] = i
        points, got_owners = edge_sample_points(shots)
        assert np.array_equal(points, expected)
        assert np.array_equal(got_owners, owners)

    def test_empty_shot_list(self):
        assert shot_sample_points([], "centroid").shape == (0, 2)
        points, owners = edge_sample_points([])
        assert points.shape == (0, 2)
        assert owners.shape == (0,)


# -- exposure_at_points through the operator -----------------------------


class TestExposureAtPoints:
    @settings(max_examples=25, deadline=None)
    @given(shots=shot_lists(max_size=20))
    def test_matches_per_shot_accumulation(self, shots):
        points = shot_sample_points(shots, "centroid")
        legacy = np.zeros(len(points))
        for shot in shots:
            legacy += shot.dose * trapezoid_exposure(
                points, shot.trapezoid, PSF
            )
        for mode in ("dense", "sparse"):
            levels = exposure_at_points(points, shots, PSF, matrix_mode=mode)
            np.testing.assert_allclose(levels, legacy, rtol=1e-6, atol=1e-6)

    def test_ghost_absorbed_at_points(self):
        from repro.geometry.rasterize import RasterFrame

        shots = TrapezoidFracturer().fracture_to_shots(
            [Polygon.rectangle(0, 0, 10, 10)]
        )
        ghost = GhostCorrector(margin=5.0)
        corrected = ghost.correct(shots, PSF)
        pattern, ghost_shots = split_ghost(corrected, len(shots))
        frame = RasterFrame.around((0, 0, 10, 10), 0.1, margin=6.0)
        exposure = GhostExposure(PSF, frame)
        points = np.array([[5.0, 5.0], [0.0, 5.0], [-3.0, 5.0]])
        for mode in ("dense", "sparse"):
            levels = exposure.absorbed_at_points(
                pattern, ghost_shots, points, matrix_mode=mode
            )
            image = exposure.absorbed(pattern, ghost_shots)
            sampled = [
                exposure._pattern_sim.sample(image, x, y) for x, y in points
            ]
            np.testing.assert_allclose(levels, sampled, atol=0.06)

"""Tests for the raster RLE datapath encoder."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fracture.trapezoidal import TrapezoidFracturer
from repro.geometry.polygon import Polygon
from repro.geometry.rasterize import RasterFrame, rasterize_trapezoids
from repro.geometry.trapezoid import Trapezoid
from repro.machine.rle import (
    RlePattern,
    decode_to_coverage,
    encode_figures,
    stream_rate_required,
)


def reference_coverage(figures, address_unit, origin, width, line_count):
    """Independent pixel-centre membership oracle (vectorized, no runs).

    A pixel is covered iff its centre satisfies ``y_bottom <= y < y_top``
    and ``left <= x < right`` on the figure's interpolated x-span — the
    encoder's half-open contract, computed without any run/merge/index
    arithmetic.
    """
    x0, y0 = origin
    xs = x0 + (np.arange(width) + 0.5) * address_unit
    ys = y0 + (np.arange(line_count) + 0.5) * address_unit
    grid = np.zeros((line_count, width), dtype=bool)
    for f in figures:
        if f.height <= 0:
            continue
        inside_y = (ys >= f.y_bottom) & (ys < f.y_top)
        t = (ys - f.y_bottom) / f.height
        left = f.x_bottom_left + t * (f.x_top_left - f.x_bottom_left)
        right = f.x_bottom_right + t * (f.x_top_right - f.x_bottom_right)
        grid |= (
            inside_y[:, None]
            & (xs[None, :] >= left[:, None])
            & (xs[None, :] < right[:, None])
        )
    return grid


def pattern_width(figures, pattern):
    x_max = max(f.bounding_box()[2] for f in figures)
    return max(1, int(math.ceil((x_max - pattern.origin[0]) / pattern.address_unit)))


#: Quarter-unit grid coordinates so figure edges frequently land exactly
#: on pixel centres and pixel boundaries of the sampled address units
#: (0.25-grid points coincide with pixel centres of 0.5 µm addresses).
_GRID = 0.25


@st.composite
def quantized_trapezoids(draw):
    y0 = draw(st.integers(0, 20)) * _GRID
    height = draw(st.integers(1, 12)) * _GRID
    xbl = draw(st.integers(0, 20)) * _GRID
    bottom = draw(st.integers(0, 12)) * _GRID
    xtl = draw(st.integers(0, 20)) * _GRID
    top = draw(st.integers(1, 12)) * _GRID
    return Trapezoid(y0, y0 + height, xbl, xbl + bottom, xtl, xtl + top)


class TestEncoding:
    def test_empty(self):
        pattern = encode_figures([], 0.5)
        assert pattern.run_count() == 0
        assert pattern.encoded_bytes() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            encode_figures([Trapezoid.from_rectangle(0, 0, 1, 1)], 0.0)

    def test_single_rectangle_runs(self):
        rect = Trapezoid.from_rectangle(0, 0, 4, 2)
        pattern = encode_figures([rect], address_unit=0.5)
        # 4 scanlines of one 8-address run each.
        assert pattern.line_count == 4
        assert pattern.run_count() == 4
        for runs in pattern.lines.values():
            assert runs == [(0, 8)]

    def test_written_addresses_match_area(self):
        rect = Trapezoid.from_rectangle(0, 0, 10, 6)
        pattern = encode_figures([rect], address_unit=0.5)
        assert pattern.written_addresses() == (10 / 0.5) * (6 / 0.5)

    def test_adjacent_figures_merge_runs(self):
        left = Trapezoid.from_rectangle(0, 0, 2, 1)
        right = Trapezoid.from_rectangle(2, 0, 4, 1)
        pattern = encode_figures([left, right], address_unit=0.5)
        for runs in pattern.lines.values():
            assert len(runs) == 1

    def test_disjoint_figures_keep_separate_runs(self):
        a = Trapezoid.from_rectangle(0, 0, 1, 1)
        b = Trapezoid.from_rectangle(5, 0, 6, 1)
        pattern = encode_figures([a, b], address_unit=0.5)
        for runs in pattern.lines.values():
            assert len(runs) == 2

    def test_triangle_runs_shrink_with_height(self):
        tri = Trapezoid(0, 4, 0, 8, 4, 4)  # triangle tip at top
        pattern = encode_figures([tri], address_unit=0.5)
        lengths = [
            sum(l for _, l in pattern.lines[j]) for j in sorted(pattern.lines)
        ]
        assert all(b <= a for a, b in zip(lengths, lengths[1:]))

    def test_encoded_bytes_accounting(self):
        rect = Trapezoid.from_rectangle(0, 0, 4, 2)
        pattern = encode_figures([rect], address_unit=0.5)
        assert pattern.encoded_bytes() == 4 * 4 + 4 * 2


class _DegenerateFigure:
    """Duck-typed zero-height figure (Trapezoid itself forbids it)."""

    y_bottom = 1.0
    y_top = 1.0
    height = 0.0
    x_bottom_left = 0.0
    x_bottom_right = 2.0
    x_top_left = 0.0
    x_top_right = 2.0

    def bounding_box(self):
        return (0.0, 1.0, 2.0, 1.0)


class TestDegenerateAndOrigin:
    def test_zero_height_figure_is_skipped(self):
        # Regression: ``t = (y - y_bottom) / height`` used to raise
        # ZeroDivisionError for degenerate figures.
        pattern = encode_figures([_DegenerateFigure()], 0.5)
        assert pattern.run_count() == 0

    def test_zero_height_figure_among_real_ones(self):
        rect = Trapezoid.from_rectangle(0, 0, 2, 1)
        pattern = encode_figures([rect, _DegenerateFigure()], 0.5)
        only = encode_figures([rect], 0.5, origin=pattern.origin)
        assert pattern.lines == only.lines

    def test_explicit_origin_above_figure_raises(self):
        rect = Trapezoid.from_rectangle(0, 0, 2, 2)
        with pytest.raises(ValueError, match="origin"):
            encode_figures([rect], 0.5, origin=(0.0, 1.0))

    def test_explicit_origin_right_of_figure_raises(self):
        rect = Trapezoid.from_rectangle(0, 0, 2, 2)
        with pytest.raises(ValueError, match="origin"):
            encode_figures([rect], 0.5, origin=(1.0, 0.0))

    def test_explicit_origin_below_extends_grid(self):
        rect = Trapezoid.from_rectangle(0, 0, 2, 1)
        base = encode_figures([rect], 0.5, origin=(0.0, 0.0))
        shifted = encode_figures([rect], 0.5, origin=(-1.0, -1.0))
        assert shifted.line_count == base.line_count + 2
        for j, runs in base.lines.items():
            assert shifted.lines[j + 2] == [
                (start + 2, length) for start, length in runs
            ]

    def test_runs_stay_within_line_count(self):
        figs = [
            Trapezoid.from_rectangle(0, 0, 3, 1.3),
            Trapezoid(1.3, 2.9, 0.1, 2.7, 1.0, 1.9),
        ]
        pattern = encode_figures(figs, 0.5, origin=(-2.0, -1.5))
        assert pattern.lines
        assert all(0 <= j < pattern.line_count for j in pattern.lines)


class TestHalfOpenConvention:
    def test_edge_on_centre_rows_stay_within_estimate(self):
        # Bottom edge half an address below a centre, height exactly two
        # address units: the inclusive convention wrote three scanlines
        # (> ceil(h/a)); half-open writes exactly ceil(h/a).
        f = Trapezoid.from_rectangle(0, 0.5, 3, 2.5)
        pattern = encode_figures([f], 1.0, origin=(0.0, 0.0))
        assert pattern.run_count() == 2

    def test_abutting_edge_on_centre_column_written_once(self):
        # Shared vertical edge at x = 1.5, exactly the centre of column
        # 1 at a 1 µm address: the column belongs to the right-hand
        # figure only, so even without run merging (e.g. the two figures
        # in different machine-program shards) nothing double-writes.
        left = Trapezoid.from_rectangle(0, 0, 1.5, 1)
        right = Trapezoid.from_rectangle(1.5, 0, 4, 1)
        only_left = encode_figures([left], 1.0, origin=(0.0, 0.0))
        only_right = encode_figures([right], 1.0, origin=(0.0, 0.0))
        assert only_left.lines[0] == [(0, 1)]
        assert only_right.lines[0] == [(1, 3)]
        both = encode_figures([left, right], 1.0, origin=(0.0, 0.0))
        assert both.lines[0] == [(0, 4)]

    def test_abutting_edge_on_centre_row_written_once(self):
        lower = Trapezoid.from_rectangle(0, 0, 4, 1.5)
        upper = Trapezoid.from_rectangle(0, 1.5, 4, 3.5)
        pattern = encode_figures([lower, upper], 1.0, origin=(0.0, 0.0))
        # The shared edge sits exactly on the centre of row 1; it belongs
        # to the upper figure alone, so every row is one 4-address run
        # and nothing double-counts.
        assert all(runs == [(0, 4)] for runs in pattern.lines.values())
        ref = reference_coverage([lower, upper], 1.0, (0.0, 0.0), 4, pattern.line_count)
        assert (decode_to_coverage(pattern, 4) == ref).all()


class TestPropertyOracle:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(quantized_trapezoids(), min_size=1, max_size=6),
        st.sampled_from([0.25, 0.5, 1.0]),
    )
    def test_encode_matches_membership_oracle(self, figs, address_unit):
        pattern = encode_figures(figs, address_unit)
        width = pattern_width(figs, pattern)
        grid = decode_to_coverage(pattern, width)
        ref = reference_coverage(
            figs, address_unit, pattern.origin, width, pattern.line_count
        )
        assert (grid == ref).all()

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(quantized_trapezoids(), min_size=1, max_size=4),
        st.sampled_from([0.25, 0.5]),
    )
    def test_encode_consistent_with_rasterizer(self, figs, address_unit):
        # One figure per y-band: encode_figures' contract is *disjoint*
        # figures, and the rasterizer's additive-then-clipped coverage
        # would count overlapping duplicates twice.
        figs = [
            Trapezoid(
                t.y_bottom + i * 4.0,
                t.y_top + i * 4.0,
                t.x_bottom_left,
                t.x_bottom_right,
                t.x_top_left,
                t.x_top_right,
            )
            for i, t in enumerate(figs)
        ]
        pattern = encode_figures(figs, address_unit)
        width = pattern_width(figs, pattern)
        grid = decode_to_coverage(pattern, width)
        frame = RasterFrame(
            pattern.origin[0],
            pattern.origin[1],
            address_unit,
            width,
            max(1, pattern.line_count),
        )
        cover = rasterize_trapezoids(figs, frame, supersample=4)
        # A pixel the anti-aliased rasterizer sees as fully covered must
        # be written by the runs (no holes in fully exposed regions).
        # The converse is deliberately not asserted: a steep slanted
        # sliver can cover a pixel's centre row while contributing
        # almost no area, so low coverage does not imply "unwritten".
        assert grid[cover > 0.99].all()

    def test_fractured_layout_matches_oracle(self):
        polys = [
            Polygon.rectangle(0, 0, 6, 3),
            Polygon([(8, 0), (14, 0), (11, 5)]),
            Polygon([(0, 4), (5, 4), (5, 6.5), (0, 6.5)]),
        ]
        figs = TrapezoidFracturer().fracture(polys)
        pattern = encode_figures(figs, 0.25)
        width = pattern_width(figs, pattern)
        grid = decode_to_coverage(pattern, width)
        ref = reference_coverage(
            figs, 0.25, pattern.origin, width, pattern.line_count
        )
        assert (grid == ref).all()


class TestDecode:
    def test_roundtrip_against_rasterizer(self):
        polys = [
            Polygon.rectangle(0, 0, 6, 3),
            Polygon([(8, 0), (14, 0), (11, 5)]),
        ]
        figures = TrapezoidFracturer().fracture(polys)
        a = 0.25
        pattern = encode_figures(figures, address_unit=a)
        width = int(np.ceil(14 / a))
        grid = decode_to_coverage(pattern, width)
        # Compare covered address count against exact area within half an
        # address of boundary discretization.
        area = grid.sum() * a * a
        expected = sum(f.area() for f in figures)
        assert area == pytest.approx(expected, rel=0.05)

    def test_decode_respects_width_clip(self):
        rect = Trapezoid.from_rectangle(0, 0, 10, 1)
        pattern = encode_figures([rect], address_unit=1.0)
        grid = decode_to_coverage(pattern, width_addresses=5)
        assert grid.shape[1] == 5
        assert grid[0].all()


class TestStreamRate:
    def test_rate_positive(self):
        rect = Trapezoid.from_rectangle(0, 0, 100, 100)
        pattern = encode_figures([rect], address_unit=0.5)
        rate = stream_rate_required(pattern, pixel_rate=2e7, width_addresses=200)
        assert rate > 0

    def test_busier_lines_need_more_rate(self):
        sparse = encode_figures(
            [Trapezoid.from_rectangle(0, 0, 50, 10)], address_unit=0.5
        )
        busy_figs = [
            Trapezoid.from_rectangle(i * 2.0, 0, i * 2.0 + 1.0, 10)
            for i in range(25)
        ]
        busy = encode_figures(busy_figs, address_unit=0.5)
        width = 100
        assert stream_rate_required(busy, 2e7, width) > stream_rate_required(
            sparse, 2e7, width
        )

    def test_validation(self):
        pattern = RlePattern((0, 0), 0.5, {}, 1)
        with pytest.raises(ValueError):
            stream_rate_required(pattern, 0, 100)

"""Tests for the raster RLE datapath encoder."""

import numpy as np
import pytest

from repro.fracture.trapezoidal import TrapezoidFracturer
from repro.geometry.polygon import Polygon
from repro.geometry.trapezoid import Trapezoid
from repro.machine.rle import (
    RlePattern,
    decode_to_coverage,
    encode_figures,
    stream_rate_required,
)


class TestEncoding:
    def test_empty(self):
        pattern = encode_figures([], 0.5)
        assert pattern.run_count() == 0
        assert pattern.encoded_bytes() == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            encode_figures([Trapezoid.from_rectangle(0, 0, 1, 1)], 0.0)

    def test_single_rectangle_runs(self):
        rect = Trapezoid.from_rectangle(0, 0, 4, 2)
        pattern = encode_figures([rect], address_unit=0.5)
        # 4 scanlines of one 8-address run each.
        assert pattern.line_count == 4
        assert pattern.run_count() == 4
        for runs in pattern.lines.values():
            assert runs == [(0, 8)]

    def test_written_addresses_match_area(self):
        rect = Trapezoid.from_rectangle(0, 0, 10, 6)
        pattern = encode_figures([rect], address_unit=0.5)
        assert pattern.written_addresses() == (10 / 0.5) * (6 / 0.5)

    def test_adjacent_figures_merge_runs(self):
        left = Trapezoid.from_rectangle(0, 0, 2, 1)
        right = Trapezoid.from_rectangle(2, 0, 4, 1)
        pattern = encode_figures([left, right], address_unit=0.5)
        for runs in pattern.lines.values():
            assert len(runs) == 1

    def test_disjoint_figures_keep_separate_runs(self):
        a = Trapezoid.from_rectangle(0, 0, 1, 1)
        b = Trapezoid.from_rectangle(5, 0, 6, 1)
        pattern = encode_figures([a, b], address_unit=0.5)
        for runs in pattern.lines.values():
            assert len(runs) == 2

    def test_triangle_runs_shrink_with_height(self):
        tri = Trapezoid(0, 4, 0, 8, 4, 4)  # triangle tip at top
        pattern = encode_figures([tri], address_unit=0.5)
        lengths = [
            sum(l for _, l in pattern.lines[j]) for j in sorted(pattern.lines)
        ]
        assert all(b <= a for a, b in zip(lengths, lengths[1:]))

    def test_encoded_bytes_accounting(self):
        rect = Trapezoid.from_rectangle(0, 0, 4, 2)
        pattern = encode_figures([rect], address_unit=0.5)
        assert pattern.encoded_bytes() == 4 * 4 + 4 * 2


class TestDecode:
    def test_roundtrip_against_rasterizer(self):
        polys = [
            Polygon.rectangle(0, 0, 6, 3),
            Polygon([(8, 0), (14, 0), (11, 5)]),
        ]
        figures = TrapezoidFracturer().fracture(polys)
        a = 0.25
        pattern = encode_figures(figures, address_unit=a)
        width = int(np.ceil(14 / a))
        grid = decode_to_coverage(pattern, width)
        # Compare covered address count against exact area within half an
        # address of boundary discretization.
        area = grid.sum() * a * a
        expected = sum(f.area() for f in figures)
        assert area == pytest.approx(expected, rel=0.05)

    def test_decode_respects_width_clip(self):
        rect = Trapezoid.from_rectangle(0, 0, 10, 1)
        pattern = encode_figures([rect], address_unit=1.0)
        grid = decode_to_coverage(pattern, width_addresses=5)
        assert grid.shape[1] == 5
        assert grid[0].all()


class TestStreamRate:
    def test_rate_positive(self):
        rect = Trapezoid.from_rectangle(0, 0, 100, 100)
        pattern = encode_figures([rect], address_unit=0.5)
        rate = stream_rate_required(pattern, pixel_rate=2e7, width_addresses=200)
        assert rate > 0

    def test_busier_lines_need_more_rate(self):
        sparse = encode_figures(
            [Trapezoid.from_rectangle(0, 0, 50, 10)], address_unit=0.5
        )
        busy_figs = [
            Trapezoid.from_rectangle(i * 2.0, 0, i * 2.0 + 1.0, 10)
            for i in range(25)
        ]
        busy = encode_figures(busy_figs, address_unit=0.5)
        width = 100
        assert stream_rate_required(busy, 2e7, width) > stream_rate_required(
            sparse, 2e7, width
        )

    def test_validation(self):
        pattern = RlePattern((0, 0), 0.5, {}, 1)
        with pytest.raises(ValueError):
            stream_rate_required(pattern, 0, 100)

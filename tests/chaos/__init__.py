"""Helpers for the deterministic chaos suite (:mod:`tests.test_chaos`).

Everything here mutates *on-disk* state only — fault schedules
themselves live in :class:`repro.core.faults.FaultPlan`, keyed by
``(position, attempt)``, with no wall-clock or RNG anywhere, so every
chaos scenario replays identically run after run.
"""

from pathlib import Path
from typing import List, Sequence

#: Bytes no cache reader accepts: wrong magic, wrong framing, too short
#: to be a valid payload of either entry family.
GARBAGE = b"\x00CHAOS-corrupted-entry\x00"


def cache_entry_paths(cache_root) -> List[Path]:
    """Every cache entry under ``cache_root``, in sorted (deterministic)
    order."""
    return sorted(Path(cache_root).glob("??/*.ebc"))


def corrupt_entries(paths: Sequence[Path]) -> int:
    """Overwrite each entry with garbage the reader must evict.

    Returns how many entries were corrupted.  Pass an explicit path
    list (from :func:`cache_entry_paths`, captured when you know what
    kind of entries the store holds) so a test corrupts shard results
    and program blobs intentionally, never by accident.
    """
    for path in paths:
        path.write_bytes(GARBAGE)
    return len(paths)

"""Tests for repro.geometry.rasterize."""


import numpy as np
import pytest

from repro.geometry.polygon import Polygon
from repro.geometry.rasterize import (
    RasterFrame,
    coverage_area,
    rasterize_polygons,
    rasterize_trapezoids,
)
from repro.geometry.trapezoid import Trapezoid


class TestRasterFrame:
    def test_validates_pixel(self):
        with pytest.raises(ValueError):
            RasterFrame(0, 0, 0, 10, 10)

    def test_validates_shape(self):
        with pytest.raises(ValueError):
            RasterFrame(0, 0, 1.0, 0, 10)

    def test_around_covers_bbox(self):
        f = RasterFrame.around((0, 0, 9.7, 4.2), pixel=1.0)
        x0, y0, x1, y1 = f.extent()
        assert x0 <= 0 and y0 <= 0
        assert x1 >= 9.7 and y1 >= 4.2

    def test_around_margin(self):
        f = RasterFrame.around((0, 0, 10, 10), pixel=1.0, margin=5.0)
        assert f.x0 == -5.0
        assert f.extent()[2] >= 15.0

    def test_centers(self):
        f = RasterFrame(0, 0, 1.0, 4, 2)
        assert np.allclose(f.x_centers(), [0.5, 1.5, 2.5, 3.5])
        assert np.allclose(f.y_centers(), [0.5, 1.5])


class TestCoverage:
    def test_pixel_aligned_rectangle_exact(self):
        f = RasterFrame(0, 0, 1.0, 10, 10)
        cover = rasterize_polygons([Polygon.rectangle(2, 2, 6, 5)], f)
        assert coverage_area(cover, f) == pytest.approx(12.0)
        assert cover[3, 3] == pytest.approx(1.0)
        assert cover[0, 0] == pytest.approx(0.0)

    def test_subpixel_rectangle(self):
        f = RasterFrame(0, 0, 1.0, 10, 10)
        cover = rasterize_polygons([Polygon.rectangle(2.25, 2.0, 2.75, 3.0)], f)
        assert coverage_area(cover, f) == pytest.approx(0.5, abs=1e-6)
        assert cover[2, 2] == pytest.approx(0.5, abs=1e-6)

    def test_half_covered_pixel_row(self):
        f = RasterFrame(0, 0, 1.0, 4, 4)
        cover = rasterize_polygons([Polygon.rectangle(0, 0, 4, 0.5)], f, supersample=8)
        assert np.allclose(cover[0, :], 0.5, atol=0.07)
        assert np.allclose(cover[1:, :], 0.0)

    def test_triangle_area_converges(self):
        f = RasterFrame(0, 0, 0.25, 48, 48)
        t = Polygon([(1, 1), (11, 1), (6, 9)])
        cover = rasterize_polygons([t], f, supersample=8)
        assert coverage_area(cover, f) == pytest.approx(t.area(), rel=0.01)

    def test_circle_area_converges(self):
        f = RasterFrame(-6, -6, 0.25, 48, 48)
        c = Polygon.regular((0, 0), 5, 128)
        cover = rasterize_polygons([c], f, supersample=8)
        assert coverage_area(cover, f) == pytest.approx(c.area(), rel=0.01)

    def test_overlap_saturates(self):
        f = RasterFrame(0, 0, 1.0, 10, 10)
        p = Polygon.rectangle(0, 0, 5, 5)
        cover = rasterize_polygons([p, p], f)
        assert cover.max() == pytest.approx(1.0)
        assert coverage_area(cover, f) == pytest.approx(25.0)

    def test_polygon_outside_frame(self):
        f = RasterFrame(0, 0, 1.0, 10, 10)
        cover = rasterize_polygons([Polygon.rectangle(100, 100, 110, 110)], f)
        assert cover.sum() == 0.0

    def test_trapezoid_raster_matches_polygon(self):
        f = RasterFrame(0, 0, 0.5, 30, 10)
        trap = Trapezoid(1, 4, 2, 12, 4, 10)
        cover = rasterize_trapezoids([trap], f, supersample=8)
        assert coverage_area(cover, f) == pytest.approx(trap.area(), rel=0.01)

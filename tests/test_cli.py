"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.layout import generators
from repro.layout.gdsii import write_gdsii


@pytest.fixture
def gds_file(tmp_path):
    path = tmp_path / "grating.gds"
    write_gdsii(generators.grating(lines=5), path)
    return str(path)


class TestDemo:
    def test_demo_runs(self, capsys):
        assert main(["demo", "--workload", "grating"]) == 0
        out = capsys.readouterr().out
        assert "figures:" in out
        assert "raster" in out

    def test_demo_with_pec(self, capsys):
        assert main(["demo", "--workload", "line_and_pad", "--pec"]) == 0
        assert "dose range" in capsys.readouterr().out

    def test_demo_vsb_fracture(self, capsys):
        assert main(["demo", "--workload", "grating", "--fracture", "vsb"]) == 0

    def test_demo_pec_matrix_modes_agree(self, capsys):
        outputs = {}
        for mode in ("dense", "sparse"):
            assert (
                main(
                    [
                        "demo",
                        "--workload",
                        "line_and_pad",
                        "--pec",
                        "--pec-matrix",
                        mode,
                    ]
                )
                == 0
            )
            out = capsys.readouterr().out
            assert f"pec matrix: {mode}" in out
            outputs[mode] = [
                line
                for line in out.splitlines()
                if "dose range" in line
            ]
        assert outputs["dense"] == outputs["sparse"]

    def test_demo_pec_hybrid_with_grid_cell(self, capsys):
        assert (
            main(
                [
                    "demo",
                    "--workload",
                    "line_and_pad",
                    "--pec",
                    "--pec-matrix",
                    "hybrid",
                    "--pec-grid-cell",
                    "0.4",
                ]
            )
            == 0
        )
        assert "pec matrix: hybrid" in capsys.readouterr().out

    def test_rejects_unknown_pec_matrix(self, capsys):
        with pytest.raises(SystemExit):
            main(["demo", "--workload", "grating", "--pec-matrix", "csr"])

    def test_unknown_workload(self, capsys):
        assert main(["demo", "--workload", "nope"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "flag",
        ["--max-shot", "--energy", "--dose", "--field-size", "--address-unit"],
    )
    def test_rejects_nonpositive_knobs_without_traceback(self, flag, capsys):
        # argparse exits 2 with a one-line usage error, never a traceback.
        with pytest.raises(SystemExit) as excinfo:
            main(["demo", "--workload", "grating", flag, "-1"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "must be positive" in err
        assert "Traceback" not in err

    def test_bad_combo_exits_cleanly(self, capsys):
        # ValueError from pipeline construction surfaces as `error: ...`
        # on stderr with exit code 2, not a stack trace.
        assert main(["demo", "--workload", "nope", "--pec"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") or "unknown workload" in err
        assert "Traceback" not in err


class TestPrep:
    def test_prep_gdsii(self, gds_file, capsys):
        assert main(["prep", gds_file]) == 0
        out = capsys.readouterr().out
        assert "figures:   5" in out

    def test_prep_with_dose(self, gds_file, capsys):
        assert main(["prep", gds_file, "--dose", "10"]) == 0

    def test_prep_writes_jobfile(self, gds_file, tmp_path, capsys):
        from repro.core.jobfile import read_job

        out_path = tmp_path / "job.ebj"
        assert main(["prep", gds_file, "--output", str(out_path)]) == 0
        assert "wrote machine job file" in capsys.readouterr().out
        job = read_job(out_path)
        assert job.figure_count() == 5


class TestStats:
    def test_stats(self, gds_file, capsys):
        assert main(["stats", gds_file]) == 0
        out = capsys.readouterr().out
        assert "cells:" in out
        assert "compaction" in out


class TestArgParsing:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_help_exits_zero(self):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0


class TestFaultKnobsAndInjection:
    def test_fault_flags_parse(self, capsys):
        assert (
            main(
                [
                    "demo",
                    "--workload",
                    "grating",
                    "--shard-retries",
                    "0",
                    "--shard-timeout",
                    "30",
                ]
            )
            == 0
        )

    @pytest.mark.parametrize(
        "flag,value,message",
        [
            ("--shard-retries", "-1", "must be >= 0"),
            ("--shard-timeout", "0", "must be positive"),
            ("--shard-timeout", "-2", "must be positive"),
        ],
    )
    def test_bad_fault_flags_exit_cleanly(self, flag, value, message, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["demo", "--workload", "grating", flag, value])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert message in err
        assert "Traceback" not in err

    def test_env_fault_injection_keeps_output_identical(
        self, capsys, monkeypatch
    ):
        """A transient fault injected via REPRO_FAULTS is retried away:
        the CLI prints a ``faults:`` line but every result line above
        it (figures, shots, digest) matches the clean run exactly."""
        from repro.core.faults import FAULTS_ENV_VAR

        args = ["demo", "--workload", "grating", "--workers", "2"]
        assert main(args) == 0
        clean = capsys.readouterr().out
        assert "faults:" not in clean

        monkeypatch.setenv(FAULTS_ENV_VAR, '{"transient": [[0, 0]]}')
        assert main(args) == 0
        chaotic = capsys.readouterr().out
        assert "faults:" in chaotic
        assert "1 shard retries" in chaotic

        def digest_line(out):
            return next(
                line for line in out.splitlines() if "digest:" in line
            )

        assert digest_line(chaotic) == digest_line(clean)
        faultless = [
            line for line in chaotic.splitlines() if "faults:" not in line
        ]
        assert faultless == clean.splitlines()


class TestKernelFallbackLine:
    def test_printed_only_when_the_kernel_degraded(self, capsys):
        from repro.cli import _print_result
        from repro.core.pipeline import PreparationPipeline
        from repro.geometry.polygon import Polygon

        pipe = PreparationPipeline(field_size=20.0)
        clean = pipe.run_polygons([Polygon.rectangle(0, 0, 5, 5)])
        _print_result(clean)
        assert "kernel:" not in capsys.readouterr().out

        # Beyond 2**53 dbu the fast kernel hands the sweep to the
        # reference engine; the CLI must say so.
        far = (1 << 53) * 1e-3 * 2.0
        degraded = pipe.run_polygons(
            [Polygon.rectangle(far, far, far + 5.0, far + 5.0)]
        )
        _print_result(degraded)
        out = capsys.readouterr().out
        assert "kernel:    1 fast-path fallbacks (1 coord-limit" in out


class TestDistributedCli:
    def test_work_rejects_bad_endpoint(self, capsys):
        assert main(["work", "--connect", "not-an-endpoint"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "host:port" in err

    def test_demo_distributed_requires_endpoint(self, capsys):
        assert main(["demo", "--dispatch", "distributed"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "workers-endpoint" in err or "workers_endpoint" in err

    def test_demo_distributed_matches_local(self, capsys):
        import threading

        from repro.dist import (
            WorkerDaemon,
            coordinator_for,
            shutdown_coordinators,
        )

        assert main(["demo", "--workload", "grating"]) == 0
        local_out = capsys.readouterr().out

        server = coordinator_for("127.0.0.1:0")
        host, port = server.server_address[:2]
        endpoint = f"{host}:{port}"
        daemon = WorkerDaemon(endpoint, worker_id="cli-worker")
        thread = threading.Thread(target=daemon.run, daemon=True)
        thread.start()
        try:
            assert (
                main(
                    [
                        "demo",
                        "--workload",
                        "grating",
                        "--dispatch",
                        "distributed",
                        "--workers-endpoint",
                        endpoint,
                    ]
                )
                == 0
            )
        finally:
            daemon.stop()
            thread.join(timeout=5.0)
            shutdown_coordinators()
        dist_out = capsys.readouterr().out
        assert "dist:" in dist_out

        def digest_line(text):
            return next(
                line for line in text.splitlines() if "digest:" in line
            )

        assert digest_line(dist_out) == digest_line(local_out)

    def test_work_idle_exit_drains(self, capsys):
        from repro.dist import coordinator_for, shutdown_coordinators

        server = coordinator_for("127.0.0.1:0")
        host, port = server.server_address[:2]
        try:
            assert (
                main(
                    [
                        "work",
                        "--connect",
                        f"{host}:{port}",
                        "--idle-exit",
                        "0.2",
                    ]
                )
                == 0
            )
        finally:
            shutdown_coordinators()
        out = capsys.readouterr().out
        assert "0 lease(s) executed" in out

"""Hierarchy-aware pipeline: cells-mode execution, sharding and caching.

The ``hierarchy="cells"`` path fractures each cell once, replicates the
figures per placement and ships *pre-fractured figure shards* through
the same executor/cache machinery as flat runs.  These tests pin the
semantics: figure parity with flat runs on well-formed arrays, reuse
statistics, cache-key separation between the flat and figure key
families, warm-run determinism and the CLI surface.
"""

import pytest

from repro.cli import main
from repro.core.cache import shard_cache_key
from repro.core.executor import (
    Shard,
    ShardedExecutor,
    ShardOverlapWarning,
    plan_figure_shards,
)
from repro.core.pipeline import PreparationPipeline
from repro.fracture.trapezoidal import TrapezoidFracturer
from repro.geometry.trapezoid import Trapezoid
from repro.layout import generators
from repro.pec.dose_iter import IterativeDoseCorrector
from repro.physics.psf import DoubleGaussianPSF

PSF = DoubleGaussianPSF(alpha=0.2, beta=2.0, eta=0.74)


@pytest.fixture
def memory_lib():
    return generators.memory_array(words=4, bits=4, blocks=(3, 3))


class TestPlanFigureShards:
    FIGS = [
        Trapezoid.from_rectangle(x * 10.0, y * 10.0, x * 10.0 + 4, y * 10.0 + 4)
        for y in range(3)
        for x in range(3)
    ]

    def test_single_shard_without_field_size(self):
        plan = plan_figure_shards(self.FIGS, None)
        assert len(plan) == 1
        assert plan[0].figures == tuple(self.FIGS)
        assert plan[0].polygons == ()

    def test_buckets_row_major(self):
        plan = plan_figure_shards(self.FIGS, 10.0)
        assert len(plan) == 9
        assert [s.index for s in plan] == [
            (c, r) for r in range(3) for c in range(3)
        ]
        assert all(len(s.figures) == 1 for s in plan)

    def test_empty_and_validation(self):
        assert plan_figure_shards([], 10.0) == []
        with pytest.raises(ValueError):
            plan_figure_shards(self.FIGS, -1.0)

    def test_cross_shard_figure_overlap_warns(self):
        from repro.core.executor import ShardOverlapWarning

        # One figure straddles the tile boundary and overlaps a figure
        # of the neighbouring shard — same diagnostic as polygon plans.
        figs = [
            # Centre in tile 0 but reaching into tile 1...
            Trapezoid.from_rectangle(4.0, 0.0, 13.0, 4.0),
            # ...overlapping this tile-1 figure's interior.
            Trapezoid.from_rectangle(12.0, 0.0, 16.0, 4.0),
        ]
        with pytest.warns(ShardOverlapWarning):
            plan_figure_shards(figs, 10.0)
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            plan_figure_shards(figs, 10.0, overlap_policy="ignore")
            plan_figure_shards(self.FIGS, 10.0)  # disjoint: no warning

    def test_union_policy_rejected_for_figures(self):
        with pytest.raises(ValueError, match="union"):
            plan_figure_shards(self.FIGS, 10.0, overlap_policy="union")
        pipe = PreparationPipeline(
            overlap_policy="union", field_size=10.0, hierarchy="cells"
        )
        lib = generators.memory_array(words=2, bits=2, blocks=(2, 2))
        with pytest.raises(ValueError, match="union"):
            pipe.run(lib)


class TestCellsModeParity:
    def test_figure_parity_with_flat(self, memory_lib):
        pipe = PreparationPipeline()
        flat = pipe.run(memory_lib)
        cells = pipe.run(memory_lib, hierarchy="cells")
        assert cells.job.figure_count() == flat.job.figure_count()
        assert cells.fracture_report.total_area == pytest.approx(
            flat.fracture_report.total_area
        )
        assert cells.source_polygons == flat.source_polygons

    def test_reuse_statistics_surface(self, memory_lib):
        result = PreparationPipeline(hierarchy="cells").run(memory_lib)
        stats = result.execution
        assert stats.hierarchy == "cells"
        assert stats.cells_fractured == 1
        # 4x4 bits per block, 3x3 blocks: every placement after the
        # first reuses the cached cell fracture.
        assert stats.instances_reused == 4 * 4 * 3 * 3 - 1
        assert stats.instances_fallback == 0

    def test_flat_runs_report_flat(self, memory_lib):
        result = PreparationPipeline().run(memory_lib)
        assert result.execution.hierarchy == "flat"
        assert result.execution.instances_reused == 0

    def test_raw_polygons_fall_back_to_flat(self):
        polys = [
            p
            for v in generators.grating(lines=4)
            .top_cell()
            .polygons.values()
            for p in v
        ]
        result = PreparationPipeline(hierarchy="cells").run(polys)
        assert result.execution.hierarchy == "flat"
        assert result.job.figure_count() == 4

    def test_invalid_hierarchy_rejected(self, memory_lib):
        with pytest.raises(ValueError):
            PreparationPipeline(hierarchy="deep")
        with pytest.raises(ValueError):
            PreparationPipeline().run(memory_lib, hierarchy="nested")

    def test_run_layers_cells(self, memory_lib):
        pipe = PreparationPipeline()
        flat = pipe.run_layers(memory_lib)
        cells = pipe.run_layers(memory_lib, hierarchy="cells")
        assert set(flat) == set(cells)
        for layer in flat:
            assert (
                cells[layer].job.figure_count()
                == flat[layer].job.figure_count()
            )
            assert cells[layer].execution.hierarchy == "cells"
            assert (
                cells[layer].source_polygons == flat[layer].source_polygons
            )

    def test_run_many_mixed_sources(self, memory_lib):
        polys = [
            p
            for v in generators.grating(lines=3)
            .top_cell()
            .polygons.values()
            for p in v
        ]
        results = PreparationPipeline().run_many(
            [memory_lib, polys, memory_lib], hierarchy="cells"
        )
        assert [r.execution.hierarchy for r in results] == [
            "cells",
            "flat",
            "cells",
        ]
        assert results[0].job.figure_count() == results[2].job.figure_count()
        assert results[1].job.figure_count() == 3

    def test_multi_layer_geometry_exposes_once(self):
        # The flat path fractures the union of every requested layer in
        # one pass; cells mode must match — geometry drawn on several
        # layers of a cell exposes once, not once per layer.
        from repro.layout.cell import Cell

        cell = Cell("DOUBLE")
        cell.add_rectangle(0, 0, 1, 1, layer=1)
        cell.add_rectangle(0, 0, 1, 1, layer=2)
        pipe = PreparationPipeline()
        flat = pipe.run(cell)
        cells = pipe.run(cell, hierarchy="cells")
        assert flat.job.figure_count() == 1
        assert cells.job.figure_count() == 1
        assert cells.fracture_report.total_area == pytest.approx(1.0)

    def test_cells_mode_with_field_sharding_and_pec(self, memory_lib):
        pipe = PreparationPipeline(
            corrector=IterativeDoseCorrector(),
            psf=PSF,
            field_size=15.0,
            hierarchy="cells",
        )
        result = pipe.run(memory_lib)
        assert result.corrected
        assert result.execution.shard_count > 1
        lo, hi = result.job.dose_range()
        assert 0.0 < lo <= hi


class TestFigureShardCache:
    def test_warm_run_full_hit_and_identical(self, memory_lib, tmp_path):
        pipe = PreparationPipeline(
            cache_dir=tmp_path, field_size=20.0, hierarchy="cells"
        )
        cold = pipe.run(memory_lib)
        warm = pipe.run(memory_lib)
        assert cold.execution.cache_misses > 0
        assert warm.execution.cache_misses == 0
        assert warm.execution.cache_hits == warm.execution.shard_count
        assert warm.job.digest() == cold.job.digest()
        # Reuse statistics still reported on a fully warm run.
        assert warm.execution.instances_reused > 0

    def test_flat_and_figure_keys_never_collide(self, memory_lib, tmp_path):
        pipe = PreparationPipeline(cache_dir=tmp_path, field_size=20.0)
        pipe.run(memory_lib, hierarchy="cells")
        # The flat expansion of the memory array has polygons straddling
        # the 20 µm tile boundaries — the planner is expected to flag
        # them (the cells run buckets per-cell figures and stays quiet).
        with pytest.warns(ShardOverlapWarning):
            flat = pipe.run(memory_lib, hierarchy="flat")
        # Same geometry, different key family: all flat shards miss.
        assert flat.execution.cache_hits == 0

    def test_key_covers_figures(self):
        fig = Trapezoid.from_rectangle(0, 0, 2, 2)
        moved = Trapezoid.from_rectangle(0, 0, 2, 2.0000001)
        frac = TrapezoidFracturer()
        base = shard_cache_key(
            Shard(index=(0, 0), polygons=(), figures=(fig,)), frac
        )
        assert base == shard_cache_key(
            Shard(index=(0, 0), polygons=(), figures=(fig,)), frac
        )
        assert base != shard_cache_key(
            Shard(index=(0, 0), polygons=(), figures=(moved,)), frac
        )
        assert base != shard_cache_key(
            Shard(index=(1, 0), polygons=(), figures=(fig,)), frac
        )

    def test_figure_key_ignores_fracturer_config(self):
        # Figures are the full input of a pre-fractured shard; the
        # fracturer never runs, so its configuration must not force
        # spurious misses.
        fig = Trapezoid.from_rectangle(0, 0, 2, 2)
        shard = Shard(index=(0, 0), polygons=(), figures=(fig,))
        assert shard_cache_key(
            shard, TrapezoidFracturer(kernel="fast")
        ) == shard_cache_key(shard, TrapezoidFracturer(kernel="exact"))


class TestExecutorFigures:
    FIGS = [
        Trapezoid.from_rectangle(x * 10.0, 0.0, x * 10.0 + 4, 4.0)
        for x in range(6)
    ]

    def test_execute_figures_shots(self):
        executor = ShardedExecutor(TrapezoidFracturer())
        result = executor.execute_figures(self.FIGS)
        assert [s.trapezoid for s in result.shots] == self.FIGS
        assert all(s.dose == 1.0 for s in result.shots)
        assert not result.corrected

    def test_sharded_equals_unsharded(self):
        executor = ShardedExecutor(TrapezoidFracturer())
        one = executor.execute_figures(self.FIGS)
        sharded = executor.execute_figures(self.FIGS, field_size=10.0)
        assert sharded.stats.shard_count == 6
        assert [s.trapezoid for s in sharded.shots] == [
            s.trapezoid for s in one.shots
        ]

    def test_corrected_figures(self):
        executor = ShardedExecutor(
            TrapezoidFracturer(),
            corrector=IterativeDoseCorrector(),
            psf=PSF,
        )
        result = executor.execute_figures(self.FIGS)
        assert result.corrected
        assert len(result.shots) == len(self.FIGS)
        assert any(s.dose != 1.0 for s in result.shots)


class TestCLIHierarchy:
    def test_demo_cells_reports_reuse(self, capsys):
        assert (
            main(["demo", "--workload", "memory", "--hierarchy", "cells"])
            == 0
        )
        out = capsys.readouterr().out
        assert "hierarchy:" in out
        assert "instances reused" in out

    def test_demo_flat_stays_quiet(self, capsys):
        assert main(["demo", "--workload", "memory"]) == 0
        assert "hierarchy:" not in capsys.readouterr().out

    def test_figure_counts_match_across_modes(self, capsys):
        def figures(args):
            assert main(args) == 0
            out = capsys.readouterr().out
            return [
                line for line in out.splitlines() if "figures:" in line
            ][0]

        flat = figures(["demo", "--workload", "memory"])
        cells = figures(
            ["demo", "--workload", "memory", "--hierarchy", "cells"]
        )
        assert flat == cells

"""Tests for hierarchical fracturing."""

import math

import pytest

from repro.core.hierarchical import (
    fracture_hierarchical,
    preserves_horizontal,
    transform_trapezoid,
)
from repro.fracture.trapezoidal import TrapezoidFracturer
from repro.geometry.transform import Transform
from repro.geometry.trapezoid import Trapezoid
from repro.layout import generators
from repro.layout.cell import Cell
from repro.layout.flatten import flatten_cell


class TestTransformTrapezoid:
    TRAP = Trapezoid(0, 2, 0, 10, 2, 8)

    def test_translation(self):
        t = transform_trapezoid(self.TRAP, Transform.translation(5, 7))
        assert t.y_bottom == 7
        assert t.x_bottom_left == 5
        assert t.area() == pytest.approx(self.TRAP.area())

    def test_mirror_x_flips_vertically(self):
        t = transform_trapezoid(self.TRAP, Transform.mirror_x())
        assert t.y_bottom == -2
        assert t.y_top == 0
        # The (wider) bottom edge is now on top.
        assert t.x_top_right - t.x_top_left == pytest.approx(10.0)
        assert t.area() == pytest.approx(self.TRAP.area())

    def test_mirror_y_flips_horizontally(self):
        t = transform_trapezoid(self.TRAP, Transform.mirror_y())
        assert t.x_bottom_left == -10
        assert t.x_bottom_right == 0
        assert t.area() == pytest.approx(self.TRAP.area())

    def test_rotation_180(self):
        t = transform_trapezoid(
            self.TRAP, Transform.rotation(math.pi)
        )
        assert t.area() == pytest.approx(self.TRAP.area())
        assert t.y_bottom == pytest.approx(-2.0)

    def test_magnification_scales_area(self):
        t = transform_trapezoid(self.TRAP, Transform.scaling(2.0))
        assert t.area() == pytest.approx(4 * self.TRAP.area())

    def test_rotation_90_rejected(self):
        with pytest.raises(ValueError):
            transform_trapezoid(self.TRAP, Transform.rotation(math.pi / 2))

    def test_preserves_horizontal_predicate(self):
        assert preserves_horizontal(Transform.translation(1, 2))
        assert preserves_horizontal(Transform.mirror_x())
        assert preserves_horizontal(Transform.rotation(math.pi))
        assert not preserves_horizontal(Transform.rotation(math.pi / 2))
        assert not preserves_horizontal(Transform.rotation(0.3))


class TestHierarchicalFracture:
    def test_matches_flat_on_memory_array(self):
        lib = generators.memory_array(words=4, bits=4, blocks=(2, 2))
        hier = fracture_hierarchical(lib)
        flat = flatten_cell(lib.top_cell())
        polys = [p for v in flat.values() for p in v]
        flat_figs = TrapezoidFracturer().fracture(polys)
        assert hier.figure_count() == len(flat_figs)
        assert hier.total_area() == pytest.approx(
            sum(f.area() for f in flat_figs), rel=1e-9
        )

    def test_caches_once_per_cell(self):
        lib = generators.memory_array(words=4, bits=4, blocks=(2, 2))
        hier = fracture_hierarchical(lib)
        # Only the BIT cell holds polygons.
        assert hier.cells_fractured == 1
        assert hier.instances_reused == 4 * 4 * 2 * 2 - 1
        assert hier.instances_fallback == 0

    def test_rotated_instances_fall_back(self):
        child = Cell("CHILD")
        child.add_rectangle(0, 0, 3, 1)
        top = Cell("TOP")
        top.instantiate(child, (0, 0))
        top.instantiate(child, (10, 0), rotation_deg=90)
        result = fracture_hierarchical(top)
        assert result.instances_fallback == 1
        assert result.total_area() == pytest.approx(6.0)

    def test_mirrored_instances_reuse_cache(self):
        child = Cell("CHILD")
        child.add_rectangle(0, 0, 3, 1)
        top = Cell("TOP")
        top.instantiate(child, (0, 0))
        top.instantiate(child, (10, 0), x_reflection=True)
        top.instantiate(child, (20, 0), rotation_deg=180)
        result = fracture_hierarchical(top)
        assert result.instances_fallback == 0
        assert result.instances_reused == 2
        assert result.total_area() == pytest.approx(9.0)

    def test_own_polygons_of_parent_included(self):
        child = Cell("CHILD")
        child.add_rectangle(0, 0, 1, 1)
        top = Cell("TOP")
        top.add_rectangle(5, 5, 7, 7)
        top.instantiate(child, (0, 0))
        result = fracture_hierarchical(top)
        assert result.total_area() == pytest.approx(5.0)

    def test_cycle_detection(self):
        a, b = Cell("A"), Cell("B")
        a.instantiate(b, (0, 0))
        b.instantiate(a, (0, 0))
        with pytest.raises(ValueError, match="cycle"):
            fracture_hierarchical(a)

    def test_layers_kept_separate(self):
        cell = Cell("C")
        cell.add_rectangle(0, 0, 1, 1, layer=1)
        cell.add_rectangle(2, 0, 3, 1, layer=2)
        result = fracture_hierarchical(cell)
        assert len(result.figures) == 2

    def test_layer_filter(self):
        cell = Cell("C")
        cell.add_rectangle(0, 0, 1, 1, layer=1)
        cell.add_rectangle(2, 0, 3, 1, layer=2)
        layer_one = next(iter(fracture_hierarchical(cell).figures))
        result = fracture_hierarchical(cell, layers={layer_one})
        assert set(result.figures) == {layer_one}
        assert result.source_polygons == 1

    def test_source_polygon_accounting(self):
        lib = generators.memory_array(words=4, bits=4, blocks=(2, 2))
        hier = fracture_hierarchical(lib)
        flat = flatten_cell(lib.top_cell())
        flat_counts = {layer: len(v) for layer, v in flat.items()}
        assert hier.source_polygons_by_layer == flat_counts
        assert hier.source_polygons == sum(flat_counts.values())

    def test_faster_than_flat_on_large_array(self):
        import time

        lib = generators.memory_array(words=8, bits=8, blocks=(4, 4))
        start = time.perf_counter()
        fracture_hierarchical(lib)
        hier_time = time.perf_counter() - start

        flat = flatten_cell(lib.top_cell())
        polys = [p for v in flat.values() for p in v]
        start = time.perf_counter()
        TrapezoidFracturer().fracture(polys)
        flat_time = time.perf_counter() - start
        assert hier_time < flat_time

"""Shared test configuration.

Adds the ``--update-golden`` flag used by the golden-job regression
suite (:mod:`tests.test_golden_jobs`) to re-snapshot the reference
digests after an intentional behaviour change.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden job snapshots instead of comparing",
    )


@pytest.fixture
def update_golden(request):
    """True when the run should rewrite golden snapshots."""
    return request.config.getoption("--update-golden")

"""Tests for the fracturing package."""


import pytest

from repro.fracture.base import Shot, total_area
from repro.fracture.quality import analyze_figures
from repro.fracture.rectangles import RectangleFracturer
from repro.fracture.shots import ShotFracturer, _split_spans
from repro.fracture.trapezoidal import TrapezoidFracturer, slice_to_height
from repro.geometry.polygon import Polygon
from repro.geometry.trapezoid import Trapezoid


@pytest.fixture
def triangle():
    return Polygon([(0, 0), (10, 0), (5, 8)])


@pytest.fixture
def l_shape():
    return Polygon([(0, 0), (4, 0), (4, 2), (2, 2), (2, 4), (0, 4)])


class TestShot:
    def test_dose_validation(self):
        with pytest.raises(ValueError):
            Shot(Trapezoid.from_rectangle(0, 0, 1, 1), dose=-1)

    def test_with_dose(self):
        s = Shot(Trapezoid.from_rectangle(0, 0, 1, 1))
        s2 = s.with_dose(2.0)
        assert s2.dose == 2.0
        assert s2.trapezoid is s.trapezoid
        assert s.dose == 1.0

    def test_area(self):
        assert Shot(Trapezoid.from_rectangle(0, 0, 2, 3)).area() == 6.0


class TestTrapezoidFracturer:
    def test_rectangle_is_one_figure(self):
        figs = TrapezoidFracturer().fracture([Polygon.rectangle(0, 0, 10, 5)])
        assert len(figs) == 1
        assert figs[0].is_rectangle()

    def test_triangle_area_preserved(self, triangle):
        figs = TrapezoidFracturer().fracture([triangle])
        assert total_area(figs) == pytest.approx(triangle.area(), rel=1e-6)

    def test_l_shape_fractures_to_two(self, l_shape):
        figs = TrapezoidFracturer().fracture([l_shape])
        assert len(figs) == 2
        assert total_area(figs) == pytest.approx(l_shape.area())

    def test_overlapping_input_merged(self):
        polys = [Polygon.rectangle(0, 0, 10, 10), Polygon.rectangle(5, 0, 15, 10)]
        figs = TrapezoidFracturer().fracture(polys)
        assert total_area(figs) == pytest.approx(150.0)

    def test_max_height_respected(self):
        frac = TrapezoidFracturer(max_height=2.0)
        figs = frac.fracture([Polygon.rectangle(0, 0, 5, 9)])
        assert all(f.height <= 2.0 + 1e-9 for f in figs)
        assert total_area(figs) == pytest.approx(45.0)

    def test_max_height_validation(self):
        with pytest.raises(ValueError):
            TrapezoidFracturer(max_height=0)

    def test_merge_ablation_increases_count(self):
        # Two stacked rectangles of the same width: merging joins them.
        polys = [
            Polygon.rectangle(0, 0, 10, 5),
            Polygon.rectangle(0, 5, 10, 10),
            Polygon.rectangle(20, 2, 21, 8),  # forces foreign slab breaks
        ]
        merged = TrapezoidFracturer(merge=True).fracture(polys)
        unmerged = TrapezoidFracturer(merge=False).fracture(polys)
        assert len(merged) < len(unmerged)
        assert total_area(merged) == pytest.approx(total_area(unmerged))


class TestSliceToHeight:
    def test_no_slicing_needed(self):
        t = Trapezoid.from_rectangle(0, 0, 1, 1)
        assert slice_to_height([t], 2.0) == [t]

    def test_equal_slices(self):
        t = Trapezoid.from_rectangle(0, 0, 1, 10)
        pieces = slice_to_height([t], 3.0)
        assert len(pieces) == 4
        assert all(p.height == pytest.approx(2.5) for p in pieces)

    def test_validation(self):
        with pytest.raises(ValueError):
            slice_to_height([], 0.0)

    def test_slices_tile_parent_exactly(self):
        # Boundaries are computed by index, not by accumulating
        # ``y_bottom + step`` — adjacent slices must share their
        # boundary coordinates bit-for-bit and the outer edges must
        # reproduce the parent exactly, even for drift-prone heights.
        parent = Trapezoid(0.1, 0.1 + 1.0, 0.3, 9.7, 2.3, 7.1)
        pieces = slice_to_height([parent], 1.0 / 7.0)
        assert len(pieces) == int(-(-parent.height // (1.0 / 7.0)))
        assert pieces[0].y_bottom == parent.y_bottom
        assert pieces[0].x_bottom_left == parent.x_bottom_left
        assert pieces[0].x_bottom_right == parent.x_bottom_right
        assert pieces[-1].y_top == parent.y_top
        assert pieces[-1].x_top_left == parent.x_top_left
        assert pieces[-1].x_top_right == parent.x_top_right
        for lower, upper in zip(pieces, pieces[1:]):
            assert upper.y_bottom == lower.y_top
            assert upper.x_bottom_left == lower.x_top_left
            assert upper.x_bottom_right == lower.x_top_right

    def test_no_drift_on_many_equal_slices(self):
        # The old accumulating implementation let rounding drift pile
        # up across hundreds of additions, skewing slice heights; the
        # index form keeps every slice within an ulp of the ideal step.
        parent = Trapezoid.from_rectangle(0.0, 0.0, 1.0, 300.0)
        max_height = 300.0 / 299.0  # forces hundreds of inexact steps
        pieces = slice_to_height([parent], max_height)
        n = int(-(-parent.height // max_height))
        assert len(pieces) == n
        heights = [p.height for p in pieces]
        step = 300.0 / n
        assert max(heights) <= max_height * (1.0 + 1e-12)
        assert max(abs(h - step) for h in heights) <= 2e-12
        assert sum(heights) == pytest.approx(300.0, abs=1e-9)


class TestRectangleFracturer:
    def test_rectilinear_is_exact(self, l_shape):
        figs = RectangleFracturer(address_unit=0.5).fracture([l_shape])
        assert all(f.is_rectangle() for f in figs)
        assert total_area(figs) == pytest.approx(l_shape.area())

    def test_triangle_staircased(self, triangle):
        frac = RectangleFracturer(address_unit=0.1)
        figs = frac.fracture([triangle])
        assert all(f.is_rectangle() for f in figs)
        assert total_area(figs) == pytest.approx(triangle.area(), rel=0.02)

    def test_finer_address_unit_more_figures(self, triangle):
        coarse = RectangleFracturer(address_unit=1.0).fracture([triangle])
        fine = RectangleFracturer(address_unit=0.05).fracture([triangle])
        assert len(fine) > len(coarse)

    def test_finer_address_unit_more_accurate_inner_mode(self, triangle):
        # Midpoint mode is area-balanced by construction, so measure the
        # discretization error with the one-sided (inner) approximation.
        coarse = RectangleFracturer(address_unit=1.0, mode="inner").fracture(
            [triangle]
        )
        fine = RectangleFracturer(address_unit=0.05, mode="inner").fracture(
            [triangle]
        )
        err_coarse = triangle.area() - total_area(coarse)
        err_fine = triangle.area() - total_area(fine)
        assert 0 < err_fine < err_coarse

    def test_inner_mode_underestimates(self, triangle):
        figs = RectangleFracturer(address_unit=0.5, mode="inner").fracture(
            [triangle]
        )
        assert total_area(figs) < triangle.area()

    def test_outer_mode_overestimates(self, triangle):
        figs = RectangleFracturer(address_unit=0.5, mode="outer").fracture(
            [triangle]
        )
        assert total_area(figs) > triangle.area()

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            RectangleFracturer(mode="diagonal")

    def test_address_unit_validation(self):
        with pytest.raises(ValueError):
            RectangleFracturer(address_unit=0)


class TestShotFracturer:
    def test_small_rect_single_shot(self):
        figs = ShotFracturer(max_shot=5.0).fracture([Polygon.rectangle(0, 0, 2, 2)])
        assert len(figs) == 1

    def test_large_rect_tiled(self):
        figs = ShotFracturer(max_shot=2.0).fracture([Polygon.rectangle(0, 0, 7, 5)])
        assert total_area(figs) == pytest.approx(35.0)
        for f in figs:
            assert f.height <= 2.0 + 1e-9
            assert f.min_width() <= 2.0 + 1e-9

    def test_sliver_avoidance_balances(self):
        # 5 µm span with 2 µm shots: greedy gives [2, 2, 1]; balanced [5/3]*3.
        balanced = _split_spans(5.0, 2.0, balanced=True)
        greedy = _split_spans(5.0, 2.0, balanced=False)
        assert min(balanced) == pytest.approx(5.0 / 3.0)
        assert min(greedy) == pytest.approx(1.0)
        assert sum(balanced) == pytest.approx(5.0)
        assert sum(greedy) == pytest.approx(5.0)

    def test_sliver_metrics_differ(self):
        rect = [Polygon.rectangle(0, 0, 2.1, 2.1)]
        smart = ShotFracturer(max_shot=2.0, avoid_slivers=True).fracture(rect)
        greedy = ShotFracturer(max_shot=2.0, avoid_slivers=False).fracture(rect)
        smart_report = analyze_figures(smart, sliver_threshold=0.5)
        greedy_report = analyze_figures(greedy, sliver_threshold=0.5)
        assert smart_report.sliver_count == 0
        assert greedy_report.sliver_count > 0

    def test_trapezoid_tiling_preserves_area(self, triangle):
        figs = ShotFracturer(max_shot=1.5).fracture([triangle])
        assert total_area(figs) == pytest.approx(triangle.area(), rel=1e-6)

    def test_staircase_fallback_when_no_trapezoid_apertures(self, triangle):
        figs = ShotFracturer(max_shot=1.5, allow_trapezoids=False).fracture(
            [triangle]
        )
        assert all(f.is_rectangle() for f in figs)
        assert total_area(figs) == pytest.approx(triangle.area(), rel=0.05)

    def test_fracture_to_shots_dose(self, triangle):
        shots = ShotFracturer(max_shot=2.0).fracture_to_shots([triangle], dose=1.5)
        assert all(s.dose == 1.5 for s in shots)

    def test_max_shot_validation(self):
        with pytest.raises(ValueError):
            ShotFracturer(max_shot=0)


class TestQuality:
    def test_empty_report(self):
        report = analyze_figures([])
        assert report.figure_count == 0
        assert report.total_area == 0.0

    def test_counts_and_area(self):
        figs = [
            Trapezoid.from_rectangle(0, 0, 2, 2),
            Trapezoid.from_rectangle(3, 0, 5, 2),
        ]
        report = analyze_figures(figs, reference_area=8.0)
        assert report.figure_count == 2
        assert report.total_area == pytest.approx(8.0)
        assert report.rectangle_fraction == 1.0
        assert report.area_error == pytest.approx(0.0)
        assert report.mean_area == pytest.approx(4.0)

    def test_sliver_detection(self):
        figs = [
            Trapezoid.from_rectangle(0, 0, 10, 10),
            Trapezoid.from_rectangle(20, 0, 20.05, 10),
        ]
        report = analyze_figures(figs, sliver_threshold=0.1)
        assert report.sliver_count == 1
        assert report.sliver_fraction == pytest.approx(0.5)

    def test_area_error_against_reference(self):
        figs = [Trapezoid.from_rectangle(0, 0, 2, 2)]
        report = analyze_figures(figs, reference_area=5.0)
        assert report.area_error == pytest.approx(0.2)

    def test_row_renders(self):
        figs = [Trapezoid.from_rectangle(0, 0, 2, 2)]
        assert "1" in analyze_figures(figs).row()

"""Integration tests: full flows across subsystems."""

import math

import pytest

from repro.core.job import MachineJob
from repro.core.metrics import fidelity_report
from repro.core.pipeline import PreparationPipeline
from repro.fracture.shots import ShotFracturer
from repro.layout import generators
from repro.layout.flatten import flat_area, flatten_cell
from repro.layout.gdsii import dumps_gdsii, loads_gdsii
from repro.machine.raster import RasterScanWriter
from repro.machine.vector import VectorScanWriter
from repro.machine.vsb import ShapedBeamWriter
from repro.pec.dose_iter import IterativeDoseCorrector
from repro.physics.psf import DoubleGaussianPSF


PSF = DoubleGaussianPSF(alpha=0.15, beta=2.0, eta=0.74)


class TestEndToEnd:
    @pytest.mark.parametrize(
        "name,lib_factory",
        [
            ("grating", lambda: generators.grating(lines=10)),
            ("contacts", lambda: generators.contact_array(columns=8, rows=8)),
            ("fzp", lambda: generators.fresnel_zone_plate(zones=6)),
            ("serpentine", lambda: generators.serpentine(turns=6)),
            ("checkerboard", lambda: generators.checkerboard(cells=4)),
            ("memory", lambda: generators.memory_array(words=4, bits=4, blocks=(2, 2))),
        ],
    )
    def test_pipeline_preserves_area_on_all_workloads(self, name, lib_factory):
        lib = lib_factory()
        flat = flatten_cell(lib.top_cell())
        design_area = flat_area(flat)
        pipe = PreparationPipeline(
            machines=[RasterScanWriter(), VectorScanWriter(), ShapedBeamWriter()]
        )
        result = pipe.run(lib)
        # Fractured area equals the merged design area (overlaps collapse,
        # so allow the fractured area to be at most the raw area).
        assert result.job.pattern_area() <= design_area * (1 + 1e-4)
        assert result.job.pattern_area() > 0.5 * design_area
        for breakdown in result.write_times.values():
            assert breakdown.total > 0

    def test_gdsii_to_machine_job(self, tmp_path):
        """The production flow: GDSII in, timed machine job out."""
        lib = generators.memory_array(words=4, bits=4, blocks=(2, 2))
        data = dumps_gdsii(lib)
        restored = loads_gdsii(data)
        pipe = PreparationPipeline(machines=[ShapedBeamWriter()])
        result = pipe.run(restored)
        expected_polys = 3 * 4 * 4 * 2 * 2
        assert result.source_polygons == expected_polys
        assert result.write_times["shaped-beam"].total > 0

    def test_vsb_flow_with_pec_and_fidelity(self):
        """Fracture → PEC → simulate → verify for a proximity-critical case."""
        lib = generators.isolated_line_with_pad(
            line_width=0.6, line_length=15.0, pad_size=10.0, separation=1.5
        )
        flat = flatten_cell(lib.top_cell())
        polys = [p for v in flat.values() for p in v]
        pipe = PreparationPipeline(
            fracturer=ShotFracturer(max_shot=2.5),
            corrector=IterativeDoseCorrector(),
            psf=PSF,
            machines=[ShapedBeamWriter(max_shot=2.5)],
        )
        result = pipe.run_polygons(polys)
        assert result.corrected
        report = fidelity_report(result.job, polys, PSF, pixel=0.1)
        assert report.error_fraction < 0.35
        # Write time reflects the dose boost.
        assert result.write_times["shaped-beam"].exposure > 0

    def test_machine_crossover_raster_wins_dense_vector_wins_sparse(self):
        """The headline T1 shape: writing time vs. pattern density.

        Raster time is fixed by chip area; vector time grows with the
        figure count (per-figure deflection settling) and exposed area.
        Dense IC-like levels therefore hand the win to raster while
        sparse levels favour vector — the tutorial's central comparison.
        """
        raster = RasterScanWriter(address_unit=0.5, calibration_time=0.0)
        vector = VectorScanWriter(
            spot_size=0.5, field_calibration=0.0, figure_settle=2.0e-6
        )
        chip = 500.0
        feature = 2.0  # µm feature size
        from repro.fracture.base import Shot
        from repro.geometry.trapezoid import Trapezoid

        def job(density):
            count = int(density * chip * chip / (feature * feature))
            cols = int(math.sqrt(count)) + 1
            shots = []
            pitch = chip / cols
            for k in range(count):
                x = (k % cols) * pitch
                y = (k // cols) * pitch
                shots.append(
                    Shot(Trapezoid.from_rectangle(x, y, x + feature, y + feature))
                )
            return MachineJob(
                shots, base_dose=20.0, bounding_box=(0, 0, chip, chip)
            )

        sparse_r = raster.write_time(job(0.02)).total
        sparse_v = vector.write_time(job(0.02)).total
        dense_r = raster.write_time(job(0.6)).total
        dense_v = vector.write_time(job(0.6)).total
        assert sparse_v < sparse_r  # vector wins sparse
        assert dense_r < dense_v  # raster wins dense
        # Raster time is density-independent.
        assert sparse_r == pytest.approx(dense_r, rel=0.05)

    def test_mc_derived_psf_agrees_with_empirical_beta(self):
        from repro.physics.montecarlo import (
            MonteCarloSimulator,
            fit_double_gaussian,
        )
        from repro.physics.psf import backscatter_range

        sim = MonteCarloSimulator(energy_kev=20.0, seed=11)
        result = sim.run(electrons=3000)
        fit = fit_double_gaussian(result.bin_centers(), result.density)
        expected_beta = backscatter_range(20.0)
        assert fit.beta == pytest.approx(expected_beta, rel=0.5)

    def test_cif_and_gdsii_agree(self):
        from repro.layout.cif import dumps_cif, loads_cif

        lib = generators.contact_array(columns=3, rows=3, hierarchical=True)
        via_gds = loads_gdsii(dumps_gdsii(lib))
        via_cif = loads_cif(dumps_cif(lib))
        area_gds = flat_area(flatten_cell(via_gds.top_cell()))
        area_cif = flat_area(flatten_cell(via_cif.top_cell()))
        assert area_gds == pytest.approx(area_cif, rel=1e-6)

    def test_correction_cost_reflected_in_write_time(self):
        lib = generators.isolated_line_with_pad()
        flat = flatten_cell(lib.top_cell())
        polys = [p for v in flat.values() for p in v]
        vsb = ShapedBeamWriter()
        raw = PreparationPipeline(machines=[vsb]).run_polygons(polys)
        pec = PreparationPipeline(
            corrector=IterativeDoseCorrector(), psf=PSF, machines=[vsb]
        ).run_polygons(polys)
        assert (
            pec.write_times["shaped-beam"].exposure
            > raw.write_times["shaped-beam"].exposure
        )

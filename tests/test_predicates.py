"""Tests for repro.geometry.predicates (exact integer predicates)."""

from fractions import Fraction

import pytest

from repro.geometry.predicates import (
    bounding_boxes_overlap,
    on_segment,
    orientation,
    point_in_polygon,
    segment_intersection_ys,
    segments_intersect,
    snap,
    x_at_y,
)


class TestOrientation:
    def test_ccw(self):
        assert orientation((0, 0), (1, 0), (0, 1)) == 1

    def test_cw(self):
        assert orientation((0, 0), (0, 1), (1, 0)) == -1

    def test_collinear(self):
        assert orientation((0, 0), (1, 1), (2, 2)) == 0

    def test_exact_for_huge_coordinates(self):
        big = 10**15
        assert orientation((0, 0), (big, 1), (2 * big, 2)) == 0
        assert orientation((0, 0), (big, 1), (2 * big, 3)) == 1


class TestSegments:
    def test_proper_crossing(self):
        assert segments_intersect((0, 0), (2, 2), (0, 2), (2, 0))

    def test_disjoint(self):
        assert not segments_intersect((0, 0), (1, 0), (0, 1), (1, 1))

    def test_shared_endpoint(self):
        assert segments_intersect((0, 0), (1, 1), (1, 1), (2, 0))

    def test_collinear_overlap(self):
        assert segments_intersect((0, 0), (4, 0), (2, 0), (6, 0))

    def test_collinear_disjoint(self):
        assert not segments_intersect((0, 0), (1, 0), (2, 0), (3, 0))

    def test_on_segment(self):
        assert on_segment((0, 0), (1, 1), (2, 2))
        assert not on_segment((0, 0), (3, 3), (2, 2))


class TestIntersectionYs:
    def test_proper_crossing_midpoint(self):
        ys = segment_intersection_ys((0, 0), (2, 2), (0, 2), (2, 0))
        assert ys == [Fraction(1)]

    def test_non_crossing_empty(self):
        assert segment_intersection_ys((0, 0), (1, 1), (5, 5), (6, 6)) == []

    def test_fractional_crossing_is_exact(self):
        ys = segment_intersection_ys((0, 0), (3, 1), (1, 1), (1, -1))
        assert ys == [Fraction(1, 3)]

    def test_collinear_overlap_returns_extremes(self):
        ys = segment_intersection_ys((0, 0), (0, 4), (0, 2), (0, 6))
        assert ys == [Fraction(2), Fraction(4)]


class TestXAtY:
    def test_interpolation(self):
        assert x_at_y((0, 0), (4, 2), Fraction(1)) == Fraction(2)

    def test_exact_fraction(self):
        assert x_at_y((0, 0), (1, 3), Fraction(1)) == Fraction(1, 3)

    def test_horizontal_raises(self):
        with pytest.raises(ValueError):
            x_at_y((0, 0), (4, 0), Fraction(0))


class TestPointInPolygon:
    SQUARE = [(0, 0), (10, 0), (10, 10), (0, 10)]

    def test_inside(self):
        assert point_in_polygon((5, 5), self.SQUARE) == 1

    def test_outside(self):
        assert point_in_polygon((15, 5), self.SQUARE) == 0

    def test_on_edge(self):
        assert point_in_polygon((5, 0), self.SQUARE) == -1

    def test_on_vertex(self):
        assert point_in_polygon((0, 0), self.SQUARE) == -1

    def test_cw_polygon_nonzero(self):
        cw = list(reversed(self.SQUARE))
        assert point_in_polygon((5, 5), cw) == 1


class TestSnap:
    def test_rounds_half_up(self):
        assert snap(0.5, 1.0) == 1
        assert snap(0.49, 1.0) == 0

    def test_negative_symmetric(self):
        assert snap(-0.5, 1.0) == -1
        assert snap(-0.49, 1.0) == 0

    def test_nanometre_grid(self):
        assert snap(1.2345678, 1e-3) == 1235


class TestBBoxOverlap:
    def test_overlapping(self):
        assert bounding_boxes_overlap((0, 0), (2, 2), (1, 1), (3, 3))

    def test_touching_edges_count(self):
        assert bounding_boxes_overlap((0, 0), (1, 1), (1, 0), (2, 1))

    def test_disjoint(self):
        assert not bounding_boxes_overlap((0, 0), (1, 1), (2, 2), (3, 3))

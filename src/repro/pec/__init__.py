"""Proximity-effect correction (PEC).

Backscattered electrons expose resist micrometres away from the beam, so
dense regions print larger and isolated features print smaller.  Four
period-representative corrections are implemented:

* :class:`~repro.pec.dose_iter.IterativeDoseCorrector` — self-consistent
  dose iteration (the production workhorse).
* :class:`~repro.pec.dose_matrix.MatrixDoseCorrector` — direct linear
  solve of the interaction matrix.
* :class:`~repro.pec.shape_bias.ShapeBiasCorrector` — geometric pre-bias
  at fixed dose.
* :class:`~repro.pec.ghost.GhostCorrector` — background equalization by a
  complementary defocused exposure.

All correctors consume and produce :class:`~repro.fracture.base.Shot`
lists; the exposure model is shared through
:mod:`~repro.pec.base`'s analytic Gaussian-rectangle interaction.
"""

from repro.pec.base import (
    ProximityCorrector,
    edge_sample_points,
    exposure_at_points,
    interaction_matrix_at_points,
    interaction_matrix_csr,
    shot_interaction_matrix,
)
from repro.pec.operator import (
    MATRIX_MODES,
    DenseExposureOperator,
    ExposureOperator,
    HybridExposureOperator,
    SparseExposureOperator,
    build_exposure_operator,
)
from repro.pec.dose_iter import IterativeDoseCorrector, ConvergenceTrace
from repro.pec.dose_matrix import MatrixDoseCorrector
from repro.pec.shape_bias import ShapeBiasCorrector
from repro.pec.ghost import GhostCorrector, GhostExposure
from repro.pec.quantize import dose_classes, quantize_doses
from repro.pec.report import correction_report, CorrectionReport

__all__ = [
    "ProximityCorrector",
    "shot_interaction_matrix",
    "interaction_matrix_at_points",
    "interaction_matrix_csr",
    "edge_sample_points",
    "exposure_at_points",
    "MATRIX_MODES",
    "ExposureOperator",
    "DenseExposureOperator",
    "SparseExposureOperator",
    "HybridExposureOperator",
    "build_exposure_operator",
    "IterativeDoseCorrector",
    "ConvergenceTrace",
    "MatrixDoseCorrector",
    "ShapeBiasCorrector",
    "GhostCorrector",
    "GhostExposure",
    "dose_classes",
    "quantize_doses",
    "correction_report",
    "CorrectionReport",
]

"""GHOST background-equalization correction.

GHOST exposes the *complement* of the pattern with a defocused beam whose
blur matches the backscatter range β, at reduced dose ``η/(1+η)``.  Every
point then sees the same total background regardless of local density, so
a single threshold prints uniformly.  The cost is reduced contrast and
extra writing time (the complement area), both reported by experiment F1.

(The technique was published by Owen & Rissman in 1983; it is included as
the natural "fixed-dose" endpoint of the correction spectrum the tutorial
era explored.)
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.fracture.base import Shot
from repro.geometry.boolean import boolean_trapezoids
from repro.geometry.polygon import Polygon
from repro.geometry.rasterize import RasterFrame
from repro.pec.base import ProximityCorrector
from repro.physics.exposure import ExposureSimulator, shot_dose_map
from repro.physics.psf import DoubleGaussianPSF


class GhostCorrector(ProximityCorrector):
    """Build the complementary (GHOST) exposure for a shot list.

    Args:
        margin: how far beyond the pattern bounding box the correction
            exposure extends [µm]; should exceed ~2 β.
        dose_scale: override for the ghost dose factor (defaults to the
            theoretical η/(1+η)).
    """

    def __init__(self, margin: float = 10.0, dose_scale: float | None = None) -> None:
        if margin < 0:
            raise ValueError("margin must be non-negative")
        self.margin = margin
        self.dose_scale = dose_scale

    def correct(
        self, shots: Sequence[Shot], psf: DoubleGaussianPSF
    ) -> List[Shot]:
        """Pattern shots (unchanged) plus complement shots at ghost dose.

        The returned list is the pattern followed by the ghost shots; use
        :func:`split_ghost` or :class:`GhostExposure` to simulate the two
        passes with their different beam blurs.
        """
        pattern = list(shots)
        if not pattern:
            return []
        ghost_shots = self.ghost_shots(pattern, psf)
        return pattern + ghost_shots

    def ghost_shots(
        self, shots: Sequence[Shot], psf: DoubleGaussianPSF
    ) -> List[Shot]:
        """The complement figures at the ghost dose."""
        boxes = [s.trapezoid.bounding_box() for s in shots]
        x0 = min(b[0] for b in boxes) - self.margin
        y0 = min(b[1] for b in boxes) - self.margin
        x1 = max(b[2] for b in boxes) + self.margin
        y1 = max(b[3] for b in boxes) + self.margin
        window = Polygon.rectangle(x0, y0, x1, y1)
        pattern_polys = [s.trapezoid.to_polygon() for s in shots]
        complement = boolean_trapezoids([window], pattern_polys, "sub")
        dose = (
            self.dose_scale
            if self.dose_scale is not None
            else psf.eta / (1.0 + psf.eta)
        )
        return [Shot(t, dose) for t in complement]


def split_ghost(
    corrected: Sequence[Shot], original_count: int
) -> Tuple[List[Shot], List[Shot]]:
    """Split a :meth:`GhostCorrector.correct` result into its two passes."""
    shots = list(corrected)
    return shots[:original_count], shots[original_count:]


class GhostExposure:
    """Two-pass exposure simulation for GHOST-corrected jobs.

    The pattern pass uses the full PSF; the correction pass uses a beam
    defocused to the backscatter range, i.e. a PSF whose forward term is
    broadened to β.
    """

    def __init__(self, psf: DoubleGaussianPSF, frame: RasterFrame) -> None:
        self.psf = psf
        self.frame = frame
        self._pattern_sim = ExposureSimulator(psf, frame)
        ghost_psf = DoubleGaussianPSF(alpha=psf.beta, beta=psf.beta, eta=psf.eta)
        self._ghost_sim = ExposureSimulator(ghost_psf, frame)

    def absorbed(
        self,
        pattern_shots: Sequence[Shot],
        ghost_shots: Sequence[Shot],
        supersample: int = 4,
    ) -> np.ndarray:
        """Total absorbed-energy image of both passes."""
        image = self._pattern_sim.absorbed_energy(
            shot_dose_map(pattern_shots, self.frame, supersample)
        )
        if ghost_shots:
            image = image + self._ghost_sim.absorbed_energy(
                shot_dose_map(ghost_shots, self.frame, supersample)
            )
        return image

    def absorbed_at_points(
        self,
        pattern_shots: Sequence[Shot],
        ghost_shots: Sequence[Shot],
        points: np.ndarray,
        matrix_mode: str = "dense",
    ) -> np.ndarray:
        """Two-pass absorbed level at arbitrary points, matrix-free.

        The exposure-operator twin of :meth:`absorbed`: each pass is one
        :class:`~repro.pec.operator.ExposureOperator` application (the
        correction pass under the defocused PSF), so GHOST uniformity can
        be probed at exact sample points without rasterizing a full
        frame.  ``matrix_mode`` selects the operator backend; ``"sparse"``
        keeps large complement shot lists affordable.
        """
        from repro.pec.operator import build_exposure_operator

        ghost_psf = DoubleGaussianPSF(
            alpha=self.psf.beta, beta=self.psf.beta, eta=self.psf.eta
        )
        doses = np.array([s.dose for s in pattern_shots], dtype=float)
        levels = (
            build_exposure_operator(
                points, pattern_shots, self.psf, mode=matrix_mode
            )
            @ doses
        )
        if ghost_shots:
            ghost_doses = np.array(
                [s.dose for s in ghost_shots], dtype=float
            )
            levels = levels + (
                build_exposure_operator(
                    points, ghost_shots, ghost_psf, mode=matrix_mode
                )
                @ ghost_doses
            )
        return levels

"""Exposure operators: dense, sparse and hybrid PEC backends.

The proximity correctors need one linear map — "shot doses → absorbed
level at sample points" — but at very different scales.  This module
gives that map a common protocol, :class:`ExposureOperator`, with three
interchangeable backends selected by a ``matrix_mode`` knob:

``dense``
    The historical ``(n_points, n_shots)`` ndarray.  Bit-for-bit the
    seed behaviour (it *is* the same matrix and the same BLAS matvec),
    but memory and assembly scale as ``n_points × n_shots`` — a 50k-shot
    shard with edge sampling costs ~40 GB.

``sparse``
    CSR storage of exactly the within-cutoff entries.  The
    ``cutoff_factor · β`` pruning already zeroes the vast majority of
    the dense matrix; storing only the survivors cuts memory to the
    interaction count and assembly to near-linear (a spatial bucket
    index prunes the distance test).  Entries are computed by the dense
    path's exact arithmetic on the exact same floats, so
    ``csr.toarray()`` equals the dense matrix bit for bit; only the
    *summation order* of a matvec differs (CSR row sums vs. BLAS), i.e.
    applied exposures agree to the last ulp and canonical 9-digit dose
    digests are identical.

``hybrid``
    The classic short-range/long-range split: the sharp forward-scatter
    α term stays exact (a tight-cutoff CSR of erf products), while the
    smooth backscatter β·η term is evaluated on a coarse grid — shot
    energy is scattered area-weighted onto grid cells (2×2 Gauss points
    per shot, bilinear deposit), convolved with the pixel-integrated β
    Gaussian by FFT, and gathered back bilinearly at the sample points.
    Memory and time become essentially independent of the backscatter
    interaction count; accuracy is set by the grid cell (default β/4).

All three support ``operator @ doses`` (the iterative corrector's inner
loop) and ``operator.solve(rhs)`` (the one-shot matrix corrector), and
report their storage through ``matrix_nbytes`` so benchmarks can track
the memory trajectory.
"""

from __future__ import annotations

import abc
import math
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.fracture.base import Shot
from repro.pec.base import (
    _exposure_matrix,
    _exposure_matrix_csr,
    _shot_bbox_arrays,
    _trap_field_arrays,
)
from repro.physics.psf import DoubleGaussianPSF

#: The supported exposure-operator backends.
MATRIX_MODES = ("dense", "sparse", "hybrid")

#: Forward-term cutoff of the hybrid split, in units of α.  erf products
#: decay like exp(−(r/α)²), so 4 α keeps the neglected tail below 1e−6.
ALPHA_CUTOFF_FACTOR = 4.0

#: Hybrid grid cell in units of β when no explicit cell is given.
DEFAULT_GRID_CELL_FACTOR = 0.25

#: Backscatter kernel / grid margin reach in units of β.
GRID_REACH_FACTOR = 4.0

#: Scatter panel size in units of β: shot bounding boxes are subdivided
#: into panels no larger than this before Gauss-point deposition, so
#: shots large against the backscatter range (full-height fracture
#: trapezoids) are still represented by a smooth area density.
PANEL_FACTOR = 0.5


def validate_matrix_mode(mode: str) -> str:
    """Return ``mode`` if it names a backend, raise ``ValueError`` else."""
    if mode not in MATRIX_MODES:
        raise ValueError(
            f"matrix_mode must be one of {MATRIX_MODES}, got {mode!r}"
        )
    return mode


class ExposureOperator(abc.ABC):
    """Linear map from shot doses to absorbed levels at sample points.

    The protocol every PEC backend implements: apply (``@``), solve, and
    storage accounting.  ``shape`` is ``(n_points, n_shots)``.
    """

    #: Backend name (one of :data:`MATRIX_MODES`).
    mode: str
    shape: Tuple[int, int]

    @abc.abstractmethod
    def apply(self, doses: np.ndarray) -> np.ndarray:
        """Absorbed level at every sample point for a dose vector."""

    @abc.abstractmethod
    def solve(
        self, rhs: np.ndarray, regularization: float = 0.0
    ) -> np.ndarray:
        """Dose vector whose exposure best matches ``rhs``.

        Square systems are solved directly; rank-deficient or
        rectangular ones fall back to a least-squares solution.
        ``regularization`` adds a Tikhonov term on the diagonal.
        """

    @property
    @abc.abstractmethod
    def matrix_nbytes(self) -> int:
        """Bytes held by the operator's matrix/grid storage."""

    def __matmul__(self, doses: np.ndarray) -> np.ndarray:
        return self.apply(np.asarray(doses, dtype=float))


class DenseExposureOperator(ExposureOperator):
    """The historical dense matrix, wrapped in the operator protocol.

    ``apply`` is exactly ``matrix @ doses`` and ``solve`` exactly the
    seed ``np.linalg.solve``-with-lstsq-fallback, so default-mode
    results are bit-identical to the pre-operator code paths.
    """

    mode = "dense"

    def __init__(self, matrix: np.ndarray) -> None:
        self.matrix = matrix
        self.shape = matrix.shape

    def apply(self, doses: np.ndarray) -> np.ndarray:
        return self.matrix @ doses

    def solve(
        self, rhs: np.ndarray, regularization: float = 0.0
    ) -> np.ndarray:
        matrix = self.matrix
        n_points, n_shots = self.shape
        if regularization > 0 and n_points == n_shots:
            matrix = matrix + regularization * np.eye(n_shots)
        if n_points == n_shots:
            try:
                return np.linalg.solve(matrix, rhs)
            except np.linalg.LinAlgError:
                pass
        doses, *_ = np.linalg.lstsq(matrix, rhs, rcond=None)
        return doses

    @property
    def matrix_nbytes(self) -> int:
        return self.matrix.nbytes


class SparseExposureOperator(ExposureOperator):
    """CSR exposure matrix holding only the within-cutoff entries."""

    mode = "sparse"

    def __init__(self, matrix) -> None:
        self.matrix = matrix
        self.shape = matrix.shape

    def apply(self, doses: np.ndarray) -> np.ndarray:
        return self.matrix @ doses

    def solve(
        self, rhs: np.ndarray, regularization: float = 0.0
    ) -> np.ndarray:
        from scipy.sparse import identity
        from scipy.sparse.linalg import lsqr, spsolve

        matrix = self.matrix
        n_points, n_shots = self.shape
        if regularization > 0 and n_points == n_shots:
            matrix = matrix + regularization * identity(
                n_shots, format="csr"
            )
        if n_points == n_shots:
            try:
                with np.errstate(all="ignore"):
                    doses = spsolve(matrix.tocsc(), rhs)
                if np.all(np.isfinite(doses)):
                    return np.asarray(doses)
            except Exception:
                pass
        return lsqr(matrix, rhs, atol=1e-12, btol=1e-12)[0]

    @property
    def matrix_nbytes(self) -> int:
        m = self.matrix
        return m.data.nbytes + m.indices.nbytes + m.indptr.nbytes

    @property
    def nnz(self) -> int:
        return self.matrix.nnz


def _bilinear_stencil(
    x: np.ndarray,
    y: np.ndarray,
    origin: Tuple[float, float],
    cell: float,
    nx: int,
    ny: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Bilinear weights of scattered positions on a cell-centre grid.

    Returns ``(nodes, weights)`` of shape ``(len(x), 4)`` — the four
    flat node indices around each position and their weights (sum 1).
    Positions are clamped half a cell inside the grid so every stencil
    is valid; the grid is built with enough margin that clamping only
    ever touches round-off at the border.
    """
    fx = (x - origin[0]) / cell - 0.5
    fy = (y - origin[1]) / cell - 0.5
    fx = np.clip(fx, 0.0, nx - 1.000001)
    fy = np.clip(fy, 0.0, ny - 1.000001)
    ix = np.floor(fx).astype(np.intp)
    iy = np.floor(fy).astype(np.intp)
    wx = fx - ix
    wy = fy - iy
    nodes = np.stack(
        [
            iy * nx + ix,
            iy * nx + ix + 1,
            (iy + 1) * nx + ix,
            (iy + 1) * nx + ix + 1,
        ],
        axis=1,
    )
    weights = np.stack(
        [
            (1.0 - wx) * (1.0 - wy),
            wx * (1.0 - wy),
            (1.0 - wx) * wy,
            wx * wy,
        ],
        axis=1,
    )
    return nodes, weights


def _beta_cell_kernel(
    beta: float, cell: float, reach_factor: float = GRID_REACH_FACTOR
) -> np.ndarray:
    """Cell-integrated backscatter Gaussian stencil.

    ``K[dy, dx] = ∫_cell exp(−r²/β²) / (π β²)`` over the cell displaced
    by ``(dx, dy)`` cells — erf-difference products, so narrow kernels
    are never undersampled.  Sums to ~1 over its ``reach_factor · β``
    support.
    """
    from scipy.special import erf

    half = max(1, int(math.ceil(reach_factor * beta / cell)))
    edges = (np.arange(-half, half + 2) - 0.5) * cell
    cdf = 0.5 * (1.0 + erf(edges / beta))
    one_d = np.diff(cdf)
    return np.outer(one_d, one_d)


class HybridExposureOperator(ExposureOperator):
    """Short-range-exact / long-range-gridded exposure operator.

    ``apply`` = exact α-term CSR matvec plus the β·η term evaluated as
    scatter → FFT convolution → gather on a coarse grid:

    * scatter: each shot's bounding box is subdivided into panels no
      larger than ``β/2`` per axis, and each panel deposits its share of
      the shot area at its 2×2 Gauss–Legendre points (bilinear), so the
      bbox-uniform density the dense model assumes is matched through
      its third moments panel by panel — accurate for 2 µm VSB shots
      and 14 µm fracture strips alike;
    * convolve: pixel-integrated β Gaussian, one FFT per apply;
    * gather: bilinear interpolation of the convolved background at the
      sample points.

    The operator is linear in the dose vector by construction, so it
    drops into the same iterative/matrix correctors as the exact
    backends.  ``grid_cell`` (default ``β/4``) trades accuracy for grid
    size.

    ``cutoff_factor`` (in units of β, like the exact backends) widens
    the backscatter kernel/grid reach beyond its ``4 β`` default when a
    caller asks for a wider truncation; the forward term's cutoff is
    fixed at ``4 α`` — the whole point of the split is that the α term
    is negligible beyond that.
    """

    mode = "hybrid"

    def __init__(
        self,
        points: np.ndarray,
        shots: Sequence[Shot],
        psf: DoubleGaussianPSF,
        cutoff_factor: float = 4.0,
        grid_cell: Optional[float] = None,
    ) -> None:
        from scipy.sparse import csr_matrix

        n_points = len(points)
        n_shots = len(shots)
        self.shape = (n_points, n_shots)
        self.psf = psf
        self.forward = _exposure_matrix_csr(
            points, shots, psf, ALPHA_CUTOFF_FACTOR, term="forward"
        )
        cell = (
            float(grid_cell)
            if grid_cell is not None
            else DEFAULT_GRID_CELL_FACTOR * psf.beta
        )
        if cell <= 0:
            raise ValueError("grid_cell must be positive")
        self.grid_cell = cell
        if n_points == 0 or n_shots == 0:
            self._scatter = csr_matrix((0, n_shots))
            self._gather = csr_matrix((n_points, 0))
            self._kernel = np.zeros((1, 1))
            self._grid_shape = (0, 0)
            return
        x0, y0, x1, y1, _ = _shot_bbox_arrays(shots)
        yb, yt, xbl, xbr, xtl, xtr = _trap_field_arrays(shots)
        areas = 0.5 * ((xbr - xbl) + (xtr - xtl)) * (yt - yb)
        reach_factor = max(GRID_REACH_FACTOR, cutoff_factor)
        margin = reach_factor * psf.beta + 2.0 * cell
        gx0 = min(float(x0.min()), float(points[:, 0].min())) - margin
        gy0 = min(float(y0.min()), float(points[:, 1].min())) - margin
        gx1 = max(float(x1.max()), float(points[:, 0].max())) + margin
        gy1 = max(float(y1.max()), float(points[:, 1].max())) + margin
        nx = max(2, int(math.ceil((gx1 - gx0) / cell)) + 1)
        ny = max(2, int(math.ceil((gy1 - gy0) / cell)) + 1)
        self._grid_shape = (ny, nx)
        origin = (gx0, gy0)
        # Panelize each bounding box to ≤ β/2 per axis, then deposit
        # every panel's area share at its 2×2 Gauss points.
        panel = PANEL_FACTOR * psf.beta
        width = x1 - x0
        height = y1 - y0
        kx = np.maximum(1, np.ceil(width / panel).astype(np.intp))
        ky = np.maximum(1, np.ceil(height / panel).astype(np.intp))
        panels = kx * ky
        total = int(panels.sum())
        shot_of = np.repeat(np.arange(n_shots), panels)
        starts = np.concatenate(([0], np.cumsum(panels)[:-1]))
        local = np.arange(total) - np.repeat(starts, panels)
        kx_rep = kx[shot_of]
        col = local % kx_rep
        row = local // kx_rep
        pw = (width / kx)[shot_of]
        ph = (height / ky)[shot_of]
        pcx = x0[shot_of] + (col + 0.5) * pw
        pcy = y0[shot_of] + (row + 0.5) * ph
        off_x = pw / (2.0 * math.sqrt(3.0))
        off_y = ph / (2.0 * math.sqrt(3.0))
        sx = np.concatenate(
            [pcx - off_x, pcx + off_x, pcx - off_x, pcx + off_x]
        )
        sy = np.concatenate(
            [pcy - off_y, pcy - off_y, pcy + off_y, pcy + off_y]
        )
        shot_of = np.tile(shot_of, 4)
        nodes, weights = _bilinear_stencil(sx, sy, origin, cell, nx, ny)
        mass = (areas / panels / 4.0)[shot_of]
        self._scatter = csr_matrix(
            (
                (weights * mass[:, None]).ravel(),
                (
                    nodes.ravel(),
                    np.repeat(shot_of, 4),
                ),
            ),
            shape=(nx * ny, n_shots),
        )
        p_nodes, p_weights = _bilinear_stencil(
            points[:, 0], points[:, 1], origin, cell, nx, ny
        )
        self._gather = csr_matrix(
            (
                p_weights.ravel(),
                (
                    np.repeat(np.arange(n_points), 4),
                    p_nodes.ravel(),
                ),
            ),
            shape=(n_points, nx * ny),
        )
        self._kernel = _beta_cell_kernel(psf.beta, cell, reach_factor)
        # Back level = Σ mass · (cell-avg Gaussian); the kernel holds
        # cell integrals, hence the 1/cell² — times the η/(1+η) weight
        # of the backscatter term in the normalized double Gaussian.
        self._coeff = psf.eta / (1.0 + psf.eta) / cell**2

    def _convolve(self, image: np.ndarray) -> np.ndarray:
        from scipy.signal import fftconvolve

        return fftconvolve(image, self._kernel, mode="same")

    def apply(self, doses: np.ndarray) -> np.ndarray:
        exposure = self.forward @ doses
        if self.shape[0] == 0 or self.shape[1] == 0:
            return exposure
        ny, nx = self._grid_shape
        grid = (self._scatter @ doses).reshape(ny, nx)
        background = self._gather @ self._convolve(grid).ravel()
        return exposure + self._coeff * background

    def _rmatvec(self, levels: np.ndarray) -> np.ndarray:
        """Adjoint apply (the β kernel is symmetric, so the grid
        convolution is self-adjoint)."""
        out = self.forward.T @ levels
        if self.shape[0] == 0 or self.shape[1] == 0:
            return out
        ny, nx = self._grid_shape
        grid = (self._gather.T @ levels).reshape(ny, nx)
        out = out + self._coeff * (
            self._scatter.T @ self._convolve(grid).ravel()
        )
        return out

    def solve(
        self, rhs: np.ndarray, regularization: float = 0.0
    ) -> np.ndarray:
        from scipy.sparse.linalg import LinearOperator, lsqr

        n_points, n_shots = self.shape

        def matvec(d):
            out = self.apply(np.asarray(d, dtype=float))
            if regularization > 0 and n_points == n_shots:
                out = out + regularization * np.asarray(d, dtype=float)
            return out

        def rmatvec(y):
            out = self._rmatvec(np.asarray(y, dtype=float))
            if regularization > 0 and n_points == n_shots:
                out = out + regularization * np.asarray(y, dtype=float)
            return out

        operator = LinearOperator(
            self.shape, matvec=matvec, rmatvec=rmatvec, dtype=float
        )
        return lsqr(operator, rhs, atol=1e-10, btol=1e-10)[0]

    @property
    def matrix_nbytes(self) -> int:
        total = self._kernel.nbytes
        for m in (self.forward, self._scatter, self._gather):
            total += m.data.nbytes + m.indices.nbytes + m.indptr.nbytes
        return total


def build_exposure_operator(
    points: np.ndarray,
    shots: Sequence[Shot],
    psf: DoubleGaussianPSF,
    cutoff_factor: float = 4.0,
    mode: str = "dense",
    grid_cell: Optional[float] = None,
) -> ExposureOperator:
    """Build the exposure operator for ``mode`` (see module docstring).

    The factory every corrector goes through; ``mode`` is validated
    here so a typo fails loudly at configuration time.
    """
    validate_matrix_mode(mode)
    points = np.asarray(points, dtype=float).reshape(-1, 2)
    if mode == "dense":
        return DenseExposureOperator(
            _exposure_matrix(points, shots, psf, cutoff_factor)
        )
    if mode == "sparse":
        return SparseExposureOperator(
            _exposure_matrix_csr(points, shots, psf, cutoff_factor)
        )
    return HybridExposureOperator(
        points, shots, psf, cutoff_factor=cutoff_factor, grid_cell=grid_cell
    )

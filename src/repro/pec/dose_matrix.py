"""Direct (matrix) dose correction.

Solves the linear system ``K d = E_target`` for the dose vector in one
step, where K is the shot interaction matrix.  Mathematically this is the
fixed point the iterative scheme approaches; in practice the solution can
go negative for aggressive geometries and must be clipped, after which a
single re-normalization pass restores the mean level.  The trade-off
against iteration (accuracy vs. O(n³) cost) is part of experiment F2.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.fracture.base import Shot
from repro.pec.base import ProximityCorrector, shot_interaction_matrix
from repro.physics.psf import DoubleGaussianPSF


class MatrixDoseCorrector(ProximityCorrector):
    """One-shot linear-solve dose correction.

    Args:
        target: desired absorbed level at every shot sample point.
        sample_mode: ``"centroid"`` or ``"center"``.
        dose_limits: post-solve clipping range.
        regularization: Tikhonov term added to the diagonal; stabilizes
            near-singular systems from heavily overlapping sample points.
    """

    def __init__(
        self,
        target: float = 1.0,
        sample_mode: str = "centroid",
        dose_limits: tuple = (0.1, 8.0),
        regularization: float = 0.0,
    ) -> None:
        if target <= 0:
            raise ValueError("target level must be positive")
        if regularization < 0:
            raise ValueError("regularization must be non-negative")
        self.target = target
        self.sample_mode = sample_mode
        self.dose_limits = dose_limits
        self.regularization = regularization

    def correct(
        self, shots: Sequence[Shot], psf: DoubleGaussianPSF
    ) -> List[Shot]:
        """Solve for doses; clipped to the hardware range."""
        if not shots:
            return []
        matrix = shot_interaction_matrix(shots, psf, self.sample_mode)
        n = len(shots)
        if self.regularization > 0:
            matrix = matrix + self.regularization * np.eye(n)
        rhs = np.full(n, self.target)
        try:
            doses = np.linalg.solve(matrix, rhs)
        except np.linalg.LinAlgError:
            doses, *_ = np.linalg.lstsq(matrix, rhs, rcond=None)
        lo, hi = self.dose_limits
        clipped = np.clip(doses, lo, hi)
        # Re-normalize the mean exposure if clipping bit.
        if not np.array_equal(clipped, doses):
            exposure = matrix @ clipped
            mean_level = exposure.mean()
            if mean_level > 0:
                clipped = np.clip(clipped * self.target / mean_level, lo, hi)
        return [s.with_dose(float(d)) for s, d in zip(shots, clipped)]

"""Direct (matrix) dose correction.

Solves the linear system ``K d = E_target`` for the dose vector in one
step, where K is the shot interaction operator.  Mathematically this is
the fixed point the iterative scheme approaches; in practice the solution
can go negative for aggressive geometries and must be clipped, after
which a single re-normalization pass restores the mean level.  The
trade-off against iteration (accuracy vs. O(n³) cost) is part of
experiment F2.

The solver backend follows the operator's ``matrix_mode``: dense uses
``np.linalg.solve`` (lstsq fallback), sparse a CSR ``spsolve`` with an
``lsqr`` fallback, and hybrid ``lsqr`` on the matrix-free operator.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.fracture.base import Shot
from repro.pec.base import ProximityCorrector, shot_sample_points
from repro.pec.operator import build_exposure_operator, validate_matrix_mode
from repro.physics.psf import DoubleGaussianPSF


class MatrixDoseCorrector(ProximityCorrector):
    """One-shot linear-solve dose correction.

    Args:
        target: desired absorbed level at every shot sample point.
        sample_mode: ``"centroid"`` or ``"center"``.
        dose_limits: post-solve clipping range.
        regularization: Tikhonov term added to the diagonal; stabilizes
            near-singular systems from heavily overlapping sample points.
        matrix_mode: exposure-operator backend (``"dense"``, ``"sparse"``
            or ``"hybrid"``); see :mod:`repro.pec.operator`.
        grid_cell: hybrid backscatter grid cell [µm] (default ``β/4``).
    """

    def __init__(
        self,
        target: float = 1.0,
        sample_mode: str = "centroid",
        dose_limits: tuple = (0.1, 8.0),
        regularization: float = 0.0,
        matrix_mode: str = "dense",
        grid_cell: Optional[float] = None,
    ) -> None:
        if target <= 0:
            raise ValueError("target level must be positive")
        if regularization < 0:
            raise ValueError("regularization must be non-negative")
        self.target = target
        self.sample_mode = sample_mode
        self.dose_limits = dose_limits
        self.regularization = regularization
        self.matrix_mode = validate_matrix_mode(matrix_mode)
        self.grid_cell = grid_cell

    def correct(
        self, shots: Sequence[Shot], psf: DoubleGaussianPSF
    ) -> List[Shot]:
        """Solve for doses; clipped to the hardware range."""
        if not shots:
            return []
        points = shot_sample_points(shots, self.sample_mode)
        operator = build_exposure_operator(
            points,
            shots,
            psf,
            mode=self.matrix_mode,
            grid_cell=self.grid_cell,
        )
        n = len(shots)
        rhs = np.full(n, self.target)
        doses = operator.solve(rhs, regularization=self.regularization)
        lo, hi = self.dose_limits
        clipped = np.clip(doses, lo, hi)
        # Re-normalize the mean exposure if clipping bit.
        if not np.array_equal(clipped, doses):
            exposure = operator @ clipped
            mean_level = exposure.mean()
            if mean_level > 0:
                clipped = np.clip(clipped * self.target / mean_level, lo, hi)
        return [s.with_dose(float(d)) for s, d in zip(shots, clipped)]

"""Dose-class quantization.

Real writers could not set an arbitrary dose per shot: the blanking
hardware offered a fixed set of *dose classes* (typically 8–64 discrete
levels).  After correction, each shot's computed dose is snapped to the
nearest class.  The residual exposure error this introduces — and how
many classes are enough — is the ablation `bench_f2a` runs.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.fracture.base import Shot


def dose_classes(
    levels: int, lo: float = 0.5, hi: float = 4.0, geometric: bool = True
) -> np.ndarray:
    """The writer's available dose classes.

    Args:
        levels: number of classes (≥ 2).
        lo, hi: dose range covered.
        geometric: geometric spacing (constant ratio — matches how dwell
            clocks divided) vs. linear spacing.
    """
    if levels < 2:
        raise ValueError("need at least two dose classes")
    if not (0 < lo < hi):
        raise ValueError("need 0 < lo < hi")
    if geometric:
        return np.geomspace(lo, hi, levels)
    return np.linspace(lo, hi, levels)


def quantize_doses(
    shots: Sequence[Shot], classes: np.ndarray
) -> Tuple[List[Shot], float]:
    """Snap every shot dose to the nearest available class.

    Returns:
        ``(quantized_shots, max_relative_step)`` where the second value
        is the largest relative dose change the snapping caused.
    """
    classes = np.sort(np.asarray(classes, dtype=float))
    if classes.ndim != 1 or len(classes) < 1:
        raise ValueError("classes must be a non-empty 1-D array")
    quantized: List[Shot] = []
    worst = 0.0
    for shot in shots:
        index = int(np.argmin(np.abs(classes - shot.dose)))
        new_dose = float(classes[index])
        if shot.dose > 0:
            worst = max(worst, abs(new_dose - shot.dose) / shot.dose)
        quantized.append(shot.with_dose(new_dose))
    return quantized, worst

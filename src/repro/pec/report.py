"""Correction-quality reporting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.fracture.base import Shot
from repro.pec.base import exposure_at_points, shot_sample_points
from repro.physics.psf import DoubleGaussianPSF


@dataclass(frozen=True)
class CorrectionReport:
    """Exposure uniformity of a (corrected) shot list.

    All levels are in large-pad units (1.0 = infinite pad at dose 1).

    Attributes:
        shot_count: shots analyzed.
        mean_level: mean absorbed level at shot sample points.
        min_level / max_level: extremes over the shots.
        spread: (max − min) / mean — the figure of merit PEC minimizes.
        rms_error: RMS deviation from the mean level.
        dose_range: (min, max) assigned dose factors.
        extra_exposure_fraction: dose-weighted area overhead relative to
            writing everything at dose 1 (write-time cost of correction).
    """

    shot_count: int
    mean_level: float
    min_level: float
    max_level: float
    spread: float
    rms_error: float
    dose_range: tuple
    extra_exposure_fraction: float


def correction_report(
    shots: Sequence[Shot], psf: DoubleGaussianPSF
) -> CorrectionReport:
    """Analyze exposure uniformity of a shot list under ``psf``."""
    if not shots:
        return CorrectionReport(0, 0.0, 0.0, 0.0, 0.0, 0.0, (0.0, 0.0), 0.0)
    points = shot_sample_points(shots, "centroid")
    # Sparse keeps the report affordable on production shot counts; the
    # entries equal the dense matrix bit for bit.
    levels = exposure_at_points(points, shots, psf, matrix_mode="sparse")
    mean = float(levels.mean())
    doses = np.array([s.dose for s in shots])
    areas = np.array([s.area() for s in shots])
    base = float(areas.sum())
    weighted = float((areas * doses).sum())
    return CorrectionReport(
        shot_count=len(shots),
        mean_level=mean,
        min_level=float(levels.min()),
        max_level=float(levels.max()),
        spread=float((levels.max() - levels.min()) / mean) if mean else 0.0,
        rms_error=float(np.sqrt(np.mean((levels - mean) ** 2))),
        dose_range=(float(doses.min()), float(doses.max())),
        extra_exposure_fraction=(weighted - base) / base if base else 0.0,
    )

"""Geometric shape-bias correction.

Machines without dose modulation (notably fixed-dose raster writers)
corrected proximity by *pre-biasing geometry*: figures in dense
surroundings are shrunk so that backscatter fog grows them back to size.

The bias for a figure is derived from the absorbed-level model: with
background level ``E_bg`` above the isolated case, the printed edge moves
outward by approximately::

    Δ ≈ (E_bg − E_iso_bg) / |dE/dx|_edge ,  |dE/dx|_edge ≈ 1/(α·√π·(1+η))

(the forward-Gaussian edge slope), so each edge is inset by Δ.  Bias is
clamped so figures never invert.
"""

from __future__ import annotations

import math
from typing import List, Sequence


from repro.fracture.base import Shot
from repro.geometry.trapezoid import Trapezoid
from repro.pec.base import ProximityCorrector, exposure_at_points, shot_sample_points
from repro.physics.psf import DoubleGaussianPSF


class ShapeBiasCorrector(ProximityCorrector):
    """Fixed-dose geometric pre-bias.

    Args:
        reference_level: absorbed level of the isolated reference feature
            (whose size is taken as correct without bias).
        gain: multiplier on the analytic bias (1.0 = nominal model).
        max_bias_fraction: cap on the inset as a fraction of the figure's
            half-minimum-dimension (prevents inversion).
    """

    def __init__(
        self,
        reference_level: float = 0.5,
        gain: float = 1.0,
        max_bias_fraction: float = 0.45,
    ) -> None:
        if gain <= 0:
            raise ValueError("gain must be positive")
        if not (0.0 < max_bias_fraction < 0.5):
            raise ValueError("max_bias_fraction must be in (0, 0.5)")
        self.reference_level = reference_level
        self.gain = gain
        self.max_bias_fraction = max_bias_fraction

    def correct(
        self, shots: Sequence[Shot], psf: DoubleGaussianPSF
    ) -> List[Shot]:
        """Return geometry-biased copies of ``shots`` (doses unchanged)."""
        if not shots:
            return []
        points = shot_sample_points(shots, "centroid")
        # Sparse operator: entries are bit-identical to dense, but the
        # n × n matrix never materializes on large shot lists.
        exposure = exposure_at_points(
            points, shots, psf, matrix_mode="sparse"
        )
        # Edge slope of the forward Gaussian at a feature edge.
        edge_slope = 1.0 / (psf.alpha * math.sqrt(math.pi) * (1.0 + psf.eta))
        corrected: List[Shot] = []
        for shot, level in zip(shots, exposure):
            excess = max(0.0, float(level) - self.reference_level)
            bias = self.gain * excess / edge_slope
            corrected.append(
                Shot(
                    _inset(shot.trapezoid, bias, self.max_bias_fraction),
                    shot.dose,
                )
            )
        return corrected


def _inset(trap: Trapezoid, bias: float, max_fraction: float) -> Trapezoid:
    """Shrink a trapezoid by ``bias`` on every side, with inversion guard."""
    if bias <= 0:
        return trap
    min_dim = min(
        trap.height,
        max(trap.min_width(), trap.area() / trap.height),
    )
    bias = min(bias, max_fraction * min_dim)
    if bias <= 0:
        return trap
    y0 = trap.y_bottom + bias
    y1 = trap.y_top - bias
    if y1 <= y0:
        mid = (trap.y_bottom + trap.y_top) / 2.0
        y0, y1 = mid - 1e-9, mid + 1e-9
    # Interpolate the side x positions at the new heights, then inset in x.
    def x_at(xb: float, xt: float, y: float) -> float:
        t = (y - trap.y_bottom) / trap.height
        return xb + t * (xt - xb)

    xl0 = x_at(trap.x_bottom_left, trap.x_top_left, y0) + bias
    xl1 = x_at(trap.x_bottom_left, trap.x_top_left, y1) + bias
    xr0 = x_at(trap.x_bottom_right, trap.x_top_right, y0) - bias
    xr1 = x_at(trap.x_bottom_right, trap.x_top_right, y1) - bias
    if xr0 < xl0:
        mid = (xr0 + xl0) / 2.0
        xl0 = xr0 = mid
    if xr1 < xl1:
        mid = (xr1 + xl1) / 2.0
        xl1 = xr1 = mid
    return Trapezoid(y0, y1, xl0, xr0, xl1, xr1)

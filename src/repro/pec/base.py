"""Shared machinery for proximity correction.

The correctors need the absorbed-energy level at figure sample points as a
function of all shot doses.  For a double-Gaussian PSF and rectangle-like
shots this is analytic: the exposure a rectangle ``[x0,x1]×[y0,y1]`` at
uniform dose 1 contributes to a point is a product of erf differences per
Gaussian term.  Trapezoids are approximated by their bounding rectangle
scaled by the area ratio — exact for rectangles, and within a few percent
for the near-rectangular trapezoids fracturing produces (the accuracy is
measured by the test suite against the FFT exposure engine).
"""

from __future__ import annotations

import abc
from typing import List, Sequence, Tuple

import numpy as np
from scipy.special import erf

from repro.fracture.base import Shot
from repro.geometry.trapezoid import Trapezoid
from repro.physics.psf import DoubleGaussianPSF


def _rect_gauss_integral(
    px: np.ndarray,
    py: np.ndarray,
    x0: "float | np.ndarray",
    x1: "float | np.ndarray",
    y0: "float | np.ndarray",
    y1: "float | np.ndarray",
    sigma: float,
) -> np.ndarray:
    """∫∫_rect g(p − q) dq for the unit Gaussian ``g`` of range ``sigma``.

    ``g(r) = exp(−r²/σ²) / (π σ²)`` (the PSF term normalization), so the
    integral over the whole plane is 1.
    """
    ax = 0.5 * (erf((x1 - px) / sigma) - erf((x0 - px) / sigma))
    ay = 0.5 * (erf((y1 - py) / sigma) - erf((y0 - py) / sigma))
    return ax * ay


def rectangle_exposure(
    points: np.ndarray,
    rect: Tuple[float, float, float, float],
    psf: DoubleGaussianPSF,
) -> np.ndarray:
    """Absorbed level at ``points`` from a unit-dose rectangle.

    Args:
        points: array of shape (n, 2).
        rect: ``(x0, y0, x1, y1)``.
        psf: the proximity PSF.

    Returns:
        Array of n absorbed-energy levels (large-pad level = 1).
    """
    px = points[:, 0]
    py = points[:, 1]
    x0, y0, x1, y1 = rect
    fwd = _rect_gauss_integral(px, py, x0, x1, y0, y1, psf.alpha)
    back = _rect_gauss_integral(px, py, x0, x1, y0, y1, psf.beta)
    return (fwd + psf.eta * back) / (1.0 + psf.eta)


def trapezoid_exposure(
    points: np.ndarray, trap: Trapezoid, psf: DoubleGaussianPSF
) -> np.ndarray:
    """Absorbed level at ``points`` from a unit-dose trapezoid.

    Bounding-rectangle approximation scaled by the area ratio.
    """
    bbox = trap.bounding_box()
    bbox_area = (bbox[2] - bbox[0]) * (bbox[3] - bbox[1])
    if bbox_area <= 0:
        return np.zeros(len(points))
    scale = trap.area() / bbox_area
    return scale * rectangle_exposure(
        points, (bbox[0], bbox[1], bbox[2], bbox[3]), psf
    )


def shot_sample_points(
    shots: Sequence[Shot], mode: str = "centroid"
) -> np.ndarray:
    """Representative sample point for each shot.

    ``mode="centroid"`` uses the area centroid; ``mode="center"`` the
    bounding-box centre (the cheaper choice ablated in F2).
    """
    points = np.empty((len(shots), 2))
    for i, shot in enumerate(shots):
        if mode == "centroid":
            c = shot.trapezoid.centroid()
            points[i] = (c.x, c.y)
        elif mode == "center":
            bbox = shot.trapezoid.bounding_box()
            points[i] = ((bbox[0] + bbox[2]) / 2.0, (bbox[1] + bbox[3]) / 2.0)
        else:
            raise ValueError(f"unknown sample mode {mode!r}")
    return points


def edge_sample_points(
    shots: Sequence[Shot], inset_fraction: float = 0.02
) -> Tuple[np.ndarray, np.ndarray]:
    """Edge-midpoint sample points: two per shot (left and right sides).

    Edge targeting pins the absorbed level at the printed boundary rather
    than the figure interior, which removes the uniform CD offset
    interior targeting leaves (see EXPERIMENTS.md, F1).  Points are inset
    slightly so they sample the figure side of the edge.

    Returns:
        ``(points, owners)`` — points of shape (2n, 2) and the owning
        shot index of each point.
    """
    n = len(shots)
    points = np.empty((2 * n, 2))
    owners = np.empty(2 * n, dtype=int)
    for i, shot in enumerate(shots):
        t = shot.trapezoid
        y_mid = 0.5 * (t.y_bottom + t.y_top)
        left = 0.5 * (t.x_bottom_left + t.x_top_left)
        right = 0.5 * (t.x_bottom_right + t.x_top_right)
        inset = inset_fraction * max(right - left, 1e-9)
        points[2 * i] = (left + inset, y_mid)
        points[2 * i + 1] = (right - inset, y_mid)
        owners[2 * i] = i
        owners[2 * i + 1] = i
    return points, owners


def _shot_bbox_arrays(
    shots: Sequence[Shot],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-shot bounding boxes and area-ratio scales as flat arrays."""
    n = len(shots)
    x0 = np.empty(n)
    y0 = np.empty(n)
    x1 = np.empty(n)
    y1 = np.empty(n)
    scale = np.empty(n)
    for j, shot in enumerate(shots):
        t = shot.trapezoid
        bx0, by0, bx1, by1 = t.bounding_box()
        x0[j], y0[j], x1[j], y1[j] = bx0, by0, bx1, by1
        bbox_area = (bx1 - bx0) * (by1 - by0)
        scale[j] = t.area() / bbox_area if bbox_area > 0 else 0.0
    return x0, y0, x1, y1, scale


def _exposure_matrix(
    points: np.ndarray,
    shots: Sequence[Shot],
    psf: DoubleGaussianPSF,
    cutoff_factor: float,
    block: int = 64,
) -> np.ndarray:
    """Vectorized exposure matrix ``K[p, j]`` = level at point p from
    shot j at unit dose.

    Columns are assembled in blocks with broadcast erf products (one
    numpy expression per block instead of a Python loop per shot); the
    distance cutoff zeroes entries beyond ``cutoff_factor · β`` from the
    shot, treating the far tail as constant.  Elementwise the arithmetic
    matches :func:`trapezoid_exposure`, so results are bit-identical to
    the per-shot assembly it replaces.
    """
    n_points = len(points)
    n_shots = len(shots)
    matrix = np.zeros((n_points, n_shots))
    if n_points == 0 or n_shots == 0:
        return matrix
    x0, y0, x1, y1, scale = _shot_bbox_arrays(shots)
    cx = (x0 + x1) / 2.0
    cy = (y0 + y1) / 2.0
    half_diag = np.hypot(x1 - x0, y1 - y0) / 2.0
    reach = cutoff_factor * psf.beta + half_diag
    px_all = points[:, 0][:, None]
    py_all = points[:, 1][:, None]
    norm = 1.0 + psf.eta
    # Visit columns in 2-D tile order so each block is spatially compact
    # and its pruned row set (points inside some column's cutoff) stays
    # small; fracture order alone is only y-coherent.
    tile = max(cutoff_factor * psf.beta, 1e-9)
    order = np.lexsort((cx, np.floor(cx / tile), np.floor(cy / tile)))
    for j0 in range(0, n_shots, block):
        cols = order[j0 : j0 + block]
        near = (
            np.hypot(px_all - cx[None, cols], py_all - cy[None, cols])
            <= reach[None, cols]
        )
        # The erf products are the expensive part; evaluate them only on
        # the rows the cutoff keeps.
        rows = np.flatnonzero(near.any(axis=1))
        if rows.size == 0:
            continue
        px = px_all[rows]
        py = py_all[rows]
        bx0, bx1 = x0[None, cols], x1[None, cols]
        by0, by1 = y0[None, cols], y1[None, cols]
        fwd = _rect_gauss_integral(px, py, bx0, bx1, by0, by1, psf.alpha)
        back = _rect_gauss_integral(px, py, bx0, bx1, by0, by1, psf.beta)
        levels = scale[None, cols] * ((fwd + psf.eta * back) / norm)
        matrix[np.ix_(rows, cols)] = np.where(near[rows], levels, 0.0)
    return matrix


def interaction_matrix_at_points(
    points: np.ndarray,
    shots: Sequence[Shot],
    psf: DoubleGaussianPSF,
    cutoff_factor: float = 4.0,
) -> np.ndarray:
    """Exposure matrix K with ``K[p, j]`` = level at point p from shot j
    at unit dose (distance-cutoff pruned like
    :func:`shot_interaction_matrix`)."""
    return _exposure_matrix(points, shots, psf, cutoff_factor)


def shot_interaction_matrix(
    shots: Sequence[Shot],
    psf: DoubleGaussianPSF,
    sample_mode: str = "centroid",
    cutoff_factor: float = 4.0,
) -> np.ndarray:
    """Interaction matrix K with ``K[i, j]`` = exposure at shot i's sample
    point from shot j at unit dose.

    Entries beyond ``cutoff_factor · β`` are treated as the constant far
    tail (effectively zero), keeping the matrix cheap without the sparse
    machinery the originals could not afford either.
    """
    points = shot_sample_points(shots, sample_mode)
    return _exposure_matrix(points, shots, psf, cutoff_factor)


def exposure_at_points(
    points: np.ndarray, shots: Sequence[Shot], psf: DoubleGaussianPSF
) -> np.ndarray:
    """Absorbed level at arbitrary points from a dosed shot list."""
    total = np.zeros(len(points))
    for shot in shots:
        total += shot.dose * trapezoid_exposure(points, shot.trapezoid, psf)
    return total


class ProximityCorrector(abc.ABC):
    """Strategy interface for proximity-effect correction."""

    @abc.abstractmethod
    def correct(
        self, shots: Sequence[Shot], psf: DoubleGaussianPSF
    ) -> List[Shot]:
        """Return a corrected shot list for the given exposure PSF."""

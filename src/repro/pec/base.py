"""Shared machinery for proximity correction.

The correctors need the absorbed-energy level at figure sample points as a
function of all shot doses.  For a double-Gaussian PSF and rectangle-like
shots this is analytic: the exposure a rectangle ``[x0,x1]×[y0,y1]`` at
uniform dose 1 contributes to a point is a product of erf differences per
Gaussian term.  Trapezoids are approximated by their bounding rectangle
scaled by the area ratio — exact for rectangles, and within a few percent
for the near-rectangular trapezoids fracturing produces (the accuracy is
measured by the test suite against the FFT exposure engine).
"""

from __future__ import annotations

import abc
import math
from typing import List, Sequence, Tuple

import numpy as np
from scipy.special import erf

from repro.fracture.base import Shot
from repro.geometry.trapezoid import Trapezoid
from repro.physics.psf import DoubleGaussianPSF


def _rect_gauss_integral(
    px: np.ndarray,
    py: np.ndarray,
    x0: "float | np.ndarray",
    x1: "float | np.ndarray",
    y0: "float | np.ndarray",
    y1: "float | np.ndarray",
    sigma: float,
) -> np.ndarray:
    """∫∫_rect g(p − q) dq for the unit Gaussian ``g`` of range ``sigma``.

    ``g(r) = exp(−r²/σ²) / (π σ²)`` (the PSF term normalization), so the
    integral over the whole plane is 1.
    """
    ax = 0.5 * (erf((x1 - px) / sigma) - erf((x0 - px) / sigma))
    ay = 0.5 * (erf((y1 - py) / sigma) - erf((y0 - py) / sigma))
    return ax * ay


def rectangle_exposure(
    points: np.ndarray,
    rect: Tuple[float, float, float, float],
    psf: DoubleGaussianPSF,
) -> np.ndarray:
    """Absorbed level at ``points`` from a unit-dose rectangle.

    Args:
        points: array of shape (n, 2).
        rect: ``(x0, y0, x1, y1)``.
        psf: the proximity PSF.

    Returns:
        Array of n absorbed-energy levels (large-pad level = 1).
    """
    px = points[:, 0]
    py = points[:, 1]
    x0, y0, x1, y1 = rect
    fwd = _rect_gauss_integral(px, py, x0, x1, y0, y1, psf.alpha)
    back = _rect_gauss_integral(px, py, x0, x1, y0, y1, psf.beta)
    return (fwd + psf.eta * back) / (1.0 + psf.eta)


def trapezoid_exposure(
    points: np.ndarray, trap: Trapezoid, psf: DoubleGaussianPSF
) -> np.ndarray:
    """Absorbed level at ``points`` from a unit-dose trapezoid.

    Bounding-rectangle approximation scaled by the area ratio.
    """
    bbox = trap.bounding_box()
    bbox_area = (bbox[2] - bbox[0]) * (bbox[3] - bbox[1])
    if bbox_area <= 0:
        return np.zeros(len(points))
    scale = trap.area() / bbox_area
    return scale * rectangle_exposure(
        points, (bbox[0], bbox[1], bbox[2], bbox[3]), psf
    )


def _trap_field_arrays(
    shots: Sequence[Shot],
) -> Tuple[np.ndarray, ...]:
    """The six trapezoid coordinate fields of a shot list, stacked.

    One pass of attribute access builds a single ``(n, 6)`` array; every
    geometric quantity downstream (sample points, bounding boxes, areas)
    is then pure vectorized arithmetic on its columns.

    Returns:
        ``(y_bottom, y_top, x_bottom_left, x_bottom_right, x_top_left,
        x_top_right)`` as length-n float arrays.
    """
    if not shots:
        empty = np.empty(0)
        return (empty,) * 6
    stacked = np.array(
        [
            (
                t.y_bottom,
                t.y_top,
                t.x_bottom_left,
                t.x_bottom_right,
                t.x_top_left,
                t.x_top_right,
            )
            for t in (shot.trapezoid for shot in shots)
        ]
    )
    return tuple(stacked[:, k] for k in range(6))


def shot_sample_points(
    shots: Sequence[Shot], mode: str = "centroid"
) -> np.ndarray:
    """Representative sample point for each shot.

    ``mode="centroid"`` uses the area centroid; ``mode="center"`` the
    bounding-box centre (the cheaper choice ablated in F2).  Both modes
    are vectorized over the stacked trapezoid fields; the centroid
    arithmetic replicates the polygon shoelace sum term for term (the
    cross product of a collapsed zero-length edge is exactly 0.0, so
    skipping it never changes an IEEE sum), making the result
    bit-identical to the per-shot :meth:`Trapezoid.centroid` loop it
    replaces.
    """
    if mode not in ("centroid", "center"):
        raise ValueError(f"unknown sample mode {mode!r}")
    points = np.empty((len(shots), 2))
    if not shots:
        return points
    yb, yt, xbl, xbr, xtl, xtr = _trap_field_arrays(shots)
    if mode == "center":
        bx0 = np.minimum(xbl, xtl)
        bx1 = np.maximum(xbr, xtr)
        points[:, 0] = (bx0 + bx1) / 2.0
        points[:, 1] = (yb + yt) / 2.0
        return points
    # Shoelace over the vertex cycle (xbl,yb) (xbr,yb) (xtr,yt) (xtl,yt),
    # accumulated in the same order as the scalar loop.
    c0 = xbl * yb - xbr * yb
    c1 = xbr * yt - xtr * yb
    c2 = xtr * yt - xtl * yt
    c3 = xtl * yb - xbl * yt
    a2 = ((c0 + c1) + c2) + c3
    cx = (((xbl + xbr) * c0 + (xbr + xtr) * c1) + (xtr + xtl) * c2) + (
        xtl + xbl
    ) * c3
    cy = (((yb + yb) * c0 + (yb + yt) * c1) + (yt + yt) * c2) + (
        yt + yb
    ) * c3
    degenerate = np.abs(a2) < 1e-300
    safe = np.where(degenerate, 1.0, a2)
    points[:, 0] = cx / (3.0 * safe)
    points[:, 1] = cy / (3.0 * safe)
    for i in np.flatnonzero(degenerate):
        c = shots[i].trapezoid.centroid()
        points[i] = (c.x, c.y)
    return points


def edge_sample_points(
    shots: Sequence[Shot], inset_fraction: float = 0.02
) -> Tuple[np.ndarray, np.ndarray]:
    """Edge-midpoint sample points: two per shot (left and right sides).

    Edge targeting pins the absorbed level at the printed boundary rather
    than the figure interior, which removes the uniform CD offset
    interior targeting leaves (see EXPERIMENTS.md, F1).  Points are inset
    slightly so they sample the figure side of the edge.

    Returns:
        ``(points, owners)`` — points of shape (2n, 2) and the owning
        shot index of each point.
    """
    n = len(shots)
    points = np.empty((2 * n, 2))
    owners = np.repeat(np.arange(n, dtype=int), 2)
    if n == 0:
        return points, owners
    yb, yt, xbl, xbr, xtl, xtr = _trap_field_arrays(shots)
    y_mid = 0.5 * (yb + yt)
    left = 0.5 * (xbl + xtl)
    right = 0.5 * (xbr + xtr)
    inset = inset_fraction * np.maximum(right - left, 1e-9)
    points[0::2, 0] = left + inset
    points[0::2, 1] = y_mid
    points[1::2, 0] = right - inset
    points[1::2, 1] = y_mid
    return points, owners


def _shot_bbox_arrays(
    shots: Sequence[Shot],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-shot bounding boxes and area-ratio scales as flat arrays."""
    yb, yt, xbl, xbr, xtl, xtr = _trap_field_arrays(shots)
    x0 = np.minimum(xbl, xtl)
    x1 = np.maximum(xbr, xtr)
    bbox_area = (x1 - x0) * (yt - yb)
    area = 0.5 * ((xbr - xbl) + (xtr - xtl)) * (yt - yb)
    positive = bbox_area > 0
    scale = np.where(
        positive, area / np.where(positive, bbox_area, 1.0), 0.0
    )
    return x0, yb, x1, yt, scale


def _exposure_matrix(
    points: np.ndarray,
    shots: Sequence[Shot],
    psf: DoubleGaussianPSF,
    cutoff_factor: float,
    block: int = 64,
) -> np.ndarray:
    """Vectorized exposure matrix ``K[p, j]`` = level at point p from
    shot j at unit dose.

    Columns are assembled in blocks with broadcast erf products (one
    numpy expression per block instead of a Python loop per shot); the
    distance cutoff zeroes entries beyond ``cutoff_factor · β`` from the
    shot, treating the far tail as constant.  Elementwise the arithmetic
    matches :func:`trapezoid_exposure`, so results are bit-identical to
    the per-shot assembly it replaces.
    """
    n_points = len(points)
    n_shots = len(shots)
    matrix = np.zeros((n_points, n_shots))
    if n_points == 0 or n_shots == 0:
        return matrix
    x0, y0, x1, y1, scale = _shot_bbox_arrays(shots)
    cx = (x0 + x1) / 2.0
    cy = (y0 + y1) / 2.0
    half_diag = np.hypot(x1 - x0, y1 - y0) / 2.0
    reach = cutoff_factor * psf.beta + half_diag
    px_all = points[:, 0][:, None]
    py_all = points[:, 1][:, None]
    norm = 1.0 + psf.eta
    # Visit columns in 2-D tile order so each block is spatially compact
    # and its pruned row set (points inside some column's cutoff) stays
    # small; fracture order alone is only y-coherent.
    tile = max(cutoff_factor * psf.beta, 1e-9)
    order = np.lexsort((cx, np.floor(cx / tile), np.floor(cy / tile)))
    for j0 in range(0, n_shots, block):
        cols = order[j0 : j0 + block]
        near = (
            np.hypot(px_all - cx[None, cols], py_all - cy[None, cols])
            <= reach[None, cols]
        )
        # The erf products are the expensive part; evaluate them only on
        # the rows the cutoff keeps.
        rows = np.flatnonzero(near.any(axis=1))
        if rows.size == 0:
            continue
        px = px_all[rows]
        py = py_all[rows]
        bx0, bx1 = x0[None, cols], x1[None, cols]
        by0, by1 = y0[None, cols], y1[None, cols]
        fwd = _rect_gauss_integral(px, py, bx0, bx1, by0, by1, psf.alpha)
        back = _rect_gauss_integral(px, py, bx0, bx1, by0, by1, psf.beta)
        levels = scale[None, cols] * ((fwd + psf.eta * back) / norm)
        matrix[np.ix_(rows, cols)] = np.where(near[rows], levels, 0.0)
    return matrix


def _bucket_points(
    px: np.ndarray, py: np.ndarray, pitch: float
) -> Tuple[dict, Tuple[float, float]]:
    """Uniform-grid spatial index over sample points.

    Returns a mapping ``(ix, iy) → row indices`` plus the grid origin;
    the sparse sweep uses it to restrict the exact distance test to the
    rows that can possibly fall inside a column block's cutoff.
    """
    origin = (float(px.min()), float(py.min()))
    ix = np.floor((px - origin[0]) / pitch).astype(np.int64)
    iy = np.floor((py - origin[1]) / pitch).astype(np.int64)
    order = np.lexsort((iy, ix))
    ix_sorted = ix[order]
    iy_sorted = iy[order]
    change = np.flatnonzero(
        (np.diff(ix_sorted) != 0) | (np.diff(iy_sorted) != 0)
    )
    starts = np.concatenate(([0], change + 1))
    ends = np.concatenate((change + 1, [len(order)]))
    buckets = {
        (int(ix_sorted[s]), int(iy_sorted[s])): order[s:e]
        for s, e in zip(starts, ends)
    }
    return buckets, origin


def _candidate_rows(
    buckets: dict,
    origin: Tuple[float, float],
    pitch: float,
    window: Tuple[float, float, float, float],
) -> np.ndarray:
    """Row indices whose bucket intersects ``(x0, x1, y0, y1)``."""
    wx0, wx1, wy0, wy1 = window
    ix0 = int(math.floor((wx0 - origin[0]) / pitch))
    ix1 = int(math.floor((wx1 - origin[0]) / pitch))
    iy0 = int(math.floor((wy0 - origin[1]) / pitch))
    iy1 = int(math.floor((wy1 - origin[1]) / pitch))
    found = [
        buckets[key]
        for key in (
            (ix, iy)
            for ix in range(ix0, ix1 + 1)
            for iy in range(iy0, iy1 + 1)
        )
        if key in buckets
    ]
    if not found:
        return np.empty(0, dtype=np.intp)
    return np.concatenate(found)


def _exposure_matrix_csr(
    points: np.ndarray,
    shots: Sequence[Shot],
    psf: DoubleGaussianPSF,
    cutoff_factor: float,
    block: int = 64,
    term: str = "full",
):
    """CSR companion of :func:`_exposure_matrix`.

    Runs the same tile-ordered block sweep but emits only the
    within-cutoff entries, so memory scales with the interaction count
    instead of ``n_points × n_shots``.  Every emitted value is computed
    by the exact expression of the dense path on the exact same floats,
    so ``csr.toarray()`` equals the dense matrix bit for bit; a spatial
    bucket index over the sample points additionally prunes the distance
    test itself to near-linear cost (the dense path must evaluate it for
    every point × block pair regardless, since it writes full columns).

    ``term`` selects the emitted PSF component: ``"full"`` is the double
    Gaussian (matching the dense matrix); ``"forward"`` emits only the
    α term ``scale · fwd / (1 + η)`` within ``cutoff_factor · α`` — the
    sharp short-range part the hybrid operator keeps exact.
    """
    from scipy.sparse import csr_matrix

    if term not in ("full", "forward"):
        raise ValueError(f"unknown PSF term {term!r}")
    n_points = len(points)
    n_shots = len(shots)
    if n_points == 0 or n_shots == 0:
        return csr_matrix((n_points, n_shots))
    x0, y0, x1, y1, scale = _shot_bbox_arrays(shots)
    cx = (x0 + x1) / 2.0
    cy = (y0 + y1) / 2.0
    half_diag = np.hypot(x1 - x0, y1 - y0) / 2.0
    sigma = psf.beta if term == "full" else psf.alpha
    reach = cutoff_factor * sigma + half_diag
    px_all = points[:, 0]
    py_all = points[:, 1]
    norm = 1.0 + psf.eta
    # Identical tile order to the dense sweep: blocks stay spatially
    # compact, so each block's candidate window is small.
    tile = max(cutoff_factor * psf.beta, 1e-9)
    order = np.lexsort((cx, np.floor(cx / tile), np.floor(cy / tile)))
    pitch = max(tile, float(reach.max()), 1e-9)
    buckets, origin = _bucket_points(px_all, py_all, pitch)
    rows_out = []
    cols_out = []
    data_out = []
    for j0 in range(0, n_shots, block):
        cols = order[j0 : j0 + block]
        col_reach = reach[cols]
        window = (
            float((cx[cols] - col_reach).min()),
            float((cx[cols] + col_reach).max()),
            float((cy[cols] - col_reach).min()),
            float((cy[cols] + col_reach).max()),
        )
        cand = _candidate_rows(buckets, origin, pitch, window)
        if cand.size == 0:
            continue
        px = px_all[cand][:, None]
        py = py_all[cand][:, None]
        near = (
            np.hypot(px - cx[None, cols], py - cy[None, cols])
            <= col_reach[None, :]
        )
        keep = near.any(axis=1)
        if not keep.any():
            continue
        rows = cand[keep]
        near = near[keep]
        px = px[keep]
        py = py[keep]
        bx0, bx1 = x0[None, cols], x1[None, cols]
        by0, by1 = y0[None, cols], y1[None, cols]
        if term == "full":
            fwd = _rect_gauss_integral(px, py, bx0, bx1, by0, by1, psf.alpha)
            back = _rect_gauss_integral(px, py, bx0, bx1, by0, by1, psf.beta)
            levels = scale[None, cols] * ((fwd + psf.eta * back) / norm)
        else:
            fwd = _rect_gauss_integral(px, py, bx0, bx1, by0, by1, psf.alpha)
            levels = scale[None, cols] * (fwd / norm)
        r_local, c_local = np.nonzero(near)
        rows_out.append(rows[r_local])
        cols_out.append(cols[c_local])
        data_out.append(levels[r_local, c_local])
    if not rows_out:
        return csr_matrix((n_points, n_shots))
    rows_cat = np.concatenate(rows_out)
    cols_cat = np.concatenate(cols_out)
    data_cat = np.concatenate(data_out)
    matrix = csr_matrix(
        (data_cat, (rows_cat, cols_cat)), shape=(n_points, n_shots)
    )
    return matrix


def interaction_matrix_csr(
    points: np.ndarray,
    shots: Sequence[Shot],
    psf: DoubleGaussianPSF,
    cutoff_factor: float = 4.0,
):
    """Sparse (CSR) exposure matrix — bit-identical entries to
    :func:`interaction_matrix_at_points`, only the within-cutoff entries
    stored."""
    return _exposure_matrix_csr(points, shots, psf, cutoff_factor)


def interaction_matrix_at_points(
    points: np.ndarray,
    shots: Sequence[Shot],
    psf: DoubleGaussianPSF,
    cutoff_factor: float = 4.0,
) -> np.ndarray:
    """Exposure matrix K with ``K[p, j]`` = level at point p from shot j
    at unit dose (distance-cutoff pruned like
    :func:`shot_interaction_matrix`)."""
    return _exposure_matrix(points, shots, psf, cutoff_factor)


def shot_interaction_matrix(
    shots: Sequence[Shot],
    psf: DoubleGaussianPSF,
    sample_mode: str = "centroid",
    cutoff_factor: float = 4.0,
) -> np.ndarray:
    """Interaction matrix K with ``K[i, j]`` = exposure at shot i's sample
    point from shot j at unit dose.

    Entries beyond ``cutoff_factor · β`` are treated as the constant far
    tail (effectively zero), keeping the matrix cheap without the sparse
    machinery the originals could not afford either.
    """
    points = shot_sample_points(shots, sample_mode)
    return _exposure_matrix(points, shots, psf, cutoff_factor)


def exposure_at_points(
    points: np.ndarray,
    shots: Sequence[Shot],
    psf: DoubleGaussianPSF,
    matrix_mode: str = "dense",
    cutoff_factor: float = 4.0,
) -> np.ndarray:
    """Absorbed level at arbitrary points from a dosed shot list.

    One exposure-operator application ``K @ doses`` instead of the
    historical per-shot accumulation loop; ``matrix_mode`` selects the
    operator backend (``"sparse"`` keeps memory at the interaction count
    for large point/shot sets, ``"hybrid"`` adds the gridded backscatter
    approximation).  Entries beyond ``cutoff_factor · β`` are treated as
    the far tail (zero), matching the interaction matrices the
    correctors solve against.
    """
    from repro.pec.operator import build_exposure_operator

    doses = np.array([s.dose for s in shots], dtype=float)
    operator = build_exposure_operator(
        points, shots, psf, cutoff_factor=cutoff_factor, mode=matrix_mode
    )
    return operator @ doses


class ProximityCorrector(abc.ABC):
    """Strategy interface for proximity-effect correction."""

    @abc.abstractmethod
    def correct(
        self, shots: Sequence[Shot], psf: DoubleGaussianPSF
    ) -> List[Shot]:
        """Return a corrected shot list for the given exposure PSF."""

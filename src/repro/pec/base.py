"""Shared machinery for proximity correction.

The correctors need the absorbed-energy level at figure sample points as a
function of all shot doses.  For a double-Gaussian PSF and rectangle-like
shots this is analytic: the exposure a rectangle ``[x0,x1]×[y0,y1]`` at
uniform dose 1 contributes to a point is a product of erf differences per
Gaussian term.  Trapezoids are approximated by their bounding rectangle
scaled by the area ratio — exact for rectangles, and within a few percent
for the near-rectangular trapezoids fracturing produces (the accuracy is
measured by the test suite against the FFT exposure engine).
"""

from __future__ import annotations

import abc
import math
from typing import List, Sequence, Tuple

import numpy as np
from scipy.special import erf

from repro.fracture.base import Shot
from repro.geometry.trapezoid import Trapezoid
from repro.physics.psf import DoubleGaussianPSF


def _rect_gauss_integral(
    px: np.ndarray,
    py: np.ndarray,
    x0: float,
    x1: float,
    y0: float,
    y1: float,
    sigma: float,
) -> np.ndarray:
    """∫∫_rect g(p − q) dq for the unit Gaussian ``g`` of range ``sigma``.

    ``g(r) = exp(−r²/σ²) / (π σ²)`` (the PSF term normalization), so the
    integral over the whole plane is 1.
    """
    ax = 0.5 * (erf((x1 - px) / sigma) - erf((x0 - px) / sigma))
    ay = 0.5 * (erf((y1 - py) / sigma) - erf((y0 - py) / sigma))
    return ax * ay


def rectangle_exposure(
    points: np.ndarray,
    rect: Tuple[float, float, float, float],
    psf: DoubleGaussianPSF,
) -> np.ndarray:
    """Absorbed level at ``points`` from a unit-dose rectangle.

    Args:
        points: array of shape (n, 2).
        rect: ``(x0, y0, x1, y1)``.
        psf: the proximity PSF.

    Returns:
        Array of n absorbed-energy levels (large-pad level = 1).
    """
    px = points[:, 0]
    py = points[:, 1]
    x0, y0, x1, y1 = rect
    fwd = _rect_gauss_integral(px, py, x0, x1, y0, y1, psf.alpha)
    back = _rect_gauss_integral(px, py, x0, x1, y0, y1, psf.beta)
    return (fwd + psf.eta * back) / (1.0 + psf.eta)


def trapezoid_exposure(
    points: np.ndarray, trap: Trapezoid, psf: DoubleGaussianPSF
) -> np.ndarray:
    """Absorbed level at ``points`` from a unit-dose trapezoid.

    Bounding-rectangle approximation scaled by the area ratio.
    """
    bbox = trap.bounding_box()
    bbox_area = (bbox[2] - bbox[0]) * (bbox[3] - bbox[1])
    if bbox_area <= 0:
        return np.zeros(len(points))
    scale = trap.area() / bbox_area
    return scale * rectangle_exposure(
        points, (bbox[0], bbox[1], bbox[2], bbox[3]), psf
    )


def shot_sample_points(
    shots: Sequence[Shot], mode: str = "centroid"
) -> np.ndarray:
    """Representative sample point for each shot.

    ``mode="centroid"`` uses the area centroid; ``mode="center"`` the
    bounding-box centre (the cheaper choice ablated in F2).
    """
    points = np.empty((len(shots), 2))
    for i, shot in enumerate(shots):
        if mode == "centroid":
            c = shot.trapezoid.centroid()
            points[i] = (c.x, c.y)
        elif mode == "center":
            bbox = shot.trapezoid.bounding_box()
            points[i] = ((bbox[0] + bbox[2]) / 2.0, (bbox[1] + bbox[3]) / 2.0)
        else:
            raise ValueError(f"unknown sample mode {mode!r}")
    return points


def edge_sample_points(
    shots: Sequence[Shot], inset_fraction: float = 0.02
) -> Tuple[np.ndarray, np.ndarray]:
    """Edge-midpoint sample points: two per shot (left and right sides).

    Edge targeting pins the absorbed level at the printed boundary rather
    than the figure interior, which removes the uniform CD offset
    interior targeting leaves (see EXPERIMENTS.md, F1).  Points are inset
    slightly so they sample the figure side of the edge.

    Returns:
        ``(points, owners)`` — points of shape (2n, 2) and the owning
        shot index of each point.
    """
    n = len(shots)
    points = np.empty((2 * n, 2))
    owners = np.empty(2 * n, dtype=int)
    for i, shot in enumerate(shots):
        t = shot.trapezoid
        y_mid = 0.5 * (t.y_bottom + t.y_top)
        left = 0.5 * (t.x_bottom_left + t.x_top_left)
        right = 0.5 * (t.x_bottom_right + t.x_top_right)
        inset = inset_fraction * max(right - left, 1e-9)
        points[2 * i] = (left + inset, y_mid)
        points[2 * i + 1] = (right - inset, y_mid)
        owners[2 * i] = i
        owners[2 * i + 1] = i
    return points, owners


def interaction_matrix_at_points(
    points: np.ndarray,
    shots: Sequence[Shot],
    psf: DoubleGaussianPSF,
    cutoff_factor: float = 4.0,
) -> np.ndarray:
    """Exposure matrix K with ``K[p, j]`` = level at point p from shot j
    at unit dose (distance-cutoff pruned like
    :func:`shot_interaction_matrix`)."""
    n_points = len(points)
    matrix = np.zeros((n_points, len(shots)))
    cutoff = cutoff_factor * psf.beta
    for j, shot in enumerate(shots):
        bbox = shot.trapezoid.bounding_box()
        cx = (bbox[0] + bbox[2]) / 2.0
        cy = (bbox[1] + bbox[3]) / 2.0
        half_diag = math.hypot(bbox[2] - bbox[0], bbox[3] - bbox[1]) / 2.0
        distances = np.hypot(points[:, 0] - cx, points[:, 1] - cy)
        near = distances <= cutoff + half_diag
        if near.any():
            matrix[near, j] = trapezoid_exposure(points[near], shot.trapezoid, psf)
    return matrix


def shot_interaction_matrix(
    shots: Sequence[Shot],
    psf: DoubleGaussianPSF,
    sample_mode: str = "centroid",
    cutoff_factor: float = 4.0,
) -> np.ndarray:
    """Interaction matrix K with ``K[i, j]`` = exposure at shot i's sample
    point from shot j at unit dose.

    Entries beyond ``cutoff_factor · β`` are treated as the constant far
    tail (effectively zero), keeping the matrix cheap without the sparse
    machinery the originals could not afford either.
    """
    n = len(shots)
    points = shot_sample_points(shots, sample_mode)
    matrix = np.zeros((n, n))
    cutoff = cutoff_factor * psf.beta
    centers = points
    for j, shot in enumerate(shots):
        bbox = shot.trapezoid.bounding_box()
        cx = (bbox[0] + bbox[2]) / 2.0
        cy = (bbox[1] + bbox[3]) / 2.0
        half_diag = math.hypot(bbox[2] - bbox[0], bbox[3] - bbox[1]) / 2.0
        distances = np.hypot(centers[:, 0] - cx, centers[:, 1] - cy)
        near = distances <= cutoff + half_diag
        if near.any():
            matrix[near, j] = trapezoid_exposure(
                points[near], shot.trapezoid, psf
            )
    return matrix


def exposure_at_points(
    points: np.ndarray, shots: Sequence[Shot], psf: DoubleGaussianPSF
) -> np.ndarray:
    """Absorbed level at arbitrary points from a dosed shot list."""
    total = np.zeros(len(points))
    for shot in shots:
        total += shot.dose * trapezoid_exposure(points, shot.trapezoid, psf)
    return total


class ProximityCorrector(abc.ABC):
    """Strategy interface for proximity-effect correction."""

    @abc.abstractmethod
    def correct(
        self, shots: Sequence[Shot], psf: DoubleGaussianPSF
    ) -> List[Shot]:
        """Return a corrected shot list for the given exposure PSF."""

"""Self-consistent iterative dose correction.

The workhorse scheme: iterate

    d_i ← d_i · E_target / E_i(d)

where ``E_i`` is the absorbed level at shot i's sample point under the
current doses.  Because the interaction matrix is strongly diagonally
dominant for shots larger than α, the fixed point converges geometrically;
experiment F2 plots the trace.

``E_target`` defaults to the large-pad level 1.0, making an infinite dense
array a fixed point at dose 1 and boosting isolated features by up to
(1 + η) — the textbook behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.fracture.base import Shot
from repro.pec.base import (
    ProximityCorrector,
    edge_sample_points,
    shot_sample_points,
)
from repro.pec.operator import build_exposure_operator, validate_matrix_mode
from repro.physics.psf import DoubleGaussianPSF


@dataclass
class ConvergenceTrace:
    """Convergence record of an iterative correction.

    Attributes:
        max_errors: max |E_i − E_target| / E_target per iteration.
        rms_errors: RMS relative exposure error per iteration.
        iterations: iterations actually executed.
        converged: True if the tolerance was met.
    """

    max_errors: List[float] = field(default_factory=list)
    rms_errors: List[float] = field(default_factory=list)
    converged: bool = False

    @property
    def iterations(self) -> int:
        return len(self.max_errors)


class IterativeDoseCorrector(ProximityCorrector):
    """Self-consistent dose assignment.

    ``last_trace`` is run bookkeeping, not configuration — the shard
    cache must hash a corrector that has already run identically to a
    fresh one (see :mod:`repro.core.cache`).

    Args:
        target: desired absorbed level at every shot (1.0 = large pad).
        max_iterations: iteration cap.
        tolerance: stop when the max relative exposure error drops below
            this value.
        relaxation: update damping in (0, 1]; 1.0 is the plain scheme.
        sample_mode: ``"centroid"`` / ``"center"`` sample the figure
            interior and drive it to ``target``; ``"edge"`` samples the
            side-edge midpoints and drives them to ``target/2`` (the
            print threshold at the boundary), which removes the uniform
            CD offset interior targeting leaves.
        dose_limits: clip corrected doses to ``(min, max)`` — hardware
            dose range of the writer.
        matrix_mode: exposure-operator backend — ``"dense"`` (the seed
            behaviour, bit-identical), ``"sparse"`` (CSR, same entries,
            memory scales with the interaction count) or ``"hybrid"``
            (exact α term + FFT backscatter grid); see
            :mod:`repro.pec.operator`.
        grid_cell: hybrid backscatter grid cell [µm] (default ``β/4``);
            ignored by the exact backends.
    """

    CACHE_VOLATILE = frozenset({"last_trace"})

    def __init__(
        self,
        target: float = 1.0,
        max_iterations: int = 30,
        tolerance: float = 1e-4,
        relaxation: float = 1.0,
        sample_mode: str = "centroid",
        dose_limits: tuple = (0.1, 8.0),
        matrix_mode: str = "dense",
        grid_cell: Optional[float] = None,
    ) -> None:
        if target <= 0:
            raise ValueError("target level must be positive")
        if not (0.0 < relaxation <= 1.0):
            raise ValueError("relaxation must be in (0, 1]")
        self.target = target
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.relaxation = relaxation
        self.sample_mode = sample_mode
        self.dose_limits = dose_limits
        self.matrix_mode = validate_matrix_mode(matrix_mode)
        self.grid_cell = grid_cell
        #: Trace of the most recent :meth:`correct` call.
        self.last_trace: Optional[ConvergenceTrace] = None

    def correct(
        self, shots: Sequence[Shot], psf: DoubleGaussianPSF
    ) -> List[Shot]:
        """Return dose-corrected copies of ``shots``."""
        if not shots:
            self.last_trace = ConvergenceTrace(converged=True)
            return []
        if self.sample_mode == "edge":
            points, owners = edge_sample_points(shots)
            target = self.target * 0.5
        else:
            points = shot_sample_points(shots, self.sample_mode)
            owners = np.arange(len(shots))
            target = self.target
        operator = build_exposure_operator(
            points,
            shots,
            psf,
            mode=self.matrix_mode,
            grid_cell=self.grid_cell,
        )
        n = len(shots)
        doses = np.array([s.dose for s in shots], dtype=float)
        trace = ConvergenceTrace()
        lo, hi = self.dose_limits
        for _ in range(self.max_iterations):
            exposure = operator @ doses
            # Collapse per-point exposure to a per-shot mean.
            sums = np.bincount(owners, weights=exposure, minlength=n)
            counts = np.bincount(owners, minlength=n)
            per_shot = sums / np.maximum(counts, 1)
            error = np.abs(per_shot - target) / target
            trace.max_errors.append(float(error.max()))
            trace.rms_errors.append(float(np.sqrt(np.mean(error**2))))
            if trace.max_errors[-1] < self.tolerance:
                trace.converged = True
                break
            with np.errstate(divide="ignore", invalid="ignore"):
                update = np.where(per_shot > 0, target / per_shot, 1.0)
            doses = doses * update**self.relaxation
            np.clip(doses, lo, hi, out=doses)
        self.last_trace = trace
        return [s.with_dose(float(d)) for s, d in zip(shots, doses)]

"""Rectangle fracture with staircase approximation of slanted edges.

Raster-scan pattern generators address a fixed grid, so their native figure
is the axis-aligned rectangle.  Rectilinear input fractures exactly; slanted
or curved edges are approximated by a staircase at the machine address unit.
This is precisely the conversion step the EBES data path performed, and the
address-unit/figure-count trade-off it creates is part of experiment T2.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.fracture.base import Fracturer
from repro.fracture.trapezoidal import TrapezoidFracturer
from repro.geometry.polygon import Polygon
from repro.geometry.scanline import DEFAULT_GRID
from repro.geometry.trapezoid import Trapezoid


class RectangleFracturer(Fracturer):
    """Fracture polygons into axis-aligned rectangles.

    Args:
        address_unit: staircase step for non-rectangular trapezoids (the
            machine's address structure, in layout units).
        grid: database unit of the underlying boolean sweep.
        mode: ``"midpoint"`` places each stair tread at the slant edge's
            span midpoint (area-balanced); ``"inner"`` keeps treads inside
            the figure; ``"outer"`` keeps the figure inside the treads.
    """

    _MODES = ("midpoint", "inner", "outer")

    def __init__(
        self,
        address_unit: float = 0.25,
        grid: float = DEFAULT_GRID,
        mode: str = "midpoint",
    ) -> None:
        if address_unit <= 0:
            raise ValueError("address_unit must be positive")
        if mode not in self._MODES:
            raise ValueError(f"mode must be one of {self._MODES}")
        self.address_unit = address_unit
        self.grid = grid
        self.mode = mode
        self._trapezoids = TrapezoidFracturer(grid=grid)

    def fracture(self, polygons: Iterable[Polygon]) -> List[Trapezoid]:
        """Rectangle cover; exact for rectilinear input."""
        rects: List[Trapezoid] = []
        base = self._trapezoids.fracture(polygons)
        self.last_fallbacks = self._trapezoids.last_fallbacks
        for trap in base:
            if trap.is_rectangle(tol=self.grid / 2.0):
                rects.append(trap)
            else:
                rects.extend(self._staircase(trap))
        return rects

    def _staircase(self, trap: Trapezoid) -> List[Trapezoid]:
        """Slice a slanted trapezoid into address-unit-high rectangles."""
        height = trap.height
        steps = max(1, int(round(height / self.address_unit)))
        out: List[Trapezoid] = []
        for i in range(steps):
            y0 = trap.y_bottom + height * i / steps
            y1 = trap.y_bottom + height * (i + 1) / steps
            if self.mode == "midpoint":
                y_eval_l = y_eval_r = (y0 + y1) / 2.0
            elif self.mode == "inner":
                y_eval_l, y_eval_r = self._inner_eval_ys(trap, y0, y1)
            else:  # outer
                y_eval_l, y_eval_r = self._outer_eval_ys(trap, y0, y1)
            left = self._x_left(trap, y_eval_l)
            right = self._x_right(trap, y_eval_r)
            if right - left <= 0:
                continue
            out.append(Trapezoid(y0, y1, left, right, left, right))
        return out

    def _inner_eval_ys(self, trap: Trapezoid, y0: float, y1: float):
        """Evaluation heights that keep the tread inside the figure."""
        left_y = y1 if trap.x_top_left > trap.x_bottom_left else y0
        right_y = y1 if trap.x_top_right < trap.x_bottom_right else y0
        return left_y, right_y

    def _outer_eval_ys(self, trap: Trapezoid, y0: float, y1: float):
        """Evaluation heights that keep the figure inside the tread."""
        left_y = y0 if trap.x_top_left > trap.x_bottom_left else y1
        right_y = y0 if trap.x_top_right < trap.x_bottom_right else y1
        return left_y, right_y

    @staticmethod
    def _x_left(trap: Trapezoid, y: float) -> float:
        t = (y - trap.y_bottom) / trap.height
        return trap.x_bottom_left + t * (trap.x_top_left - trap.x_bottom_left)

    @staticmethod
    def _x_right(trap: Trapezoid, y: float) -> float:
        t = (y - trap.y_bottom) / trap.height
        return trap.x_bottom_right + t * (trap.x_top_right - trap.x_bottom_right)

"""Trapezoidal fracture via the scanline boolean engine.

The union sweep of the geometry kernel already produces a disjoint
horizontal-trapezoid decomposition; this fracturer exposes it as a strategy
with the machine-relevant knobs (figure height limit, vertical merging,
kernel selection).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.fracture.base import Fracturer
from repro.geometry.boolean import boolean_trapezoids
from repro.geometry.polygon import Polygon
from repro.geometry.scanline import DEFAULT_GRID
from repro.geometry.scanline_fast import KernelFallbacks
from repro.geometry.trapezoid import Trapezoid


class TrapezoidFracturer(Fracturer):
    """Fracture polygons into horizontal trapezoids.

    Args:
        grid: database unit for the underlying boolean sweep.
        max_height: optional figure height cap; taller trapezoids are
            sliced horizontally (deflection amplifiers of early machines
            limited figure height to the minor scan span).
        merge: vertically merge compatible trapezoids before the height
            cap is applied.  Disabling this reproduces the raw slab
            fragmentation for the T2 ablation.
        kernel: scanline kernel — ``"fast"`` (vectorized exact-integer
            engine, the default) or ``"exact"`` (the Fraction reference
            engine).  Output is bit-identical either way; the knob
            exists for oracle testing and benchmarking.
    """

    def __init__(
        self,
        grid: float = DEFAULT_GRID,
        max_height: Optional[float] = None,
        merge: bool = True,
        kernel: str = "fast",
    ) -> None:
        if max_height is not None and max_height <= 0:
            raise ValueError("max_height must be positive")
        if kernel not in ("exact", "fast"):
            raise ValueError(
                f"kernel must be 'exact' or 'fast', got {kernel!r}"
            )
        self.grid = grid
        self.max_height = max_height
        self.merge = merge
        self.kernel = kernel

    def fracture(self, polygons: Iterable[Polygon]) -> List[Trapezoid]:
        """Disjoint trapezoid cover of the union of ``polygons``."""
        fallbacks = KernelFallbacks()
        traps = boolean_trapezoids(
            polygons, [], "or",
            grid=self.grid, merge=self.merge, kernel=self.kernel,
            fallbacks=fallbacks,
        )
        self.last_fallbacks = fallbacks
        if self.max_height is None:
            return traps
        return slice_to_height(traps, self.max_height)


def slice_to_height(
    traps: Iterable[Trapezoid], max_height: float
) -> List[Trapezoid]:
    """Slice trapezoids horizontally so none exceeds ``max_height``.

    Slices are equal-height so no residual sliver row is produced.
    Slice boundaries are computed by index (``y_bottom + i * height /
    pieces``) and the side-edge x values are interpolated directly from
    the parent trapezoid, so repeated float addition cannot drift: the
    slices tile the parent exactly (each shares its boundary
    coordinates with its neighbour, the first/last reproduce the parent
    edges bit-for-bit).
    """
    if max_height <= 0:
        raise ValueError("max_height must be positive")
    out: List[Trapezoid] = []
    for trap in traps:
        height = trap.height
        if height <= max_height:
            out.append(trap)
            continue
        pieces = int(-(-height // max_height))  # ceil division
        y0 = trap.y_bottom
        xl0, xr0 = trap.x_bottom_left, trap.x_bottom_right
        dxl = trap.x_top_left - trap.x_bottom_left
        dxr = trap.x_top_right - trap.x_bottom_right
        prev_y, prev_xl, prev_xr = y0, xl0, xr0
        for i in range(1, pieces):
            y = y0 + i * height / pieces
            t = (y - y0) / height
            xl = xl0 + t * dxl
            xr = xr0 + t * dxr
            out.append(Trapezoid(prev_y, y, prev_xl, prev_xr, xl, xr))
            prev_y, prev_xl, prev_xr = y, xl, xr
        out.append(
            Trapezoid(
                prev_y, trap.y_top, prev_xl, prev_xr,
                trap.x_top_left, trap.x_top_right,
            )
        )
    return out

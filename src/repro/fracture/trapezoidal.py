"""Trapezoidal fracture via the scanline boolean engine.

The union sweep of the geometry kernel already produces a disjoint
horizontal-trapezoid decomposition; this fracturer exposes it as a strategy
with the machine-relevant knobs (figure height limit, vertical merging).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.fracture.base import Fracturer
from repro.geometry.boolean import boolean_trapezoids
from repro.geometry.polygon import Polygon
from repro.geometry.scanline import DEFAULT_GRID
from repro.geometry.trapezoid import Trapezoid


class TrapezoidFracturer(Fracturer):
    """Fracture polygons into horizontal trapezoids.

    Args:
        grid: database unit for the underlying boolean sweep.
        max_height: optional figure height cap; taller trapezoids are
            sliced horizontally (deflection amplifiers of early machines
            limited figure height to the minor scan span).
        merge: vertically merge compatible trapezoids before the height
            cap is applied.  Disabling this reproduces the raw slab
            fragmentation for the T2 ablation.
    """

    def __init__(
        self,
        grid: float = DEFAULT_GRID,
        max_height: Optional[float] = None,
        merge: bool = True,
    ) -> None:
        if max_height is not None and max_height <= 0:
            raise ValueError("max_height must be positive")
        self.grid = grid
        self.max_height = max_height
        self.merge = merge

    def fracture(self, polygons: Iterable[Polygon]) -> List[Trapezoid]:
        """Disjoint trapezoid cover of the union of ``polygons``."""
        traps = boolean_trapezoids(
            polygons, [], "or", grid=self.grid, merge=self.merge
        )
        if self.max_height is None:
            return traps
        return slice_to_height(traps, self.max_height)


def slice_to_height(
    traps: Iterable[Trapezoid], max_height: float
) -> List[Trapezoid]:
    """Slice trapezoids horizontally so none exceeds ``max_height``.

    Slices are equal-height so no residual sliver row is produced.
    """
    if max_height <= 0:
        raise ValueError("max_height must be positive")
    out: List[Trapezoid] = []
    for trap in traps:
        height = trap.height
        if height <= max_height:
            out.append(trap)
            continue
        pieces = int(-(-height // max_height))  # ceil division
        step = height / pieces
        current = trap
        for _ in range(pieces - 1):
            lower, current = current.split_at_y(current.y_bottom + step)
            out.append(lower)
        out.append(current)
    return out

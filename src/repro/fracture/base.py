"""Fracturer interface and the Shot record."""

from __future__ import annotations

import abc
from typing import Iterable, List, Sequence

from repro.geometry.polygon import Polygon
from repro.geometry.scanline_fast import KernelFallbacks
from repro.geometry.trapezoid import Trapezoid


class Shot:
    """One machine figure with its dose assignment.

    Attributes:
        trapezoid: the figure geometry (rectangles are trapezoids too).
        dose: relative dose factor (1.0 = base dose).  Proximity-effect
            correction rewrites this field.
    """

    __slots__ = ("trapezoid", "dose")

    def __init__(self, trapezoid: Trapezoid, dose: float = 1.0) -> None:
        if dose < 0:
            raise ValueError("dose must be non-negative")
        self.trapezoid = trapezoid
        self.dose = float(dose)

    def area(self) -> float:
        """Figure area."""
        return self.trapezoid.area()

    def with_dose(self, dose: float) -> "Shot":
        """Copy with a new dose factor."""
        return Shot(self.trapezoid, dose)

    def __repr__(self) -> str:
        return f"Shot({self.trapezoid!r}, dose={self.dose:g})"


class Fracturer(abc.ABC):
    """Strategy interface: polygon set → list of machine figures.

    After every :meth:`fracture` call, :attr:`last_fallbacks` holds the
    fast-kernel degradation counters of that call (all zeros for
    fracturers that do not use the scanline kernel, or when the fast
    path handled everything).  The attribute is observability only: it
    is listed in :data:`CACHE_VOLATILE` so cache fingerprints ignore it
    — identical inputs hash identically whether or not the previous
    call degraded.
    """

    #: Attributes excluded from cache fingerprints (mutable run-state,
    #: not configuration).
    CACHE_VOLATILE = frozenset({"last_fallbacks"})

    #: Fallback counters of the most recent :meth:`fracture` call.
    last_fallbacks: KernelFallbacks = KernelFallbacks()

    @abc.abstractmethod
    def fracture(self, polygons: Iterable[Polygon]) -> List[Trapezoid]:
        """Decompose ``polygons`` into disjoint machine figures.

        Implementations must return figures that are disjoint and whose
        union equals (or, for grid-approximating fracturers, approximates)
        the union of the input polygons.
        """

    def fracture_to_shots(
        self, polygons: Iterable[Polygon], dose: float = 1.0
    ) -> List[Shot]:
        """Fracture and wrap each figure in a :class:`Shot`."""
        return [Shot(t, dose) for t in self.fracture(polygons)]


def total_area(figures: Sequence[Trapezoid]) -> float:
    """Sum of figure areas (disjointness makes this the covered area)."""
    return sum(t.area() for t in figures)

"""Variable-shaped-beam (VSB) shot decomposition.

A shaped-beam machine flashes rectangular (or simple trapezoidal) apertures
up to a maximum shot size; larger figures must be tiled into multiple
flashes.  Naive tiling leaves *slivers* — final rows/columns much narrower
than the beam can reliably expose — so production fracturers re-balance the
tile pitch.  Both behaviours are implemented here so the sliver-avoidance
ablation of experiment T2 can toggle them.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.fracture.base import Fracturer, Shot
from repro.fracture.trapezoidal import TrapezoidFracturer, slice_to_height
from repro.geometry.polygon import Polygon
from repro.geometry.scanline import DEFAULT_GRID
from repro.geometry.trapezoid import Trapezoid


def _split_spans(extent: float, limit: float, balanced: bool) -> List[float]:
    """Split ``extent`` into spans each at most ``limit``.

    With ``balanced=True`` the spans are equalized; otherwise full-size
    spans are emitted greedily with one remainder (the sliver generator).
    """
    if extent <= limit:
        return [extent]
    count = int(-(-extent // limit))  # ceil
    if balanced:
        return [extent / count] * count
    spans = [limit] * (count - 1)
    spans.append(extent - limit * (count - 1))
    return spans


class ShotFracturer(Fracturer):
    """Fracture polygons into VSB shots bounded by ``max_shot``.

    Args:
        max_shot: maximum shot edge length (both axes), layout units.
        grid: database unit for the boolean sweep.
        avoid_slivers: equalize tile pitches so no tile is narrower than
            ``extent / ceil(extent / max_shot)``; disabling reproduces
            greedy tiling with trailing slivers.
        allow_trapezoids: if True, slanted figures are shot directly when
            within size limits (machines with trapezoid apertures);
            otherwise they are staircased at ``max_shot/8`` resolution.
        kernel: scanline kernel for the underlying boolean sweep
            (``"fast"`` or ``"exact"``; bit-identical output).
    """

    def __init__(
        self,
        max_shot: float = 2.0,
        grid: float = DEFAULT_GRID,
        avoid_slivers: bool = True,
        allow_trapezoids: bool = True,
        kernel: str = "fast",
    ) -> None:
        if max_shot <= 0:
            raise ValueError("max_shot must be positive")
        self.max_shot = max_shot
        self.grid = grid
        self.avoid_slivers = avoid_slivers
        self.allow_trapezoids = allow_trapezoids
        self.kernel = kernel
        self._trapezoids = TrapezoidFracturer(grid=grid, kernel=kernel)

    def fracture(self, polygons: Iterable[Polygon]) -> List[Trapezoid]:
        """Shot geometry list (doses attached by :meth:`fracture_to_shots`)."""
        shots: List[Trapezoid] = []
        base = self._trapezoids.fracture(polygons)
        self.last_fallbacks = self._trapezoids.last_fallbacks
        for trap in base:
            if trap.is_rectangle(tol=self.grid / 2.0):
                shots.extend(self._tile_rectangle(trap))
            elif self.allow_trapezoids:
                shots.extend(self._tile_trapezoid(trap))
            else:
                from repro.fracture.rectangles import RectangleFracturer

                stair = RectangleFracturer(
                    address_unit=self.max_shot / 8.0, grid=self.grid
                )
                for rect in stair._staircase(trap):
                    shots.extend(self._tile_rectangle(rect))
        return shots

    def _tile_rectangle(self, rect: Trapezoid) -> List[Trapezoid]:
        """Tile an axis-aligned rectangle into shots."""
        x0 = rect.x_bottom_left
        y0 = rect.y_bottom
        widths = _split_spans(
            rect.x_bottom_right - x0, self.max_shot, self.avoid_slivers
        )
        heights = _split_spans(rect.height, self.max_shot, self.avoid_slivers)
        tiles: List[Trapezoid] = []
        y = y0
        for h in heights:
            x = x0
            for w in widths:
                tiles.append(Trapezoid(y, y + h, x, x + w, x, x + w))
                x += w
            y += h
        return tiles

    def _tile_trapezoid(self, trap: Trapezoid) -> List[Trapezoid]:
        """Tile a slanted trapezoid: height slices, then per-slice x tiling.

        Each height slice is itself a trapezoid; its parallel edges are
        tiled with vertical cuts.  Cutting a trapezoid vertically yields
        trapezoids again only if cuts are straight vertical lines, which is
        what shaped apertures produce.
        """
        slices = slice_to_height([trap], self.max_shot)
        tiles: List[Trapezoid] = []
        for piece in slices:
            extent = max(
                piece.x_bottom_right - piece.x_bottom_left,
                piece.x_top_right - piece.x_top_left,
            )
            if extent <= self.max_shot:
                if not piece.is_degenerate(tol=self.grid * self.grid):
                    tiles.append(piece)
                continue
            count = int(-(-extent // self.max_shot))
            for i in range(count):
                f0 = i / count
                f1 = (i + 1) / count
                xb0 = piece.x_bottom_left + f0 * (
                    piece.x_bottom_right - piece.x_bottom_left
                )
                xb1 = piece.x_bottom_left + f1 * (
                    piece.x_bottom_right - piece.x_bottom_left
                )
                xt0 = piece.x_top_left + f0 * (piece.x_top_right - piece.x_top_left)
                xt1 = piece.x_top_left + f1 * (piece.x_top_right - piece.x_top_left)
                tile = Trapezoid(
                    piece.y_bottom, piece.y_top, xb0, xb1, xt0, xt1
                )
                if not tile.is_degenerate(tol=self.grid * self.grid):
                    tiles.append(tile)
        return tiles

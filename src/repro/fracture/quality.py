"""Fracture-quality metrics (experiment T2's observables)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.geometry.trapezoid import Trapezoid


@dataclass
class FractureReport:
    """Quality summary of a fractured figure list.

    Attributes:
        figure_count: number of machine figures.
        total_area: summed figure area (µm²).
        rectangle_fraction: fraction of figures that are rectangles.
        sliver_count: figures whose minimum dimension is below the
            sliver threshold used during analysis.
        sliver_fraction: ``sliver_count / figure_count``.
        min_dimension: smallest width/height over all figures.
        mean_area: average figure area.
        area_error: |total_area − reference_area| / reference_area, when a
            reference was supplied (else 0).
        rectangle_count: number of figures that are rectangles (the
            integer behind ``rectangle_fraction``, kept so per-shard
            reports merge without float round-trips).
    """

    figure_count: int
    total_area: float
    rectangle_fraction: float
    sliver_count: int
    sliver_fraction: float
    min_dimension: float
    mean_area: float
    area_error: float
    rectangle_count: int = 0

    def row(self) -> str:
        """One formatted table row (see :mod:`repro.analysis.tables`)."""
        return (
            f"{self.figure_count:8d} {self.total_area:12.2f} "
            f"{self.rectangle_fraction:8.2%} {self.sliver_fraction:8.2%} "
            f"{self.min_dimension:10.4f} {self.area_error:10.3e}"
        )


def analyze_figures(
    figures: Sequence[Trapezoid],
    sliver_threshold: float = 0.1,
    reference_area: float | None = None,
) -> FractureReport:
    """Analyze a fractured figure list.

    Args:
        figures: disjoint machine figures.
        sliver_threshold: figures with any dimension below this count as
            slivers (layout units).
        reference_area: expected covered area for the area-error metric.
    """
    count = len(figures)
    if count == 0:
        return FractureReport(0, 0.0, 0.0, 0, 0.0, 0.0, 0.0, 0.0)
    total = 0.0
    rect_count = 0
    sliver_count = 0
    min_dim = float("inf")
    for fig in figures:
        total += fig.area()
        if fig.is_rectangle(tol=1e-9):
            rect_count += 1
        dim = min(fig.min_width(), fig.height)
        # A triangle tip legitimately has zero min edge width; measure the
        # mean width instead so only true slivers are flagged.
        mean_width = fig.area() / fig.height if fig.height > 0 else 0.0
        dim = max(dim, min(mean_width, fig.height))
        min_dim = min(min_dim, dim)
        if dim < sliver_threshold:
            sliver_count += 1
    error = 0.0
    if reference_area is not None and reference_area > 0:
        error = abs(total - reference_area) / reference_area
    return FractureReport(
        figure_count=count,
        total_area=total,
        rectangle_fraction=rect_count / count,
        sliver_count=sliver_count,
        sliver_fraction=sliver_count / count,
        min_dimension=min_dim,
        mean_area=total / count,
        area_error=error,
        rectangle_count=rect_count,
    )


def merge_reports(
    reports: Sequence[FractureReport],
    reference_area: Optional[float] = None,
) -> FractureReport:
    """Combine per-shard fracture reports into one whole-layout report.

    Counts and areas add; fractions and the mean are recomputed from the
    combined counts; the minimum dimension is the minimum over shards.
    ``area_error`` is recomputed against ``reference_area`` when given
    (per-shard errors cannot be combined without their references).
    """
    populated = [r for r in reports if r.figure_count > 0]
    if not populated:
        return FractureReport(0, 0.0, 0.0, 0, 0.0, 0.0, 0.0, 0.0)
    count = sum(r.figure_count for r in populated)
    total = sum(r.total_area for r in populated)
    # Reports from analyze_figures carry the integer count; fall back to
    # the fraction for hand-built reports that left it defaulted.
    rect_count = sum(
        r.rectangle_count
        if r.rectangle_count
        else round(r.rectangle_fraction * r.figure_count)
        for r in populated
    )
    sliver_count = sum(r.sliver_count for r in populated)
    error = 0.0
    if reference_area is not None and reference_area > 0:
        error = abs(total - reference_area) / reference_area
    return FractureReport(
        figure_count=count,
        total_area=total,
        rectangle_fraction=rect_count / count,
        sliver_count=sliver_count,
        sliver_fraction=sliver_count / count,
        min_dimension=min(r.min_dimension for r in populated),
        mean_area=total / count,
        area_error=error,
        rectangle_count=rect_count,
    )

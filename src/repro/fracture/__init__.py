"""Fracturing: turning polygons into machine-writable figures.

Pattern generators cannot write arbitrary polygons; their deflection
hardware exposes a small figure vocabulary.  This package converts polygon
sets into three such vocabularies:

* :class:`~repro.fracture.trapezoidal.TrapezoidFracturer` — horizontal
  trapezoids, the native figure of EBES/MEBES-class raster machines.
* :class:`~repro.fracture.rectangles.RectangleFracturer` — axis-aligned
  rectangles, staircase-approximating slanted edges to the address grid.
* :class:`~repro.fracture.shots.ShotFracturer` — variable-shaped-beam
  (VSB) shots bounded by a maximum shot size, with sliver avoidance.

:mod:`~repro.fracture.quality` measures figure count, sliver fraction and
area fidelity — the fracture-quality axes of experiment T2.
"""

from repro.fracture.base import Fracturer, Shot
from repro.fracture.trapezoidal import TrapezoidFracturer
from repro.fracture.rectangles import RectangleFracturer
from repro.fracture.shots import ShotFracturer
from repro.fracture.quality import FractureReport, analyze_figures

__all__ = [
    "Fracturer",
    "Shot",
    "TrapezoidFracturer",
    "RectangleFracturer",
    "ShotFracturer",
    "FractureReport",
    "analyze_figures",
]

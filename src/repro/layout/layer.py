"""Layer identification in the GDSII (layer, datatype) convention."""

from __future__ import annotations

from typing import Tuple


class Layer:
    """A mask layer, identified by GDSII layer and datatype numbers.

    >>> metal1 = Layer(8, 0, name="metal1")
    >>> metal1
    Layer(8/0 'metal1')
    >>> Layer(8, 0) == metal1
    True
    """

    __slots__ = ("number", "datatype", "name")

    def __init__(self, number: int, datatype: int = 0, name: str = "") -> None:
        if not (0 <= number <= 32767):
            raise ValueError(f"layer number out of range: {number}")
        if not (0 <= datatype <= 32767):
            raise ValueError(f"datatype out of range: {datatype}")
        self.number = int(number)
        self.datatype = int(datatype)
        self.name = name

    @classmethod
    def of(cls, value: "Layer | int | Tuple[int, int]") -> "Layer":
        """Coerce an int, pair, or Layer into a Layer."""
        if isinstance(value, Layer):
            return value
        if isinstance(value, int):
            return cls(value)
        number, datatype = value
        return cls(number, datatype)

    def key(self) -> Tuple[int, int]:
        """``(number, datatype)`` tuple — the identity of the layer."""
        return (self.number, self.datatype)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Layer):
            return self.key() == other.key()
        if isinstance(other, tuple):
            return self.key() == other
        if isinstance(other, int):
            return self.number == other and self.datatype == 0
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.key())

    def __lt__(self, other: "Layer") -> bool:
        return self.key() < other.key()

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"Layer({self.number}/{self.datatype}{label})"


#: Conventional default layer for single-layer work.
DEFAULT_LAYER = Layer(0, 0, name="pattern")

"""Synthetic workload generators for the reconstructed evaluation.

Each generator returns a :class:`~repro.layout.library.Library` whose top
cell holds a pattern family the 1979-era throughput and fidelity studies
sweep over:

* :func:`grating` — line/space gratings (density and CD test vehicle).
* :func:`contact_array` — square contact/via arrays (shot-count stress).
* :func:`random_logic` — pseudo-random Manhattan wiring (IC metal proxy).
* :func:`memory_array` — deep hierarchy via nested AREFs (data-volume test).
* :func:`fresnel_zone_plate` — curved figures that stress the fracturer.
* :func:`serpentine` — one long meander wire (vector-writer friendly).
* :func:`density_ladder` — pads at graded pattern density (PEC vehicle).
* :func:`isolated_line_with_pad` — the classic proximity test structure.
* :func:`checkerboard` — worst-case corner-adjacency for reassembly.

All dimensions are micrometres.  Generators are deterministic given their
``seed``.
"""

from __future__ import annotations

import math
import random
from typing import List, Tuple

from repro.geometry.polygon import Polygon
from repro.layout.cell import Cell
from repro.layout.layer import DEFAULT_LAYER, Layer
from repro.layout.library import Library


def _library(top: Cell, name: str) -> Library:
    lib = Library(name)
    lib.add(top)
    return lib


def grating(
    pitch: float = 2.0,
    duty: float = 0.5,
    lines: int = 50,
    length: float = 100.0,
    layer: Layer = DEFAULT_LAYER,
) -> Library:
    """Line/space grating of ``lines`` vertical lines.

    Args:
        pitch: line-to-line period.
        duty: linewidth / pitch, in (0, 1).
        lines: number of lines.
        length: line length.
    """
    if not (0.0 < duty < 1.0):
        raise ValueError("duty cycle must be in (0, 1)")
    if pitch <= 0 or lines < 1 or length <= 0:
        raise ValueError("grating dimensions must be positive")
    top = Cell("GRATING")
    width = pitch * duty
    for i in range(lines):
        x = i * pitch
        top.add_rectangle(x, 0.0, x + width, length, layer)
    return _library(top, "GRATING_LIB")


def contact_array(
    size: float = 1.0,
    pitch: float = 4.0,
    columns: int = 32,
    rows: int = 32,
    layer: Layer = DEFAULT_LAYER,
    hierarchical: bool = False,
) -> Library:
    """Square contact array: ``columns x rows`` squares of ``size``.

    With ``hierarchical=True`` the array is stored as a single-contact cell
    plus an AREF, which is how production data kept volumes manageable.
    """
    if size <= 0 or pitch < size:
        raise ValueError("need 0 < size <= pitch")
    top = Cell("CONTACTS")
    if hierarchical:
        unit = Cell("CONTACT")
        unit.add_rectangle(0.0, 0.0, size, size, layer)
        top.instantiate_array(unit, columns, rows, pitch, pitch)
        lib = _library(top, "CONTACTS_LIB")
        lib.add(unit)
        return lib
    for row in range(rows):
        for col in range(columns):
            x = col * pitch
            y = row * pitch
            top.add_rectangle(x, y, x + size, y + size, layer)
    return _library(top, "CONTACTS_LIB")


def random_logic(
    chip_size: float = 100.0,
    wire_width: float = 1.0,
    target_density: float = 0.2,
    seed: int = 0,
    layer: Layer = DEFAULT_LAYER,
    pad_fraction: float = 0.15,
) -> Library:
    """Pseudo-random Manhattan wiring resembling an IC metal layer.

    Wires are horizontal/vertical rectangles of width ``wire_width``
    placed on a routing grid until the *raw* (overlap-counted) pattern
    density reaches ``target_density``; a fraction of the area budget goes
    into larger square pads.  Deterministic for a given ``seed``.
    """
    if not (0.0 < target_density < 0.9):
        raise ValueError("target_density must be in (0, 0.9)")
    rng = random.Random(seed)
    top = Cell("LOGIC")
    chip_area = chip_size * chip_size
    budget = target_density * chip_area
    placed = 0.0
    grid = wire_width * 2.0

    pad_budget = budget * pad_fraction
    pad_side = wire_width * 6.0
    while placed < pad_budget:
        x = rng.uniform(0, chip_size - pad_side)
        y = rng.uniform(0, chip_size - pad_side)
        x = round(x / grid) * grid
        y = round(y / grid) * grid
        top.add_rectangle(x, y, x + pad_side, y + pad_side, layer)
        placed += pad_side * pad_side

    while placed < budget:
        horizontal = rng.random() < 0.5
        length = rng.uniform(4, 40) * wire_width
        x = rng.uniform(0, chip_size)
        y = rng.uniform(0, chip_size)
        x = round(x / grid) * grid
        y = round(y / grid) * grid
        if horizontal:
            x_end = min(x + length, chip_size)
            if x_end - x < wire_width:
                continue
            top.add_rectangle(x, y, x_end, min(y + wire_width, chip_size), layer)
            placed += (x_end - x) * wire_width
        else:
            y_end = min(y + length, chip_size)
            if y_end - y < wire_width:
                continue
            top.add_rectangle(x, y, min(x + wire_width, chip_size), y_end, layer)
            placed += (y_end - y) * wire_width
    return _library(top, "LOGIC_LIB")


def memory_array(
    bit_width: float = 2.0,
    bit_height: float = 3.0,
    words: int = 16,
    bits: int = 16,
    blocks: Tuple[int, int] = (4, 4),
    layer: Layer = DEFAULT_LAYER,
) -> Library:
    """Two-level hierarchical memory: bit cell → word block → block array.

    The bit cell holds a handful of polygons; a block arrays it
    ``bits x words``; the chip arrays blocks ``blocks[0] x blocks[1]``.
    Exercises deep AREF nesting for the data-volume experiment (T3).
    """
    bit = Cell("BIT")
    # A stylized 1-transistor cell: gate, diffusion, contact.
    bit.add_rectangle(0.0, 0.0, bit_width, bit_height * 0.25, layer)
    bit.add_rectangle(
        bit_width * 0.3, 0.0, bit_width * 0.7, bit_height * 0.9, layer
    )
    bit.add_rectangle(
        bit_width * 0.1,
        bit_height * 0.55,
        bit_width * 0.9,
        bit_height * 0.75,
        layer,
    )

    block = Cell("BLOCK")
    block.instantiate_array(bit, bits, words, bit_width * 1.5, bit_height * 1.2)

    block_w = bits * bit_width * 1.5
    block_h = words * bit_height * 1.2
    top = Cell("CHIP")
    top.instantiate_array(
        block, blocks[0], blocks[1], block_w * 1.1, block_h * 1.1
    )

    lib = Library("MEMORY_LIB")
    lib.add(top)
    return lib


def fresnel_zone_plate(
    wavelength: float = 0.532,
    focal_length: float = 150.0,
    zones: int = 20,
    points_per_arc: int = 64,
    center: Tuple[float, float] = (0.0, 0.0),
    layer: Layer = DEFAULT_LAYER,
) -> Library:
    """Fresnel zone plate: opaque even zones as annular polygons.

    Zone radii follow ``r_n = sqrt(n λ f + (n λ / 2)²)``.  Annuli are
    approximated by two-arc polygons with ``points_per_arc`` vertices per
    arc — a deliberately fracture-hostile, all-curves workload.
    """
    if zones < 2:
        raise ValueError("need at least 2 zones")
    top = Cell("FZP")

    def radius(n: int) -> float:
        return math.sqrt(n * wavelength * focal_length + (n * wavelength / 2.0) ** 2)

    for n in range(1, zones, 2):
        r_in = radius(n)
        r_out = radius(n + 1)
        # Full annulus as two half-annulus polygons (avoids keyholes).
        for start, end in ((0.0, math.pi), (math.pi, 2.0 * math.pi)):
            top.add_polygon(
                Polygon.annulus_sector(
                    center, r_in, r_out, start, end, points_per_arc
                ),
                layer,
            )
    return _library(top, "FZP_LIB")


def serpentine(
    wire_width: float = 1.0,
    pitch: float = 4.0,
    turns: int = 20,
    length: float = 80.0,
    layer: Layer = DEFAULT_LAYER,
) -> Library:
    """A serpentine (meander) resistor: one connected Manhattan wire."""
    if pitch < 2 * wire_width:
        raise ValueError("pitch too small for wire width")
    top = Cell("SERPENTINE")
    pts: List[Tuple[float, float]] = [(0.0, 0.0)]
    y = 0.0
    for turn in range(turns):
        x_far = length if turn % 2 == 0 else 0.0
        pts.append((x_far, y))
        y += pitch
        pts.append((x_far, y))
    pts.append((length if turns % 2 == 0 else 0.0, y))
    top.add_polygon(Polygon.from_path(pts, wire_width), layer)
    return _library(top, "SERPENTINE_LIB")


def density_ladder(
    pad_size: float = 20.0,
    densities: Tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9),
    gap: float = 10.0,
    layer: Layer = DEFAULT_LAYER,
) -> Library:
    """A row of grating pads at graded local density.

    Each pad is a sub-grating whose duty cycle equals the requested
    density — the standard proximity-effect characterization vehicle.
    """
    top = Cell("DENSITY_LADDER")
    x0 = 0.0
    pitch = 2.0
    for density in densities:
        if not (0.0 < density < 1.0):
            raise ValueError("densities must be in (0, 1)")
        width = pitch * density
        lines = int(pad_size / pitch)
        for i in range(lines):
            x = x0 + i * pitch
            top.add_rectangle(x, 0.0, x + width, pad_size, layer)
        x0 += pad_size + gap
    return _library(top, "DENSITY_LADDER_LIB")


def isolated_line_with_pad(
    line_width: float = 0.5,
    line_length: float = 30.0,
    pad_size: float = 20.0,
    separation: float = 2.0,
    layer: Layer = DEFAULT_LAYER,
) -> Library:
    """The classic PEC test: a fine isolated line beside a large pad.

    Backscatter from the pad fogs the near end of the line; dose
    correction must equalize the line's developed width along its length.
    """
    top = Cell("LINE_AND_PAD")
    top.add_rectangle(0.0, 0.0, pad_size, pad_size, layer)
    x = pad_size + separation
    top.add_rectangle(x, 0.0, x + line_width, line_length, layer)
    return _library(top, "LINE_AND_PAD_LIB")


def checkerboard(
    cells: int = 8,
    square: float = 5.0,
    layer: Layer = DEFAULT_LAYER,
) -> Library:
    """Checkerboard with touching corners — a reassembly stress test."""
    top = Cell("CHECKERBOARD")
    for row in range(cells):
        for col in range(cells):
            if (row + col) % 2 == 0:
                x = col * square
                y = row * square
                top.add_rectangle(x, y, x + square, y + square, layer)
    return _library(top, "CHECKERBOARD_LIB")


def full_reticle(
    tiles: int = 10,
    pitch: float = 100.0,
    layer: Layer = DEFAULT_LAYER,
) -> Library:
    """A full-reticle mosaic: ``tiles × tiles`` zone-plate dies.

    The out-of-core workload — one :func:`fresnel_zone_plate` die cell
    (20 flat polygons) arrayed on a ``pitch`` grid, so ``tiles=10``
    expands to 2 000 flat polygons (100× the single die) while the
    hierarchical library stays tiny.  Size is a parameter, not a baked
    constant: the memory benchmark sweeps ``tiles`` to grow the flat
    workload far past what a materializing run wants to hold.
    """
    if tiles < 1:
        raise ValueError("tiles must be >= 1")
    if pitch <= 0:
        raise ValueError("pitch must be positive")
    die = fresnel_zone_plate(layer=layer).top_cell()
    top = Cell("RETICLE")
    top.instantiate_array(die, tiles, tiles, pitch, pitch)
    lib = Library("RETICLE_LIB")
    lib.add(top)
    return lib


def write_full_reticle(
    path,
    tiles: int = 10,
    pitch: float = 100.0,
    layer: Layer = DEFAULT_LAYER,
    flat: bool = True,
) -> int:
    """Generate the full-reticle GDSII straight to disk; returns bytes.

    With ``flat=True`` (the default) every die placement is expanded
    and written through the incremental
    :class:`~repro.layout.stream.GdsiiStreamWriter` — one translated
    polygon at a time, so a reticle far larger than RAM is generated
    without ever materializing it.  The emitted bytes are identical to
    ``dumps_gdsii`` of a library holding the same flattened cell.
    With ``flat=False`` the compact hierarchical library (die cell +
    one AREF) is written instead.
    """
    if flat:
        from repro.layout.stream import GdsiiStreamWriter

        if tiles < 1:
            raise ValueError("tiles must be >= 1")
        if pitch <= 0:
            raise ValueError("pitch must be positive")
        die = fresnel_zone_plate(layer=layer).top_cell()
        with GdsiiStreamWriter(path, name="RETICLE_LIB") as writer:
            writer.begin_cell("RETICLE")
            # One layer, so canonical per-layer order reduces to the
            # placement walk: row-major dies, stream-order polygons.
            for found in sorted(die.polygons):
                for row in range(tiles):
                    for col in range(tiles):
                        dx, dy = col * pitch, row * pitch
                        for poly in die.polygons[found]:
                            writer.write_polygon(poly.translated(dx, dy), found)
            writer.end_cell()
            return writer.close()
    from repro.layout.gdsii import write_gdsii

    return write_gdsii(full_reticle(tiles=tiles, pitch=pitch, layer=layer), path)


def all_workloads(seed: int = 0) -> List[Tuple[str, Library]]:
    """The standard benchmark workload suite, as ``(name, library)`` pairs."""
    return [
        ("grating", grating()),
        ("contacts", contact_array()),
        ("logic", random_logic(seed=seed)),
        ("memory", memory_array()),
        ("fzp", fresnel_zone_plate()),
        ("serpentine", serpentine()),
        ("density_ladder", density_ladder()),
        ("line_and_pad", isolated_line_with_pad()),
        ("checkerboard", checkerboard()),
    ]

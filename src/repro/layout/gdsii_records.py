"""GDSII stream-format record layer: record types and value codecs.

A GDSII file is a sequence of records, each with a 4-byte header::

    +--------+--------+--------+--------+----------------+
    | length (uint16, incl. header)     | data ...       |
    | record type     | data type       |                |
    +--------+--------+--------+--------+----------------+

Numeric data uses big-endian encodings; reals use the excess-64 base-16
format of the IBM System/360 (GDSII predates IEEE 754).
"""

from __future__ import annotations

import struct
from typing import List


class RecordType:
    """GDSII record type identifiers (subset used by this library)."""

    HEADER = 0x00
    BGNLIB = 0x01
    LIBNAME = 0x02
    UNITS = 0x03
    ENDLIB = 0x04
    BGNSTR = 0x05
    STRNAME = 0x06
    ENDSTR = 0x07
    BOUNDARY = 0x08
    PATH = 0x09
    SREF = 0x0A
    AREF = 0x0B
    TEXT = 0x0C
    LAYER = 0x0D
    DATATYPE = 0x0E
    WIDTH = 0x0F
    XY = 0x10
    ENDEL = 0x11
    SNAME = 0x12
    COLROW = 0x13
    STRANS = 0x1A
    MAG = 0x1B
    ANGLE = 0x1C

    NAMES = {
        0x00: "HEADER", 0x01: "BGNLIB", 0x02: "LIBNAME", 0x03: "UNITS",
        0x04: "ENDLIB", 0x05: "BGNSTR", 0x06: "STRNAME", 0x07: "ENDSTR",
        0x08: "BOUNDARY", 0x09: "PATH", 0x0A: "SREF", 0x0B: "AREF",
        0x0C: "TEXT", 0x0D: "LAYER", 0x0E: "DATATYPE", 0x0F: "WIDTH",
        0x10: "XY", 0x11: "ENDEL", 0x12: "SNAME", 0x13: "COLROW",
        0x1A: "STRANS", 0x1B: "MAG", 0x1C: "ANGLE",
    }


class DataType:
    """GDSII data type identifiers."""

    NONE = 0
    BITARRAY = 1
    INT16 = 2
    INT32 = 3
    REAL4 = 4
    REAL8 = 5
    ASCII = 6


class GdsiiError(ValueError):
    """Raised for malformed GDSII streams."""


def encode_real8(value: float) -> bytes:
    """Encode a float as a GDSII 8-byte excess-64 base-16 real."""
    if value == 0.0:
        return b"\x00" * 8
    sign = 0
    if value < 0:
        sign = 0x80
        value = -value
    exponent = 64
    # Normalize mantissa into [1/16, 1).
    while value >= 1.0:
        value /= 16.0
        exponent += 1
    while value < 1.0 / 16.0:
        value *= 16.0
        exponent -= 1
    if not (0 <= exponent <= 127):
        raise GdsiiError(f"real8 exponent out of range: {exponent - 64}")
    mantissa = int(value * (1 << 56))
    first = sign | exponent
    return bytes([first]) + mantissa.to_bytes(7, "big")


def decode_real8(data: bytes) -> float:
    """Decode a GDSII 8-byte excess-64 base-16 real to a float."""
    if len(data) != 8:
        raise GdsiiError(f"real8 needs 8 bytes, got {len(data)}")
    first = data[0]
    sign = -1.0 if first & 0x80 else 1.0
    exponent = (first & 0x7F) - 64
    mantissa = int.from_bytes(data[1:], "big") / float(1 << 56)
    return sign * mantissa * (16.0 ** exponent)


def pack_record(record_type: int, data_type: int, payload: bytes = b"") -> bytes:
    """Serialize one record with its 4-byte header."""
    if len(payload) % 2 != 0:
        raise GdsiiError("record payload must have even length")
    length = 4 + len(payload)
    if length > 0xFFFF:
        raise GdsiiError(f"record too long: {length} bytes")
    return struct.pack(">HBB", length, record_type, data_type) + payload


def pack_int16(record_type: int, values: List[int]) -> bytes:
    """Record of big-endian int16 values."""
    return pack_record(
        record_type, DataType.INT16, struct.pack(f">{len(values)}h", *values)
    )


def pack_int32(record_type: int, values: List[int]) -> bytes:
    """Record of big-endian int32 values."""
    return pack_record(
        record_type, DataType.INT32, struct.pack(f">{len(values)}i", *values)
    )


def pack_real8(record_type: int, values: List[float]) -> bytes:
    """Record of 8-byte excess-64 reals."""
    return pack_record(
        record_type, DataType.REAL8, b"".join(encode_real8(v) for v in values)
    )


def pack_ascii(record_type: int, text: str) -> bytes:
    """Record of ASCII text, NUL-padded to even length."""
    raw = text.encode("ascii")
    if len(raw) % 2 != 0:
        raw += b"\x00"
    return pack_record(record_type, DataType.ASCII, raw)


def pack_bitarray(record_type: int, bits: int) -> bytes:
    """Record of one 16-bit flag word."""
    return pack_record(record_type, DataType.BITARRAY, struct.pack(">H", bits))


def iter_records(stream: bytes):
    """Yield ``(record_type, data_type, payload)`` tuples from a stream.

    Raises:
        GdsiiError: on truncated or malformed records.
    """
    offset = 0
    total = len(stream)
    while offset < total:
        if offset + 4 > total:
            raise GdsiiError(f"truncated record header at byte {offset}")
        length, record_type, data_type = struct.unpack_from(">HBB", stream, offset)
        if length == 0:
            # Some writers pad the tail with zero words.
            break
        if length < 4:
            raise GdsiiError(f"record length {length} < 4 at byte {offset}")
        if offset + length > total:
            raise GdsiiError(f"truncated record payload at byte {offset}")
        payload = stream[offset + 4 : offset + length]
        yield record_type, data_type, payload
        offset += length


def unpack_int16(payload: bytes) -> List[int]:
    """Decode a big-endian int16 payload."""
    if len(payload) % 2:
        raise GdsiiError("odd int16 payload length")
    return list(struct.unpack(f">{len(payload) // 2}h", payload))


def unpack_int32(payload: bytes) -> List[int]:
    """Decode a big-endian int32 payload."""
    if len(payload) % 4:
        raise GdsiiError("int32 payload length not a multiple of 4")
    return list(struct.unpack(f">{len(payload) // 4}i", payload))


def unpack_real8(payload: bytes) -> List[float]:
    """Decode an 8-byte-real payload."""
    if len(payload) % 8:
        raise GdsiiError("real8 payload length not a multiple of 8")
    return [decode_real8(payload[i : i + 8]) for i in range(0, len(payload), 8)]


def unpack_ascii(payload: bytes) -> str:
    """Decode a NUL-padded ASCII payload."""
    return payload.rstrip(b"\x00").decode("ascii")

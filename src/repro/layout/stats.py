"""Hierarchy and data-volume statistics for layouts."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.layout.cell import Cell
from repro.layout.flatten import flatten_cell
from repro.layout.library import Library


@dataclass
class HierarchyStats:
    """Summary statistics of a layout hierarchy.

    Attributes:
        cell_count: distinct cells in the library.
        reference_count: total reference records (arrays count once).
        instance_count: total expanded cell instances.
        hierarchical_polygons: polygon records stored in cells.
        flat_polygons: polygons after full flattening.
        hierarchical_vertices: vertices stored in cells.
        flat_vertices: vertices after full flattening.
        depth: longest reference chain (1 = flat).
        compaction_ratio: flat/hierarchical polygon ratio — the data
            explosion a flat machine format suffers.
    """

    cell_count: int
    reference_count: int
    instance_count: int
    hierarchical_polygons: int
    flat_polygons: int
    hierarchical_vertices: int
    flat_vertices: int
    depth: int

    @property
    def compaction_ratio(self) -> float:
        if self.hierarchical_polygons == 0:
            return 1.0
        return self.flat_polygons / self.hierarchical_polygons


def library_stats(library: Library) -> HierarchyStats:
    """Compute :class:`HierarchyStats` for a library's unique top cell."""
    top = library.top_cell()
    flat = flatten_cell(top)
    hier_polys = sum(c.polygon_count() for c in library)
    hier_verts = sum(c.vertex_count() for c in library)
    ref_count = sum(c.reference_count() for c in library)

    instance_total = _count_instances(top, {})

    return HierarchyStats(
        cell_count=len(library),
        reference_count=ref_count,
        instance_count=instance_total,
        hierarchical_polygons=hier_polys,
        flat_polygons=sum(len(v) for v in flat.values()),
        hierarchical_vertices=hier_verts,
        flat_vertices=sum(len(p) for v in flat.values() for p in v),
        depth=library.depth(),
    )


def _count_instances(cell: Cell, memo: Dict[str, int]) -> int:
    """Total expanded instances under ``cell`` (including itself)."""
    if cell.name in memo:
        return memo[cell.name]
    total = 1
    for ref in cell.references:
        total += ref.placement_count() * _count_instances(ref.cell, memo)
    memo[cell.name] = total
    return total

"""Cursor-based layout streaming: read and write layouts out of core.

``loads_gdsii``/``loads_cif`` materialize every polygon of every cell
before the pipeline sees the first one, which caps full-reticle prep at
whatever one process can hold.  This module provides the out-of-core
counterparts:

* :class:`GdsiiStream` / :class:`CifStream` — cursor-based readers that
  scan the file once to build a *skeleton* library (cells, references,
  units — no polygons) plus per-cell byte spans, then re-read geometry
  lazily from those spans on demand.  :meth:`LayoutStream.iter_flat`
  walks the hierarchy exactly like
  :func:`repro.layout.flatten.flatten_cell` and yields the flattened
  polygons one at a time, in the identical order and with bit-identical
  coordinates, without ever holding more than one cell's geometry.
* :class:`MemoryStream` — the same cursor interface over an
  already-materialized :class:`~repro.layout.library.Library` or
  :class:`~repro.layout.cell.Cell`, so pipeline code can treat every
  source uniformly.
* :class:`GdsiiStreamWriter` — an incremental GDSII writer that emits
  cells as they are produced (byte-identical to
  :func:`~repro.layout.gdsii.dumps_gdsii` for the same cell sequence),
  so a synthetic reticle far larger than RAM can be generated without
  materializing it.

The contract throughout is *bit identity*: for any well-formed file,
streaming and materialized reads observe the same cells, the same
polygons, and the same flattened geometry, so every downstream artifact
(`.ebj`, `.ebp`) is byte-identical whichever path produced it.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path
from typing import (
    Dict,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

from repro.geometry.polygon import Polygon
from repro.geometry.transform import Transform
from repro.layout.cell import Cell
from repro.layout.cif import (
    CifError,
    _parse_box,
    _parse_layer_token,
    _parse_polygon,
    _is_redundant_wrapper,
    _parse_call,
    _reference_from_ops,
)
from repro.layout.gdsii import (
    _TIMESTAMP,
    _build_reference,
    _dump_cell,
    _dump_boundary,
    _dump_reference,
)
from repro.layout.gdsii_records import (
    DataType,
    GdsiiError,
    RecordType,
    pack_ascii,
    pack_int16,
    pack_real8,
    pack_record,
    unpack_ascii,
    unpack_int16,
    unpack_int32,
    unpack_real8,
)
from repro.layout.layer import Layer
from repro.layout.library import Library

#: Geometry of the most recently walked cell is memoized up to this many
#: polygons, so array references expand in O(parse once); larger cells
#: fall back to one re-scan per layer, keeping residency bounded.
GEOM_CACHE_MAX_POLYGONS = 65536


class LayoutStream:
    """Common cursor interface over a layout source.

    Subclasses expose a skeleton :class:`Library` (cells with references
    but, for file-backed streams, no resident polygons) and lazy per-cell
    geometry.  The flattening walk here replicates
    :func:`~repro.layout.flatten.flatten_cell` — same traversal order,
    same transform composition, same cycle detection — so its output is
    float-identical to materializing and flattening.
    """

    library: Optional[Library] = None

    # -- subclass hooks ----------------------------------------------------

    def _cell_layer_list(self, cell: Cell) -> List[Layer]:
        """Layers of ``cell``'s own geometry, in first-encounter order."""
        raise NotImplementedError

    def _iter_cell_layer(self, cell: Cell, layer: Layer) -> Iterator[Polygon]:
        """The cell's own polygons on ``layer``, in stream order."""
        raise NotImplementedError

    def materialize(self) -> Library:
        """Load everything and return the full library (tests/tools)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release the underlying file handle (no-op for memory streams)."""

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "LayoutStream":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- flattening walk ---------------------------------------------------

    def top_cell(self) -> Cell:
        """The unique top cell of the skeleton hierarchy."""
        if self.library is None:
            raise ValueError("stream has no library")
        return self.library.top_cell()

    def _resolve_top(self, top: Union[None, str, Cell]) -> Cell:
        if isinstance(top, Cell):
            return top
        if isinstance(top, str):
            if self.library is None:
                raise ValueError("stream has no library to look cells up in")
            return self.library[top]
        return self.top_cell()

    def flat_layer_order(self, top: Union[None, str, Cell] = None) -> List[Layer]:
        """Layers in the order the flatten walk first encounters them.

        This is exactly the key order of
        :func:`~repro.layout.flatten.flatten_cell`'s result dict, which
        downstream code relies on for deterministic polygon ordering.
        """
        cell = self._resolve_top(top)
        memo: Dict[str, Tuple[Layer, ...]] = {}

        def subtree(c: Cell, path: Tuple[str, ...]) -> Tuple[Layer, ...]:
            if c.name in path:
                cycle = " -> ".join(path + (c.name,))
                raise ValueError(f"reference cycle while flattening: {cycle}")
            cached = memo.get(c.name)
            if cached is not None:
                return cached
            local: Dict[Layer, None] = {}
            for layer in self._cell_layer_list(c):
                local.setdefault(layer)
            for ref in c.references:
                for layer in subtree(ref.cell, path + (c.name,)):
                    local.setdefault(layer)
            result = tuple(local)
            memo[c.name] = result
            return result

        return list(subtree(cell, ()))

    def iter_flat(
        self,
        top: Union[None, str, Cell] = None,
        layers: Optional[Set[Layer]] = None,
    ) -> Iterator[Polygon]:
        """Yield the flattened polygons of the hierarchy, lazily.

        Order and coordinates match concatenating the per-layer lists of
        :func:`~repro.layout.flatten.flatten_cell` in dict order — the
        exact sequence the materialized pipeline feeds to fracturing.
        """
        cell = self._resolve_top(top)
        for layer in self.flat_layer_order(cell):
            if layers is not None and layer not in layers:
                continue
            yield from self._walk_layer(cell, Transform.identity(), layer, ())

    def _walk_layer(
        self,
        cell: Cell,
        transform: Transform,
        layer: Layer,
        path: Tuple[str, ...],
    ) -> Iterator[Polygon]:
        if cell.name in path:
            cycle = " -> ".join(path + (cell.name,))
            raise ValueError(f"reference cycle while flattening: {cycle}")
        identity = transform.is_identity()
        if layer in self._cell_layer_list(cell):
            for poly in self._iter_cell_layer(cell, layer):
                yield poly if identity else poly.transformed(transform)
        for ref in cell.references:
            for placement in ref.placements():
                yield from self._walk_layer(
                    ref.cell,
                    transform @ placement,
                    layer,
                    path + (cell.name,),
                )


class MemoryStream(LayoutStream):
    """The cursor interface over an already-materialized source.

    Lets the pipeline and the service run in streaming mode on workload
    libraries without touching the filesystem: the walk is lazy even
    though the geometry is resident.
    """

    def __init__(self, source: Union[Library, Cell]) -> None:
        if isinstance(source, Library):
            self.library = source
            self._top: Optional[Cell] = None
        else:
            self.library = None
            self._top = source

    def top_cell(self) -> Cell:
        if self._top is not None:
            return self._top
        return super().top_cell()

    def _cell_layer_list(self, cell: Cell) -> List[Layer]:
        return list(cell.polygons)

    def _iter_cell_layer(self, cell: Cell, layer: Layer) -> Iterator[Polygon]:
        return iter(cell.polygons.get(layer, ()))

    def materialize(self) -> Library:
        if self.library is not None:
            return self.library
        assert self._top is not None
        return Library().add(self._top)


class _FileGeometryCache:
    """One-cell polygon memo shared by the file-backed streams."""

    def __init__(self) -> None:
        self.cell_name: Optional[str] = None
        self.geometry: Optional[Dict[Layer, List[Polygon]]] = None
        self.uncacheable: Set[str] = set()


class _FileStream(LayoutStream):
    """Shared machinery of the file-backed streams: spans, layer-order
    side tables, and the one-cell geometry memo."""

    def __init__(self) -> None:
        self._layer_order: Dict[str, List[Layer]] = {}
        self._geom = _FileGeometryCache()
        self._materialized = False

    def _iter_cell_geometry(self, name: str) -> Iterator[Tuple[Layer, Polygon]]:
        """The cell's own geometry in file-stream order."""
        raise NotImplementedError

    def _cell_layer_list(self, cell: Cell) -> List[Layer]:
        if self._materialized:
            return list(cell.polygons)
        return self._layer_order.get(cell.name, [])

    def _iter_cell_layer(self, cell: Cell, layer: Layer) -> Iterator[Polygon]:
        if self._materialized:
            yield from cell.polygons.get(layer, ())
            return
        geometry = self._cell_geometry(cell.name)
        if geometry is not None:
            yield from geometry.get(layer, ())
            return
        for found, poly in self._iter_cell_geometry(cell.name):
            if found == layer:
                yield poly

    def _cell_geometry(self, name: str) -> Optional[Dict[Layer, List[Polygon]]]:
        """The memoized geometry of ``name`` (None when over the cap)."""
        if self._geom.cell_name == name:
            return self._geom.geometry
        if name in self._geom.uncacheable:
            return None
        geometry: Dict[Layer, List[Polygon]] = {}
        count = 0
        for layer, poly in self._iter_cell_geometry(name):
            count += 1
            if count > GEOM_CACHE_MAX_POLYGONS:
                self._geom.uncacheable.add(name)
                return None
            geometry.setdefault(layer, []).append(poly)
        self._geom.cell_name = name
        self._geom.geometry = geometry
        return geometry

    def materialize(self) -> Library:
        """Fill the skeleton cells with geometry and return the library.

        The result is indistinguishable from the corresponding
        ``loads_*`` call: same cell order, same per-cell layer order,
        same polygons.  Mutates the skeleton in place (idempotent).
        """
        assert self.library is not None
        if not self._materialized:
            for cell in self.library:
                for layer, poly in self._iter_cell_geometry(cell.name):
                    cell.add_polygon(poly, layer)
            self._materialized = True
        return self.library


# ---------------------------------------------------------------------------
# GDSII
# ---------------------------------------------------------------------------


_GEOMETRY_KINDS = (RecordType.BOUNDARY, RecordType.PATH)


class GdsiiStream(_FileStream):
    """Cursor-based GDSII reader.

    The constructor scans the file once, reading only the small
    structural records (cell names, references, units) and seeking past
    every geometry ``XY`` payload; what it keeps is a skeleton
    :class:`Library` plus, per cell, the byte spans of its structure
    blocks and the first-encounter order of its geometry layers.
    Geometry is re-read from the spans on demand.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        super().__init__()
        self.path = Path(path)
        self._fh = open(self.path, "rb")
        self._size = os.fstat(self._fh.fileno()).st_size
        self._spans: Dict[str, List[Tuple[int, int]]] = {}
        try:
            self._scan()
        except BaseException:
            self._fh.close()
            raise

    def close(self) -> None:
        self._fh.close()

    # -- record cursor -----------------------------------------------------

    def _iter_file_records(
        self, start: int = 0, end: Optional[int] = None
    ) -> Iterator[Tuple[int, int, int, int]]:
        """Yield ``(offset, length, record_type, data_type)`` headers.

        The caller may read the payload (``length - 4`` bytes) before
        advancing; the cursor re-seeks to the next record either way.
        Semantics mirror :func:`repro.layout.gdsii_records.iter_records`:
        zero-length records terminate (tail padding), short ones raise.
        """
        fh = self._fh
        total = self._size
        limit = total if end is None else min(end, total)
        offset = start
        fh.seek(offset)
        while offset < limit:
            if offset + 4 > total:
                raise GdsiiError(f"truncated record header at byte {offset}")
            header = fh.read(4)
            if len(header) < 4:
                raise GdsiiError(f"truncated record header at byte {offset}")
            length, record_type, data_type = struct.unpack(">HBB", header)
            if length == 0:
                break
            if length < 4:
                raise GdsiiError(f"record length {length} < 4 at byte {offset}")
            if offset + length > total:
                raise GdsiiError(f"truncated record payload at byte {offset}")
            yield offset, length, record_type, data_type
            offset += length
            if fh.tell() != offset:
                fh.seek(offset)

    def _payload(self, length: int) -> bytes:
        return self._fh.read(length - 4)

    # -- pass 1: skeleton --------------------------------------------------

    def _scan(self) -> None:
        library: Optional[Library] = None
        lib_name = "LIB"
        current_cell: Optional[Cell] = None
        cells: Dict[str, Cell] = {}
        pending_refs: List[Tuple[Cell, dict]] = []
        element: Optional[dict] = None
        saw_header = False
        span_start: Optional[int] = None
        span_cell: Optional[str] = None
        scan_end = 0

        for offset, length, record_type, _ in self._iter_file_records():
            scan_end = offset + length
            if record_type == RecordType.HEADER:
                saw_header = True
            elif record_type == RecordType.LIBNAME:
                lib_name = unpack_ascii(self._payload(length))
            elif record_type == RecordType.UNITS:
                values = unpack_real8(self._payload(length))
                if len(values) != 2:
                    raise GdsiiError("UNITS record must hold two reals")
                db_in_user, db_in_meters = values
                unit = db_in_meters / db_in_user
                library = Library(lib_name, unit=unit, precision=db_in_meters)
            elif record_type == RecordType.BGNSTR:
                current_cell = None
                span_start = offset
                span_cell = None
            elif record_type == RecordType.STRNAME:
                name = unpack_ascii(self._payload(length))
                current_cell = cells.setdefault(name, Cell(name))
                span_cell = name
            elif record_type == RecordType.ENDSTR:
                if span_cell is not None and span_start is not None:
                    self._spans.setdefault(span_cell, []).append(
                        (span_start, offset + length)
                    )
                current_cell = None
                span_start = None
                span_cell = None
            elif record_type in (
                RecordType.BOUNDARY,
                RecordType.PATH,
                RecordType.SREF,
                RecordType.AREF,
            ):
                if current_cell is None:
                    raise GdsiiError(
                        f"{RecordType.NAMES[record_type]} outside a structure"
                    )
                element = {
                    "kind": record_type,
                    "strans": 0,
                    "mag": 1.0,
                    "angle": 0.0,
                    "width": 0,
                }
            elif record_type == RecordType.TEXT:
                element = {"kind": record_type}
            elif element is not None:
                kind = element["kind"]
                if record_type == RecordType.XY and kind in _GEOMETRY_KINDS:
                    # The one payload worth skipping: note its size so
                    # validity can still be checked without reading it.
                    if (length - 4) % 4:
                        raise GdsiiError("int32 payload length not a multiple of 4")
                    element["xy_count"] = (length - 4) // 4
                elif record_type == RecordType.LAYER:
                    element["layer"] = unpack_int16(self._payload(length))[0]
                elif record_type == RecordType.WIDTH:
                    element["width"] = unpack_int32(self._payload(length))[0]
                elif record_type == RecordType.DATATYPE:
                    element["datatype"] = unpack_int16(self._payload(length))[0]
                elif record_type == RecordType.XY:
                    element["xy"] = unpack_int32(self._payload(length))
                elif record_type == RecordType.SNAME:
                    element["sname"] = unpack_ascii(self._payload(length))
                elif record_type == RecordType.STRANS:
                    element["strans"] = int.from_bytes(self._payload(length), "big")
                elif record_type == RecordType.MAG:
                    element["mag"] = unpack_real8(self._payload(length))[0]
                elif record_type == RecordType.ANGLE:
                    element["angle"] = unpack_real8(self._payload(length))[0]
                elif record_type == RecordType.COLROW:
                    element["colrow"] = unpack_int16(self._payload(length))
                elif record_type == RecordType.ENDEL:
                    if library is None:
                        raise GdsiiError("element before UNITS record")
                    self._finish_scan_element(current_cell, element, pending_refs)
                    element = None
            elif record_type == RecordType.ENDLIB:
                break

        if span_cell is not None and span_start is not None:
            # Structure left open (no ENDSTR before ENDLIB/EOF): keep the
            # geometry parsed so far, like the materialized reader does.
            self._spans.setdefault(span_cell, []).append((span_start, scan_end))

        if not saw_header:
            raise GdsiiError("missing HEADER record")
        if library is None:
            raise GdsiiError("missing UNITS record")

        for parent, ref_spec in pending_refs:
            target = cells.get(ref_spec["sname"])
            if target is None:
                raise GdsiiError(f"reference to undefined cell {ref_spec['sname']!r}")
            parent.add_reference(_build_reference(target, ref_spec, library))

        # One by one, like loads_gdsii: preserves stream order (a batched
        # add would walk a LIFO list and reverse it).
        for cell in cells.values():
            library.add(cell, include_descendants=False)
        self.library = library

    def _finish_scan_element(
        self,
        cell: Optional[Cell],
        element: dict,
        pending_refs: List[Tuple[Cell, dict]],
    ) -> None:
        if cell is None:
            raise GdsiiError("ENDEL outside a structure")
        kind = element["kind"]
        if kind == RecordType.BOUNDARY:
            count = element.get("xy_count", 0)
            if count < 8:
                raise GdsiiError("BOUNDARY without a valid XY record")
            self._note_layer(cell.name, element)
        elif kind == RecordType.PATH:
            count = element.get("xy_count", 0)
            if count < 4:
                raise GdsiiError("PATH without a valid XY record")
            if element.get("width", 0) <= 0:
                return  # Zero-width paths carry no printable geometry.
            self._note_layer(cell.name, element)
        elif kind in (RecordType.SREF, RecordType.AREF):
            if "sname" not in element or "xy" not in element:
                raise GdsiiError("reference without SNAME or XY")
            pending_refs.append((cell, element))
        # TEXT: silently skipped.

    def _note_layer(self, cell_name: str, element: dict) -> None:
        layer = Layer(element.get("layer", 0), element.get("datatype", 0))
        order = self._layer_order.setdefault(cell_name, [])
        if layer not in order:
            order.append(layer)

    # -- pass 2+: lazy geometry --------------------------------------------

    def _iter_cell_geometry(self, name: str) -> Iterator[Tuple[Layer, Polygon]]:
        for start, end in self._spans.get(name, ()):
            yield from self._iter_span_geometry(start, end)

    def _iter_span_geometry(
        self, start: int, end: int
    ) -> Iterator[Tuple[Layer, Polygon]]:
        assert self.library is not None
        grid = self.library.grid
        element: Optional[dict] = None
        for _, length, record_type, _ in self._iter_file_records(start, end):
            if record_type in (
                RecordType.BOUNDARY,
                RecordType.PATH,
            ):
                element = {"kind": record_type, "width": 0}
            elif record_type in (
                RecordType.SREF,
                RecordType.AREF,
                RecordType.TEXT,
            ):
                element = {"kind": record_type}
            elif element is not None:
                kind = element["kind"]
                if kind not in _GEOMETRY_KINDS:
                    if record_type == RecordType.ENDEL:
                        element = None
                    continue
                if record_type == RecordType.LAYER:
                    element["layer"] = unpack_int16(self._payload(length))[0]
                elif record_type == RecordType.DATATYPE:
                    element["datatype"] = unpack_int16(self._payload(length))[0]
                elif record_type == RecordType.WIDTH:
                    element["width"] = unpack_int32(self._payload(length))[0]
                elif record_type == RecordType.XY:
                    element["xy"] = unpack_int32(self._payload(length))
                elif record_type == RecordType.ENDEL:
                    result = self._finish_geometry(element, grid)
                    element = None
                    if result is not None:
                        yield result

    @staticmethod
    def _finish_geometry(element: dict, grid: float) -> Optional[Tuple[Layer, Polygon]]:
        # Mirrors loads_gdsii's _finish_element for the geometry kinds,
        # including the dropped closing vertex and the zero-width skip.
        kind = element["kind"]
        xy = element.get("xy")
        layer = Layer(element.get("layer", 0), element.get("datatype", 0))
        if kind == RecordType.BOUNDARY:
            if not xy or len(xy) < 8:
                raise GdsiiError("BOUNDARY without a valid XY record")
            pts = [(xy[i] * grid, xy[i + 1] * grid) for i in range(0, len(xy) - 2, 2)]
            return layer, Polygon(pts)
        if not xy or len(xy) < 4:
            raise GdsiiError("PATH without a valid XY record")
        width = element.get("width", 0) * grid
        if width <= 0:
            return None
        pts = [(xy[i] * grid, xy[i + 1] * grid) for i in range(0, len(xy), 2)]
        return layer, Polygon.from_path(pts, width)


# ---------------------------------------------------------------------------
# CIF
# ---------------------------------------------------------------------------

#: Byte span of statements plus the layer selected when it begins (the
#: CIF layer state persists across symbol boundaries, so a lazy re-scan
#: must restore it).
_CifSpan = Tuple[int, int, Layer]

_CIF_CHUNK = 1 << 16


class CifStream(_FileStream):
    """Cursor-based CIF reader.

    One pass over the file records, per symbol, the byte span of its
    ``DS``…``DF`` block and the layer in effect when the block begins
    (CIF layer state is global, not per-symbol); geometry statements are
    only counted, never parsed.  The skeleton cells, symbol names,
    deferred calls and the top-level wrapper rule all follow
    :func:`~repro.layout.cif.loads_cif` exactly.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        super().__init__()
        self.path = Path(path)
        self._fh = open(self.path, "rb")
        self._cell_spans: Dict[str, List[_CifSpan]] = {}
        self._by_number_layer_order: Dict[Optional[int], List[Layer]] = {}
        try:
            self._scan()
        except BaseException:
            self._fh.close()
            raise

    def close(self) -> None:
        self._fh.close()

    # -- statement cursor --------------------------------------------------

    def _iter_statements(
        self, start: int = 0, end: Optional[int] = None
    ) -> Iterator[Tuple[int, str]]:
        """Yield ``(offset, stripped_statement)`` pairs.

        Comments ``( … )`` are replaced by one space (exactly what the
        materialized reader's regex does), so a ``;`` inside a comment
        never splits a statement.  ``start`` must be a statement
        boundary previously yielded by this cursor.
        """
        fh = self._fh
        fh.seek(start)
        offset = start
        statement_start = start
        parts: List[bytes] = []
        in_comment = False
        remaining = None if end is None else end - start
        while remaining is None or remaining > 0:
            size = _CIF_CHUNK if remaining is None else min(_CIF_CHUNK, remaining)
            chunk = fh.read(size)
            if not chunk:
                break
            if remaining is not None:
                remaining -= len(chunk)
            cursor = 0
            while cursor < len(chunk):
                if in_comment:
                    close = chunk.find(b")", cursor)
                    if close < 0:
                        cursor = len(chunk)
                        break
                    in_comment = False
                    cursor = close + 1
                    continue
                stop = len(chunk)
                semi = chunk.find(b";", cursor)
                paren = chunk.find(b"(", cursor)
                if semi >= 0:
                    stop = min(stop, semi)
                if paren >= 0:
                    stop = min(stop, paren)
                if stop > cursor:
                    parts.append(chunk[cursor:stop])
                if stop == semi and semi >= 0:
                    text = b"".join(parts).decode("ascii", "replace")
                    yield statement_start, text.strip()
                    parts = []
                    statement_start = offset + semi + 1
                    cursor = semi + 1
                elif stop == paren and paren >= 0:
                    parts.append(b" ")
                    in_comment = True
                    cursor = paren + 1
                else:
                    cursor = stop
            offset += len(chunk)
        tail = b"".join(parts).decode("ascii", "replace").strip()
        if tail:
            yield statement_start, tail

    # -- pass 1: skeleton --------------------------------------------------

    def _scan(self) -> None:
        library = Library("CIF", unit=1e-6, precision=1e-8)
        cells: Dict[int, Cell] = {}
        names: Dict[int, str] = {}
        deferred_calls: List[Tuple[Optional[int], int, List[str]]] = []
        symbol_spans: Dict[int, List[_CifSpan]] = {}
        top_spans: List[_CifSpan] = []
        top_poly_count = 0

        current: Optional[Cell] = None
        current_number: Optional[int] = None
        top_used = False
        layer = Layer(0, 0)

        span_start = 0
        span_layer = layer

        def close_span(end_offset: int) -> None:
            nonlocal span_start, span_layer
            span = (span_start, end_offset, span_layer)
            if span_start < end_offset:
                if current_number is None:
                    top_spans.append(span)
                else:
                    symbol_spans.setdefault(current_number, []).append(span)
            span_start = end_offset
            span_layer = layer

        for offset, statement in self._iter_statements():
            if not statement:
                continue
            if statement == "E" or statement.startswith("E "):
                close_span(offset)
                break
            command = statement[0]
            if command == "D":
                parts = statement.split()
                if parts[0] == "DS":
                    if len(parts) < 2:
                        raise CifError(f"malformed DS: {statement!r}")
                    close_span(offset)
                    current_number = int(parts[1])
                    current = cells.setdefault(
                        current_number, Cell(f"SYMBOL_{current_number}")
                    )
                    span_start = offset
                elif parts[0] == "DF":
                    # The DF statement itself carries no geometry; close
                    # the symbol span at its start.
                    close_span(offset)
                    current = None
                    current_number = None
                elif parts[0] == "DD":
                    continue
                else:
                    raise CifError(f"unknown D command: {statement!r}")
            elif command == "9":
                name = statement[1:].strip()
                if current_number is not None and name:
                    names[current_number] = name
            elif command == "L":
                layer = _parse_layer_token(statement[1:].strip())
            elif command in ("B", "P"):
                if current is None:
                    top_used = True
                    top_poly_count += 1
                self._note_layer(current_number, layer)
            elif command == "C":
                if current is None:
                    top_used = True
                callee, ops = _parse_call(statement)
                deferred_calls.append((current_number, callee, ops))
            else:
                continue
        else:
            # No E marker: the file simply ends.
            close_span(self._fh.seek(0, os.SEEK_END))

        for number, name in names.items():
            if number in cells:
                cells[number].name = name

        top_cell = Cell("TOP")
        for owner_number, callee, ops in deferred_calls:
            child = cells.get(callee)
            if child is None:
                raise CifError(f"call to undefined symbol {callee}")
            parent = top_cell if owner_number is None else cells[owner_number]
            parent.add_reference(_reference_from_ops(child, ops))

        for cell in cells.values():
            library.add(cell, include_descendants=False)
        if top_used and not (top_poly_count == 0 and _is_redundant_wrapper(top_cell)):
            if top_cell.name in library:
                top_cell.name = "CIF_TOP"
            library.add(top_cell, include_descendants=False)
        else:
            top_spans = []

        # Re-key spans and layer order (collected by symbol number while
        # scanning — names are only applied at the end) by cell name.
        for number, spans in symbol_spans.items():
            self._cell_spans[cells[number].name] = spans
        if top_spans:
            self._cell_spans[top_cell.name] = top_spans
        layer_order: Dict[str, List[Layer]] = {}
        for owner, order in self._by_number_layer_order.items():
            if owner is None:
                layer_order[top_cell.name] = order
            else:
                layer_order[cells[owner].name] = order
        self._layer_order = layer_order
        self.library = library

    def _note_layer(self, owner: Optional[int], layer: Layer) -> None:
        order = self._by_number_layer_order.setdefault(owner, [])
        if layer not in order:
            order.append(layer)

    # -- pass 2+: lazy geometry --------------------------------------------

    def _iter_cell_geometry(self, name: str) -> Iterator[Tuple[Layer, Polygon]]:
        for start, end, entry_layer in self._cell_spans.get(name, ()):
            layer = entry_layer
            for _, statement in self._iter_statements(start, end):
                if not statement:
                    continue
                command = statement[0]
                if command == "L":
                    layer = _parse_layer_token(statement[1:].strip())
                elif command == "B":
                    yield layer, _parse_box(statement)
                elif command == "P":
                    yield layer, _parse_polygon(statement)
                # DS/DF/9/C and extensions carry no geometry.


# ---------------------------------------------------------------------------
# Incremental GDSII writer
# ---------------------------------------------------------------------------


class GdsiiStreamWriter:
    """Write a GDSII stream file cell by cell, in bounded memory.

    The emitted bytes are identical to
    :func:`~repro.layout.gdsii.dumps_gdsii` of a library holding the
    same cells in the same order — the header, per-cell and trailer
    records reuse the exact serializers.  The one thing an incremental
    writer cannot do is check the full hierarchy for cycles up front;
    callers stream cells they know to be acyclic.

    Cells can be written whole (:meth:`write_cell`) or opened with
    :meth:`begin_cell` and filled incrementally — the caller is then
    responsible for the canonical order (polygons sorted by layer, then
    references) if byte identity with the materialized writer matters.
    """

    def __init__(
        self,
        path: Union[str, Path],
        name: str = "LIB",
        unit: float = 1e-6,
        precision: float = 1e-9,
    ) -> None:
        if unit <= 0 or precision <= 0:
            raise ValueError("unit and precision must be positive")
        if precision > unit:
            raise ValueError("precision must not exceed unit")
        self.path = Path(path)
        self.name = name
        self.unit = unit
        self.precision = precision
        self._scale = 1.0 / (precision / unit)  # user units -> db units
        self._fh = open(self.path, "wb")
        self.bytes_written = 0
        self._in_cell = False
        self._closed = False
        self._write(
            b"".join(
                [
                    pack_int16(RecordType.HEADER, [600]),
                    pack_int16(RecordType.BGNLIB, _TIMESTAMP),
                    pack_ascii(RecordType.LIBNAME, name),
                    pack_real8(RecordType.UNITS, [precision / unit, precision]),
                ]
            )
        )

    def _write(self, data: bytes) -> None:
        if self._closed:
            raise ValueError("writer is closed")
        self._fh.write(data)
        self.bytes_written += len(data)

    def write_cell(self, cell: Cell) -> None:
        """Emit one whole cell (canonical record order, like dumps)."""
        if self._in_cell:
            raise ValueError("finish the open cell before writing another")
        self._write(_dump_cell(cell, self._scale))

    def begin_cell(self, name: str) -> None:
        """Open a structure for incremental geometry/reference writes."""
        if self._in_cell:
            raise ValueError("finish the open cell before beginning another")
        self._write(
            pack_int16(RecordType.BGNSTR, _TIMESTAMP)
            + pack_ascii(RecordType.STRNAME, name)
        )
        self._in_cell = True

    def write_polygon(self, polygon: Polygon, layer: Layer) -> None:
        """Emit one BOUNDARY into the open structure."""
        if not self._in_cell:
            raise ValueError("no open cell to write a polygon into")
        self._write(_dump_boundary(polygon, Layer.of(layer), self._scale))

    def write_reference(self, reference) -> None:
        """Emit one SREF/AREF into the open structure."""
        if not self._in_cell:
            raise ValueError("no open cell to write a reference into")
        self._write(_dump_reference(reference, self._scale))

    def end_cell(self) -> None:
        """Close the structure opened by :meth:`begin_cell`."""
        if not self._in_cell:
            raise ValueError("no open cell to end")
        self._write(pack_record(RecordType.ENDSTR, DataType.NONE))
        self._in_cell = False

    def close(self) -> int:
        """Write ENDLIB, close the file; returns total bytes written."""
        if self._closed:
            return self.bytes_written
        if self._in_cell:
            self.end_cell()
        self._write(pack_record(RecordType.ENDLIB, DataType.NONE))
        self._closed = True
        self._fh.close()
        return self.bytes_written

    def __enter__(self) -> "GdsiiStreamWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def open_layout_stream(path: Union[str, Path]) -> LayoutStream:
    """Open a layout file as a stream, choosing the reader by suffix."""
    suffix = Path(path).suffix.lower()
    if suffix == ".cif":
        return CifStream(path)
    return GdsiiStream(path)

"""The layout cell: polygons per layer plus child references."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.geometry.polygon import Polygon
from repro.layout.layer import DEFAULT_LAYER, Layer
from repro.layout.reference import CellArray, CellReference


class Cell:
    """A named layout cell.

    A cell owns polygons organized by :class:`~repro.layout.layer.Layer`
    and placements of child cells.  Cells are mutable builders; the
    flattener and pipeline treat them as read-only inputs.

    >>> cell = Cell("inv")
    >>> _ = cell.add_polygon(Polygon.rectangle(0, 0, 1, 2), layer=(8, 0))
    >>> cell.polygon_count()
    1
    """

    __slots__ = ("name", "polygons", "references")

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("cell name must be non-empty")
        self.name = name
        self.polygons: Dict[Layer, List[Polygon]] = {}
        self.references: List[CellReference] = []

    # -- building -------------------------------------------------------

    def add_polygon(
        self, polygon: Polygon, layer: "Layer | int | Tuple[int, int]" = DEFAULT_LAYER
    ) -> "Cell":
        """Add one polygon on ``layer``; returns self for chaining."""
        key = Layer.of(layer)
        self.polygons.setdefault(key, []).append(polygon)
        return self

    def add_polygons(
        self,
        polygons: Iterable[Polygon],
        layer: "Layer | int | Tuple[int, int]" = DEFAULT_LAYER,
    ) -> "Cell":
        """Add many polygons on ``layer``; returns self for chaining."""
        key = Layer.of(layer)
        self.polygons.setdefault(key, []).extend(polygons)
        return self

    def add_rectangle(
        self,
        x0: float,
        y0: float,
        x1: float,
        y1: float,
        layer: "Layer | int | Tuple[int, int]" = DEFAULT_LAYER,
    ) -> "Cell":
        """Convenience: add an axis-aligned rectangle."""
        return self.add_polygon(Polygon.rectangle(x0, y0, x1, y1), layer)

    def add_reference(self, reference: CellReference) -> "Cell":
        """Place a child cell; returns self for chaining."""
        self.references.append(reference)
        return self

    def instantiate(
        self,
        child: "Cell",
        origin: Tuple[float, float] = (0.0, 0.0),
        rotation_deg: float = 0.0,
        magnification: float = 1.0,
        x_reflection: bool = False,
    ) -> "Cell":
        """Convenience: place ``child`` with GDSII transform parameters."""
        return self.add_reference(
            CellReference(child, origin, rotation_deg, magnification, x_reflection)
        )

    def instantiate_array(
        self,
        child: "Cell",
        columns: int,
        rows: int,
        pitch_x: float,
        pitch_y: float,
        origin: Tuple[float, float] = (0.0, 0.0),
    ) -> "Cell":
        """Convenience: place a rectangular array of ``child``."""
        return self.add_reference(
            CellArray(
                child,
                columns,
                rows,
                column_vector=(pitch_x, 0.0),
                row_vector=(0.0, pitch_y),
                origin=origin,
            )
        )

    # -- queries -----------------------------------------------------------

    def layers(self) -> List[Layer]:
        """Layers with polygons in this cell (not descendants), sorted."""
        return sorted(self.polygons)

    def polygon_count(self) -> int:
        """Polygons directly in this cell."""
        return sum(len(v) for v in self.polygons.values())

    def vertex_count(self) -> int:
        """Vertices of polygons directly in this cell."""
        return sum(len(p) for v in self.polygons.values() for p in v)

    def reference_count(self) -> int:
        """Direct child references (arrays count once)."""
        return len(self.references)

    def instance_count(self) -> int:
        """Direct child instances (arrays expanded)."""
        return sum(r.placement_count() for r in self.references)

    def children(self) -> List["Cell"]:
        """Distinct directly referenced child cells."""
        seen: Dict[str, Cell] = {}
        for ref in self.references:
            seen.setdefault(ref.cell.name, ref.cell)
        return list(seen.values())

    def descendants(self) -> List["Cell"]:
        """All distinct cells reachable from this one (excluding self).

        Raises:
            ValueError: if the hierarchy contains a reference cycle.
        """
        seen: Dict[str, Cell] = {}
        stack: List[Tuple[Cell, Tuple[str, ...]]] = [
            (c, (self.name,)) for c in self.children()
        ]
        while stack:
            cell, path = stack.pop()
            if cell.name in path:
                cycle = " -> ".join(path + (cell.name,))
                raise ValueError(f"reference cycle in hierarchy: {cycle}")
            if cell.name in seen:
                continue
            seen[cell.name] = cell
            stack.extend((c, path + (cell.name,)) for c in cell.children())
        return list(seen.values())

    def bounding_box(self) -> Optional[Tuple[float, float, float, float]]:
        """Bounding box including all descendants, or None when empty."""
        boxes = []
        for polys in self.polygons.values():
            boxes.extend(p.bounding_box() for p in polys)
        for ref in self.references:
            child_box = ref.cell.bounding_box()
            if child_box is None:
                continue
            corners = [
                (child_box[0], child_box[1]),
                (child_box[2], child_box[1]),
                (child_box[2], child_box[3]),
                (child_box[0], child_box[3]),
            ]
            for transform in ref.placements():
                pts = transform.apply_many(corners)
                boxes.append(
                    (
                        min(p.x for p in pts),
                        min(p.y for p in pts),
                        max(p.x for p in pts),
                        max(p.y for p in pts),
                    )
                )
        if not boxes:
            return None
        return (
            min(b[0] for b in boxes),
            min(b[1] for b in boxes),
            max(b[2] for b in boxes),
            max(b[3] for b in boxes),
        )

    def area(self, layer: "Layer | int | Tuple[int, int] | None" = None) -> float:
        """Raw polygon area of this cell (no descendants, overlaps double)."""
        if layer is None:
            groups: Iterator[List[Polygon]] = iter(self.polygons.values())
        else:
            groups = iter([self.polygons.get(Layer.of(layer), [])])
        return sum(p.area() for group in groups for p in group)

    def __repr__(self) -> str:
        return (
            f"Cell({self.name!r}, polygons={self.polygon_count()}, "
            f"references={len(self.references)})"
        )

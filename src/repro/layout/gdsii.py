"""GDSII stream file writer and reader.

Supports the geometry subset this toolchain needs: BOUNDARY elements,
SREF/AREF references with full STRANS transforms, and library units.
Round-trips :class:`~repro.layout.library.Library` objects losslessly up to
database-unit quantization.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.layout.cell import Cell
from repro.layout.layer import Layer
from repro.layout.library import Library
from repro.layout.reference import CellArray, CellReference
from repro.layout.gdsii_records import (
    DataType,
    GdsiiError,
    RecordType,
    iter_records,
    pack_ascii,
    pack_bitarray,
    pack_int16,
    pack_int32,
    pack_real8,
    pack_record,
    unpack_ascii,
    unpack_int16,
    unpack_int32,
    unpack_real8,
)

#: Fixed timestamp used in BGNLIB/BGNSTR so output is byte-reproducible.
_TIMESTAMP = [1979, 6, 25, 0, 0, 0, 1979, 6, 25, 0, 0, 0]

#: Maximum XY pairs per BOUNDARY record (GDSII limit is 8191 bytes/record).
_MAX_BOUNDARY_VERTICES = 600


def write_gdsii(library: Library, path: Union[str, Path]) -> int:
    """Write a library as a GDSII stream file.

    Polygons are quantized to the library's database unit.  Polygons with
    more vertices than a single XY record can hold are rejected.

    Returns:
        The number of bytes written.
    """
    data = dumps_gdsii(library)
    Path(path).write_bytes(data)
    return len(data)


def dumps_gdsii(library: Library) -> bytes:
    """Serialize a library to GDSII stream bytes."""
    library.check_acyclic()
    chunks: List[bytes] = [
        pack_int16(RecordType.HEADER, [600]),
        pack_int16(RecordType.BGNLIB, _TIMESTAMP),
        pack_ascii(RecordType.LIBNAME, library.name),
        pack_real8(
            RecordType.UNITS,
            [library.precision / library.unit, library.precision],
        ),
    ]
    scale = 1.0 / library.grid  # user units -> database units
    for cell in library:
        chunks.append(_dump_cell(cell, scale))
    chunks.append(pack_record(RecordType.ENDLIB, DataType.NONE))
    return b"".join(chunks)


def _dump_cell(cell: Cell, scale: float) -> bytes:
    chunks: List[bytes] = [
        pack_int16(RecordType.BGNSTR, _TIMESTAMP),
        pack_ascii(RecordType.STRNAME, cell.name),
    ]
    for layer in sorted(cell.polygons):
        for poly in cell.polygons[layer]:
            chunks.append(_dump_boundary(poly, layer, scale))
    for ref in cell.references:
        chunks.append(_dump_reference(ref, scale))
    chunks.append(pack_record(RecordType.ENDSTR, DataType.NONE))
    return b"".join(chunks)


def _dump_boundary(poly: Polygon, layer: Layer, scale: float) -> bytes:
    verts = poly.vertices
    if len(verts) + 1 > _MAX_BOUNDARY_VERTICES:
        raise GdsiiError(
            f"polygon with {len(verts)} vertices exceeds GDSII record capacity"
        )
    xy: List[int] = []
    for v in verts:
        xy.append(int(round(v.x * scale)))
        xy.append(int(round(v.y * scale)))
    # GDSII closes the ring explicitly.
    xy.append(xy[0])
    xy.append(xy[1])
    return b"".join(
        [
            pack_record(RecordType.BOUNDARY, DataType.NONE),
            pack_int16(RecordType.LAYER, [layer.number]),
            pack_int16(RecordType.DATATYPE, [layer.datatype]),
            pack_int32(RecordType.XY, xy),
            pack_record(RecordType.ENDEL, DataType.NONE),
        ]
    )


def _dump_reference(ref: CellReference, scale: float) -> bytes:
    is_array = isinstance(ref, CellArray)
    chunks: List[bytes] = [
        pack_record(
            RecordType.AREF if is_array else RecordType.SREF, DataType.NONE
        ),
        pack_ascii(RecordType.SNAME, ref.cell.name),
    ]
    if ref.x_reflection or ref.magnification != 1.0 or ref.rotation_deg != 0.0:
        chunks.append(
            pack_bitarray(RecordType.STRANS, 0x8000 if ref.x_reflection else 0)
        )
        if ref.magnification != 1.0:
            chunks.append(pack_real8(RecordType.MAG, [ref.magnification]))
        if ref.rotation_deg != 0.0:
            chunks.append(pack_real8(RecordType.ANGLE, [ref.rotation_deg]))
    if is_array:
        chunks.append(pack_int16(RecordType.COLROW, [ref.columns, ref.rows]))
        corners = ref.corner_positions()
        xy: List[int] = []
        for corner in corners:
            xy.append(int(round(corner.x * scale)))
            xy.append(int(round(corner.y * scale)))
        chunks.append(pack_int32(RecordType.XY, xy))
    else:
        chunks.append(
            pack_int32(
                RecordType.XY,
                [int(round(ref.origin.x * scale)), int(round(ref.origin.y * scale))],
            )
        )
    chunks.append(pack_record(RecordType.ENDEL, DataType.NONE))
    return b"".join(chunks)


# ---------------------------------------------------------------------------
# Reader
# ---------------------------------------------------------------------------


def read_gdsii(path: Union[str, Path]) -> Library:
    """Read a GDSII stream file into a :class:`Library`."""
    return loads_gdsii(Path(path).read_bytes())


def loads_gdsii(data: bytes) -> Library:
    """Parse GDSII stream bytes into a :class:`Library`.

    Raises:
        GdsiiError: on structural violations (missing UNITS, dangling
            references, truncated records, elements outside structures).
    """
    library: Optional[Library] = None
    lib_name = "LIB"
    current_cell: Optional[Cell] = None
    cells: Dict[str, Cell] = {}
    pending_refs: List[Tuple[Cell, dict]] = []
    element: Optional[dict] = None
    saw_header = False

    for record_type, data_type, payload in iter_records(data):
        if record_type == RecordType.HEADER:
            saw_header = True
        elif record_type == RecordType.LIBNAME:
            lib_name = unpack_ascii(payload)
        elif record_type == RecordType.UNITS:
            values = unpack_real8(payload)
            if len(values) != 2:
                raise GdsiiError("UNITS record must hold two reals")
            db_in_user, db_in_meters = values
            unit = db_in_meters / db_in_user
            library = Library(lib_name, unit=unit, precision=db_in_meters)
        elif record_type == RecordType.BGNSTR:
            current_cell = None
        elif record_type == RecordType.STRNAME:
            name = unpack_ascii(payload)
            current_cell = cells.setdefault(name, Cell(name))
        elif record_type == RecordType.ENDSTR:
            current_cell = None
        elif record_type in (
            RecordType.BOUNDARY,
            RecordType.PATH,
            RecordType.SREF,
            RecordType.AREF,
        ):
            if current_cell is None:
                raise GdsiiError(
                    f"{RecordType.NAMES[record_type]} outside a structure"
                )
            element = {
                "kind": record_type,
                "strans": 0,
                "mag": 1.0,
                "angle": 0.0,
                "width": 0,
            }
        elif record_type == RecordType.TEXT:
            # Recognized but unsupported: skip until ENDEL.
            element = {"kind": record_type}
        elif element is not None:
            if record_type == RecordType.LAYER:
                element["layer"] = unpack_int16(payload)[0]
            elif record_type == RecordType.WIDTH:
                element["width"] = unpack_int32(payload)[0]
            elif record_type == RecordType.DATATYPE:
                element["datatype"] = unpack_int16(payload)[0]
            elif record_type == RecordType.XY:
                element["xy"] = unpack_int32(payload)
            elif record_type == RecordType.SNAME:
                element["sname"] = unpack_ascii(payload)
            elif record_type == RecordType.STRANS:
                element["strans"] = int.from_bytes(payload, "big")
            elif record_type == RecordType.MAG:
                element["mag"] = unpack_real8(payload)[0]
            elif record_type == RecordType.ANGLE:
                element["angle"] = unpack_real8(payload)[0]
            elif record_type == RecordType.COLROW:
                element["colrow"] = unpack_int16(payload)
            elif record_type == RecordType.ENDEL:
                if library is None:
                    raise GdsiiError("element before UNITS record")
                _finish_element(current_cell, element, library, pending_refs)
                element = None
        elif record_type == RecordType.ENDLIB:
            break

    if not saw_header:
        raise GdsiiError("missing HEADER record")
    if library is None:
        raise GdsiiError("missing UNITS record")

    for parent, ref_spec in pending_refs:
        target = cells.get(ref_spec["sname"])
        if target is None:
            raise GdsiiError(f"reference to undefined cell {ref_spec['sname']!r}")
        parent.add_reference(_build_reference(target, ref_spec, library))

    # Register cells one by one so the library preserves stream order
    # (a batched add pushes through a LIFO work list and would reverse
    # it, making write→read→write oscillate instead of round-tripping).
    for cell in cells.values():
        library.add(cell, include_descendants=False)
    return library


def _finish_element(
    cell: Optional[Cell],
    element: dict,
    library: Library,
    pending_refs: List[Tuple[Cell, dict]],
) -> None:
    if cell is None:
        raise GdsiiError("ENDEL outside a structure")
    kind = element["kind"]
    if kind == RecordType.BOUNDARY:
        xy = element.get("xy")
        if not xy or len(xy) < 8:
            raise GdsiiError("BOUNDARY without a valid XY record")
        grid = library.grid
        pts = [
            (xy[i] * grid, xy[i + 1] * grid) for i in range(0, len(xy) - 2, 2)
        ]
        layer = Layer(element.get("layer", 0), element.get("datatype", 0))
        cell.add_polygon(Polygon(pts), layer)
    elif kind == RecordType.PATH:
        xy = element.get("xy")
        if not xy or len(xy) < 4:
            raise GdsiiError("PATH without a valid XY record")
        grid = library.grid
        width = element.get("width", 0) * grid
        if width <= 0:
            # Zero-width paths carry no printable geometry.
            return
        pts = [(xy[i] * grid, xy[i + 1] * grid) for i in range(0, len(xy), 2)]
        layer = Layer(element.get("layer", 0), element.get("datatype", 0))
        cell.add_polygon(Polygon.from_path(pts, width), layer)
    elif kind in (RecordType.SREF, RecordType.AREF):
        if "sname" not in element or "xy" not in element:
            raise GdsiiError("reference without SNAME or XY")
        pending_refs.append((cell, element))
    # TEXT: silently skipped.


def _build_reference(
    target: Cell, spec: dict, library: Library
) -> CellReference:
    grid = library.grid
    xy = spec["xy"]
    x_reflection = bool(spec.get("strans", 0) & 0x8000)
    mag = spec.get("mag", 1.0)
    angle = spec.get("angle", 0.0)
    origin = (xy[0] * grid, xy[1] * grid)
    if spec["kind"] == RecordType.SREF:
        return CellReference(
            target, origin, rotation_deg=angle, magnification=mag,
            x_reflection=x_reflection,
        )
    colrow = spec.get("colrow")
    if not colrow or len(colrow) != 2 or len(xy) != 6:
        raise GdsiiError("AREF needs COLROW and three XY corners")
    columns, rows = colrow
    col_end = Point(xy[2] * grid, xy[3] * grid)
    row_end = Point(xy[4] * grid, xy[5] * grid)
    origin_pt = Point(*origin)
    column_vector = (col_end - origin_pt) / columns
    row_vector = (row_end - origin_pt) / rows
    return CellArray(
        target,
        columns,
        rows,
        column_vector=column_vector,
        row_vector=row_vector,
        origin=origin,
        rotation_deg=angle,
        magnification=mag,
        x_reflection=x_reflection,
    )

"""Cell placements: single references and arrays (GDSII SREF / AREF)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Tuple

from repro.geometry.point import Point
from repro.geometry.transform import Transform

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.layout.cell import Cell


class CellReference:
    """A single placement of a child cell (GDSII ``SREF``).

    The transform applies x-reflection, then magnification, then rotation,
    then translation — the GDSII order.
    """

    __slots__ = ("cell", "origin", "rotation_deg", "magnification", "x_reflection")

    def __init__(
        self,
        cell: "Cell",
        origin: Point | Tuple[float, float] = (0.0, 0.0),
        rotation_deg: float = 0.0,
        magnification: float = 1.0,
        x_reflection: bool = False,
    ) -> None:
        if magnification <= 0:
            raise ValueError("magnification must be positive")
        self.cell = cell
        self.origin = Point.of(origin)
        self.rotation_deg = float(rotation_deg)
        self.magnification = float(magnification)
        self.x_reflection = bool(x_reflection)

    def transform(self) -> Transform:
        """The placement transform of this reference."""
        return Transform.gdsii(
            origin=self.origin,
            rotation_deg=self.rotation_deg,
            magnification=self.magnification,
            x_reflection=self.x_reflection,
        )

    def placements(self) -> Iterator[Transform]:
        """Iterate over all placements (a single one for ``CellReference``)."""
        yield self.transform()

    def placement_count(self) -> int:
        """Number of child instances this reference expands into."""
        return 1

    def __repr__(self) -> str:
        return (
            f"CellReference({self.cell.name!r}, origin={self.origin.as_tuple()}, "
            f"rot={self.rotation_deg}, mag={self.magnification}, "
            f"mirror={self.x_reflection})"
        )


class CellArray(CellReference):
    """A rectangular array of placements of a child cell (GDSII ``AREF``).

    ``columns`` placements along ``column_vector`` and ``rows`` along
    ``row_vector``; the per-instance transform (rotation, magnification,
    mirroring) is shared.
    """

    __slots__ = ("columns", "rows", "column_vector", "row_vector")

    def __init__(
        self,
        cell: "Cell",
        columns: int,
        rows: int,
        column_vector: Point | Tuple[float, float],
        row_vector: Point | Tuple[float, float],
        origin: Point | Tuple[float, float] = (0.0, 0.0),
        rotation_deg: float = 0.0,
        magnification: float = 1.0,
        x_reflection: bool = False,
    ) -> None:
        super().__init__(cell, origin, rotation_deg, magnification, x_reflection)
        if columns < 1 or rows < 1:
            raise ValueError("array dimensions must be at least 1x1")
        self.columns = int(columns)
        self.rows = int(rows)
        self.column_vector = Point.of(column_vector)
        self.row_vector = Point.of(row_vector)

    def placements(self) -> Iterator[Transform]:
        """Iterate the transform of every array element."""
        base = self.transform()
        for row in range(self.rows):
            for col in range(self.columns):
                offset = self.column_vector * col + self.row_vector * row
                yield Transform.translation(offset.x, offset.y) @ base

    def placement_count(self) -> int:
        """Total instances in the array."""
        return self.columns * self.rows

    def corner_positions(self) -> List[Point]:
        """Origins of the four corner instances (used by GDSII AREF I/O)."""
        o = self.origin
        return [
            o,
            o + self.column_vector * self.columns,
            o + self.row_vector * self.rows,
        ]

    def __repr__(self) -> str:
        return (
            f"CellArray({self.cell.name!r}, {self.columns}x{self.rows}, "
            f"col={self.column_vector.as_tuple()}, row={self.row_vector.as_tuple()}, "
            f"origin={self.origin.as_tuple()})"
        )

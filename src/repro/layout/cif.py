"""Caltech Intermediate Form (CIF 2.0) writer and reader.

CIF was *the* interchange format of late-1970s university/industry mask
flows (Mead–Conway era), so the data-volume experiment (T3) compares GDSII
binary streams against CIF text.  Supported commands:

======== =====================================================
``DS/DF`` symbol definition (cells)
``9``     symbol name extension (common convention)
``L``     layer selection (written as ``L<layer>D<datatype>``)
``B``     axis-aligned box
``P``     polygon
``C``     symbol call with ``T`` (translate), ``R`` (rotate by
          direction vector) and ``M X`` / ``M Y`` (mirror)
``E``     end marker
======== =====================================================

Coordinates are written in centimicrons (10 nm), the CIF convention.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.geometry.polygon import Polygon
from repro.layout.cell import Cell
from repro.layout.layer import Layer
from repro.layout.library import Library
from repro.layout.reference import CellArray, CellReference

#: CIF base unit: one centimicron, in micrometres.
CENTIMICRON = 0.01


class CifError(ValueError):
    """Raised for malformed CIF text or unrepresentable layouts."""


def write_cif(library: Library, path: Union[str, Path]) -> int:
    """Write a library as CIF text; returns the number of bytes written."""
    text = dumps_cif(library)
    Path(path).write_text(text)
    return len(text.encode())


def dumps_cif(library: Library) -> str:
    """Serialize a library to CIF text.

    Raises:
        CifError: for references with non-unit magnification (CIF cannot
            represent scaling in calls).
    """
    library.check_acyclic()
    numbering: Dict[str, int] = {
        cell.name: index + 1 for index, cell in enumerate(library)
    }
    lines: List[str] = [f"( CIF written by repro-ebl: library {library.name} );"]
    for cell in library:
        lines.append(f"DS {numbering[cell.name]} 1 1;")
        lines.append(f"9 {cell.name};")
        for layer in sorted(cell.polygons):
            lines.append(f"L L{layer.number}D{layer.datatype};")
            for poly in cell.polygons[layer]:
                lines.append(_dump_polygon(poly))
        for ref in cell.references:
            lines.extend(_dump_call(ref, numbering))
        lines.append("DF;")
    tops = library.top_cells()
    for top in tops:
        lines.append(f"C {numbering[top.name]};")
    lines.append("E")
    return "\n".join(lines) + "\n"


def _to_cu(value: float) -> int:
    return int(round(value / CENTIMICRON))


def _dump_polygon(poly: Polygon) -> str:
    coords = " ".join(f"{_to_cu(v.x)} {_to_cu(v.y)}" for v in poly.vertices)
    return f"P {coords};"


def _dump_call(ref: CellReference, numbering: Dict[str, int]) -> List[str]:
    if ref.magnification != 1.0:
        raise CifError("CIF calls cannot carry magnification")
    if ref.cell.name not in numbering:
        raise CifError(f"reference to cell outside library: {ref.cell.name!r}")
    symbol = numbering[ref.cell.name]
    ops = _transform_ops(ref)
    lines = []
    if isinstance(ref, CellArray):
        # CIF has no array construct: expand to individual calls.
        for row in range(ref.rows):
            for col in range(ref.columns):
                offset = ref.column_vector * col + ref.row_vector * row
                shifted = (
                    ops
                    + f" T {_to_cu(ref.origin.x + offset.x)}"
                    + f" {_to_cu(ref.origin.y + offset.y)}"
                )
                lines.append(f"C {symbol}{shifted};")
    else:
        shifted = ops + f" T {_to_cu(ref.origin.x)} {_to_cu(ref.origin.y)}"
        lines.append(f"C {symbol}{shifted};")
    return lines


def _transform_ops(ref: CellReference) -> str:
    import math

    ops = ""
    if ref.x_reflection:
        ops += " M Y"  # CIF 'M Y' negates y, matching GDSII x_reflection.
    if ref.rotation_deg:
        angle = math.radians(ref.rotation_deg)
        a = int(round(math.cos(angle) * 10000))
        b = int(round(math.sin(angle) * 10000))
        ops += f" R {a} {b}"
    return ops


# ---------------------------------------------------------------------------
# Reader
# ---------------------------------------------------------------------------

_LAYER_RE = re.compile(r"^L(\d+)(?:D(\d+))?$")


def _parse_layer_token(token: str) -> Layer:
    """Fold an ``L`` command's token into a :class:`Layer`.

    Tokens in the writer's ``L<layer>D<datatype>`` convention map exactly;
    any other name is hashed into the 0–255 layer space (deterministic
    within one process), matching what :func:`loads_cif` has always done.
    """
    match = _LAYER_RE.match(token)
    if match:
        return Layer(int(match.group(1)), int(match.group(2) or 0))
    return Layer(abs(hash(token)) % 256, 0, name=token)


def read_cif(path: Union[str, Path]) -> Library:
    """Read a CIF file into a :class:`Library`."""
    return loads_cif(Path(path).read_text())


def loads_cif(text: str) -> Library:
    """Parse CIF text into a :class:`Library`.

    Top-level geometry (outside any ``DS``) is placed in a cell named
    ``TOP`` if present.
    """
    # Strip comments.
    text = re.sub(r"\([^)]*\)", " ", text)
    statements = [s.strip() for s in text.split(";")]

    library = Library("CIF", unit=1e-6, precision=1e-8)
    cells: Dict[int, Cell] = {}
    names: Dict[int, str] = {}
    deferred_calls: List[Tuple[Cell, int, List[str]]] = []

    current: Optional[Cell] = None
    current_number: Optional[int] = None
    top_cell = Cell("TOP")
    top_used = False
    layer = Layer(0, 0)

    for statement in statements:
        if not statement:
            continue
        if statement == "E" or statement.startswith("E "):
            break
        command = statement[0]
        if command == "D":
            parts = statement.split()
            if parts[0] == "DS":
                if len(parts) < 2:
                    raise CifError(f"malformed DS: {statement!r}")
                current_number = int(parts[1])
                current = cells.setdefault(
                    current_number, Cell(f"SYMBOL_{current_number}")
                )
            elif parts[0] == "DF":
                current = None
                current_number = None
            elif parts[0] == "DD":
                continue
            else:
                raise CifError(f"unknown D command: {statement!r}")
        elif command == "9":
            name = statement[1:].strip()
            if current_number is not None and name:
                names[current_number] = name
        elif command == "L":
            layer = _parse_layer_token(statement[1:].strip())
        elif command == "B":
            target = current if current is not None else top_cell
            if current is None:
                top_used = True
            target.add_polygon(_parse_box(statement), layer)
        elif command == "P":
            target = current if current is not None else top_cell
            if current is None:
                top_used = True
            target.add_polygon(_parse_polygon(statement), layer)
        elif command == "C":
            target = current if current is not None else top_cell
            if current is None:
                top_used = True
            callee, ops = _parse_call(statement)
            deferred_calls.append((target, callee, ops))
        else:
            # Unknown user extensions are ignored per the CIF spec.
            continue

    for number, name in names.items():
        if number in cells:
            cells[number].name = name

    for parent, callee, ops in deferred_calls:
        child = cells.get(callee)
        if child is None:
            raise CifError(f"call to undefined symbol {callee}")
        parent.add_reference(_reference_from_ops(child, ops))

    for cell in cells.values():
        library.add(cell, include_descendants=False)
    if top_used and not _is_redundant_wrapper(top_cell):
        if top_cell.name in library:
            top_cell.name = "CIF_TOP"
        library.add(top_cell, include_descendants=False)
    return library


def _is_redundant_wrapper(top_cell: Cell) -> bool:
    """True when top-level content is just one untransformed symbol call.

    The writer emits ``C <top>;`` to mark the top symbol; reading that back
    as a wrapper cell would change the hierarchy on every round trip.
    """
    if top_cell.polygon_count() or len(top_cell.references) != 1:
        return False
    ref = top_cell.references[0]
    return (
        ref.origin.x == 0.0
        and ref.origin.y == 0.0
        and ref.rotation_deg % 360.0 == 0.0
        and not ref.x_reflection
    )


def _parse_box(statement: str) -> Polygon:
    parts = statement.split()
    if len(parts) < 5:
        raise CifError(f"malformed B: {statement!r}")
    width = int(parts[1]) * CENTIMICRON
    height = int(parts[2]) * CENTIMICRON
    cx = int(parts[3]) * CENTIMICRON
    cy = int(parts[4]) * CENTIMICRON
    poly = Polygon.rectangle(
        cx - width / 2, cy - height / 2, cx + width / 2, cy + height / 2
    )
    if len(parts) >= 7:
        import math

        a, b = int(parts[5]), int(parts[6])
        angle = math.atan2(b, a)
        poly = poly.rotated(angle, about=(cx, cy))
    return poly


def _parse_polygon(statement: str) -> Polygon:
    values = [int(v) for v in statement[1:].split()]
    if len(values) < 6 or len(values) % 2:
        raise CifError(f"malformed P: {statement!r}")
    pts = [
        (values[i] * CENTIMICRON, values[i + 1] * CENTIMICRON)
        for i in range(0, len(values), 2)
    ]
    return Polygon(pts)


def _parse_call(statement: str) -> Tuple[int, List[str]]:
    tokens = statement[1:].split()
    if not tokens:
        raise CifError(f"malformed C: {statement!r}")
    callee = int(tokens[0])
    return callee, tokens[1:]


def _reference_from_ops(child: Cell, ops: List[str]) -> CellReference:
    """Fold a CIF transformation list into GDSII-style parameters.

    CIF applies operators left to right; this library's references apply
    mirror, then rotation, then translation.  The fold tracks the composite
    as (mirror, angle, translation) which is exact for the operator set the
    writer emits.
    """
    import math

    mirrored = False
    angle = 0.0
    tx = 0.0
    ty = 0.0
    index = 0
    while index < len(ops):
        op = ops[index]
        if op == "T":
            dx = int(ops[index + 1]) * CENTIMICRON
            dy = int(ops[index + 2]) * CENTIMICRON
            tx += dx
            ty += dy
            index += 3
        elif op == "R":
            a = int(ops[index + 1])
            b = int(ops[index + 2])
            delta = math.degrees(math.atan2(b, a))
            angle += delta
            rad = math.radians(delta)
            cos_d, sin_d = math.cos(rad), math.sin(rad)
            tx, ty = tx * cos_d - ty * sin_d, tx * sin_d + ty * cos_d
            index += 3
        elif op == "M":
            axis = ops[index + 1]
            if axis == "Y":
                mirrored = not mirrored
                angle = -angle
                ty = -ty
            elif axis == "X":
                mirrored = not mirrored
                angle = 180.0 - angle
                tx = -tx
            else:
                raise CifError(f"unknown mirror axis {axis!r}")
            index += 2
        else:
            raise CifError(f"unknown call operator {op!r}")
    return CellReference(
        child, (tx, ty), rotation_deg=angle % 360.0, x_reflection=mirrored
    )

"""Hierarchical layout database and mask-data formats.

The layout package provides the pattern-source side of the pipeline:

* :class:`~repro.layout.layer.Layer` — (layer, datatype) identification.
* :class:`~repro.layout.cell.Cell` — a named container of polygons per layer
  plus references to child cells.
* :class:`~repro.layout.reference.CellReference` /
  :class:`~repro.layout.reference.CellArray` — placements with the GDSII
  transform parameterization.
* :class:`~repro.layout.library.Library` — a set of cells with units,
  cycle checking and top-cell discovery.
* :mod:`~repro.layout.gdsii` — binary GDSII stream reader/writer.
* :mod:`~repro.layout.cif` — Caltech Intermediate Form writer/reader
  (the period-appropriate interchange format).
* :mod:`~repro.layout.flatten` — hierarchy flattening.
* :mod:`~repro.layout.stream` — cursor-based streaming readers/writer for
  out-of-core preparation (lazy flattening in bounded memory).
* :mod:`~repro.layout.generators` — synthetic workload generators used by
  the reconstructed evaluation.
"""

from repro.layout.layer import Layer
from repro.layout.cell import Cell
from repro.layout.reference import CellReference, CellArray
from repro.layout.library import Library
from repro.layout.flatten import flatten_cell, flatten_library
from repro.layout.stream import (
    CifStream,
    GdsiiStream,
    GdsiiStreamWriter,
    LayoutStream,
    MemoryStream,
    open_layout_stream,
)
from repro.layout import generators

__all__ = [
    "Layer",
    "Cell",
    "CellReference",
    "CellArray",
    "Library",
    "flatten_cell",
    "flatten_library",
    "LayoutStream",
    "GdsiiStream",
    "CifStream",
    "MemoryStream",
    "GdsiiStreamWriter",
    "open_layout_stream",
    "generators",
]

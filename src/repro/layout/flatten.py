"""Hierarchy flattening: expand references into transformed polygons."""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.geometry.polygon import Polygon
from repro.geometry.transform import Transform
from repro.layout.cell import Cell
from repro.layout.layer import Layer
from repro.layout.library import Library

FlatLayers = Dict[Layer, List[Polygon]]


def flatten_cell(
    cell: Cell,
    transform: Optional[Transform] = None,
    layers: Optional[Set[Layer]] = None,
    max_depth: Optional[int] = None,
) -> FlatLayers:
    """Flatten ``cell`` and descendants into per-layer polygon lists.

    Args:
        cell: root of the (sub)hierarchy to flatten.
        transform: transform applied to the root (identity by default).
        layers: restrict output to these layers (all when ``None``).
        max_depth: stop expanding references deeper than this many levels
            (``None`` = unlimited); polygons below the cut are dropped.

    Returns:
        Mapping of layer to transformed polygons.

    Raises:
        ValueError: if the hierarchy contains a reference cycle.
    """
    result: FlatLayers = {}
    root = transform if transform is not None else Transform.identity()
    _flatten_into(cell, root, result, layers, max_depth, depth=0, path=())
    return result


def _flatten_into(
    cell: Cell,
    transform: Transform,
    result: FlatLayers,
    layers: Optional[Set[Layer]],
    max_depth: Optional[int],
    depth: int,
    path: Tuple[str, ...],
) -> None:
    if cell.name in path:
        cycle = " -> ".join(path + (cell.name,))
        raise ValueError(f"reference cycle while flattening: {cycle}")
    identity = transform.is_identity()
    for layer, polys in cell.polygons.items():
        if layers is not None and layer not in layers:
            continue
        bucket = result.setdefault(layer, [])
        if identity:
            bucket.extend(polys)
        else:
            bucket.extend(p.transformed(transform) for p in polys)
    if max_depth is not None and depth >= max_depth:
        return
    for ref in cell.references:
        for placement in ref.placements():
            _flatten_into(
                ref.cell,
                transform @ placement,
                result,
                layers,
                max_depth,
                depth + 1,
                path + (cell.name,),
            )


def flatten_library(
    library: Library,
    top: Optional[str] = None,
    layers: Optional[Set[Layer]] = None,
) -> FlatLayers:
    """Flatten a library from its (named or unique) top cell."""
    cell = library[top] if top is not None else library.top_cell()
    return flatten_cell(cell, layers=layers)


def flat_polygon_count(flat: FlatLayers) -> int:
    """Total polygons in a flattened result."""
    return sum(len(v) for v in flat.values())


def flat_vertex_count(flat: FlatLayers) -> int:
    """Total vertices in a flattened result."""
    return sum(len(p) for v in flat.values() for p in v)


def flat_area(flat: FlatLayers, layer: Optional[Layer] = None) -> float:
    """Raw polygon area of a flattened result (overlaps counted multiply)."""
    if layer is not None:
        return sum(p.area() for p in flat.get(layer, []))
    return sum(p.area() for v in flat.values() for p in v)

"""Library: a named collection of cells with physical units."""

from __future__ import annotations

from typing import Dict, Iterator, List

import networkx as nx

from repro.layout.cell import Cell


class Library:
    """A collection of uniquely named cells plus unit metadata.

    Attributes:
        name: library name (GDSII ``LIBNAME``).
        unit: size of one user unit in metres (1e-6 = µm, the default).
        precision: size of one database unit in metres (1e-9 = nm).
    """

    __slots__ = ("name", "unit", "precision", "cells")

    def __init__(
        self,
        name: str = "LIB",
        unit: float = 1e-6,
        precision: float = 1e-9,
    ) -> None:
        if unit <= 0 or precision <= 0:
            raise ValueError("unit and precision must be positive")
        if precision > unit:
            raise ValueError("precision must not exceed unit")
        self.name = name
        self.unit = unit
        self.precision = precision
        self.cells: Dict[str, Cell] = {}

    @property
    def grid(self) -> float:
        """Database unit expressed in user units (the boolean-engine grid)."""
        return self.precision / self.unit

    # -- cell management -----------------------------------------------

    def add(self, *cells: Cell, include_descendants: bool = True) -> "Library":
        """Add cells (and by default their descendants) to the library.

        Raises:
            ValueError: on a name collision with a *different* cell object.
        """
        pending: List[Cell] = list(cells)
        while pending:
            cell = pending.pop()
            existing = self.cells.get(cell.name)
            if existing is not None and existing is not cell:
                raise ValueError(f"cell name collision: {cell.name!r}")
            self.cells[cell.name] = cell
            if include_descendants:
                pending.extend(
                    c for c in cell.children() if self.cells.get(c.name) is not c
                )
        return self

    def new_cell(self, name: str) -> Cell:
        """Create, register and return an empty cell."""
        cell = Cell(name)
        self.add(cell)
        return cell

    def __getitem__(self, name: str) -> Cell:
        return self.cells[name]

    def __contains__(self, name: str) -> bool:
        return name in self.cells

    def __iter__(self) -> Iterator[Cell]:
        return iter(self.cells.values())

    def __len__(self) -> int:
        return len(self.cells)

    # -- hierarchy ---------------------------------------------------------

    def hierarchy_graph(self) -> "nx.DiGraph":
        """Directed parent→child reference graph over the library."""
        graph = nx.DiGraph()
        graph.add_nodes_from(self.cells)
        for cell in self.cells.values():
            for ref in cell.references:
                graph.add_edge(cell.name, ref.cell.name)
        return graph

    def check_acyclic(self) -> None:
        """Raise ``ValueError`` if any reference cycle exists."""
        graph = self.hierarchy_graph()
        try:
            cycle = nx.find_cycle(graph)
        except nx.NetworkXNoCycle:
            return
        path = " -> ".join(edge[0] for edge in cycle) + f" -> {cycle[-1][1]}"
        raise ValueError(f"reference cycle in library: {path}")

    def top_cells(self) -> List[Cell]:
        """Cells that are not referenced by any other cell."""
        graph = self.hierarchy_graph()
        return [
            self.cells[name]
            for name in self.cells
            if graph.in_degree(name) == 0
        ]

    def top_cell(self) -> Cell:
        """The unique top cell.

        Raises:
            ValueError: if the library has zero or multiple top cells.
        """
        tops = self.top_cells()
        if len(tops) != 1:
            names = [c.name for c in tops]
            raise ValueError(f"expected exactly one top cell, found {names}")
        return tops[0]

    def depth(self) -> int:
        """Longest reference chain (1 for a flat library)."""
        graph = self.hierarchy_graph()
        if not graph:
            return 0
        self.check_acyclic()
        return int(nx.dag_longest_path_length(graph)) + 1

    def __repr__(self) -> str:
        return (
            f"Library({self.name!r}, cells={len(self.cells)}, "
            f"unit={self.unit:g}, precision={self.precision:g})"
        )

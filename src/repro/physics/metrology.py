"""Metrology on simulated exposure images.

Provides the observables the reconstructed evaluation reports: developed
linewidth (CD) with sub-pixel threshold interpolation, edge placement
error against design edges, and dose latitude.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.rasterize import RasterFrame


def profile_along_x(
    image: np.ndarray, frame: RasterFrame, y: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Extract a horizontal cut of ``image`` at height ``y``.

    Returns:
        ``(x_coordinates, values)`` with linear interpolation between the
        two neighbouring pixel rows.
    """
    fy = (y - frame.y0) / frame.pixel - 0.5
    row = int(np.floor(fy))
    frac = fy - row
    row0 = int(np.clip(row, 0, frame.ny - 1))
    row1 = int(np.clip(row + 1, 0, frame.ny - 1))
    values = image[row0, :] * (1.0 - frac) + image[row1, :] * frac
    return frame.x_centers(), values


def profile_along_y(
    image: np.ndarray, frame: RasterFrame, x: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Extract a vertical cut of ``image`` at position ``x``."""
    fx = (x - frame.x0) / frame.pixel - 0.5
    col = int(np.floor(fx))
    frac = fx - col
    col0 = int(np.clip(col, 0, frame.nx - 1))
    col1 = int(np.clip(col + 1, 0, frame.nx - 1))
    values = image[:, col0] * (1.0 - frac) + image[:, col1] * frac
    return frame.y_centers(), values


def edge_positions(
    coordinates: np.ndarray, values: np.ndarray, threshold: float
) -> List[float]:
    """Sub-pixel positions where ``values`` crosses ``threshold``.

    Linear interpolation between samples; crossings are returned in
    coordinate order with alternating rising/falling sense implied by the
    data.
    """
    crossings: List[float] = []
    above = values >= threshold
    for i in range(len(values) - 1):
        if above[i] != above[i + 1]:
            v0, v1 = values[i], values[i + 1]
            t = (threshold - v0) / (v1 - v0)
            crossings.append(
                float(coordinates[i] + t * (coordinates[i + 1] - coordinates[i]))
            )
    return crossings


def measure_linewidth(
    image: np.ndarray,
    frame: RasterFrame,
    threshold: float,
    cut_y: float,
    near_x: Optional[float] = None,
) -> Optional[float]:
    """Measure the printed linewidth on a horizontal cut.

    Args:
        image: absorbed-energy (or thickness) image.
        frame: raster frame of the image.
        threshold: print threshold in image units.
        cut_y: height of the measurement cut.
        near_x: when several features cross the cut, measure the feature
            whose centre is closest to this x (else the widest feature).

    Returns:
        The linewidth, or ``None`` if no feature prints on the cut.
    """
    xs, values = profile_along_x(image, frame, cut_y)
    crossings = edge_positions(xs, values, threshold)
    if len(crossings) < 2:
        return None
    spans: List[Tuple[float, float]] = []
    # Pair up entries/exits: feature spans are where values exceed threshold.
    start = None
    above_start = values[0] >= threshold
    if above_start:
        start = xs[0]
    for crossing in crossings:
        if start is None:
            start = crossing
        else:
            spans.append((start, crossing))
            start = None
    if not spans:
        return None
    if near_x is None:
        best = max(spans, key=lambda s: s[1] - s[0])
    else:
        best = min(spans, key=lambda s: abs((s[0] + s[1]) / 2.0 - near_x))
    return best[1] - best[0]


def edge_placement_error(
    image: np.ndarray,
    frame: RasterFrame,
    threshold: float,
    cut_y: float,
    design_edges: Sequence[float],
) -> List[float]:
    """Signed distance of each printed edge from its design position.

    Each design edge is matched to the nearest printed crossing on the
    cut; positive values mean the printed edge lies at larger x.
    """
    xs, values = profile_along_x(image, frame, cut_y)
    crossings = edge_positions(xs, values, threshold)
    errors: List[float] = []
    for design in design_edges:
        if not crossings:
            errors.append(float("nan"))
            continue
        nearest = min(crossings, key=lambda c: abs(c - design))
        errors.append(nearest - design)
    return errors


def dose_latitude(
    doses: Sequence[float],
    linewidths: Sequence[Optional[float]],
    target_cd: float,
    tolerance: float = 0.1,
) -> float:
    """Fractional dose window keeping CD within ``±tolerance·target_cd``.

    Args:
        doses: swept relative doses (ascending).
        linewidths: measured CD at each dose (None = did not print).
        target_cd: nominal CD.
        tolerance: allowed relative CD deviation.

    Returns:
        ``(D_max − D_min) / D_nominal`` over the in-spec window; 0.0 when
        no dose prints in spec.  ``D_nominal`` is the dose whose CD is
        closest to target.
    """
    in_spec = [
        (d, w)
        for d, w in zip(doses, linewidths)
        if w is not None and abs(w - target_cd) <= tolerance * target_cd
    ]
    if not in_spec:
        return 0.0
    best_dose = min(in_spec, key=lambda t: abs(t[1] - target_cd))[0]
    d_lo = min(d for d, _ in in_spec)
    d_hi = max(d for d, _ in in_spec)
    if best_dose == 0:
        return 0.0
    return (d_hi - d_lo) / best_dose

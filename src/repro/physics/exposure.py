"""Exposure simulation: dose maps and PSF convolution.

The absorbed-energy image is the convolution of the written dose map with
the proximity point-spread function.  Dose maps are built by rasterizing
shots (area-coverage weighted by each shot's dose factor); convolution uses
FFTs with a pixel-integrated kernel.

Normalization: an infinitely large pad written at relative dose 1.0 yields
an absorbed level of exactly 1.0, so developed thresholds are expressed as
fractions of the large-area dose — the convention proximity-correction
literature uses.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np
from scipy.signal import fftconvolve

from repro.fracture.base import Shot
from repro.geometry.rasterize import RasterFrame, _scanline_coverage_rows
from repro.geometry.trapezoid import Trapezoid
from repro.physics.psf import DoubleGaussianPSF


def shot_dose_map(
    shots: Iterable[Shot],
    frame: RasterFrame,
    supersample: int = 4,
) -> np.ndarray:
    """Rasterize shots into a dose map (coverage × dose, additive).

    Each shot is rasterized only over the rows its bounding box touches,
    keeping large shot lists affordable.
    """
    dose = np.zeros((frame.ny, frame.nx), dtype=np.float64)
    for shot in shots:
        _add_trapezoid(dose, frame, shot.trapezoid, shot.dose, supersample)
    return dose


def pattern_coverage(
    figures: Sequence[Trapezoid],
    frame: RasterFrame,
    supersample: int = 4,
) -> np.ndarray:
    """Coverage raster of a figure list at uniform unit dose."""
    cover = np.zeros((frame.ny, frame.nx), dtype=np.float64)
    for figure in figures:
        _add_trapezoid(cover, frame, figure, 1.0, supersample)
    np.clip(cover, 0.0, 1.0, out=cover)
    return cover


def _add_trapezoid(
    target: np.ndarray,
    frame: RasterFrame,
    trap: Trapezoid,
    weight: float,
    supersample: int,
) -> None:
    """Accumulate one trapezoid's coverage into ``target`` (bbox-local)."""
    bbox = trap.bounding_box()
    row0 = max(0, int((bbox[1] - frame.y0) / frame.pixel))
    row1 = min(frame.ny, int(np.ceil((bbox[3] - frame.y0) / frame.pixel)) + 1)
    if row1 <= row0:
        return
    sub = RasterFrame(
        frame.x0,
        frame.y0 + row0 * frame.pixel,
        frame.pixel,
        frame.nx,
        row1 - row0,
    )
    poly = trap.to_polygon()
    verts = np.array([(v.x, v.y) for v in poly.vertices], dtype=np.float64)
    cover = _scanline_coverage_rows(verts, sub, supersample)
    target[row0:row1, :] += weight * cover


class ExposureSimulator:
    """Convolve dose maps with a proximity PSF over a raster frame.

    Args:
        psf: the proximity point-spread function.
        frame: raster frame (pixel pitch should resolve ``psf.alpha``;
            a warning margin of ``3.5 β`` around the pattern is the
            caller's responsibility — use ``RasterFrame.around`` with
            ``margin >= 2 β``).
    """

    def __init__(self, psf: DoubleGaussianPSF, frame: RasterFrame) -> None:
        self.psf = psf
        self.frame = frame
        self._kernel = psf.kernel(frame.pixel)

    def absorbed_energy(self, dose_map: np.ndarray) -> np.ndarray:
        """Absorbed-energy image for a dose map on this frame."""
        if dose_map.shape != (self.frame.ny, self.frame.nx):
            raise ValueError(
                f"dose map shape {dose_map.shape} does not match frame "
                f"({self.frame.ny}, {self.frame.nx})"
            )
        return fftconvolve(dose_map, self._kernel, mode="same")

    def expose_shots(
        self, shots: Iterable[Shot], supersample: int = 4
    ) -> np.ndarray:
        """Dose-map + convolution convenience for a shot list."""
        dose = shot_dose_map(shots, self.frame, supersample)
        return self.absorbed_energy(dose)

    def expose_figures(
        self,
        figures: Sequence[Trapezoid],
        dose: float = 1.0,
        supersample: int = 4,
    ) -> np.ndarray:
        """Expose plain figures at a uniform dose."""
        return self.absorbed_energy(
            pattern_coverage(figures, self.frame, supersample) * dose
        )

    def sample(
        self, image: np.ndarray, x: float, y: float
    ) -> float:
        """Bilinear sample of an image at layout coordinates ``(x, y)``."""
        fx = (x - self.frame.x0) / self.frame.pixel - 0.5
        fy = (y - self.frame.y0) / self.frame.pixel - 0.5
        ix = int(np.floor(fx))
        iy = int(np.floor(fy))
        tx = fx - ix
        ty = fy - iy
        ix0 = np.clip(ix, 0, self.frame.nx - 1)
        ix1 = np.clip(ix + 1, 0, self.frame.nx - 1)
        iy0 = np.clip(iy, 0, self.frame.ny - 1)
        iy1 = np.clip(iy + 1, 0, self.frame.ny - 1)
        return float(
            image[iy0, ix0] * (1 - tx) * (1 - ty)
            + image[iy0, ix1] * tx * (1 - ty)
            + image[iy1, ix0] * (1 - tx) * ty
            + image[iy1, ix1] * tx * ty
        )

"""Point-spread functions for electron-beam exposure.

The canonical proximity model (Chang 1975) writes the energy density
deposited in the resist at radius ``r`` from a point exposure as a sum of
two Gaussians::

    f(r) = 1 / (π (1 + η)) · [ 1/α² · exp(−r²/α²) + η/β² · exp(−r²/β²) ]

``α`` is the forward-scattering range (plus beam blur), ``β`` the
backscattering range, and ``η`` the ratio of backscattered to forward
energy.  ``f`` is normalized: ``∫ f(r) 2πr dr = 1``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.physics.materials import Material, SILICON


@dataclass(frozen=True)
class DoubleGaussianPSF:
    """Two-Gaussian proximity point-spread function.

    Attributes:
        alpha: forward-scatter range [µm].
        beta: backscatter range [µm].
        eta: backscattered/forward deposited-energy ratio.
    """

    alpha: float
    beta: float
    eta: float

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.beta <= 0:
            raise ValueError("alpha and beta must be positive")
        if self.eta < 0:
            raise ValueError("eta must be non-negative")

    # -- evaluation ------------------------------------------------------

    def radial(self, r: "float | np.ndarray") -> "float | np.ndarray":
        """Energy density f(r) [1/µm²] at radius ``r`` [µm]."""
        r2 = np.asarray(r, dtype=float) ** 2
        norm = 1.0 / (math.pi * (1.0 + self.eta))
        value = norm * (
            np.exp(-r2 / self.alpha**2) / self.alpha**2
            + self.eta * np.exp(-r2 / self.beta**2) / self.beta**2
        )
        if np.isscalar(r):
            return float(value)
        return value

    def encircled_energy(self, r: float) -> float:
        """Fraction of deposited energy within radius ``r``."""
        if r < 0:
            raise ValueError("radius must be non-negative")
        forward = 1.0 - math.exp(-(r / self.alpha) ** 2)
        back = 1.0 - math.exp(-(r / self.beta) ** 2)
        return (forward + self.eta * back) / (1.0 + self.eta)

    def kernel(self, pixel: float, radius_factor: float = 3.5) -> np.ndarray:
        """Pixel-integrated convolution kernel on a square grid.

        Each Gaussian is integrated exactly over pixel areas using erf
        differences, so narrow forward peaks are not undersampled even
        when ``alpha`` is below the pixel pitch.

        Args:
            pixel: pixel pitch [µm].
            radius_factor: kernel half-width in units of ``beta``.

        Returns:
            A square array of odd side length that sums to ~1.
        """
        if pixel <= 0:
            raise ValueError("pixel must be positive")
        half = max(1, int(math.ceil(radius_factor * self.beta / pixel)))
        edges = (np.arange(-half, half + 2) - 0.5) * pixel

        def gauss_1d(sigma_like: float) -> np.ndarray:
            from scipy.special import erf

            scaled = edges / sigma_like
            cdf = 0.5 * (1.0 + erf(scaled))
            return np.diff(cdf)

        fwd = gauss_1d(self.alpha)
        back = gauss_1d(self.beta)
        kernel_fwd = np.outer(fwd, fwd)
        kernel_back = np.outer(back, back)
        return (kernel_fwd + self.eta * kernel_back) / (1.0 + self.eta)

    # -- derived quantities -------------------------------------------------

    def background_level(self) -> float:
        """Fractional exposure a point inside a large pad receives from
        backscatter: ``η / (1 + η)`` of total deposited energy."""
        return self.eta / (1.0 + self.eta)

    def proximity_ratio(self) -> float:
        """Dose ratio between a large-pad interior and an isolated fine
        line, ``(1 + η) : 1`` — the quantity PEC must equalize."""
        return 1.0 + self.eta

    def with_blur(self, blur: float) -> "DoubleGaussianPSF":
        """Return a PSF with beam blur added in quadrature to ``alpha``."""
        if blur < 0:
            raise ValueError("blur must be non-negative")
        return DoubleGaussianPSF(
            math.hypot(self.alpha, blur), self.beta, self.eta
        )


def backscatter_range(energy_kev: float, substrate: Material = SILICON) -> float:
    """Empirical backscatter range β(E) [µm].

    Uses the Grün-range-style power law β ≈ k·E^1.75/ρ with k chosen to
    match the measured β ≈ 2.0 µm for Si at 20 keV (Chang 1975 era
    numbers); the 1.75 exponent follows the electron range scaling.
    """
    if energy_kev <= 0:
        raise ValueError("energy must be positive")
    k = 2.0 * 2.329 / (20.0**1.75)
    return k * energy_kev**1.75 / substrate.density


def backscatter_coefficient(substrate: Material = SILICON) -> float:
    """Empirical deposited-energy backscatter ratio η(Z).

    Fit η ≈ 0.0832·Z^0.83, anchored at η ≈ 0.74 for Si — the classic
    20 kV PMMA-on-Si value.  Weakly energy dependent, treated constant.
    """
    return 0.0832 * substrate.atomic_number**0.83


def forward_range(
    energy_kev: float, resist_thickness: float = 0.5, beam_size: float = 0.05
) -> float:
    """Forward-scattering range α(E, t) [µm] plus beam blur.

    The forward broadening of a resist film of thickness ``t`` scales as
    α_fs ≈ 0.9·(t/E)^1.5 (t in µm... empirical Rishton–Kern form with t
    in nm: 0.9·(t_nm/E)^1.5 nm); beam size adds in quadrature.
    """
    if energy_kev <= 0:
        raise ValueError("energy must be positive")
    if resist_thickness < 0 or beam_size < 0:
        raise ValueError("thickness and beam size must be non-negative")
    t_nm = resist_thickness * 1e3
    alpha_fs_um = 0.9 * (t_nm / energy_kev) ** 1.5 * 1e-3
    return math.hypot(alpha_fs_um, beam_size)


def psf_for(
    energy_kev: float,
    substrate: Material = SILICON,
    resist_thickness: float = 0.5,
    beam_size: float = 0.05,
) -> DoubleGaussianPSF:
    """Standard PSF for an exposure condition.

    Combines the empirical :func:`forward_range`,
    :func:`backscatter_range` and :func:`backscatter_coefficient` models.
    The Monte-Carlo module regenerates these parameters from first
    principles (experiment F3).
    """
    return DoubleGaussianPSF(
        alpha=forward_range(energy_kev, resist_thickness, beam_size),
        beta=backscatter_range(energy_kev, substrate),
        eta=backscatter_coefficient(substrate),
    )

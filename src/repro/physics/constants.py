"""Physical constants used by the scattering and column models.

Units follow lithography practice: lengths in micrometres (µm), energies
in keV, doses in µC/cm², currents in amperes.
"""

#: Avogadro's number [1/mol].
AVOGADRO = 6.02214076e23

#: Electron rest energy [keV].
ELECTRON_REST_KEV = 511.0

#: Elementary charge [C].
ELECTRON_CHARGE = 1.602176634e-19

#: Planck constant [J s].
PLANCK = 6.62607015e-34

#: Electron mass [kg].
ELECTRON_MASS = 9.1093837015e-31

#: Speed of light [m/s].
SPEED_OF_LIGHT = 2.99792458e8

#: Micrometres per centimetre.
UM_PER_CM = 1.0e4

#: Minimum electron energy tracked by the Monte-Carlo simulator [keV].
MC_CUTOFF_KEV = 0.5


def relativistic_wavelength_nm(energy_kev: float) -> float:
    """De Broglie wavelength of an electron at ``energy_kev`` [nm].

    Includes the relativistic correction; at 50 kV the wavelength is
    ~5.4 pm, so diffraction contributes negligibly to e-beam spot size —
    a fact the column model (T4) makes quantitative.
    """
    if energy_kev <= 0:
        raise ValueError("energy must be positive")
    energy_j = energy_kev * 1e3 * ELECTRON_CHARGE
    momentum = (
        2.0 * ELECTRON_MASS * energy_j * (1.0 + energy_kev / (2.0 * ELECTRON_REST_KEV))
    ) ** 0.5
    return PLANCK / momentum * 1e9

"""Resist response models: contrast curves and threshold development.

A resist is characterized by its sensitivity (the dose where it clears or
gels), its contrast γ (the slope of the thickness-vs-log-dose curve), and
its tone.  The standard log-linear contrast-curve model is used:

* negative resist: remaining thickness ``T(D) = γ · log10(D / D_gel)``
  clipped to [0, 1]; fully retained at ``D ≥ D_gel · 10^(1/γ)``.
* positive resist: ``T(D) = 1 − γ · log10(D / D_onset)`` clipped to
  [0, 1]; fully cleared at ``D ≥ D_onset · 10^(1/γ)``.

For pattern transfer the binary *developed image* is thresholded at 50 %
remaining thickness, the usual metrology convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class Resist:
    """An electron resist.

    Attributes:
        name: resist name.
        tone: ``"positive"`` (exposed areas clear) or ``"negative"``
            (exposed areas remain).
        sensitivity: onset dose D₀ [µC/cm²] — gel dose for negative
            resists, clearing-onset dose for positive ones.
        contrast: γ, the contrast-curve slope.
        thickness: film thickness [µm].
    """

    name: str
    tone: str
    sensitivity: float
    contrast: float
    thickness: float = 0.5

    def __post_init__(self) -> None:
        if self.tone not in ("positive", "negative"):
            raise ValueError("tone must be 'positive' or 'negative'")
        if self.sensitivity <= 0:
            raise ValueError("sensitivity must be positive")
        if self.contrast <= 0:
            raise ValueError("contrast must be positive")
        if self.thickness <= 0:
            raise ValueError("thickness must be positive")

    # -- contrast curve ----------------------------------------------------

    def remaining_thickness(self, dose: ArrayLike) -> ArrayLike:
        """Normalized remaining thickness after development at ``dose``.

        Vectorized over numpy arrays.  Dose is in the same units as
        ``sensitivity``.
        """
        d = np.asarray(dose, dtype=float)
        with np.errstate(divide="ignore"):
            log_ratio = np.log10(np.maximum(d, 1e-300) / self.sensitivity)
        if self.tone == "negative":
            t = self.contrast * log_ratio
        else:
            t = 1.0 - self.contrast * log_ratio
        t = np.clip(t, 0.0, 1.0)
        if np.isscalar(dose):
            return float(t)
        return t

    @property
    def saturation_dose(self) -> float:
        """Dose where the film is fully retained (negative) / cleared
        (positive): ``D₀ · 10^(1/γ)``."""
        return self.sensitivity * 10.0 ** (1.0 / self.contrast)

    @property
    def threshold_dose(self) -> float:
        """Dose giving 50 % remaining thickness — the print threshold."""
        if self.tone == "negative":
            return self.sensitivity * 10.0 ** (0.5 / self.contrast)
        return self.sensitivity * 10.0 ** (0.5 / self.contrast)

    # -- development -----------------------------------------------------

    def develop(self, absorbed: np.ndarray, base_dose: float) -> np.ndarray:
        """Binary developed image from a normalized absorbed-energy map.

        Args:
            absorbed: output of the exposure simulator (1.0 = large-area
                level at relative dose 1).
            base_dose: physical base dose [µC/cm²] that relative dose 1.0
                corresponds to.

        Returns:
            Boolean array: True where resist remains after development.
        """
        thickness = self.remaining_thickness(absorbed * base_dose)
        return np.asarray(thickness) >= 0.5

    def prints(self, absorbed_level: float, base_dose: float) -> bool:
        """True if a point at ``absorbed_level`` × ``base_dose`` prints
        (retains ≥ 50 % thickness for negative; clears for positive)."""
        t = float(self.remaining_thickness(absorbed_level * base_dose))
        return t >= 0.5 if self.tone == "negative" else t < 0.5

    def exposure_latitude(self) -> float:
        """Fractional dose window between 10 % and 90 % thickness response.

        Smaller is sharper: ``(D₉₀ − D₁₀)/D₅₀`` for negative resists (the
        mirror-image definition applies to positive ones).
        """
        d10 = self.sensitivity * 10.0 ** (0.1 / self.contrast)
        d90 = self.sensitivity * 10.0 ** (0.9 / self.contrast)
        d50 = self.threshold_dose
        return (d90 - d10) / d50


#: PMMA — the classic high-resolution positive resist (slow).
PMMA = Resist("PMMA", tone="positive", sensitivity=50.0, contrast=3.0, thickness=0.5)

#: PBS (poly(butene-1-sulfone)) — fast positive mask-making resist.
PBS = Resist("PBS", tone="positive", sensitivity=0.8, contrast=1.2, thickness=0.5)

#: COP — fast negative epoxy mask resist of the EBES era.
COP = Resist("COP", tone="negative", sensitivity=0.4, contrast=0.8, thickness=0.5)

"""Electron-beam exposure physics.

The proximity effect — dose smearing by forward- and back-scattered
electrons — is the central physical phenomenon in e-beam lithography data
preparation.  This package models it end to end:

* :mod:`~repro.physics.constants` / :mod:`~repro.physics.materials` —
  physical constants and target materials.
* :class:`~repro.physics.psf.DoubleGaussianPSF` — the classic
  two-Gaussian point-spread function with (α, β, η) parameters.
* :mod:`~repro.physics.montecarlo` — single-scattering Monte-Carlo
  simulation (screened Rutherford + Bethe slowing) that *derives* the PSF
  parameters from first principles.
* :mod:`~repro.physics.exposure` — FFT convolution of shot doses with the
  PSF over a raster frame.
* :mod:`~repro.physics.resist` — resist response: contrast curves and
  threshold development for positive and negative tones.
* :mod:`~repro.physics.metrology` — critical-dimension extraction, edge
  placement error and dose-latitude measurements on simulated images.
"""

from repro.physics.psf import DoubleGaussianPSF, psf_for
from repro.physics.exposure import ExposureSimulator
from repro.physics.resist import Resist, PMMA, PBS, COP
from repro.physics.montecarlo import MonteCarloSimulator, fit_double_gaussian
from repro.physics.metrology import (
    measure_linewidth,
    edge_positions,
    dose_latitude,
)

__all__ = [
    "DoubleGaussianPSF",
    "psf_for",
    "ExposureSimulator",
    "Resist",
    "PMMA",
    "PBS",
    "COP",
    "MonteCarloSimulator",
    "fit_double_gaussian",
    "measure_linewidth",
    "edge_positions",
    "dose_latitude",
]

"""Single-scattering Monte-Carlo electron simulator.

Derives the proximity point-spread function from first principles using the
standard fast Monte-Carlo recipe (Joy 1995):

* elastic scattering by the screened Rutherford cross-section,
* exponential free paths between elastic events,
* continuous slowing down between events with the Joy–Luo modified Bethe
  stopping power,
* energy booked into a radial histogram whenever a path segment crosses
  the resist layer.

The simulation is vectorized across electrons: all trajectories advance in
lock-step with dead electrons masked out, which keeps 20k-electron runs in
the sub-minute range on a laptop.

Geometry: the beam enters at the origin travelling +z; the resist occupies
``0 <= z < resist_thickness`` (µm) on a semi-infinite substrate.  Electrons
leaving through ``z < 0`` are counted as backscattered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.physics.constants import AVOGADRO, MC_CUTOFF_KEV, UM_PER_CM
from repro.physics.materials import Material, PMMA_MATERIAL, SILICON
from repro.physics.psf import DoubleGaussianPSF


def _screening(z: float, energy_kev: np.ndarray) -> np.ndarray:
    """Screening parameter of the screened-Rutherford cross-section."""
    return 3.4e-3 * z**0.67 / energy_kev


def _elastic_mfp_um(material: Material, energy_kev: np.ndarray) -> np.ndarray:
    """Elastic mean free path [µm] at each electron energy."""
    z = material.atomic_number
    a = _screening(z, energy_kev)
    relativistic = ((energy_kev + 511.0) / (energy_kev + 1024.0)) ** 2
    sigma_cm2 = (
        5.21e-21
        * (z**2 / energy_kev**2)
        * (4.0 * np.pi / (a * (1.0 + a)))
        * relativistic
    )
    n_density = AVOGADRO * material.density / material.atomic_weight  # 1/cm³
    mfp_cm = 1.0 / (n_density * sigma_cm2)
    return mfp_cm * UM_PER_CM


def _stopping_kev_per_um(material: Material, energy_kev: np.ndarray) -> np.ndarray:
    """Joy–Luo modified Bethe stopping power [keV/µm]."""
    j = material.mean_ionization_kev()
    de_ds_cm = (
        78500.0
        * material.density
        * material.atomic_number
        / (material.atomic_weight * energy_kev)
        * np.log(1.166 * (energy_kev + 0.85 * j) / j)
    )
    return de_ds_cm / UM_PER_CM


def _scatter_directions(
    ux: np.ndarray,
    uy: np.ndarray,
    uz: np.ndarray,
    cos_theta: np.ndarray,
    phi: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Rotate unit vectors by polar angle θ and azimuth φ."""
    sin_theta = np.sqrt(np.clip(1.0 - cos_theta**2, 0.0, 1.0))
    cos_phi = np.cos(phi)
    sin_phi = np.sin(phi)

    near_pole = np.abs(uz) > 0.99999
    denom = np.sqrt(np.clip(1.0 - uz**2, 1e-24, None))

    nx = sin_theta * (ux * uz * cos_phi - uy * sin_phi) / denom + ux * cos_theta
    ny = sin_theta * (uy * uz * cos_phi + ux * sin_phi) / denom + uy * cos_theta
    nz = -sin_theta * cos_phi * denom + uz * cos_theta

    # Electrons travelling along ±z get the simple polar formula.
    pole_sign = np.sign(uz)
    nx = np.where(near_pole, sin_theta * cos_phi, nx)
    ny = np.where(near_pole, sin_theta * sin_phi, ny)
    nz = np.where(near_pole, pole_sign * cos_theta, nz)

    norm = np.sqrt(nx**2 + ny**2 + nz**2)
    return nx / norm, ny / norm, nz / norm


@dataclass
class MonteCarloResult:
    """Outcome of a Monte-Carlo PSF run.

    Attributes:
        bin_edges: radial histogram edges [µm] (log-spaced).
        energy: deposited energy per annulus [keV].
        density: deposited energy density per unit area [keV/µm²].
        backscatter_yield: fraction of electrons escaping upward.
        electrons: number of primary electrons simulated.
        energy_kev: primary beam energy.
    """

    bin_edges: np.ndarray
    energy: np.ndarray
    density: np.ndarray
    backscatter_yield: float
    electrons: int
    energy_kev: float

    def bin_centers(self) -> np.ndarray:
        """Geometric centres of the radial bins [µm]."""
        return np.sqrt(self.bin_edges[:-1] * self.bin_edges[1:])


class MonteCarloSimulator:
    """Vectorized single-scattering Monte-Carlo for PSF derivation.

    Args:
        energy_kev: primary beam energy.
        resist: resist material (energy booked while inside this layer).
        substrate: substrate material below the resist.
        resist_thickness: resist layer thickness [µm].
        r_min, r_max: radial histogram range [µm].
        bins: number of log-spaced radial bins.
        seed: RNG seed (runs are reproducible).
    """

    def __init__(
        self,
        energy_kev: float = 20.0,
        resist: Material = PMMA_MATERIAL,
        substrate: Material = SILICON,
        resist_thickness: float = 0.5,
        r_min: float = 1e-3,
        r_max: Optional[float] = None,
        bins: int = 64,
        seed: int = 12345,
    ) -> None:
        if energy_kev <= MC_CUTOFF_KEV:
            raise ValueError("beam energy must exceed the tracking cutoff")
        if resist_thickness <= 0:
            raise ValueError("resist thickness must be positive")
        self.energy_kev = energy_kev
        self.resist = resist
        self.substrate = substrate
        self.resist_thickness = resist_thickness
        self.r_min = r_min
        self.r_max = r_max if r_max is not None else 40.0 * energy_kev / 20.0
        self.bins = bins
        self.seed = seed

    def run(self, electrons: int = 10000, max_steps: int = 2000) -> MonteCarloResult:
        """Simulate ``electrons`` primaries and histogram resist deposition."""
        rng = np.random.default_rng(self.seed)
        n = int(electrons)
        x = np.zeros(n)
        y = np.zeros(n)
        z = np.zeros(n)
        ux = np.zeros(n)
        uy = np.zeros(n)
        uz = np.ones(n)
        energy = np.full(n, float(self.energy_kev))
        alive = np.ones(n, dtype=bool)
        backscattered = np.zeros(n, dtype=bool)

        edges = np.geomspace(self.r_min, self.r_max, self.bins + 1)
        histogram = np.zeros(self.bins)
        t_resist = self.resist_thickness

        for _ in range(max_steps):
            if not alive.any():
                break
            idx = np.flatnonzero(alive)
            e_live = energy[idx]
            in_resist = z[idx] < t_resist
            material_z = np.where(
                in_resist, self.resist.atomic_number, self.substrate.atomic_number
            )

            mfp = np.where(
                in_resist,
                _elastic_mfp_um(self.resist, e_live),
                _elastic_mfp_um(self.substrate, e_live),
            )
            step = -mfp * np.log(rng.random(len(idx)) + 1e-300)

            stopping = np.where(
                in_resist,
                _stopping_kev_per_um(self.resist, e_live),
                _stopping_kev_per_um(self.substrate, e_live),
            )
            de = np.minimum(stopping * step, e_live - 1e-6)

            x_new = x[idx] + ux[idx] * step
            y_new = y[idx] + uy[idx] * step
            z_new = z[idx] + uz[idx] * step

            # Book energy deposited along segments that lie in the resist.
            z0 = z[idx]
            z1 = z_new
            frac = _resist_fraction(z0, z1, t_resist)
            deposit = de * frac
            has_deposit = deposit > 0
            if has_deposit.any():
                mid_x = 0.5 * (x[idx] + x_new)
                mid_y = 0.5 * (y[idx] + y_new)
                radius = np.hypot(mid_x[has_deposit], mid_y[has_deposit])
                radius = np.clip(radius, edges[0], edges[-1] * (1 - 1e-12))
                bin_index = np.searchsorted(edges, radius, side="right") - 1
                np.add.at(histogram, bin_index, deposit[has_deposit])

            x[idx] = x_new
            y[idx] = y_new
            z[idx] = z_new
            energy[idx] = e_live - de

            escaped = z_new < 0.0
            exhausted = energy[idx] < MC_CUTOFF_KEV
            dead = escaped | exhausted
            backscattered[idx[escaped]] = True
            alive[idx[dead]] = False

            survivors = idx[~dead]
            if len(survivors) == 0:
                continue
            e_s = energy[survivors]
            in_resist_s = z[survivors] < t_resist
            z_mat = np.where(
                in_resist_s,
                self.resist.atomic_number,
                self.substrate.atomic_number,
            )
            a = 3.4e-3 * z_mat**0.67 / e_s
            r_uniform = rng.random(len(survivors))
            cos_theta = 1.0 - 2.0 * a * r_uniform / (1.0 + a - r_uniform)
            phi = rng.random(len(survivors)) * 2.0 * np.pi
            ux[survivors], uy[survivors], uz[survivors] = _scatter_directions(
                ux[survivors], uy[survivors], uz[survivors], cos_theta, phi
            )

        areas = np.pi * (edges[1:] ** 2 - edges[:-1] ** 2)
        density = histogram / areas / n
        return MonteCarloResult(
            bin_edges=edges,
            energy=histogram,
            density=density,
            backscatter_yield=float(backscattered.sum()) / n,
            electrons=n,
            energy_kev=self.energy_kev,
        )


def _resist_fraction(z0: np.ndarray, z1: np.ndarray, t: float) -> np.ndarray:
    """Fraction of the segment ``z0 → z1`` lying inside ``[0, t)``."""
    lo = np.minimum(z0, z1)
    hi = np.maximum(z0, z1)
    overlap = np.clip(np.minimum(hi, t) - np.maximum(lo, 0.0), 0.0, None)
    length = np.maximum(hi - lo, 1e-12)
    inside_flat = ((hi - lo) < 1e-12) & (lo >= 0.0) & (lo < t)
    return np.where(inside_flat, 1.0, overlap / length)


def fit_double_gaussian(
    radii: np.ndarray,
    density: np.ndarray,
    alpha_guess: float = 0.05,
    beta_guess: float = 2.0,
    eta_guess: float = 0.7,
) -> DoubleGaussianPSF:
    """Fit (α, β, η) to a radial energy-density profile.

    The fit minimizes log-density residuals (the profile spans many
    decades) over radii with non-zero deposition.

    Returns:
        The fitted :class:`DoubleGaussianPSF` (amplitude normalized away).
    """
    from scipy.optimize import least_squares

    mask = density > 0
    if mask.sum() < 6:
        raise ValueError("not enough non-zero bins to fit a PSF")
    r = np.asarray(radii)[mask]
    d = np.asarray(density)[mask]
    log_d = np.log(d)

    def model(params: np.ndarray) -> np.ndarray:
        log_c, log_alpha, log_beta, log_eta = params
        alpha = np.exp(log_alpha)
        beta = np.exp(log_beta)
        eta = np.exp(log_eta)
        value = (
            np.exp(-(r**2) / alpha**2) / alpha**2
            + eta * np.exp(-(r**2) / beta**2) / beta**2
        )
        return log_c + np.log(value + 1e-300) - log_d

    start = np.log([d.max() * alpha_guess**2, alpha_guess, beta_guess, eta_guess])
    result = least_squares(model, start, max_nfev=5000)
    _, log_alpha, log_beta, log_eta = result.x
    alpha = float(np.exp(log_alpha))
    beta = float(np.exp(log_beta))
    eta = float(np.exp(log_eta))
    if beta < alpha:
        # Keep the conventional ordering: alpha = narrow, beta = wide.
        alpha, beta = beta, alpha
        eta = 1.0 / max(eta, 1e-12)
    return DoubleGaussianPSF(alpha=alpha, beta=beta, eta=eta)

"""Target materials for the scattering simulator.

Compound materials are reduced to effective single-element parameters by
mass-fraction averaging, the standard approximation in fast Monte-Carlo
codes (Joy, "Monte Carlo Modeling for Electron Microscopy and
Microanalysis", 1995).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class Material:
    """A scattering target.

    Attributes:
        name: human-readable name.
        atomic_number: (effective) atomic number Z.
        atomic_weight: (effective) atomic weight A [g/mol].
        density: mass density ρ [g/cm³].
    """

    name: str
    atomic_number: float
    atomic_weight: float
    density: float

    def mean_ionization_kev(self) -> float:
        """Berger–Seltzer mean ionization potential J [keV]."""
        z = self.atomic_number
        j_ev = 9.76 * z + 58.5 * z ** -0.19
        return j_ev * 1e-3

    def __str__(self) -> str:
        return self.name


def compound(
    name: str, composition: Dict[str, Tuple[float, float, int]], density: float
) -> Material:
    """Build an effective material from a composition map.

    Args:
        name: material name.
        composition: element symbol → ``(atomic_weight, count, Z)``.
        density: compound density [g/cm³].
    """
    total_mass = sum(a * n for a, n, _ in composition.values())
    z_eff = 0.0
    a_eff = 0.0
    for a, n, z in composition.values():
        fraction = a * n / total_mass
        z_eff += fraction * z
        a_eff += fraction * a
    return Material(name, z_eff, a_eff, density)


#: Bulk silicon substrate.
SILICON = Material("Si", 14.0, 28.085, 2.329)

#: Gallium arsenide substrate (mass-fraction effective values).
GAAS = Material("GaAs", 31.5, 72.32, 5.317)

#: Chromium film (photomask absorber).
CHROMIUM = Material("Cr", 24.0, 51.996, 7.19)

#: PMMA resist, C5H8O2 (mass-fraction effective values).
PMMA_MATERIAL = compound(
    "PMMA",
    {
        "C": (12.011, 5, 6),
        "H": (1.008, 8, 1),
        "O": (15.999, 2, 8),
    },
    density=1.18,
)

#: Fused-silica mask blank.
QUARTZ = compound(
    "SiO2",
    {
        "Si": (28.085, 1, 14),
        "O": (15.999, 2, 8),
    },
    density=2.203,
)

MATERIALS: Dict[str, Material] = {
    m.name: m for m in (SILICON, GAAS, CHROMIUM, PMMA_MATERIAL, QUARTZ)
}

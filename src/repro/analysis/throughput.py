"""Wafer-level throughput: wafers (or masks) per hour.

Experiment F5 reproduces the tutorial-era throughput argument: raster
machines are chip-area limited but resist-insensitive up to the current
ceiling; vector/VSB machines win on sparse levels and fast resists but
collapse on dense ones.  The model composes a per-chip write time with
wafer-level overheads (load, global alignment, stage stepping) and sweeps
resist sensitivity and beam current.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.job import MachineJob
from repro.machine.base import Machine
from repro.machine.datapath import ChannelCheck


@dataclass(frozen=True)
class ThroughputReport:
    """Wafer throughput of one machine/process operating point.

    Attributes:
        machine: machine name.
        chips_per_wafer: exposure sites per wafer.
        chip_time: seconds per chip.
        wafer_time: seconds per wafer including overheads.
        wafers_per_hour: the headline number.
        exposure_fraction: fraction of wafer time spent with beam on.
    """

    machine: str
    chips_per_wafer: int
    chip_time: float
    wafer_time: float
    wafers_per_hour: float
    exposure_fraction: float


class ThroughputModel:
    """Wafer-level composition of per-chip write times.

    Args:
        wafer_diameter: wafer diameter [µm] (default 3-inch, the 1979
            standard).
        load_time: wafer exchange and pumpdown [s].
        global_alignment_time: per-wafer registration [s].
        edge_exclusion: unusable rim [µm].
    """

    def __init__(
        self,
        wafer_diameter: float = 76_200.0,
        load_time: float = 60.0,
        global_alignment_time: float = 30.0,
        edge_exclusion: float = 3_000.0,
    ) -> None:
        if wafer_diameter <= 0:
            raise ValueError("wafer diameter must be positive")
        self.wafer_diameter = wafer_diameter
        self.load_time = load_time
        self.global_alignment_time = global_alignment_time
        self.edge_exclusion = edge_exclusion

    def chips_per_wafer(self, chip_width: float, chip_height: float) -> int:
        """Usable exposure sites on the wafer (area-packing estimate)."""
        if chip_width <= 0 or chip_height <= 0:
            raise ValueError("chip dimensions must be positive")
        radius = self.wafer_diameter / 2.0 - self.edge_exclusion
        usable_area = math.pi * radius * radius
        # 90 % packing efficiency for rectangular sites in a circle.
        return max(1, int(0.9 * usable_area / (chip_width * chip_height)))

    def report(
        self,
        machine: Machine,
        job: MachineJob,
        chips: Optional[int] = None,
        channel: Optional[ChannelCheck] = None,
    ) -> ThroughputReport:
        """Wafer throughput writing ``job`` at every site with ``machine``.

        Args:
            channel: optional data-channel check from an exported
                machine program (:mod:`repro.machine.program`); when the
                channel is the bottleneck, exposure stretches by its
                slowdown factor on every chip.
        """
        breakdown = machine.write_time(job)
        if channel is not None and channel.limited:
            breakdown.data_limited_extra += breakdown.exposure * (
                channel.slowdown - 1.0
            )
        chip_time = breakdown.total
        x0, y0, x1, y1 = job.bounding_box
        if chips is None:
            chips = self.chips_per_wafer(max(x1 - x0, 1.0), max(y1 - y0, 1.0))
        wafer_time = (
            self.load_time + self.global_alignment_time + chips * chip_time
        )
        return ThroughputReport(
            machine=machine.name,
            chips_per_wafer=chips,
            chip_time=chip_time,
            wafer_time=wafer_time,
            wafers_per_hour=3600.0 / wafer_time,
            exposure_fraction=chips * breakdown.exposure / wafer_time,
        )

    def sensitivity_sweep(
        self,
        machine_factory,
        job_factory,
        sensitivities,
    ) -> Dict[float, ThroughputReport]:
        """Throughput vs. resist sensitivity [µC/cm²].

        Args:
            machine_factory: callable() → Machine (fresh per point).
            job_factory: callable(dose) → MachineJob at that base dose.
            sensitivities: doses to sweep.
        """
        results: Dict[float, ThroughputReport] = {}
        for dose in sensitivities:
            machine = machine_factory()
            job = job_factory(dose)
            results[dose] = self.report(machine, job)
        return results

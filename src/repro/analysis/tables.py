"""Plain-text result tables (the benchmark harness's output format)."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

Cell = Union[str, int, float]


class Table:
    """A simple aligned text table builder.

    >>> t = Table(["machine", "time [s]"])
    >>> t.add_row(["raster", 12.5])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str], title: str = "") -> None:
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []
        self.title = title

    def add_row(self, cells: Iterable[Cell]) -> None:
        """Append one row; numbers are formatted compactly."""
        self.rows.append([_format(c) for c in cells])

    def render(self) -> str:
        """Render the aligned table as text."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                if i < len(widths):
                    widths[i] = max(widths[i], len(cell))
                else:
                    widths.append(len(cell))
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        lines.append("  ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                "  ".join(c.rjust(w) for c, w in zip(row, widths))
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _format(cell: Cell) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, int):
        return str(cell)
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        magnitude = abs(cell)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)


def format_table(
    headers: Sequence[str], rows: Iterable[Iterable[Cell]], title: str = ""
) -> str:
    """One-call table rendering."""
    table = Table(headers, title=title)
    for row in rows:
        table.add_row(row)
    return table.render()

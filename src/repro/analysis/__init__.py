"""Wafer-level throughput analysis and report tables."""

from repro.analysis.throughput import ThroughputModel, ThroughputReport
from repro.analysis.tables import format_table, Table
from repro.analysis.verify import (
    DefectSite,
    VerificationReport,
    verify_patterns,
)

__all__ = [
    "ThroughputModel",
    "ThroughputReport",
    "format_table",
    "Table",
    "DefectSite",
    "VerificationReport",
    "verify_patterns",
]

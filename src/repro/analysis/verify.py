"""Pattern verification: XOR comparison of figure sets.

Mask shops verified pattern data by XOR-comparing two representations of
the same level (e.g., the source layout against the fractured machine
tape, or two revisions of a job).  Any nonzero XOR area is a discrepancy;
inspection wants them *located*, not just counted, so discrepancies are
clustered into disjoint defect sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple, Union

from repro.geometry.boolean import boolean_trapezoids
from repro.geometry.polygon import Polygon
from repro.geometry.scanline import DEFAULT_GRID
from repro.geometry.trapezoid import Trapezoid

Geometry = Union[Polygon, Trapezoid]


def _as_polygons(figures: Sequence[Geometry]) -> List[Polygon]:
    polys: List[Polygon] = []
    for figure in figures:
        if isinstance(figure, Trapezoid):
            polys.append(figure.to_polygon())
        else:
            polys.append(figure)
    return polys


@dataclass
class DefectSite:
    """One clustered discrepancy region.

    Attributes:
        bounding_box: ``(x0, y0, x1, y1)`` of the cluster.
        area: total XOR area inside the cluster [µm²].
        piece_count: XOR fragments merged into this site.
    """

    bounding_box: Tuple[float, float, float, float]
    area: float
    piece_count: int

    @property
    def extent(self) -> float:
        """Largest dimension of the site [µm]."""
        x0, y0, x1, y1 = self.bounding_box
        return max(x1 - x0, y1 - y0)


@dataclass
class VerificationReport:
    """Outcome of an XOR pattern comparison.

    Attributes:
        reference_area: area of the reference pattern [µm²].
        xor_area: total discrepancy area [µm²].
        error_fraction: xor_area / reference_area.
        sites: clustered defect sites, largest first.
        clean: True when no discrepancy above tolerance was found.
    """

    reference_area: float
    xor_area: float
    sites: List[DefectSite] = field(default_factory=list)
    tolerance: float = 0.0

    @property
    def error_fraction(self) -> float:
        if self.reference_area <= 0:
            return float("inf") if self.xor_area > 0 else 0.0
        return self.xor_area / self.reference_area

    @property
    def clean(self) -> bool:
        return self.xor_area <= self.tolerance

    def summary(self) -> str:
        """One-line human-readable verdict."""
        if self.clean:
            return f"CLEAN (xor {self.xor_area:.3g} µm²)"
        worst = self.sites[0] if self.sites else None
        where = (
            f", worst site {worst.extent:.2f} µm at {worst.bounding_box}"
            if worst
            else ""
        )
        return (
            f"MISMATCH: {len(self.sites)} site(s), "
            f"xor {self.xor_area:.4g} µm² "
            f"({self.error_fraction:.2%} of reference){where}"
        )


def verify_patterns(
    reference: Sequence[Geometry],
    candidate: Sequence[Geometry],
    grid: float = DEFAULT_GRID,
    tolerance: float = 0.0,
    cluster_distance: float = 1.0,
) -> VerificationReport:
    """XOR-compare two figure/polygon sets.

    Args:
        reference: golden pattern.
        candidate: pattern under test.
        grid: boolean-engine database unit.
        tolerance: total XOR area considered clean (grid-snap slack).
        cluster_distance: XOR fragments whose bounding boxes lie within
            this distance are merged into one defect site.

    Returns:
        A :class:`VerificationReport` with clustered defect sites.
    """
    ref_polys = _as_polygons(reference)
    cand_polys = _as_polygons(candidate)
    ref_area = sum(
        t.area() for t in boolean_trapezoids(ref_polys, [], "or", grid=grid)
    )
    xor = boolean_trapezoids(ref_polys, cand_polys, "xor", grid=grid)
    xor_area = sum(t.area() for t in xor)
    sites = _cluster(xor, cluster_distance)
    sites.sort(key=lambda s: s.area, reverse=True)
    return VerificationReport(
        reference_area=ref_area,
        xor_area=xor_area,
        sites=sites,
        tolerance=tolerance,
    )


def _cluster(pieces: Sequence[Trapezoid], distance: float) -> List[DefectSite]:
    """Union-find clustering of XOR fragments by bbox proximity."""
    n = len(pieces)
    if n == 0:
        return []
    boxes = [p.bounding_box() for p in pieces]
    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        ri, rj = find(i), find(j)
        if ri != rj:
            parent[rj] = ri

    # Sweep by x to prune the pair tests.
    order = sorted(range(n), key=lambda i: boxes[i][0])
    for oi, i in enumerate(order):
        for j in order[oi + 1 :]:
            if boxes[j][0] - boxes[i][2] > distance:
                break
            if (
                boxes[i][1] - distance <= boxes[j][3]
                and boxes[j][1] - distance <= boxes[i][3]
            ):
                union(i, j)

    clusters: dict = {}
    for i in range(n):
        clusters.setdefault(find(i), []).append(i)

    sites = []
    for members in clusters.values():
        x0 = min(boxes[i][0] for i in members)
        y0 = min(boxes[i][1] for i in members)
        x1 = max(boxes[i][2] for i in members)
        y1 = max(boxes[i][3] for i in members)
        sites.append(
            DefectSite(
                bounding_box=(x0, y0, x1, y1),
                area=sum(pieces[i].area() for i in members),
                piece_count=len(members),
            )
        )
    return sites

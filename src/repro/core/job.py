"""Machine job: the fractured, dose-assigned pattern ready to write."""

from __future__ import annotations

import hashlib
import struct
from typing import List, Optional, Sequence, Tuple

from repro.fracture.base import Shot

_SHOT_PACK = struct.Struct("!7d")


class MachineJob:
    """A writable job: shots plus exposure bookkeeping.

    Attributes:
        name: job identifier.
        shots: fractured, dose-assigned figures.
        base_dose: physical dose [µC/cm²] that relative dose 1.0 means.
        bounding_box: chip extent ``(x0, y0, x1, y1)`` [µm]; defaults to
            the shot bounding box.
    """

    __slots__ = (
        "name",
        "shots",
        "base_dose",
        "bounding_box",
        "_aggregate",
        "_digest",
        "_dose_range",
    )

    def __init__(
        self,
        shots: Sequence[Shot],
        base_dose: float = 1.0,
        name: str = "job",
        bounding_box: Optional[Tuple[float, float, float, float]] = None,
    ) -> None:
        if base_dose <= 0:
            raise ValueError("base dose must be positive")
        self.shots: List[Shot] = list(shots)
        self.base_dose = float(base_dose)
        self.name = name
        self._aggregate: Optional[Tuple[int, float, float, float]] = None
        self._digest: Optional[str] = None
        self._dose_range: Optional[Tuple[float, float]] = None
        if bounding_box is not None:
            self.bounding_box = bounding_box
        elif self.shots:
            boxes = [s.trapezoid.bounding_box() for s in self.shots]
            self.bounding_box = (
                min(b[0] for b in boxes),
                min(b[1] for b in boxes),
                max(b[2] for b in boxes),
                max(b[3] for b in boxes),
            )
        else:
            self.bounding_box = (0.0, 0.0, 0.0, 0.0)

    @classmethod
    def synthetic(
        cls,
        figure_count: int,
        pattern_area: float,
        bounding_box: Tuple[float, float, float, float],
        base_dose: float = 1.0,
        mean_dose: float = 1.0,
        name: str = "synthetic",
        dose_weighted_area: Optional[float] = None,
        dose_weighted_count: Optional[float] = None,
    ) -> "MachineJob":
        """A job described only by its aggregates (no explicit shot list).

        Machine timing models need only figure count, areas and doses, so
        throughput studies can model multi-million-figure chips without
        materializing the shots.  ``dose_weighted_area`` /
        ``dose_weighted_count`` override the ``mean_dose``
        approximation with exact sums — what the out-of-core pipeline
        folds while streaming, so a streamed job's timing model matches
        the materialized one bit for bit.
        """
        if figure_count < 0 or pattern_area < 0:
            raise ValueError("figure count and area must be non-negative")
        job = cls([], base_dose=base_dose, name=name, bounding_box=bounding_box)
        job._aggregate = (
            int(figure_count),
            float(pattern_area),
            float(pattern_area) * mean_dose
            if dose_weighted_area is None
            else float(dose_weighted_area),
            float(figure_count) * mean_dose
            if dose_weighted_count is None
            else float(dose_weighted_count),
        )
        return job

    # -- accounting -------------------------------------------------------

    def figure_count(self) -> int:
        """Number of machine figures."""
        if self._aggregate is not None:
            return self._aggregate[0]
        return len(self.shots)

    def pattern_area(self) -> float:
        """Exposed pattern area [µm²] (shots are disjoint by contract)."""
        if self._aggregate is not None:
            return self._aggregate[1]
        return sum(s.area() for s in self.shots)

    def dose_weighted_area(self) -> float:
        """Σ dose_i · area_i — proportional to beam-on time on a vector
        machine."""
        if self._aggregate is not None:
            return self._aggregate[2]
        return sum(s.dose * s.area() for s in self.shots)

    def dose_weighted_count(self) -> float:
        """Σ dose_i — proportional to total flash time on a VSB machine."""
        if self._aggregate is not None:
            return self._aggregate[3]
        return sum(s.dose for s in self.shots)

    def chip_area(self) -> float:
        """Bounding-box area [µm²]."""
        x0, y0, x1, y1 = self.bounding_box
        return max(0.0, (x1 - x0)) * max(0.0, (y1 - y0))

    def pattern_density(self) -> float:
        """Exposed fraction of the chip bounding box."""
        chip = self.chip_area()
        return self.pattern_area() / chip if chip > 0 else 0.0

    # -- digests ----------------------------------------------------------

    def digest(self) -> str:
        """Exact SHA-256 over the shot list and base dose.

        Every coordinate and dose enters as its IEEE-754 double, so two
        jobs share a digest iff they are shot-for-shot bit-identical —
        the determinism oracle for the sharded/cached execution paths.

        Jobs assembled by the out-of-core pipeline carry the digest
        folded over the same packing while the shots streamed past
        (``_digest``) — identical bytes hashed in identical order, never
        an approximation.
        """
        if self._digest is not None:
            return self._digest
        h = hashlib.sha256()
        h.update(_SHOT_PACK.pack(self.base_dose, 0, 0, 0, 0, 0, 0))
        for s in self.shots:
            t = s.trapezoid
            h.update(
                _SHOT_PACK.pack(
                    t.y_bottom,
                    t.y_top,
                    t.x_bottom_left,
                    t.x_bottom_right,
                    t.x_top_left,
                    t.x_top_right,
                    s.dose,
                )
            )
        return h.hexdigest()

    def portable_digest(self, sig_digits: int = 9) -> str:
        """Digest with values canonicalized to ``sig_digits`` significant
        digits.

        Library-version drift in transcendental routines (the PEC erf
        kernels) can nudge doses in the last few ulps; rounding before
        hashing makes the digest stable enough to commit as a golden
        reference while still pinning geometry and dose maps tightly.
        """
        h = hashlib.sha256()
        fmt = f"%.{sig_digits}e"

        def feed(value: float) -> None:
            h.update((fmt % value).encode())
            h.update(b",")

        feed(self.base_dose)
        for s in self.shots:
            t = s.trapezoid
            for value in (
                t.y_bottom,
                t.y_top,
                t.x_bottom_left,
                t.x_bottom_right,
                t.x_top_left,
                t.x_top_right,
                s.dose,
            ):
                feed(value)
        return h.hexdigest()

    def dose_digest(self, sig_digits: int = 9) -> str:
        """Portable digest over the dose map alone (shot-order doses)."""
        h = hashlib.sha256()
        fmt = f"%.{sig_digits}e"
        for s in self.shots:
            h.update((fmt % s.dose).encode())
            h.update(b",")
        return h.hexdigest()

    def dose_range(self) -> Tuple[float, float]:
        """(min, max) relative dose over all shots."""
        if self._dose_range is not None:
            return self._dose_range
        if not self.shots:
            return (0.0, 0.0)
        doses = [s.dose for s in self.shots]
        return (min(doses), max(doses))

    def __len__(self) -> int:
        return len(self.shots)

    def __repr__(self) -> str:
        return (
            f"MachineJob({self.name!r}, figures={len(self.shots)}, "
            f"density={self.pattern_density():.1%}, "
            f"dose={self.base_dose:g} µC/cm²)"
        )

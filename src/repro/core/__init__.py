"""Core pipeline: layout in, machine job and reports out.

This package is the paper's primary contribution — the data-preparation
flow that connects all the substrates:

1. flatten the hierarchy (:mod:`repro.layout.flatten`),
2. merge geometry per layer (boolean union),
3. fracture into machine figures (:mod:`repro.fracture`),
4. proximity-correct shot doses (:mod:`repro.pec`),
5. emit a :class:`~repro.core.job.MachineJob` and estimate writing time
   on any :class:`~repro.machine.base.Machine`,
6. optionally verify fidelity by exposure simulation
   (:mod:`repro.core.metrics`).
"""

from repro.core.cache import (
    CacheDegradedWarning,
    CacheStats,
    ShardCache,
    fingerprint,
    shard_cache_key,
)
from repro.core.executor import (
    ExecutionResult,
    ExecutionStats,
    RetryPolicy,
    Shard,
    ShardedExecutor,
    ShardOverlapWarning,
    plan_shards,
    shutdown_worker_pool,
    warm_worker_pool,
)
from repro.core.faults import (
    FaultPlan,
    FaultyCache,
    InjectedFaultError,
    TransientFaultError,
)
from repro.core.job import MachineJob
from repro.core.pipeline import PreparationPipeline, PipelineResult
from repro.core.metrics import FidelityReport, fidelity_report
from repro.core.compare import compare_machines, MachineComparison
from repro.core.fields import (
    FieldedJob,
    deflection_travel,
    order_shots,
    partition_fields,
)
from repro.core.jobfile import read_job, write_job, dumps_job, loads_job
from repro.core.hierarchical import (
    HierarchicalFractureResult,
    fracture_hierarchical,
)

__all__ = [
    "CacheDegradedWarning",
    "CacheStats",
    "ExecutionResult",
    "ExecutionStats",
    "FaultPlan",
    "FaultyCache",
    "HierarchicalFractureResult",
    "InjectedFaultError",
    "RetryPolicy",
    "Shard",
    "TransientFaultError",
    "ShardCache",
    "ShardOverlapWarning",
    "ShardedExecutor",
    "fingerprint",
    "fracture_hierarchical",
    "plan_shards",
    "shard_cache_key",
    "shutdown_worker_pool",
    "warm_worker_pool",
    "MachineJob",
    "PreparationPipeline",
    "PipelineResult",
    "FidelityReport",
    "fidelity_report",
    "compare_machines",
    "MachineComparison",
    "FieldedJob",
    "partition_fields",
    "order_shots",
    "deflection_travel",
    "read_job",
    "write_job",
    "dumps_job",
    "loads_job",
]

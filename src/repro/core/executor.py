"""Parallel field-sharded execution engine for the preparation pipeline.

Large layouts are prepared field by field: the writing-field mosaic that
the machine exposes one field at a time also partitions the *data
preparation* into independent work units, the same way conflict-avoiding
codes partition transmissions into difference classes that never collide.
Each shard (one mosaic tile's polygons) is fractured and proximity-
corrected on its own, so shards can run concurrently on a process pool;
the merge step then reassembles one :class:`~repro.core.job.MachineJob`
in deterministic row-major field order.

Determinism contract
--------------------
The shard plan depends only on the geometry and the ``field_size``
argument — never on the worker count.  Each shard is processed by pure
deterministic code, and shard results are merged in shard-plan order, so
``workers=N`` produces a shot-for-shot identical job to ``workers=1``
for every ``N``.

Sharding semantics
------------------
* ``field_size=None`` (the default) plans a single shard covering the
  whole layout — exactly the historical single-pass pipeline, including
  global proximity correction.
* With a ``field_size``, polygons are assigned to mosaic tiles by their
  bounding-box centre (the convention of
  :func:`repro.core.fields.field_index_of`, shared with post-fracture
  shot partitioning).  Proximity correction becomes field-local (no
  cross-field dose coupling), the standard mosaic approximation when
  the field pitch is large against the backscatter range β.

Overlap semantics
-----------------
The boolean union that dedupes overlapping input polygons runs per
shard, so overlaps *between polygons of different shards* would be
exposed twice (their area double-counts).  The shard planner therefore
enforces an ``overlap_policy``:

* ``"warn"`` (default) — detect polygons whose interiors overlap across
  shard boundaries and emit a :class:`ShardOverlapWarning`; the plan is
  kept as-is (the historical behaviour, now audible).
* ``"union"`` — boolean-union the layout before bucketing, which makes
  sharding exact for arbitrary overlap-heavy data at the cost of one
  global union pass.
* ``"ignore"`` — skip the check (for callers that guarantee disjoint
  inputs, e.g. the hierarchical flattener's per-layer merge).

This matters doubly with the shard cache: a silently double-counted
shard would be double-counted on every warm run as well.

Caching
-------
With a :class:`~repro.core.cache.ShardCache` attached, every shard's
content address (polygons + field index + fracturer/corrector/PSF
configuration) is computed before dispatch; hits skip fracture and
proximity correction entirely and misses are stored after processing.
Cache keys never depend on worker count or shard arrival order, and
payloads store exact doubles, so a warm run is byte-identical to a cold
serial run.
"""

from __future__ import annotations

import copy
import functools
import math
import os
import shutil
import struct
import tempfile
import threading
import time
import warnings
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    CancelledError,
    ProcessPoolExecutor,
)
from concurrent.futures import (
    wait as futures_wait,
)
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.core.cache import CacheDegradedWarning, ShardCache
from repro.core.faults import FaultPlan
from repro.core.fields import FieldIndex, field_index_of
from repro.fracture.base import Fracturer, Shot
from repro.fracture.quality import FractureReport, analyze_figures, merge_reports
from repro.geometry.polygon import Polygon
from repro.geometry.scanline_fast import KernelFallbacks
from repro.geometry.trapezoid import Trapezoid
from repro.pec.base import ProximityCorrector
from repro.physics.psf import DoubleGaussianPSF

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.machine.program import MachineProgram


class ShardOverlapWarning(UserWarning):
    """Polygons of different shards overlap — their area double-counts."""


class SpillDegradedWarning(UserWarning):
    """A streamed run stopped spilling shard results after a store failure.

    Emitted once per run by :meth:`ShardedExecutor.execute_stream` when a
    spill ``put_blob`` fails (ENOSPC, read-only filesystem): the run
    continues with the affected shard results held in memory — results
    are unaffected, only the bounded-memory guarantee degrades.  Degraded
    runs also count ``spill_fallbacks`` on their :class:`ExecutionStats`,
    so a degraded run never looks like a clean one.
    """


#: Pairwise interior-overlap checks budgeted per plan; beyond this the
#: planner warns conservatively instead of scaling quadratically.
_OVERLAP_CHECK_CAP = 20000
#: Penetration depth [µm] below which edges count as tangent, not
#: crossing — 1 pm, far under the 1 nm database grid.
_TANGENT_EPS = 1e-6


@dataclass(frozen=True)
class Shard:
    """One work unit: the polygons of a single writing-field tile.

    Attributes:
        index: field index ``(col, row)`` on the mosaic; ``(0, 0)`` for
            the unsharded single-tile plan.
        polygons: the tile's polygons, in layout order.
        figures: pre-fractured machine figures instead of polygons —
            set by hierarchy-aware runs, where each cell was fractured
            once up front and the executor only applies proximity
            correction per shard.  When set, ``polygons`` is empty and
            the fracturer is never invoked.
    """

    index: FieldIndex
    polygons: Tuple[Polygon, ...]
    figures: Optional[Tuple[Trapezoid, ...]] = None


@dataclass
class ShardResult:
    """What one shard produced: its shots and fracture bookkeeping.

    ``kernel_fallbacks`` records how often the fast scanline kernel
    degraded to a slower exact path while fracturing this shard.  It is
    a property of the shard's geometry, so it is persisted with the
    cached payload (warm runs report the same counters as cold runs)
    but never enters the cache key.
    """

    index: FieldIndex
    shots: List[Shot]
    report: FractureReport
    reference_area: float
    kernel_fallbacks: KernelFallbacks = field(default_factory=KernelFallbacks)


@dataclass(frozen=True)
class RetryPolicy:
    """How the engine retries shard work when infrastructure misbehaves.

    Attributes:
        max_attempts: total dispatch attempts per shard (1 = never
            retry).  Pool dispatches that infrastructure faults keep
            eating beyond this escalate to the in-process serial rung;
            a shard whose *own* transient exception survives
            ``max_attempts`` raises.
        backoff_base: delay [s] before the first retry; doubles per
            further retry.
        backoff_cap: delay ceiling [s].  The whole sequence is
            deterministic (no jitter), so fault-injection schedules
            replay identically.
        shard_timeout: per-shard hang watchdog [s]; ``None`` (default)
            disables it.  When *nothing* completes for this long, the
            in-flight shards count as hung: the pool is recycled with
            its workers killed and the victims re-enqueued.

    Classification (:meth:`is_transient`): ``BrokenExecutor``/``OSError``
    are infrastructure trouble and retry; anything else — above all
    ``ValueError`` from bad shard data — is deterministic, and retrying
    a pure function cannot change its outcome, so it fails fast.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    shard_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if (
            isinstance(self.max_attempts, bool)
            or not isinstance(self.max_attempts, int)
            or self.max_attempts < 1
        ):
            raise ValueError(
                f"max_attempts must be an int >= 1, "
                f"got {self.max_attempts!r}"
            )
        for name in ("backoff_base", "backoff_cap"):
            value = getattr(self, name)
            if (
                isinstance(value, bool)
                or not isinstance(value, (int, float))
                or value < 0
            ):
                raise ValueError(f"{name} must be >= 0, got {value!r}")
        timeout = self.shard_timeout
        if timeout is not None and (
            isinstance(timeout, bool)
            or not isinstance(timeout, (int, float))
            or timeout <= 0
        ):
            raise ValueError(
                f"shard_timeout must be positive or None, got {timeout!r}"
            )

    def backoff(self, retry_number: int) -> float:
        """Delay [s] before retry ``retry_number`` (1-based): a capped
        exponential ``min(cap, base * 2**(n-1))`` — deterministic by
        design."""
        if retry_number < 1:
            raise ValueError("retry_number is 1-based")
        return min(
            self.backoff_cap,
            self.backoff_base * 2.0 ** (retry_number - 1),
        )

    def is_transient(self, exc: BaseException) -> bool:
        """True for infrastructure faults worth retrying."""
        return isinstance(exc, (BrokenExecutor, OSError))


class BackoffWaiter:
    """An interruptible stand-in for ``time.sleep`` in retry backoff.

    The engine's deterministic capped backoff must never hold its
    caller hostage: a service's cooperative cancel or an expiring job
    budget should abort a *pending* backoff immediately instead of
    waiting it out.  ``wait`` runs ``check`` (which raises to abort —
    e.g. the service's ``JobCancelled``/``JobTimeoutError``) before and
    after sleeping on an event that :meth:`interrupt` sets, and never
    sleeps past ``deadline`` — so both cancellation and timeout cut a
    backoff short at the moment they land, not at its scheduled end.
    """

    def __init__(
        self,
        check: Optional[Callable[[], None]] = None,
        deadline: Optional[float] = None,
    ) -> None:
        self._event = threading.Event()
        self.check = check
        self.deadline = deadline

    def interrupt(self) -> None:
        """Wake every pending (and future) :meth:`wait` immediately."""
        self._event.set()

    def wait(self, delay: float) -> None:
        if self.check is not None:
            self.check()
        if self.deadline is not None:
            delay = min(delay, self.deadline - time.monotonic())
        if delay > 0:
            self._event.wait(delay)
        if self.check is not None:
            self.check()


@dataclass
class ShardRecovery:
    """One map call's recovery log, keyed by work-list position.

    All-zero/empty on a clean run — the counters behind the
    "a degraded run can never look like a clean one" contract.

    ``timeouts`` counts hang-watchdog victims per shard, including
    shards that were merely queued behind a hung worker when the
    watchdog fired (a conservative overcount: every re-enqueued
    in-flight shard is a victim).
    """

    retries: Dict[int, int] = field(default_factory=dict)
    salvaged: Set[int] = field(default_factory=set)
    timeouts: Dict[int, int] = field(default_factory=dict)
    pool_restarts: int = 0

    @property
    def retry_total(self) -> int:
        return sum(self.retries.values())

    @property
    def timeout_total(self) -> int:
        return sum(self.timeouts.values())


@dataclass
class ExecutionStats:
    """How an execution ran (for logs, benchmarks and the CLI).

    Attributes:
        cache_enabled: a shard cache was consulted for this run.
        cache_hits: shards answered from the cache (skipped entirely).
        cache_misses: shards computed (and stored) this run.
        hierarchy: how the figures were produced — ``"flat"`` (fracture
            per shard) or ``"cells"`` (each cell fractured once, figures
            replicated per placement, PEC per shard).
        cells_fractured: distinct (cell, layer) fracture computations
            in a ``"cells"`` run.
        instances_reused: placements served from the per-cell figure
            cache in a ``"cells"`` run.
        instances_fallback: placements that required re-fracturing
            (90°/270° rotations) in a ``"cells"`` run.
        kernel_fallbacks: total times the fast scanline kernel degraded
            to a slower exact path across all shards (0 means every
            sweep ran fully vectorized).  Split by reason into
            ``kernel_coord_fallbacks`` (coordinates beyond the kernel's
            exact range; whole sweeps handed to the reference engine)
            and ``kernel_slab_fallbacks`` (slabs swept by the scalar
            safety valve).
        shard_retries: shard dispatches re-run after a transient fault
            (worker death, transient exception, hang-watchdog victim).
        shards_salvaged: completed shard results preserved across pool
            restarts instead of being recomputed — the "re-enqueue,
            not a failed job" half of the fault-tolerance contract.
        pool_restarts: times the shared worker pool was torn down and
            rebuilt (broken or hung) during this run.  Run-level: a
            batch replicates the count onto every layout of the batch.
        shard_timeouts: shard dispatches abandoned by the hung-worker
            watchdog (see ``RetryPolicy.shard_timeout``).
        cache_write_failures: failed cache stores this run observed
            before degrading to read-only.
        cache_degraded: the run stopped storing cache entries after a
            write failure (ENOSPC, read-only filesystem); lookups
            continue.  Run-level flag, replicated across a batch.
        cache_evictions: corrupt cache entries evicted during this
            run's lookups (each also counts as a miss).
        dispatch: how shards were scheduled — ``"local"`` (this
            process's pool/serial ladder) or ``"distributed"`` (the
            lease coordinator of :mod:`repro.dist`; the remaining
            ``dist``-prefixed and lease counters are then live).  All
            distributed counters are run-level: a batch replicates them
            onto every layout of the batch.
        dist_workers: distinct worker daemons that contacted the
            coordinator during this run.
        leases_granted: shard leases handed to workers (including
            re-grants after reclaims and speculative duplicates).
        leases_reclaimed: leases taken back from dead workers or
            past-deadline (hung) shards and re-queued.
        worker_deaths: workers that went silent while holding leases.
        heartbeats_missed: silence episodes past two heartbeat
            intervals from a lease-holding worker.
        speculative_wins: straggler re-executions whose result landed
            first (the duplicate beat the original lease).
        speculative_losses: speculative leases whose original finished
            first (the duplicate's work was discarded).
        duplicate_commits: byte-identical re-commits discarded by the
            coordinator (at-least-once delivery made visible).
        dist_local_fallbacks: shards the fleet could not finish
            (attempt budget spent, no live workers) that the local
            pool → serial ladder completed instead.
        streamed: the run used the out-of-core field-window path
            (:meth:`ShardedExecutor.execute_stream`) — source polygons
            were spooled to disk and only one shard row was resident at
            a time; the remaining ``stream``/``spill`` counters are
            then live.
        stream_windows: shard-row windows dispatched by a streamed run.
        peak_window_bytes: high-water mark of one window's resident
            bytes (spooled source geometry read back for the window
            plus its serialized shard results) — the streamed
            counterpart of the machine-program writer's
            ``peak_segment_bytes`` witness.
        shards_spilled: completed shard results spilled to the cache's
            blob family instead of being held for the merge.
        spill_bytes: total serialized bytes spilled.
        spill_fallbacks: shard results held in memory because a spill
            store failed (ENOSPC, read-only filesystem) — the run
            degrades to an in-memory merge for those shards with one
            :class:`SpillDegradedWarning`, never a crash.
        program: the exported machine program for this run, when the
            pipeline ran with a ``machine`` mode — carries the
            write-time breakdown, exact stream bytes and channel check
            (see :mod:`repro.machine.program`).
    """

    shard_count: int = 1
    occupied_shards: int = 1
    workers: int = 1
    parallel: bool = False
    field_size: Optional[float] = None
    cache_enabled: bool = False
    cache_hits: int = 0
    cache_misses: int = 0
    hierarchy: str = "flat"
    cells_fractured: int = 0
    instances_reused: int = 0
    instances_fallback: int = 0
    kernel_fallbacks: int = 0
    kernel_coord_fallbacks: int = 0
    kernel_slab_fallbacks: int = 0
    shard_retries: int = 0
    shards_salvaged: int = 0
    pool_restarts: int = 0
    shard_timeouts: int = 0
    cache_write_failures: int = 0
    cache_degraded: bool = False
    cache_evictions: int = 0
    dispatch: str = "local"
    dist_workers: int = 0
    leases_granted: int = 0
    leases_reclaimed: int = 0
    worker_deaths: int = 0
    heartbeats_missed: int = 0
    speculative_wins: int = 0
    speculative_losses: int = 0
    duplicate_commits: int = 0
    dist_local_fallbacks: int = 0
    streamed: bool = False
    stream_windows: int = 0
    peak_window_bytes: int = 0
    shards_spilled: int = 0
    spill_bytes: int = 0
    spill_fallbacks: int = 0
    program: Optional["MachineProgram"] = None

    @property
    def fault_events(self) -> int:
        """Total recovery events — nonzero iff the run degraded
        anywhere (the CLI prints its ``faults:`` line exactly then).
        Clean-run distributed counters (workers, granted leases,
        speculation outcomes) are excluded; reclaims, deaths and missed
        heartbeats are degradation and count."""
        return (
            self.shard_retries
            + self.shards_salvaged
            + self.pool_restarts
            + self.shard_timeouts
            + self.cache_write_failures
            + int(self.cache_degraded)
            + self.leases_reclaimed
            + self.worker_deaths
            + self.heartbeats_missed
            + self.spill_fallbacks
        )


@dataclass
class ExecutionResult:
    """Merged output of all shards, in deterministic shard order.

    ``shard_results`` keeps the per-shard results (plan order, shot
    lists shared with ``shots`` by reference) so downstream consumers —
    the machine-program exporter above all — can stream per shard
    without re-partitioning the merged list.
    """

    shots: List[Shot] = field(default_factory=list)
    report: FractureReport = field(
        default_factory=lambda: analyze_figures([])
    )
    corrected: bool = False
    stats: ExecutionStats = field(default_factory=ExecutionStats)
    shard_results: List[ShardResult] = field(default_factory=list)


def plan_shards(
    polygons: Sequence[Polygon],
    field_size: Optional[float] = None,
    origin: Optional[Tuple[float, float]] = None,
    overlap_policy: str = "warn",
) -> List[Shard]:
    """Partition a flattened polygon list into writing-field shards.

    Polygons are assigned whole to the tile containing their bounding-box
    centre (no polygon is split, so a shard's fracture is exact); the
    mosaic is anchored at ``origin``, defaulting to the lower-left of the
    combined bounding box.  Shards come back sorted row-major
    (bottom row first, left to right) — the merge order.

    ``field_size=None`` returns one shard with everything.

    ``overlap_policy`` governs polygons whose interiors overlap across
    shard boundaries (their area would double-count): ``"warn"`` emits a
    :class:`ShardOverlapWarning`, ``"union"`` boolean-unions the layout
    before bucketing, ``"ignore"`` skips the check.
    """
    if overlap_policy not in ("warn", "union", "ignore"):
        raise ValueError(
            f"overlap_policy must be 'warn', 'union' or 'ignore', "
            f"got {overlap_policy!r}"
        )
    polygons = list(polygons)
    if not polygons:
        return []
    if field_size is None:
        return [Shard(index=(0, 0), polygons=tuple(polygons))]
    if field_size <= 0:
        raise ValueError("field size must be positive")
    if overlap_policy == "union" and len(polygons) > 1:
        from repro.geometry.boolean import union

        polygons = union(polygons)
    buckets, origin = _bucket_row_major(polygons, field_size, origin)
    if overlap_policy == "warn":
        _warn_on_cross_shard_overlap(
            buckets, origin, field_size, lambda poly: poly
        )
    return [
        Shard(index=index, polygons=tuple(buckets[index]))
        for index in sorted(buckets, key=lambda ij: (ij[1], ij[0]))
    ]


def plan_figure_shards(
    figures: Sequence[Trapezoid],
    field_size: Optional[float] = None,
    origin: Optional[Tuple[float, float]] = None,
    overlap_policy: str = "warn",
) -> List[Shard]:
    """Partition pre-fractured machine figures into writing-field shards.

    The figure-level counterpart of :func:`plan_shards` for
    hierarchy-aware runs: each figure is assigned whole to the tile
    containing its bounding-box centre, shards come back row-major.

    Figures of one fracture are disjoint, but figures of *different*
    instances (or ill-formed overlapping placements) may overlap —
    exactly like input polygons in :func:`plan_shards` — so
    ``overlap_policy="warn"`` runs the same cross-shard interior check.
    ``"union"`` is rejected: pre-unioning would require re-fracturing,
    which is what a pre-fractured run exists to avoid — run flat or
    choose ``"warn"``/``"ignore"`` instead.
    """
    if overlap_policy not in ("warn", "ignore"):
        if overlap_policy == "union":
            raise ValueError(
                "overlap_policy='union' is incompatible with "
                "pre-fractured figure shards (it would re-fracture the "
                "layout); use hierarchy='flat' or overlap_policy "
                "'warn'/'ignore'"
            )
        raise ValueError(
            f"overlap_policy must be 'warn', 'union' or 'ignore', "
            f"got {overlap_policy!r}"
        )
    figures = list(figures)
    if not figures:
        return []
    if field_size is None:
        return [Shard(index=(0, 0), polygons=(), figures=tuple(figures))]
    buckets, origin = _bucket_row_major(figures, field_size, origin)
    if overlap_policy == "warn":
        _warn_on_cross_shard_overlap(
            buckets, origin, field_size, lambda trap: trap.to_polygon()
        )
    return [
        Shard(index=index, polygons=(), figures=tuple(buckets[index]))
        for index in sorted(buckets, key=lambda ij: (ij[1], ij[0]))
    ]


def _bucket_row_major(
    items: Sequence,
    field_size: float,
    origin: Optional[Tuple[float, float]],
) -> Tuple[dict, Tuple[float, float]]:
    """Bucket geometry by bounding-box centre onto the field mosaic.

    Shared by the polygon and figure planners so flat and cells runs
    shard identically: mosaic anchored at ``origin`` (lower-left of the
    combined bounding box by default), items assigned whole via
    :func:`repro.core.fields.field_index_of`, input order preserved
    within each bucket.
    """
    if field_size <= 0:
        raise ValueError("field size must be positive")
    boxes = [item.bounding_box() for item in items]
    if origin is None:
        origin = (min(b[0] for b in boxes), min(b[1] for b in boxes))
    x0, y0 = origin
    buckets: dict = {}
    for item, (bx0, by0, bx1, by1) in zip(items, boxes):
        index = field_index_of(
            (bx0 + bx1) / 2.0, (by0 + by1) / 2.0, x0, y0, field_size
        )
        buckets.setdefault(index, []).append(item)
    return buckets, origin


def _window_edges(
    poly: Polygon, window: Tuple[float, float, float, float]
) -> List[Tuple[float, float, float, float]]:
    """Edges of ``poly`` whose bounding box meets the window, as
    ``(x1, y1, x2, y2)`` tuples — two overlapping polygons can only
    interact inside the intersection of their bounding boxes."""
    wx0, wy0, wx1, wy1 = window
    verts = poly.vertices
    edges = []
    for i, a in enumerate(verts):
        b = verts[(i + 1) % len(verts)]
        if (
            max(a.x, b.x) >= wx0
            and min(a.x, b.x) <= wx1
            and max(a.y, b.y) >= wy0
            and min(a.y, b.y) <= wy1
        ):
            edges.append((a.x, a.y, b.x, b.y))
    return edges


def _interiors_overlap(
    a: Polygon,
    b: Polygon,
    bb_a: Tuple[float, float, float, float],
    bb_b: Tuple[float, float, float, float],
) -> bool:
    """True iff the interiors of two simple polygons share positive area.

    Two simple polygons overlap with positive area iff an edge of one
    properly crosses an edge of the other, or a boundary point of one
    lies strictly inside the other (containment without crossings).
    Both tests are strict with a sub-nanometre tolerance — well under
    the 1 nm database grid — so abutting or corner-touching polygons
    (the normal mosaic case, including nearly-collinear shared edges
    with last-ulp trigonometric jitter) are not flagged.  Much cheaper
    than a boolean intersection: edges are pruned to the shared
    bounding-box window first.
    """
    window = (
        max(bb_a[0], bb_b[0]),
        max(bb_a[1], bb_b[1]),
        min(bb_a[2], bb_b[2]),
        min(bb_a[3], bb_b[3]),
    )
    edges_a = _window_edges(a, window)
    edges_b = _window_edges(b, window)

    def cross(ox, oy, px, py, qx, qy):
        return (px - ox) * (qy - oy) - (py - oy) * (qx - ox)

    # A crossing is "proper" only if each segment's endpoints sit on
    # strictly opposite sides of the other segment's line by more than
    # _TANGENT_EPS (the cross products below are point-to-line distances
    # scaled by the segment length).
    for ax1, ay1, ax2, ay2 in edges_a:
        len_a = math.hypot(ax2 - ax1, ay2 - ay1)
        tol_a = _TANGENT_EPS * len_a
        for bx1, by1, bx2, by2 in edges_b:
            d1 = cross(ax1, ay1, ax2, ay2, bx1, by1)
            d2 = cross(ax1, ay1, ax2, ay2, bx2, by2)
            if not (
                (d1 > tol_a and d2 < -tol_a)
                or (d1 < -tol_a and d2 > tol_a)
            ):
                continue
            tol_b = _TANGENT_EPS * math.hypot(bx2 - bx1, by2 - by1)
            d3 = cross(bx1, by1, bx2, by2, ax1, ay1)
            d4 = cross(bx1, by1, bx2, by2, ax2, ay2)
            if (d3 > tol_b and d4 < -tol_b) or (
                d3 < -tol_b and d4 > tol_b
            ):
                return True

    for edges, other in ((edges_a, b), (edges_b, a)):
        for x1, y1, x2, y2 in edges:
            if other.contains_point((x1, y1), include_boundary=False):
                return True
            mid = ((x1 + x2) / 2.0, (y1 + y2) / 2.0)
            if other.contains_point(mid, include_boundary=False):
                return True
    return False


def _warn_on_cross_shard_overlap(
    buckets: dict,
    origin: Tuple[float, float],
    field_size: float,
    as_polygon,
) -> None:
    """Emit :class:`ShardOverlapWarning` if items of different shards
    have positive-area interior overlap.

    ``as_polygon`` converts a bucket item to a :class:`Polygon` for the
    exact interior test (identity for polygon shards, ``to_polygon``
    for pre-fractured figure shards).  An overlapping cross-shard pair
    always involves at least one item whose bounding box escapes its
    own tile, so the exact interior test runs only on bbox-overlapping
    pairs with a boundary crosser in them — a sorted sweep keeps the
    candidate set small for mosaic-friendly layouts, and fully
    tile-contained layouts skip the sweep entirely.
    """
    x0, y0 = origin
    entries: List[
        Tuple[FieldIndex, Polygon, Tuple[float, float, float, float], bool]
    ] = []
    any_crosser = False
    for index, items in buckets.items():
        tile_x0 = x0 + index[0] * field_size
        tile_y0 = y0 + index[1] * field_size
        tile_x1 = tile_x0 + field_size
        tile_y1 = tile_y0 + field_size
        for item in items:
            bb = item.bounding_box()
            crosser = (
                bb[0] < tile_x0
                or bb[1] < tile_y0
                or bb[2] > tile_x1
                or bb[3] > tile_y1
            )
            any_crosser = any_crosser or crosser
            entries.append((index, item, bb, crosser))
    # Two polygons both contained in their own tiles cannot overlap, so
    # every overlapping cross-shard pair involves a boundary crosser.
    if not any_crosser:
        return
    entries.sort(key=lambda item: item[2][0])
    active: List[
        Tuple[FieldIndex, Polygon, Tuple[float, float, float, float], bool]
    ] = []
    checked = 0
    for index, item, bb, crosser in entries:
        active = [entry for entry in active if entry[2][2] > bb[0]]
        for other_index, other_item, other_bb, other_crosser in active:
            if other_index == index:
                continue
            if not (crosser or other_crosser):
                continue
            if min(bb[3], other_bb[3]) <= max(bb[1], other_bb[1]):
                continue
            checked += 1
            if checked > _OVERLAP_CHECK_CAP:
                warnings.warn(
                    "too many boundary-crossing polygon pairs to verify "
                    "exactly; layout may overlap across shards and "
                    "double-count exposed area — pre-union the layout, "
                    "pass overlap_policy='union', or run with "
                    "field_size=None",
                    ShardOverlapWarning,
                    stacklevel=3,
                )
                return
            if _interiors_overlap(
                as_polygon(item), as_polygon(other_item), bb, other_bb
            ):
                warnings.warn(
                    f"polygons of shards {other_index} and {index} "
                    "overlap; their overlap area is exposed twice (and "
                    "would be replayed from the shard cache) — "
                    "pre-union the layout, pass overlap_policy='union', "
                    "or run with field_size=None",
                    ShardOverlapWarning,
                    stacklevel=3,
                )
                return
        active.append((index, item, bb, crosser))


def _process_shard(
    shard: Shard,
    fracturer: Fracturer,
    corrector: Optional[ProximityCorrector],
    psf: Optional[DoubleGaussianPSF],
) -> ShardResult:
    """Fracture and (optionally) proximity-correct one shard.

    Pre-fractured shards (``shard.figures`` set) skip the fracturer and
    go straight to dosing/correction.  Module-level so the process pool
    can pickle it; must stay pure — the determinism contract of the
    engine rests on it.
    """
    if shard.figures is not None:
        shots = [Shot(t) for t in shard.figures]
        fallbacks = KernelFallbacks()
    else:
        shots = fracturer.fracture_to_shots(shard.polygons)
        fallbacks = fracturer.last_fallbacks.copy()
    figures = [s.trapezoid for s in shots]
    # The fracture is a disjoint cover, so its own area is the reference
    # for downstream bookkeeping.
    reference_area = sum(t.area() for t in figures)
    report = analyze_figures(figures, reference_area=reference_area)
    if corrector is not None and shots:
        shots = corrector.correct(shots, psf)
    return ShardResult(
        index=shard.index,
        shots=shots,
        report=report,
        reference_area=reference_area,
        kernel_fallbacks=fallbacks,
    )


def _resolve_workers(workers: Optional[int]) -> int:
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 1:
        raise ValueError("workers must be >= 1 (or None/0 for all cores)")
    return workers


# The persistent worker pool, shared by every executor in the process.
# Spawning a pool costs a fork+import per worker — dominant on small
# workloads — so the pool outlives individual runs and is only rebuilt
# when a different size is requested.  Shard-processing configuration is
# bound per map call (pickled once per chunk, not per shard), so the
# same warm pool serves runs with different fracturer/corrector/PSF
# configurations.
#
# Concurrent runs (a job server's worker threads) share the pool too:
# every run holds a lease for the duration of its map, and a lease-held
# pool is never torn down — a run requesting a different size simply
# reuses the live pool (worker count is a wall-clock knob, never a
# correctness knob), so one tenant's ``workers`` setting cannot cancel
# another tenant's in-flight shards.
_pool_lock = threading.Lock()
_shared_pool: Optional[ProcessPoolExecutor] = None
_shared_pool_size: int = 0
_pool_leases: int = 0


def _lease_pool(pool_size: int) -> ProcessPoolExecutor:
    """Acquire the shared pool for one map, creating/resizing if safe.

    The pool is rebuilt at the requested size only when no other run is
    using it; while leases are held the live pool is reused regardless
    of the size asked for.  Every call must be paired with
    :func:`_release_pool` (use ``try/finally``).
    """
    global _shared_pool, _shared_pool_size, _pool_leases
    with _pool_lock:
        if (
            _shared_pool is not None
            and _shared_pool_size != pool_size
            and _pool_leases == 0
        ):
            _shutdown_pool_locked()
        if _shared_pool is None:
            _shared_pool = ProcessPoolExecutor(max_workers=pool_size)
            _shared_pool_size = pool_size
        _pool_leases += 1
        return _shared_pool


def _release_pool() -> None:
    global _pool_leases
    with _pool_lock:
        _pool_leases = max(0, _pool_leases - 1)


def _shutdown_pool_locked() -> None:
    """Tear down the pool; caller holds ``_pool_lock``."""
    global _shared_pool, _shared_pool_size
    if _shared_pool is not None:
        _shared_pool.shutdown(wait=True, cancel_futures=True)
        _shared_pool = None
        _shared_pool_size = 0


def shutdown_worker_pool() -> None:
    """Tear down the shared worker pool (tests, benchmarks, atexit).

    Concurrent runs still holding a lease fall back to their serial
    path (their in-flight futures are cancelled) — results are
    unchanged, only wall-clock suffers.
    """
    with _pool_lock:
        _shutdown_pool_locked()


def _reset_pool_if_unleased() -> None:
    """Drop the shared pool unless another run still holds a lease.

    The consistent failure path for pool setup/warm-up errors: a pool
    we failed to use may be half-spawned or dead, but tearing it down
    under a concurrent tenant would cancel their in-flight shards — so
    the reset only happens when nobody is leasing.
    """
    with _pool_lock:
        if _pool_leases == 0:
            _shutdown_pool_locked()


def _recycle_pool(pool, kill_workers: bool = False) -> None:
    """Tear down a broken/hung shared pool so the next lease spawns a
    fresh one.

    ``kill_workers`` SIGKILLs the pool's worker processes first — a
    hung worker never honours a cooperative shutdown, so a plain
    ``shutdown()`` would block on it forever.  Held leases do *not*
    defer the recycle: a broken pool is unusable for every tenant, and
    each concurrent run recovers through its own retry ladder.  A pool
    that was already replaced (another run recycled first) is left
    alone.
    """
    with _pool_lock:
        if _shared_pool is not pool:
            return
        if kill_workers:
            processes = getattr(pool, "_processes", None) or {}
            for process in list(processes.values()):
                try:
                    process.kill()
                except (AttributeError, OSError):
                    pass
        _shutdown_pool_locked()


def worker_pool_status() -> dict:
    """A snapshot of the shared pool for monitoring endpoints.

    Returns a mapping with ``size`` (configured worker count, 0 when no
    pool is alive) and ``alive`` (whether a pool currently exists) —
    what a service's ``/stats`` endpoint reports as "pool state".
    """
    with _pool_lock:
        return {
            "size": _shared_pool_size if _shared_pool is not None else 0,
            "alive": _shared_pool is not None,
        }


def warm_worker_pool(workers: Optional[int] = None) -> int:
    """Pre-spawn the shared pool's worker processes.

    Benchmarks call this so their timings report pool-warm numbers —
    the steady state of a long-running service — instead of charging
    one-off process spawn cost to the first measured run.  Returns the
    pool size (0 when ``workers <= 1`` means no pool is used).
    """
    workers = _resolve_workers(workers)
    if workers <= 1:
        return 0
    try:
        pool = _lease_pool(workers)
    except (OSError, PermissionError, BrokenExecutor):
        _reset_pool_if_unleased()
        return 0
    try:
        try:
            # One blocking task per worker forces every process to spawn.
            list(pool.map(_noop, range(workers), chunksize=1))
        finally:
            _release_pool()
    except (
        OSError,
        PermissionError,
        BrokenExecutor,
        CancelledError,
        RuntimeError,
    ):
        # Warm-up failed or the pool was shut down under us
        # (CancelledError/RuntimeError).  Either way the pool's state
        # is dubious — never leave a half-warmed or dead pool behind in
        # the globals for the next run to trip over.  Unless a
        # concurrent tenant still leases it, that is: their run is
        # live, the reset is theirs to make.
        _reset_pool_if_unleased()
        return 0
    return workers


def _noop(value):
    return value


def _process_shard_task(
    config: tuple, faults: Optional[FaultPlan], task: tuple
) -> ShardResult:
    """Pool/serial entry point for one ``(position, attempt, shard)``
    work item: fire any scheduled injection fault, then process the
    shard.  ``config``/``faults`` are bound via ``functools.partial``
    so they pickle once per submission batch, not once per shard."""
    position, attempt, shard = task
    if faults is not None:
        faults.fire(position, attempt)
    return _process_shard(shard, *config)


def _map_shards(
    shards: List[Shard],
    config: tuple,
    workers: int,
    tick: Optional[Callable[[], None]] = None,
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultPlan] = None,
    waiter: Optional[BackoffWaiter] = None,
) -> Tuple[List[ShardResult], bool, ShardRecovery]:
    """Run shards through ``config = (fracturer, corrector, psf)`` on
    the shared persistent process pool when it pays off, surviving
    worker deaths, hangs and transient failures.

    Returns ``(results, pooled, recovery)``: results in shard order,
    whether any result actually came off a pool, and the recovery log
    (all-zero on a clean run).

    The recovery ladder, governed by ``retry``:

    * a broken pool (worker death) keeps every *completed* result and
      re-enqueues only unfinished shards on a fresh pool;
    * when nothing completes within ``retry.shard_timeout``, the
      in-flight shards count as hung — the pool is recycled with its
      workers killed and the victims re-enqueued;
    * transient shard exceptions (``retry.is_transient``) re-dispatch
      up to ``retry.max_attempts`` total attempts with deterministic
      capped backoff, then raise; deterministic exceptions raise
      immediately (retrying a pure function cannot change its outcome);
    * shards whose pool dispatches infrastructure keeps eating (pool
      refused to spawn, shut down externally, or broken at every
      attempt) escalate to the in-process serial rung — the last rung,
      where only the shard's own exceptions remain.

    ``tick`` is invoked once per completed shard (in completion order,
    which is nondeterministic on a pool) — it feeds progress reporting
    only and must never influence results.  Exceptions it raises (a
    service's cooperative cancellation) propagate after cleanup.
    """
    if retry is None:
        retry = RetryPolicy()
    n = len(shards)
    results: List[Optional[ShardResult]] = [None] * n
    attempts = [0] * n
    recovery = ShardRecovery()
    bound = functools.partial(_process_shard_task, config, faults)

    def backoff_sleep(retry_number: int) -> None:
        delay = retry.backoff(retry_number)
        if waiter is not None:
            # Interruptible: a cancel or expired job budget aborts the
            # pending backoff instead of waiting it out.
            waiter.wait(delay)
        elif delay > 0:
            time.sleep(delay)

    def run_serial(position: int) -> None:
        while True:
            attempt = attempts[position]
            attempts[position] = attempt + 1
            if attempt > 0:
                recovery.retries[position] = (
                    recovery.retries.get(position, 0) + 1
                )
                backoff_sleep(attempt)
            try:
                results[position] = bound(
                    (position, attempt, shards[position])
                )
            except Exception as exc:
                if (
                    retry.is_transient(exc)
                    and attempts[position] < retry.max_attempts
                ):
                    continue
                raise
            if tick is not None:
                tick()
            return

    if workers <= 1 or n <= 1:
        for position in range(n):
            run_serial(position)
        return results, False, recovery

    # The pool is sized by the workers setting, not the shard count, so
    # consecutive runs with the same setting always reuse it.
    pooled = False
    pending = list(range(n))
    round_no = 0
    while pending:
        round_no += 1
        if round_no > 1:
            backoff_sleep(round_no - 1)
        try:
            pool = _lease_pool(workers)
        except (OSError, PermissionError, BrokenExecutor):
            # The platform refuses to spawn workers (restricted
            # sandboxes): straight to the serial rung.
            _reset_pool_if_unleased()
            break
        futures: Dict = {}
        rebuild = False
        kill_workers = False
        to_serial = False
        failure: Optional[BaseException] = None
        try:
            try:
                for position in pending:
                    attempt = attempts[position]
                    if attempt >= retry.max_attempts:
                        # Infrastructure kept eating this shard's pool
                        # dispatches (the shard itself never raised).
                        # Escalate to the serial rung instead of
                        # spinning pool rounds forever.
                        to_serial = True
                        continue
                    attempts[position] = attempt + 1
                    if attempt > 0:
                        recovery.retries[position] = (
                            recovery.retries.get(position, 0) + 1
                        )
                    future = pool.submit(
                        bound, (position, attempt, shards[position])
                    )
                    futures[future] = position
            except BrokenExecutor:
                rebuild = True
            except (CancelledError, RuntimeError):
                # The pool was shut down under us (another tenant's
                # explicit shutdown): don't spawn a fresh one just for
                # this run — finish on the serial rung.  CancelledError
                # is a BaseException on supported Pythons, so catching
                # it here keeps it from escaping a plain ``except
                # Exception`` in callers (a service's queue worker).
                to_serial = True
            outstanding = set(futures)
            while outstanding and failure is None:
                done, outstanding = futures_wait(
                    outstanding,
                    timeout=retry.shard_timeout,
                    return_when=FIRST_COMPLETED,
                )
                if not done:
                    # Nothing in the whole pool completed within the
                    # shard timeout: the workers holding these shards
                    # are hung.  Count every in-flight shard a victim,
                    # kill the workers, re-enqueue.
                    for future in outstanding:
                        victim = futures[future]
                        recovery.timeouts[victim] = (
                            recovery.timeouts.get(victim, 0) + 1
                        )
                        future.cancel()
                        if attempts[victim] >= retry.max_attempts:
                            failure = TimeoutError(
                                f"shard {victim} timed out on all "
                                f"{attempts[victim]} attempts "
                                f"({retry.shard_timeout:g} s each)"
                            )
                    rebuild = True
                    kill_workers = True
                    break
                for future in done:
                    position = futures[future]
                    try:
                        exc = future.exception()
                    except CancelledError as cancelled:
                        exc = cancelled
                    if exc is None:
                        results[position] = future.result()
                        pooled = True
                        if tick is not None:
                            tick()
                    elif isinstance(exc, BrokenExecutor):
                        # A worker died; completed siblings keep their
                        # results, this shard re-enqueues on the fresh
                        # pool.
                        rebuild = True
                    elif isinstance(exc, CancelledError):
                        to_serial = True
                    elif retry.is_transient(exc):
                        if attempts[position] >= retry.max_attempts:
                            failure = exc
                    else:
                        failure = exc
        finally:
            for future in futures:
                future.cancel()
            _release_pool()
        if rebuild:
            recovery.pool_restarts += 1
            recovery.salvaged.update(
                position
                for position in range(n)
                if results[position] is not None
            )
            _recycle_pool(pool, kill_workers=kill_workers)
        if failure is not None:
            raise failure
        pending = [p for p in pending if results[p] is None]
        if to_serial:
            break
    for position in pending:
        if results[position] is None:
            run_serial(position)
    return results, pooled, recovery


def merge_shard_results(
    results: Sequence[ShardResult], corrected: bool, stats: ExecutionStats
) -> ExecutionResult:
    """Concatenate shard shots in shard order and merge the reports."""
    shots: List[Shot] = []
    for result in results:
        shots.extend(result.shots)
    reference = sum(r.reference_area for r in results)
    report = merge_reports(
        [r.report for r in results], reference_area=reference
    )
    return ExecutionResult(
        shots=shots,
        report=report,
        corrected=corrected,
        stats=stats,
        shard_results=list(results),
    )


#: Spool record framing: a big-endian vertex count followed by that many
#: ``(x, y)`` float64 pairs.  Doubles round-trip exactly, so a polygon
#: re-read from the spool is vertex-identical to the one spooled.
_SPOOL_COUNT = struct.Struct(">I")


class StreamingExecution:
    """Handle on one out-of-core execution (cursor over spilled results).

    Returned by :meth:`ShardedExecutor.execute_stream` after all shard
    windows have been dispatched: it carries the merged
    :class:`~repro.fracture.quality.FractureReport`, the
    :class:`ExecutionStats` (with the streaming witness counters live)
    and a *re-iterable* row-major cursor over the shard results —
    :meth:`iter_results` re-reads each spilled result from the cache's
    blob family one at a time, so job assembly never holds more than one
    shard's shots resident.

    Use as a context manager (or call :meth:`close`) so a run without a
    configured cache can remove its private spill directory.
    """

    def __init__(
        self,
        stats: ExecutionStats,
        report: FractureReport,
        corrected: bool,
        source_polygons: int,
        total_shots: int,
        entries: List[Tuple[Optional[str], Optional[ShardResult]]],
        spill_cache: Optional[ShardCache],
        spill_dir: Optional[str],
    ) -> None:
        self.stats = stats
        self.report = report
        self.corrected = corrected
        self.source_polygons = source_polygons
        self.total_shots = total_shots
        self._entries = entries
        self._spill_cache = spill_cache
        self._spill_dir = spill_dir
        self._closed = False

    @property
    def occupied_shards(self) -> int:
        return self.stats.occupied_shards

    def iter_results(self):
        """Yield every :class:`ShardResult` in row-major shard order.

        Spilled results are re-read from the blob store one at a time
        (without touching the cache's hit/miss accounting); results that
        degraded to the in-memory fallback are yielded directly.  The
        cursor is re-iterable — the machine-program exporter and the job
        writer each take their own pass.
        """
        from repro.core.jobfile import loads_shard_result

        for key, resident in self._entries:
            if resident is not None:
                yield resident
                continue
            if self._closed:
                raise RuntimeError(
                    "streaming execution is closed; its spilled shard "
                    "results are no longer readable"
                )
            payload = self._spill_cache.get_blob(key, record=False)
            if payload is None:
                raise RuntimeError(
                    f"spilled shard result {key} vanished from the cache "
                    "before job assembly (cache pruned concurrently?)"
                )
            yield loads_shard_result(payload)

    def close(self) -> None:
        """Release the private spill directory (idempotent).

        Spills into a caller-configured :class:`ShardCache` are left in
        place: they are content-addressed blobs a concurrent run may
        share, and ordinary cache maintenance prunes them.
        """
        if self._closed:
            return
        self._closed = True
        if self._spill_dir is not None:
            shutil.rmtree(self._spill_dir, ignore_errors=True)

    def __enter__(self) -> "StreamingExecution":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class ShardedExecutor:
    """Runs fracture + proximity correction over a field-shard plan.

    Args:
        fracturer: fracturing strategy applied per shard.
        corrector: optional proximity corrector (field-local per shard).
        psf: exposure PSF (required with a corrector).
        workers: default worker-pool size; 1 = serial, ``None``/0 = all
            cores.  Never affects results, only wall-clock.
        field_size: default mosaic pitch [µm]; ``None`` = one shard.
        cache: optional shard-result cache consulted before dispatching
            a shard and updated after.  Never affects results, only
            wall-clock (payloads are exact; keys cover the full shard
            input).
        overlap_policy: cross-shard overlap handling for the planner —
            ``"warn"`` (default), ``"union"`` or ``"ignore"``.
        matrix_mode: override for the corrector's exposure-operator
            backend (``"dense"``, ``"sparse"`` or ``"hybrid"``, see
            :mod:`repro.pec.operator`).  Applied to the corrector
            configuration, so it ships to pool workers with the shard
            config and participates in shard cache keys — a dense-mode
            result is never replayed for a hybrid-mode request.
        progress: optional per-shard completion callback
            ``progress(done, total)`` — invoked with ``done=0`` once the
            shard plan is known, then with the running completion count
            (cache hits report immediately).  Feeds progress reporting
            (e.g. a job server's status endpoint); it runs outside the
            shard computation and never influences results.
        retry: the :class:`RetryPolicy` governing shard-level fault
            recovery (per-shard retries, backoff, hang watchdog);
            defaults to ``RetryPolicy()``.  Never affects results —
            an injected-fault run that ends in success is byte-identical
            to a clean run.
        faults: an optional :class:`~repro.core.faults.FaultPlan` of
            injected shard faults (chaos testing); armed with this
            process's pid at execution time.  ``None`` in production.
        dispatch: shard scheduling — ``"local"`` (default: this
            process's pool/serial ladder) or ``"distributed"`` (lease
            out shards to the worker fleet on ``endpoint`` via
            :mod:`repro.dist`; unfinished work still falls back to the
            local ladder).  Never changes results, only where the work
            runs — distributed output is byte-identical to serial.
        endpoint: coordinator ``host:port`` for distributed dispatch.
        dist_policy: :class:`~repro.dist.coordinator.DistPolicy`
            scheduling knobs for distributed dispatch (lease deadlines,
            heartbeats, speculation); defaults apply when ``None``.
        waiter: optional :class:`BackoffWaiter` making retry backoffs
            interruptible (a service's cancel/timeout path); ``None``
            falls back to plain sleeps.
    """

    def __init__(
        self,
        fracturer: Fracturer,
        corrector: Optional[ProximityCorrector] = None,
        psf: Optional[DoubleGaussianPSF] = None,
        workers: int = 1,
        field_size: Optional[float] = None,
        cache: Optional[ShardCache] = None,
        overlap_policy: str = "warn",
        matrix_mode: Optional[str] = None,
        progress: Optional[Callable[[int, int], None]] = None,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[FaultPlan] = None,
        dispatch: str = "local",
        endpoint: Optional[str] = None,
        dist_policy=None,
        waiter: Optional[BackoffWaiter] = None,
    ) -> None:
        if corrector is not None and psf is None:
            raise ValueError("a corrector requires a PSF")
        if matrix_mode is not None:
            from repro.pec.operator import validate_matrix_mode

            validate_matrix_mode(matrix_mode)
            if corrector is None:
                raise ValueError("matrix_mode requires a corrector")
            if not hasattr(corrector, "matrix_mode"):
                raise ValueError(
                    f"{type(corrector).__name__} does not support "
                    "matrix_mode"
                )
            if corrector.matrix_mode != matrix_mode:
                # Reconfigure a copy: the caller's corrector may be
                # shared with other pipelines and must not change under
                # them.
                corrector = copy.copy(corrector)
                corrector.matrix_mode = matrix_mode
        self.fracturer = fracturer
        self.corrector = corrector
        self.psf = psf
        self.workers = workers
        self.field_size = field_size
        self.cache = cache
        self.overlap_policy = overlap_policy
        self.matrix_mode = matrix_mode
        self.progress = progress
        self.retry = retry if retry is not None else RetryPolicy()
        self.faults = faults
        if dispatch not in ("local", "distributed"):
            raise ValueError(
                f"dispatch must be 'local' or 'distributed', "
                f"got {dispatch!r}"
            )
        if dispatch == "distributed" and not endpoint:
            raise ValueError(
                "distributed dispatch requires an endpoint (host:port)"
            )
        self.dispatch = dispatch
        self.endpoint = endpoint
        self.dist_policy = dist_policy
        self.waiter = waiter
        self._last_dist = None

    def _map(
        self,
        shards: List[Shard],
        config: tuple,
        workers: int,
        tick: Optional[Callable[[], None]],
        retry: RetryPolicy,
        faults: Optional[FaultPlan],
        cache_keys: Optional[List[str]] = None,
    ) -> Tuple[List[ShardResult], bool, ShardRecovery]:
        """Route one shard map to the configured dispatch path.

        Distributed runs stash their scheduling counters on
        ``self._last_dist`` for :meth:`execute_many` to fold into the
        batch's :class:`ExecutionStats`.
        """
        self._last_dist = None
        if self.dispatch == "distributed" and shards:
            from repro.dist.run import map_shards_distributed

            results, pooled, recovery, dist = map_shards_distributed(
                shards,
                config,
                workers,
                endpoint=self.endpoint,
                tick=tick,
                retry=retry,
                faults=faults,
                policy=self.dist_policy,
                cache_keys=cache_keys,
                waiter=self.waiter,
            )
            self._last_dist = dist
            return results, pooled, recovery
        return _map_shards(
            shards,
            config,
            workers,
            tick=tick,
            retry=retry,
            faults=faults,
            waiter=self.waiter,
        )

    def _progress_tick(self, total: int) -> Optional[Callable[[], None]]:
        """A thread-safe per-shard tick feeding ``self.progress``.

        Announces ``(0, total)`` up front so callers learn the shard
        count before any work completes; returns ``None`` when no
        progress callback is configured.
        """
        if self.progress is None:
            return None
        progress = self.progress
        lock = threading.Lock()
        done = 0
        progress(0, total)

        def tick() -> None:
            nonlocal done
            with lock:
                done += 1
                current = done
            progress(current, total)

        return tick

    def _resolve_cache(
        self, cache: Union[ShardCache, bool, None]
    ) -> Optional[ShardCache]:
        """Per-call cache override: ``None`` = default, ``False`` = off,
        ``True`` = require the configured default, or an explicit cache."""
        if cache is None:
            return self.cache
        if cache is False:
            return None
        if cache is True:
            if self.cache is None:
                raise ValueError(
                    "cache=True requested but no cache is configured"
                )
            return self.cache
        return cache

    # -- single layout ----------------------------------------------------

    def execute(
        self,
        polygons: Sequence[Polygon],
        workers: Optional[int] = None,
        field_size: Optional[float] = None,
        cache: Union[ShardCache, bool, None] = None,
    ) -> ExecutionResult:
        """Shard, process (serially or on a pool) and merge one layout."""
        results = self.execute_many(
            [polygons], workers=workers, field_size=field_size, cache=cache
        )
        return results[0]

    def execute_figures(
        self,
        figures: Sequence[Trapezoid],
        workers: Optional[int] = None,
        field_size: Optional[float] = None,
        cache: Union[ShardCache, bool, None] = None,
    ) -> ExecutionResult:
        """Shard, dose/correct and merge a pre-fractured figure list.

        The hierarchy-aware entry point: fracture already happened (once
        per cell), so shards carry figures and only proximity correction
        runs per shard.  Caching, pooling and the determinism contract
        work exactly as for :meth:`execute`.
        """
        results = self.execute_many(
            [figures],
            workers=workers,
            field_size=field_size,
            cache=cache,
            prefractured=True,
        )
        return results[0]

    # -- batched layouts --------------------------------------------------

    def execute_many(
        self,
        polygon_sets: Sequence[Sequence[Polygon]],
        workers: Optional[int] = None,
        field_size: Optional[float] = None,
        cache: Union[ShardCache, bool, None] = None,
        prefractured: bool = False,
    ) -> List[ExecutionResult]:
        """Process several layouts through one shared worker pool.

        Shards from all layouts are interleaved into a single work list,
        so a batch of small layers keeps every worker busy; results come
        back per input layout, each merged in its own shard order.  With
        a cache, shards whose content address is already stored skip the
        work list entirely.

        With ``prefractured=True`` each input set holds
        :class:`~repro.geometry.trapezoid.Trapezoid` figures instead of
        polygons (see :meth:`execute_figures`).
        """
        if workers is None:
            workers = self.workers
        workers = _resolve_workers(workers)
        if field_size is None:
            field_size = self.field_size
        active_cache = self._resolve_cache(cache)

        if prefractured:
            plans = [
                plan_figure_shards(
                    figs, field_size, overlap_policy=self.overlap_policy
                )
                for figs in polygon_sets
            ]
        else:
            plans = [
                plan_shards(
                    polys, field_size, overlap_policy=self.overlap_policy
                )
                for polys in polygon_sets
            ]
        shards: List[Shard] = []
        owners: List[int] = []
        for which, plan in enumerate(plans):
            for shard in plan:
                shards.append(shard)
                owners.append(which)
        config = (self.fracturer, self.corrector, self.psf)
        retry = self.retry
        faults = self.faults.arm() if self.faults is not None else None

        tick = self._progress_tick(len(shards))

        hit_flags = [False] * len(shards)
        evictions_by_owner = [0] * len(polygon_sets)
        write_failures_by_owner = [0] * len(polygon_sets)
        cache_degraded = False
        if active_cache is None:
            shard_results, pooled, recovery = self._map(
                shards, config, workers, tick, retry, faults,
            )
            # Recovery log positions == work-list positions here.
            computed_positions = list(range(len(shards)))
        else:
            # Keys are computed for every shard up front, before any
            # processing can touch corrector state, so hit/miss decisions
            # never depend on execution order.
            keys = [
                active_cache.key_for(shard, *config) for shard in shards
            ]
            shard_results = []
            for i, key in enumerate(keys):
                before = active_cache.stats.evictions
                shard_results.append(active_cache.get(key))
                evictions_by_owner[owners[i]] += (
                    active_cache.stats.evictions - before
                )
            pending = [
                i for i, result in enumerate(shard_results) if result is None
            ]
            for i, result in enumerate(shard_results):
                hit_flags[i] = result is not None
                if hit_flags[i] and tick is not None:
                    tick()
            computed, pooled, recovery = self._map(
                [shards[i] for i in pending], config, workers, tick,
                retry, faults, cache_keys=[keys[i] for i in pending],
            )
            for i, result in zip(pending, computed):
                shard_results[i] = result
                if cache_degraded:
                    continue
                # Contain store faults: the first failed put (ENOSPC,
                # read-only filesystem) degrades the *run* to cache
                # read-only mode with one warning — a computed result
                # must never be lost to cache trouble.
                try:
                    stored = active_cache.put(keys[i], result)
                except OSError as exc:
                    stored = False
                    reason = f"{type(exc).__name__}: {exc}"
                else:
                    reason = "the filesystem refused the store"
                if stored is False:
                    write_failures_by_owner[owners[i]] += 1
                    cache_degraded = True
                    warnings.warn(
                        "shard cache degraded to read-only for the rest "
                        f"of this run ({reason}); results are "
                        "unaffected, but uncached shards will be "
                        "recomputed by later runs",
                        CacheDegradedWarning,
                        stacklevel=2,
                    )
            # Recovery log positions index the pending sub-list.
            computed_positions = pending

        retries_by_owner = [0] * len(polygon_sets)
        timeouts_by_owner = [0] * len(polygon_sets)
        salvaged_by_owner = [0] * len(polygon_sets)
        for local, count in recovery.retries.items():
            retries_by_owner[owners[computed_positions[local]]] += count
        for local, count in recovery.timeouts.items():
            timeouts_by_owner[owners[computed_positions[local]]] += count
        for local in recovery.salvaged:
            salvaged_by_owner[owners[computed_positions[local]]] += 1

        grouped: List[List[ShardResult]] = [[] for _ in polygon_sets]
        grouped_hits: List[int] = [0] * len(polygon_sets)
        for which, result, hit in zip(owners, shard_results, hit_flags):
            grouped[which].append(result)
            if hit:
                grouped_hits[which] += 1

        corrected = self.corrector is not None
        out: List[ExecutionResult] = []
        for which, (plan, results) in enumerate(zip(plans, grouped)):
            coord_fb = sum(
                r.kernel_fallbacks.coord_limit for r in results
            )
            slab_fb = sum(
                r.kernel_fallbacks.rational_slab for r in results
            )
            stats = ExecutionStats(
                shard_count=len(plan),
                occupied_shards=sum(1 for r in results if r.shots),
                workers=workers,
                parallel=pooled,
                field_size=field_size,
                cache_enabled=active_cache is not None,
                cache_hits=grouped_hits[which],
                cache_misses=(
                    len(plan) - grouped_hits[which] if active_cache else 0
                ),
                hierarchy="cells" if prefractured else "flat",
                kernel_fallbacks=coord_fb + slab_fb,
                kernel_coord_fallbacks=coord_fb,
                kernel_slab_fallbacks=slab_fb,
                shard_retries=retries_by_owner[which],
                shards_salvaged=salvaged_by_owner[which],
                pool_restarts=recovery.pool_restarts,
                shard_timeouts=timeouts_by_owner[which],
                cache_write_failures=write_failures_by_owner[which],
                cache_degraded=cache_degraded,
                cache_evictions=evictions_by_owner[which],
            )
            # Dispatch reflects the configured mode even when a warm
            # cache left nothing to map remotely — an all-hit run on a
            # distributed executor is still a distributed run.
            stats.dispatch = self.dispatch
            dist = self._last_dist
            if dist is not None:
                # Distributed scheduling counters are run-level, like
                # pool_restarts: replicated onto every batch owner.
                stats.dist_workers = dist.workers
                stats.leases_granted = dist.leases_granted
                stats.leases_reclaimed = dist.leases_reclaimed
                stats.worker_deaths = dist.worker_deaths
                stats.heartbeats_missed = dist.heartbeats_missed
                stats.speculative_wins = dist.speculative_wins
                stats.speculative_losses = dist.speculative_losses
                stats.duplicate_commits = dist.duplicate_commits
                stats.dist_local_fallbacks = dist.local_fallbacks
            merged = merge_shard_results(
                results, corrected=corrected and bool(results), stats=stats
            )
            if not merged.shots:
                merged.corrected = False
            out.append(merged)
        return out

    # -- out-of-core streaming --------------------------------------------

    def execute_stream(
        self,
        polygons,
        workers: Optional[int] = None,
        field_size: Optional[float] = None,
        cache: Union[ShardCache, bool, None] = None,
    ) -> StreamingExecution:
        """Shard, process and spill one layout in bounded memory.

        The out-of-core counterpart of :meth:`execute`: ``polygons`` may
        be any iterable (a :meth:`~repro.layout.stream.LayoutStream.iter_flat`
        cursor above all) and is consumed exactly once.

        Three passes, none of which materializes the layout:

        1. **Spool** — every polygon is written to a flat temp file as
           exact doubles while the mosaic origin (min corner of the
           combined bounding box) folds incrementally.
        2. **Index** — the spool is re-read sequentially; each polygon's
           field index is computed exactly as :func:`plan_shards` would
           (bounding-box centre against the same origin), building a
           tiny row → column → spool-offset index.
        3. **Window** — shard rows run bottom-to-top: only the active
           row's polygons are re-read from the spool, its shards are
           dispatched through the same cache ladder and dispatch path
           (local pool or :mod:`repro.dist`) as :meth:`execute_many`,
           and every completed result is spilled to the cache's blob
           family (:meth:`~repro.core.cache.ShardCache.spill_key_for`)
           instead of being held for the merge.

        Because shards, their order and every per-shard computation are
        identical to the in-memory plan, a streamed run is byte-identical
        to :meth:`execute` at any worker count, cold or warm cache, local
        or distributed dispatch.

        Differences from the in-memory path, by construction:

        * ``overlap_policy="union"`` is rejected — a global boolean
          union needs the whole layout resident.  The ``"warn"``
          advisory check is skipped (it is pairwise across shards and
          purely advisory; it never changes bytes).
        * Injected fault schedules (chaos testing) key positions per
          window, not per run — the work-list position restarts at 0 on
          every shard row.
        * Results are spilled: with a configured cache they land in its
          content-addressed blob family (and stay there — concurrent
          identical runs may share them); without one a private spill
          directory is used and removed by
          :meth:`StreamingExecution.close`.  A failed spill store
          degrades that shard to the in-memory fallback with one
          :class:`SpillDegradedWarning` — never a crash.
        """
        if self.overlap_policy == "union":
            raise ValueError(
                "overlap_policy='union' is incompatible with streamed "
                "execution (the global union needs the whole layout "
                "resident); pre-union the layout or use 'warn'/'ignore'"
            )
        if workers is None:
            workers = self.workers
        workers = _resolve_workers(workers)
        if field_size is None:
            field_size = self.field_size
        if field_size is not None and field_size <= 0:
            raise ValueError("field size must be positive")
        active_cache = self._resolve_cache(cache)

        if active_cache is not None:
            spill_cache = active_cache
            spill_dir = None
        else:
            spill_dir = tempfile.mkdtemp(prefix="repro-spill-")
            spill_cache = ShardCache(spill_dir)

        config = (self.fracturer, self.corrector, self.psf)
        retry = self.retry
        faults = self.faults.arm() if self.faults is not None else None

        spool_fd, spool_path = tempfile.mkstemp(prefix="repro-spool-")
        try:
            # Pass 1: spool the layout, folding the mosaic origin.
            source_polygons = 0
            min_x = min_y = math.inf
            with os.fdopen(spool_fd, "wb", buffering=1 << 20) as spool:
                for poly in polygons:
                    verts = poly.vertices
                    spool.write(_SPOOL_COUNT.pack(len(verts)))
                    spool.write(
                        struct.pack(
                            f">{2 * len(verts)}d",
                            *(c for v in verts for c in (v.x, v.y)),
                        )
                    )
                    source_polygons += 1
                    for v in verts:
                        if v.x < min_x:
                            min_x = v.x
                        if v.y < min_y:
                            min_y = v.y

            # Pass 2: index spool offsets onto the field mosaic.
            rows: Dict[int, Dict[int, List[int]]] = {}
            with open(spool_path, "rb", buffering=1 << 20) as spool:
                offset = 0
                while True:
                    head = spool.read(_SPOOL_COUNT.size)
                    if not head:
                        break
                    (count,) = _SPOOL_COUNT.unpack(head)
                    data = spool.read(16 * count)
                    if field_size is None:
                        col, row = 0, 0
                    else:
                        values = struct.unpack(f">{2 * count}d", data)
                        xs = values[0::2]
                        ys = values[1::2]
                        col, row = field_index_of(
                            (min(xs) + max(xs)) / 2.0,
                            (min(ys) + max(ys)) / 2.0,
                            min_x,
                            min_y,
                            field_size,
                        )
                    rows.setdefault(row, {}).setdefault(col, []).append(offset)
                    offset += _SPOOL_COUNT.size + 16 * count

            total_shards = sum(len(cols) for cols in rows.values())
            tick = self._progress_tick(total_shards)

            entries: List[Tuple[Optional[str], Optional[ShardResult]]] = []
            reports: List[FractureReport] = []
            reference = 0.0
            total_shots = 0
            occupied = 0
            pooled = False
            cache_hits = cache_misses = 0
            evictions = write_failures = 0
            cache_degraded = False
            retries = salvaged = pool_restarts = timeouts = 0
            coord_fb = slab_fb = 0
            stream_windows = 0
            peak_window_bytes = 0
            shards_spilled = 0
            spill_bytes = 0
            spill_fallbacks = 0
            spill_degraded = False
            dist_totals: Dict[str, int] = {}

            # Pass 3: dispatch one shard row at a time, spilling results.
            from repro.core.jobfile import dumps_shard_result

            with open(spool_path, "rb") as spool:
                for row in sorted(rows):
                    window_shards: List[Shard] = []
                    window_bytes = 0
                    for col in sorted(rows[row]):
                        bucket: List[Polygon] = []
                        for poly_offset in rows[row][col]:
                            spool.seek(poly_offset)
                            (count,) = _SPOOL_COUNT.unpack(
                                spool.read(_SPOOL_COUNT.size)
                            )
                            values = struct.unpack(
                                f">{2 * count}d", spool.read(16 * count)
                            )
                            bucket.append(
                                Polygon(list(zip(values[0::2], values[1::2])))
                            )
                            window_bytes += _SPOOL_COUNT.size + 16 * count
                        window_shards.append(
                            Shard(index=(col, row), polygons=tuple(bucket))
                        )

                    # The execute_many cache ladder, per window.
                    keys: List[Optional[str]]
                    hit_flags = [False] * len(window_shards)
                    if active_cache is None:
                        keys = [None] * len(window_shards)
                        results_w, pooled_w, recovery = self._map(
                            window_shards, config, workers, tick, retry,
                            faults,
                        )
                    else:
                        keys = [
                            active_cache.key_for(shard, *config)
                            for shard in window_shards
                        ]
                        results_w = []
                        for key in keys:
                            before = active_cache.stats.evictions
                            results_w.append(active_cache.get(key))
                            evictions += active_cache.stats.evictions - before
                        pending = [
                            i
                            for i, result in enumerate(results_w)
                            if result is None
                        ]
                        for i, result in enumerate(results_w):
                            hit_flags[i] = result is not None
                            if hit_flags[i] and tick is not None:
                                tick()
                        computed, pooled_w, recovery = self._map(
                            [window_shards[i] for i in pending],
                            config, workers, tick, retry, faults,
                            cache_keys=[keys[i] for i in pending],
                        )
                        for i, result in zip(pending, computed):
                            results_w[i] = result
                            if cache_degraded:
                                continue
                            try:
                                stored = active_cache.put(keys[i], result)
                            except OSError as exc:
                                stored = False
                                reason = f"{type(exc).__name__}: {exc}"
                            else:
                                reason = "the filesystem refused the store"
                            if stored is False:
                                write_failures += 1
                                cache_degraded = True
                                warnings.warn(
                                    "shard cache degraded to read-only "
                                    f"for the rest of this run ({reason})"
                                    "; results are unaffected, but "
                                    "uncached shards will be recomputed "
                                    "by later runs",
                                    CacheDegradedWarning,
                                    stacklevel=2,
                                )
                        cache_hits += sum(hit_flags)
                        cache_misses += len(pending)

                    pooled = pooled or pooled_w
                    retries += recovery.retry_total
                    salvaged += len(recovery.salvaged)
                    pool_restarts += recovery.pool_restarts
                    timeouts += recovery.timeout_total
                    dist = self._last_dist
                    if dist is not None:
                        dist_totals["dist_workers"] = max(
                            dist_totals.get("dist_workers", 0), dist.workers
                        )
                        for name, value in (
                            ("leases_granted", dist.leases_granted),
                            ("leases_reclaimed", dist.leases_reclaimed),
                            ("worker_deaths", dist.worker_deaths),
                            ("heartbeats_missed", dist.heartbeats_missed),
                            ("speculative_wins", dist.speculative_wins),
                            ("speculative_losses", dist.speculative_losses),
                            ("duplicate_commits", dist.duplicate_commits),
                            ("dist_local_fallbacks", dist.local_fallbacks),
                        ):
                            dist_totals[name] = dist_totals.get(name, 0) + value

                    # Spill the window's results (row-major, like the
                    # in-memory merge order).
                    for shard_key, result in zip(keys, results_w):
                        coord_fb += result.kernel_fallbacks.coord_limit
                        slab_fb += result.kernel_fallbacks.rational_slab
                        reports.append(result.report)
                        reference += result.reference_area
                        total_shots += len(result.shots)
                        if result.shots:
                            occupied += 1
                        payload = dumps_shard_result(result)
                        window_bytes += len(payload)
                        if spill_degraded:
                            spill_fallbacks += 1
                            entries.append((None, result))
                            continue
                        if shard_key is None:
                            shard_key = f"stream-position:{len(entries)}"
                        blob_key = spill_cache.spill_key_for(shard_key)
                        try:
                            stored = spill_cache.put_blob(blob_key, payload)
                        except OSError as exc:
                            stored = False
                            spill_reason = f"{type(exc).__name__}: {exc}"
                        else:
                            spill_reason = "the filesystem refused the store"
                        if stored:
                            shards_spilled += 1
                            spill_bytes += len(payload)
                            entries.append((blob_key, None))
                        else:
                            spill_degraded = True
                            spill_fallbacks += 1
                            entries.append((None, result))
                            warnings.warn(
                                "shard-result spilling degraded to the "
                                "in-memory merge for the rest of this "
                                f"run ({spill_reason}); results are "
                                "unaffected, but memory is no longer "
                                "bounded by one shard row",
                                SpillDegradedWarning,
                                stacklevel=2,
                            )

                    stream_windows += 1
                    peak_window_bytes = max(peak_window_bytes, window_bytes)
        finally:
            try:
                os.unlink(spool_path)
            except OSError:
                pass

        stats = ExecutionStats(
            shard_count=total_shards,
            occupied_shards=occupied,
            workers=workers,
            parallel=pooled,
            field_size=field_size,
            cache_enabled=active_cache is not None,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            hierarchy="flat",
            kernel_fallbacks=coord_fb + slab_fb,
            kernel_coord_fallbacks=coord_fb,
            kernel_slab_fallbacks=slab_fb,
            shard_retries=retries,
            shards_salvaged=salvaged,
            pool_restarts=pool_restarts,
            shard_timeouts=timeouts,
            cache_write_failures=write_failures,
            cache_degraded=cache_degraded,
            cache_evictions=evictions,
            streamed=True,
            stream_windows=stream_windows,
            peak_window_bytes=peak_window_bytes,
            shards_spilled=shards_spilled,
            spill_bytes=spill_bytes,
            spill_fallbacks=spill_fallbacks,
        )
        stats.dispatch = self.dispatch
        for name, value in dist_totals.items():
            setattr(stats, name, value)

        report = merge_reports(reports, reference_area=reference)
        corrected = self.corrector is not None and total_shots > 0
        return StreamingExecution(
            stats=stats,
            report=report,
            corrected=corrected,
            source_polygons=source_polygons,
            total_shots=total_shots,
            entries=entries,
            spill_cache=spill_cache,
            spill_dir=spill_dir,
        )

"""Parallel field-sharded execution engine for the preparation pipeline.

Large layouts are prepared field by field: the writing-field mosaic that
the machine exposes one field at a time also partitions the *data
preparation* into independent work units, the same way conflict-avoiding
codes partition transmissions into difference classes that never collide.
Each shard (one mosaic tile's polygons) is fractured and proximity-
corrected on its own, so shards can run concurrently on a process pool;
the merge step then reassembles one :class:`~repro.core.job.MachineJob`
in deterministic row-major field order.

Determinism contract
--------------------
The shard plan depends only on the geometry and the ``field_size``
argument — never on the worker count.  Each shard is processed by pure
deterministic code, and shard results are merged in shard-plan order, so
``workers=N`` produces a shot-for-shot identical job to ``workers=1``
for every ``N``.

Sharding semantics
------------------
* ``field_size=None`` (the default) plans a single shard covering the
  whole layout — exactly the historical single-pass pipeline, including
  global proximity correction.
* With a ``field_size``, polygons are assigned to mosaic tiles by their
  bounding-box centre (the convention of
  :func:`repro.core.fields.field_index_of`, shared with post-fracture
  shot partitioning).  Proximity correction becomes field-local (no
  cross-field dose coupling), the standard mosaic approximation when
  the field pitch is large against the backscatter range β.

Caveat: the boolean union that dedupes overlapping input polygons runs
per shard, so overlaps *between polygons of different shards* are
exposed twice (their area double-counts).  Disjoint layouts — anything
a prior union pass or the hierarchical flattener's per-layer merge
produced — are sharded exactly; for overlap-heavy data, union first or
run unsharded (``field_size=None``).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.fields import FieldIndex, field_index_of
from repro.fracture.base import Fracturer, Shot
from repro.fracture.quality import FractureReport, analyze_figures, merge_reports
from repro.geometry.polygon import Polygon
from repro.pec.base import ProximityCorrector
from repro.physics.psf import DoubleGaussianPSF


@dataclass(frozen=True)
class Shard:
    """One work unit: the polygons of a single writing-field tile.

    Attributes:
        index: field index ``(col, row)`` on the mosaic; ``(0, 0)`` for
            the unsharded single-tile plan.
        polygons: the tile's polygons, in layout order.
    """

    index: FieldIndex
    polygons: Tuple[Polygon, ...]


@dataclass
class ShardResult:
    """What one shard produced: its shots and fracture bookkeeping."""

    index: FieldIndex
    shots: List[Shot]
    report: FractureReport
    reference_area: float


@dataclass
class ExecutionStats:
    """How an execution ran (for logs, benchmarks and the CLI)."""

    shard_count: int = 1
    occupied_shards: int = 1
    workers: int = 1
    parallel: bool = False
    field_size: Optional[float] = None


@dataclass
class ExecutionResult:
    """Merged output of all shards, in deterministic shard order."""

    shots: List[Shot] = field(default_factory=list)
    report: FractureReport = field(
        default_factory=lambda: analyze_figures([])
    )
    corrected: bool = False
    stats: ExecutionStats = field(default_factory=ExecutionStats)


def plan_shards(
    polygons: Sequence[Polygon],
    field_size: Optional[float] = None,
    origin: Optional[Tuple[float, float]] = None,
) -> List[Shard]:
    """Partition a flattened polygon list into writing-field shards.

    Polygons are assigned whole to the tile containing their bounding-box
    centre (no polygon is split, so a shard's fracture is exact); the
    mosaic is anchored at ``origin``, defaulting to the lower-left of the
    combined bounding box.  Shards come back sorted row-major
    (bottom row first, left to right) — the merge order.

    ``field_size=None`` returns one shard with everything.
    """
    polygons = list(polygons)
    if not polygons:
        return []
    if field_size is None:
        return [Shard(index=(0, 0), polygons=tuple(polygons))]
    if field_size <= 0:
        raise ValueError("field size must be positive")
    if origin is None:
        boxes = [p.bounding_box() for p in polygons]
        origin = (min(b[0] for b in boxes), min(b[1] for b in boxes))
    x0, y0 = origin
    buckets: dict = {}
    for poly in polygons:
        bx0, by0, bx1, by1 = poly.bounding_box()
        index = field_index_of(
            (bx0 + bx1) / 2.0, (by0 + by1) / 2.0, x0, y0, field_size
        )
        buckets.setdefault(index, []).append(poly)
    return [
        Shard(index=index, polygons=tuple(buckets[index]))
        for index in sorted(buckets, key=lambda ij: (ij[1], ij[0]))
    ]


def _process_shard(
    shard: Shard,
    fracturer: Fracturer,
    corrector: Optional[ProximityCorrector],
    psf: Optional[DoubleGaussianPSF],
) -> ShardResult:
    """Fracture and (optionally) proximity-correct one shard.

    Module-level so the process pool can pickle it; must stay pure — the
    determinism contract of the engine rests on it.
    """
    shots = fracturer.fracture_to_shots(shard.polygons)
    figures = [s.trapezoid for s in shots]
    # The fracture is a disjoint cover, so its own area is the reference
    # for downstream bookkeeping.
    reference_area = sum(t.area() for t in figures)
    report = analyze_figures(figures, reference_area=reference_area)
    if corrector is not None and shots:
        shots = corrector.correct(shots, psf)
    return ShardResult(
        index=shard.index,
        shots=shots,
        report=report,
        reference_area=reference_area,
    )


def _resolve_workers(workers: Optional[int]) -> int:
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 1:
        raise ValueError("workers must be >= 1 (or None/0 for all cores)")
    return workers


# Shard-processing configuration of a pool worker, installed once per
# process by the pool initializer (shipping it with every shard payload
# would re-pickle the same objects thousands of times on large mosaics).
_worker_config: Optional[tuple] = None


def _init_worker(config: tuple) -> None:
    global _worker_config
    _worker_config = config


def _process_shard_pooled(shard: Shard) -> ShardResult:
    return _process_shard(shard, *_worker_config)


def _map_shards(
    shards: List[Shard], config: tuple, workers: int
) -> Tuple[List[ShardResult], bool]:
    """Run shards through ``config = (fracturer, corrector, psf)``, on a
    process pool when it pays off.

    Returns the results in shard order plus whether a pool was used.
    Falls back to the serial path when the platform refuses to spawn
    workers (restricted sandboxes), keeping results identical.
    """
    if workers <= 1 or len(shards) <= 1:
        return [_process_shard(s, *config) for s in shards], False
    pool_size = min(workers, len(shards))
    chunksize = max(1, len(shards) // (pool_size * 4))
    try:
        with ProcessPoolExecutor(
            max_workers=pool_size, initializer=_init_worker, initargs=(config,)
        ) as pool:
            results = list(
                pool.map(_process_shard_pooled, shards, chunksize=chunksize)
            )
        return results, True
    except (OSError, PermissionError):
        return [_process_shard(s, *config) for s in shards], False


def merge_shard_results(
    results: Sequence[ShardResult], corrected: bool, stats: ExecutionStats
) -> ExecutionResult:
    """Concatenate shard shots in shard order and merge the reports."""
    shots: List[Shot] = []
    for result in results:
        shots.extend(result.shots)
    reference = sum(r.reference_area for r in results)
    report = merge_reports(
        [r.report for r in results], reference_area=reference
    )
    return ExecutionResult(
        shots=shots, report=report, corrected=corrected, stats=stats
    )


class ShardedExecutor:
    """Runs fracture + proximity correction over a field-shard plan.

    Args:
        fracturer: fracturing strategy applied per shard.
        corrector: optional proximity corrector (field-local per shard).
        psf: exposure PSF (required with a corrector).
        workers: default worker-pool size; 1 = serial, ``None``/0 = all
            cores.  Never affects results, only wall-clock.
        field_size: default mosaic pitch [µm]; ``None`` = one shard.
    """

    def __init__(
        self,
        fracturer: Fracturer,
        corrector: Optional[ProximityCorrector] = None,
        psf: Optional[DoubleGaussianPSF] = None,
        workers: int = 1,
        field_size: Optional[float] = None,
    ) -> None:
        if corrector is not None and psf is None:
            raise ValueError("a corrector requires a PSF")
        self.fracturer = fracturer
        self.corrector = corrector
        self.psf = psf
        self.workers = workers
        self.field_size = field_size

    # -- single layout ----------------------------------------------------

    def execute(
        self,
        polygons: Sequence[Polygon],
        workers: Optional[int] = None,
        field_size: Optional[float] = None,
    ) -> ExecutionResult:
        """Shard, process (serially or on a pool) and merge one layout."""
        results = self.execute_many(
            [polygons], workers=workers, field_size=field_size
        )
        return results[0]

    # -- batched layouts --------------------------------------------------

    def execute_many(
        self,
        polygon_sets: Sequence[Sequence[Polygon]],
        workers: Optional[int] = None,
        field_size: Optional[float] = None,
    ) -> List[ExecutionResult]:
        """Process several layouts through one shared worker pool.

        Shards from all layouts are interleaved into a single work list,
        so a batch of small layers keeps every worker busy; results come
        back per input layout, each merged in its own shard order.
        """
        if workers is None:
            workers = self.workers
        workers = _resolve_workers(workers)
        if field_size is None:
            field_size = self.field_size

        plans = [plan_shards(polys, field_size) for polys in polygon_sets]
        shards: List[Shard] = []
        owners: List[int] = []
        for which, plan in enumerate(plans):
            for shard in plan:
                shards.append(shard)
                owners.append(which)
        config = (self.fracturer, self.corrector, self.psf)
        shard_results, pooled = _map_shards(shards, config, workers)

        grouped: List[List[ShardResult]] = [[] for _ in polygon_sets]
        for which, result in zip(owners, shard_results):
            grouped[which].append(result)

        corrected = self.corrector is not None
        out: List[ExecutionResult] = []
        for plan, results in zip(plans, grouped):
            stats = ExecutionStats(
                shard_count=len(plan),
                occupied_shards=sum(1 for r in results if r.shots),
                workers=workers,
                parallel=pooled,
                field_size=field_size,
            )
            merged = merge_shard_results(
                results, corrected=corrected and bool(results), stats=stats
            )
            if not merged.shots:
                merged.corrected = False
            out.append(merged)
        return out

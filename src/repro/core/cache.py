"""Persistent content-addressed shard-result cache.

PR 1 made a single run fast by sharding the layout into writing-field
work units; this module makes *repeat* runs nearly free.  Every shard is
identified by a canonical hash of everything that can influence its
result — the shard polygons, its field index, the fracturer / proximity
corrector / PSF configuration, and a schema salt — so a shard that
hashes to an already-computed key is never fractured or
proximity-corrected twice, the same way a conflict-avoiding code never
re-transmits an already-delivered difference class.

Guarantees
----------
* **Correctness**: the key covers the full shard input.  Perturbing any
  single parameter (a polygon vertex, the field index, a PSF range, a
  fracture grid) changes the key; equal inputs always collide on the
  same key.  Runtime state of correctors (convergence traces and other
  attributes named in a class's ``CACHE_VOLATILE``) is excluded, so a
  corrector that has already run hashes the same as a fresh one.
* **Determinism**: cached payloads store exact IEEE-754 doubles
  (:func:`repro.core.jobfile.dumps_shard_result`), so a warm run is
  byte-identical to a cold serial run.
* **Concurrency**: entries are written to a temporary file and
  published with an atomic :func:`os.replace`, so concurrent writers
  (process pools, parallel CI jobs sharing a cache directory) can never
  expose a torn entry.  Corrupt or truncated entries read as misses and
  are evicted.
"""

from __future__ import annotations

import hashlib
import os
import struct
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

import numpy as np

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.trapezoid import Trapezoid

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.executor import Shard, ShardResult

#: Bump when the shard-processing semantics or the payload format
#: change; old entries then miss instead of replaying stale results.
#: v2: correctors grew ``matrix_mode``/``grid_cell`` configuration (the
#: sparse/hybrid exposure-operator backends).
#: v3: machine-program segment blobs joined the store (their own key
#: family), and the raster RLE encoder's scanline membership became
#: half-open — pre-v3 entries must not be replayed against it.
#: v4: the fast kernel's exact range grew to 2**53 with vectorized
#: rational slabs, shard payloads grew the kernel fallback counters
#: (payload version 2), and zero-rendered-height slabs are dropped —
#: pre-v4 entries could replay trapezoids a v4 cold run would not
#: produce.  The fallback counters themselves stay OUT of the key: they
#: are run observability (``CACHE_VOLATILE`` on ``Fracturer``), not
#: configuration.
CACHE_SCHEMA_VERSION = 4

_F64 = struct.Struct("!d")

#: Framing of machine-program segment blobs in the store.
_BLOB_MAGIC = b"EBB1"
_BLOB_HEADER = struct.Struct(">4sI")


class CacheKeyError(TypeError):
    """Raised when a configuration object cannot be fingerprinted."""


class CacheDegradedWarning(UserWarning):
    """A run stopped storing cache entries after a write failure.

    Emitted once per run by the execution layer when a ``put`` fails
    (ENOSPC, read-only filesystem): the run continues — reads included —
    but computed results are no longer stored, so later runs recompute
    them.  Degraded runs also flag ``cache_degraded`` on their
    :class:`~repro.core.executor.ExecutionStats` — a degraded run never
    looks like a clean one.
    """


# ---------------------------------------------------------------------------
# Canonical fingerprinting
# ---------------------------------------------------------------------------


def _update(h, obj) -> None:
    """Feed ``obj`` into hash ``h`` as a canonical type-tagged stream.

    Covers the primitives configuration objects are built from plus the
    geometry types, and falls back to public-attribute introspection for
    strategy objects (fracturers, correctors).  Attributes whose name
    starts with ``_`` or appears in the class's ``CACHE_VOLATILE`` set
    are runtime state, not configuration, and are skipped.
    """
    if obj is None:
        h.update(b"N")
    elif obj is True:
        h.update(b"T")
    elif obj is False:
        h.update(b"F")
    elif isinstance(obj, int):
        h.update(b"i")
        h.update(str(obj).encode())
        h.update(b";")
    elif isinstance(obj, float):
        h.update(b"f")
        h.update(_F64.pack(obj))
    elif isinstance(obj, str):
        encoded = obj.encode()
        h.update(b"s")
        h.update(str(len(encoded)).encode())
        h.update(b":")
        h.update(encoded)
    elif isinstance(obj, bytes):
        h.update(b"b")
        h.update(str(len(obj)).encode())
        h.update(b":")
        h.update(obj)
    elif isinstance(obj, Point):
        h.update(b"P")
        h.update(_F64.pack(obj.x))
        h.update(_F64.pack(obj.y))
    elif isinstance(obj, Polygon):
        h.update(b"G")
        h.update(str(len(obj.vertices)).encode())
        h.update(b":")
        for v in obj.vertices:
            h.update(_F64.pack(v.x))
            h.update(_F64.pack(v.y))
    elif isinstance(obj, Trapezoid):
        h.update(b"Z")
        h.update(_F64.pack(obj.y_bottom))
        h.update(_F64.pack(obj.y_top))
        h.update(_F64.pack(obj.x_bottom_left))
        h.update(_F64.pack(obj.x_bottom_right))
        h.update(_F64.pack(obj.x_top_left))
        h.update(_F64.pack(obj.x_top_right))
    elif isinstance(obj, np.generic):
        # Numpy scalars carry their value outside attribute
        # introspection; hash the equivalent Python value (type-tagged
        # with the numpy dtype so e.g. float32 sweeps stay distinct).
        h.update(b"n")
        h.update(obj.dtype.str.encode())
        _update(h, obj.item())
    elif isinstance(obj, (tuple, list)):
        h.update(b"l")
        h.update(str(len(obj)).encode())
        h.update(b":")
        for item in obj:
            _update(h, item)
    elif isinstance(obj, (set, frozenset)):
        h.update(b"e")
        digests = sorted(fingerprint(item) for item in obj)
        _update(h, digests)
    elif isinstance(obj, dict):
        h.update(b"d")
        try:
            keys = sorted(obj)
        except TypeError as exc:  # unsortable keys have no canonical order
            raise CacheKeyError(
                f"cannot canonicalize dict keys of {obj!r}"
            ) from exc
        h.update(str(len(keys)).encode())
        h.update(b":")
        for key in keys:
            _update(h, key)
            _update(h, obj[key])
    else:
        _update_object(h, obj)


def _update_object(h, obj) -> None:
    """Fingerprint a strategy/config object by class + public attributes.

    Objects whose state is invisible to attribute introspection (no
    ``__dict__`` and no ``__slots__``, e.g. C-implemented value types)
    would silently collide on their class name alone, so they are
    rejected — a key that under-covers its input is a correctness bug,
    not a degraded mode.  Callable attributes are rejected for the same
    reason: two configs differing only in a stored callback must not
    share a key.
    """
    cls = type(obj)
    has_dict = hasattr(obj, "__dict__")
    if has_dict:
        names = sorted(obj.__dict__)
    else:
        slot_names = [
            name
            for klass in cls.__mro__
            for name in getattr(klass, "__slots__", ())
        ]
        if not slot_names:
            raise CacheKeyError(
                f"cannot fingerprint {cls.__module__}.{cls.__qualname__}: "
                "no __dict__ or __slots__ to derive the configuration from"
            )
        names = sorted(name for name in slot_names if hasattr(obj, name))
    h.update(b"o")
    h.update(f"{cls.__module__}.{cls.__qualname__}".encode())
    h.update(b"{")
    volatile = getattr(cls, "CACHE_VOLATILE", frozenset())
    for name in names:
        if name.startswith("_") or name in volatile:
            continue
        value = getattr(obj, name)
        if callable(value):
            raise CacheKeyError(
                f"cannot fingerprint callable attribute {name!r} of "
                f"{cls.__qualname__}; exclude it via CACHE_VOLATILE if "
                "it is not configuration"
            )
        _update(h, name)
        h.update(b"=")
        _update(h, value)
    h.update(b"}")


def fingerprint(obj) -> str:
    """Canonical SHA-256 hex digest of a configuration/geometry tree."""
    h = hashlib.sha256()
    _update(h, obj)
    return h.hexdigest()


def shard_cache_key(
    shard: "Shard",
    fracturer,
    corrector=None,
    psf=None,
    salt: Union[int, str] = CACHE_SCHEMA_VERSION,
) -> str:
    """Content address of one shard's preparation result.

    The key is a SHA-256 over the canonical serialization of the shard
    polygons, the field index, the fracturer configuration, the
    proximity-corrector configuration (or ``None``), the PSF parameters
    (or ``None``), and a version salt.

    Pre-fractured shards (hierarchy-aware runs, ``shard.figures`` set)
    are keyed by their figures instead of polygons + fracturer: the
    figures *are* the full geometric input there — the fracturer never
    runs — and the distinct type tag keeps the two key families from
    ever colliding.
    """
    h = hashlib.sha256()
    if getattr(shard, "figures", None) is not None:
        _update(h, ("repro-shard-figures", salt))
        _update(h, shard.index)
        _update(h, shard.figures)
    else:
        _update(h, ("repro-shard", salt))
        _update(h, shard.index)
        _update(h, shard.polygons)
        _update(h, fracturer)
    _update(h, corrector)
    _update(h, psf)
    return h.hexdigest()


def program_segment_key(
    result: "ShardResult",
    spec,
    origin,
    base_dose: float,
    salt: Union[int, str, tuple] = CACHE_SCHEMA_VERSION,
) -> str:
    """Content address of one shard's lowered machine-program segment.

    A segment is a pure function of the shard's corrected shots, the
    machine spec (mode, address unit, record unit), the global address
    grid origin and the base dose; the distinct type tag keeps this key
    family from ever colliding with shard-result keys.
    """
    h = hashlib.sha256()
    _update(h, ("repro-shard-program", salt))
    _update(h, result.index)
    _update(h, spec)
    _update(h, (origin[0], origin[1]))
    _update(h, base_dose)
    _update(h, result.shots)
    return h.hexdigest()


# ---------------------------------------------------------------------------
# The on-disk store
# ---------------------------------------------------------------------------


@dataclass
class CacheStats:
    """Hit/miss accounting of one :class:`ShardCache` instance.

    Attributes:
        hits: lookups answered from the store.
        misses: lookups that fell through to computation.
        stores: entries written.
        evictions: corrupt/unreadable entries dropped during lookup.
        write_errors: failed stores (read-only/full filesystem) —
            degraded to storing nothing, never to a crashed run.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    write_errors: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when nothing was looked up)."""
        return self.hits / self.lookups if self.lookups else 0.0


class ShardCache:
    """Content-addressed store of shard results under a directory tree.

    Entries live at ``<root>/<key[:2]>/<key[2:]>.ebc`` (two-character
    fan-out keeps directories small on million-entry caches).  The store
    is safe for concurrent writers: payloads are staged in a temp file
    in the root and published atomically via :func:`os.replace`, so a
    reader sees either nothing or a complete entry.

    Args:
        root: cache directory (created on first store; ``~`` expands).
        salt: extra user salt mixed into every shard key *on top of*
            :data:`CACHE_SCHEMA_VERSION` — change it to invalidate a
            directory wholesale without deleting files.  Schema bumps
            invalidate salted caches too.
    """

    SUFFIX = ".ebc"

    def __init__(
        self,
        root: Union[str, Path],
        salt: Union[int, str, None] = None,
    ) -> None:
        self.root = Path(root).expanduser()
        self.salt = salt
        self.stats = CacheStats()

    # -- keys and paths ---------------------------------------------------

    def key_for(self, shard, fracturer, corrector=None, psf=None) -> str:
        """Cache key of ``shard`` under this cache's salt."""
        return shard_cache_key(
            shard,
            fracturer,
            corrector=corrector,
            psf=psf,
            salt=(CACHE_SCHEMA_VERSION, self.salt),
        )

    def program_key_for(self, result, spec, origin, base_dose: float) -> str:
        """Cache key of one program segment under this cache's salt."""
        return program_segment_key(
            result,
            spec,
            origin,
            base_dose,
            salt=(CACHE_SCHEMA_VERSION, self.salt),
        )

    def spill_key_for(self, key: str) -> str:
        """Blob key for a streaming-merge spill of the shard keyed ``key``.

        Out-of-core runs spill completed shard results as content-addressed
        blobs so the merge can re-read them row-major instead of holding
        them all; the distinct type tag keeps the spill family from ever
        colliding with shard-result or program-segment entries.
        """
        h = hashlib.sha256()
        _update(h, ("repro-shard-spill", (CACHE_SCHEMA_VERSION, self.salt)))
        _update(h, key)
        return h.hexdigest()

    def path_for(self, key: str) -> Path:
        """On-disk location of ``key`` (existing or not)."""
        return self.root / key[:2] / (key[2:] + self.SUFFIX)

    # -- lookup / store ---------------------------------------------------

    def get(self, key: str) -> Optional["ShardResult"]:
        """Return the stored result for ``key``, or ``None`` on a miss.

        Corrupt or truncated entries are evicted and count as misses.
        """
        from repro.core.jobfile import JobFileError, loads_shard_result

        path = self.path_for(key)
        try:
            data = path.read_bytes()
        except OSError:
            self.stats.misses += 1
            return None
        try:
            result = loads_shard_result(data)
        except JobFileError:
            self.stats.misses += 1
            self.stats.evictions += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return result

    def put(self, key: str, result: "ShardResult") -> bool:
        """Store ``result`` under ``key`` with an atomic publish.

        Write failures (read-only directory, full disk) are swallowed
        and counted in ``stats.write_errors`` — the cache must never
        turn a successfully computed run into a crash; it degrades to
        storing nothing.  Returns ``True`` when the entry was published
        so callers (the execution layer) can degrade the rest of their
        run to read-only mode after the first failure.
        """
        from repro.core.jobfile import dumps_shard_result

        data = dumps_shard_result(result)
        path = self.path_for(key)
        staging = self.root / f".tmp-{os.getpid()}-{uuid.uuid4().hex}"
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            staging.write_bytes(data)
            os.replace(staging, path)
        except OSError:
            self.stats.write_errors += 1
            try:
                staging.unlink()
            except OSError:
                pass
            return False
        self.stats.stores += 1
        return True

    # -- machine-program segment blobs ------------------------------------

    def get_blob(self, key: str, record: bool = True) -> Optional[bytes]:
        """Return the raw segment payload stored under ``key``, if any.

        Blobs are framed (magic + length) so truncated or foreign
        entries read as misses and are evicted, exactly like shard
        payloads.  ``record=False`` skips hit/miss accounting — for
        spill re-reads, which are guaranteed-present by construction
        and would otherwise inflate the cache hit rate.
        """
        path = self.path_for(key)
        try:
            data = path.read_bytes()
        except OSError:
            if record:
                self.stats.misses += 1
            return None
        if len(data) >= _BLOB_HEADER.size:
            magic, length = _BLOB_HEADER.unpack_from(data, 0)
            if magic == _BLOB_MAGIC and len(data) == _BLOB_HEADER.size + length:
                if record:
                    self.stats.hits += 1
                return data[_BLOB_HEADER.size :]
        if record:
            self.stats.misses += 1
            self.stats.evictions += 1
        try:
            path.unlink()
        except OSError:
            pass
        return None

    def put_blob(self, key: str, payload: bytes) -> bool:
        """Store a raw segment payload with the atomic-publish contract.

        Returns ``True`` when the blob was published (same degradation
        contract as :meth:`put`).
        """
        data = _BLOB_HEADER.pack(_BLOB_MAGIC, len(payload)) + payload
        path = self.path_for(key)
        staging = self.root / f".tmp-{os.getpid()}-{uuid.uuid4().hex}"
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            staging.write_bytes(data)
            os.replace(staging, path)
        except OSError:
            self.stats.write_errors += 1
            try:
                staging.unlink()
            except OSError:
                pass
            return False
        self.stats.stores += 1
        return True

    # -- maintenance ------------------------------------------------------

    def entry_count(self) -> int:
        """Number of complete entries currently in the store."""
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob(f"??/*{self.SUFFIX}"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for entry in self.root.glob(f"??/*{self.SUFFIX}"):
            try:
                entry.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __repr__(self) -> str:
        return (
            f"ShardCache({str(self.root)!r}, entries={self.entry_count()}, "
            f"hits={self.stats.hits}, misses={self.stats.misses})"
        )

"""Field partitioning and shot ordering.

Patterns larger than the deflection field must be split into a field
mosaic; shots crossing a field boundary are cut at the boundary (the cut
lines are exactly where stitching errors land — see
:mod:`repro.machine.stitching`).  Within a field, the order in which a
vector/VSB machine visits its shots sets the deflection travel, and
therefore part of the settling overhead; a greedy nearest-neighbour tour
was the period heuristic.

* :func:`partition_fields` — shots → per-field shot lists with boundary
  splitting.
* :func:`order_shots` — ``"scanline"`` (sorted) or ``"nearest"`` (greedy
  tour) ordering; :func:`deflection_travel` measures the result.
* :class:`FieldedJob` — the partitioned job with mosaic statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.job import MachineJob
from repro.fracture.base import Shot
from repro.geometry.trapezoid import Trapezoid

FieldIndex = Tuple[int, int]


def field_index_of(
    x: float, y: float, x0: float, y0: float, pitch: float
) -> FieldIndex:
    """Field index ``(col, row)`` of a point on a mosaic anchored at
    ``(x0, y0)`` with the given pitch.

    The same convention is used for post-fracture shot assignment
    (:func:`partition_fields`) and for pre-fracture layout sharding
    (:mod:`repro.core.executor`), so a shard's shots land in the shard's
    own field.
    """
    return (int((x - x0) / pitch), int((y - y0) / pitch))


def split_shot_x(shot: Shot, x_cut: float) -> List[Shot]:
    """Split a shot at a vertical line (both halves keep the dose)."""
    t = shot.trapezoid
    bbox = t.bounding_box()
    if not (bbox[0] < x_cut < bbox[2]):
        return [shot]
    left, right = _clip_x(t, None, x_cut), _clip_x(t, x_cut, None)
    out = []
    for piece in (left, right):
        if piece is not None and piece.area() > 0:
            out.append(Shot(piece, shot.dose))
    return out if out else [shot]


def split_shot_y(shot: Shot, y_cut: float) -> List[Shot]:
    """Split a shot at a horizontal line (both halves keep the dose)."""
    t = shot.trapezoid
    if not (t.y_bottom < y_cut < t.y_top):
        return [shot]
    lower, upper = t.split_at_y(y_cut)
    return [Shot(lower, shot.dose), Shot(upper, shot.dose)]


def _clip_x(t: Trapezoid, x_min: float | None, x_max: float | None) -> Trapezoid | None:
    """Clip a trapezoid to a vertical band.

    Exact for rectangles; slanted sides are clipped conservatively at
    their extreme x (the clipped figure never exceeds the band).
    """
    xbl, xbr = t.x_bottom_left, t.x_bottom_right
    xtl, xtr = t.x_top_left, t.x_top_right
    if x_min is not None:
        xbl = max(xbl, x_min)
        xtl = max(xtl, x_min)
        xbr = max(xbr, x_min)
        xtr = max(xtr, x_min)
    if x_max is not None:
        xbl = min(xbl, x_max)
        xtl = min(xtl, x_max)
        xbr = min(xbr, x_max)
        xtr = min(xtr, x_max)
    if xbr - xbl <= 0 and xtr - xtl <= 0:
        return None
    return Trapezoid(t.y_bottom, t.y_top, xbl, xbr, xtl, xtr)


@dataclass
class FieldedJob:
    """A machine job partitioned into deflection fields.

    Attributes:
        job: the source job.
        field_size: mosaic pitch [µm].
        fields: field index (col, row) → shots (boundary pieces included).
        split_count: extra shots created by boundary splitting.
    """

    job: MachineJob
    field_size: float
    fields: Dict[FieldIndex, List[Shot]] = field(default_factory=dict)
    split_count: int = 0

    def field_grid(self) -> Tuple[int, int]:
        """``(columns, rows)`` of the mosaic."""
        if not self.fields:
            return (0, 0)
        cols = max(i for i, _ in self.fields) + 1
        rows = max(j for _, j in self.fields) + 1
        return (cols, rows)

    def occupied_fields(self) -> int:
        """Fields containing at least one shot."""
        return sum(1 for shots in self.fields.values() if shots)

    def boundary_shot_fraction(self) -> float:
        """Fraction of final shots that are boundary pieces."""
        total = sum(len(s) for s in self.fields.values())
        return self.split_count / total if total else 0.0


def partition_fields(job: MachineJob, field_size: float) -> FieldedJob:
    """Assign shots to deflection fields, splitting at boundaries.

    Fields tile the job bounding box from its lower-left corner.
    """
    if field_size <= 0:
        raise ValueError("field size must be positive")
    x0, y0, _, _ = job.bounding_box
    result = FieldedJob(job=job, field_size=field_size)
    original = len(job.shots)
    final = 0

    pending = list(job.shots)
    pieces: List[Shot] = []
    # First split in x at every interior boundary, then in y.
    for shot in pending:
        pieces.extend(_split_at_grid(shot, x0, field_size, axis="x"))
    split_xy: List[Shot] = []
    for shot in pieces:
        split_xy.extend(_split_at_grid(shot, y0, field_size, axis="y"))

    for shot in split_xy:
        bbox = shot.trapezoid.bounding_box()
        cx = (bbox[0] + bbox[2]) / 2.0
        cy = (bbox[1] + bbox[3]) / 2.0
        index = field_index_of(cx, cy, x0, y0, field_size)
        result.fields.setdefault(index, []).append(shot)
        final += 1
    result.split_count = final - original
    return result


def _split_at_grid(shot: Shot, start: float, pitch: float, axis: str) -> List[Shot]:
    bbox = shot.trapezoid.bounding_box()
    lo, hi = (bbox[0], bbox[2]) if axis == "x" else (bbox[1], bbox[3])
    first_cut = math.floor((lo - start) / pitch) + 1
    pieces = [shot]
    cut_index = first_cut
    while True:
        cut = start + cut_index * pitch
        if cut >= hi:
            break
        next_pieces: List[Shot] = []
        for piece in pieces:
            if axis == "x":
                next_pieces.extend(split_shot_x(piece, cut))
            else:
                next_pieces.extend(split_shot_y(piece, cut))
        pieces = next_pieces
        cut_index += 1
    return pieces


# ---------------------------------------------------------------------------
# Shot ordering
# ---------------------------------------------------------------------------


def _shot_center(shot: Shot) -> Tuple[float, float]:
    bbox = shot.trapezoid.bounding_box()
    return ((bbox[0] + bbox[2]) / 2.0, (bbox[1] + bbox[3]) / 2.0)


def order_shots(shots: Sequence[Shot], strategy: str = "scanline") -> List[Shot]:
    """Order shots to reduce deflection travel.

    ``"scanline"`` sorts by (y, x) — the raster-ish default; ``"nearest"``
    runs a greedy nearest-neighbour tour from the first scanline shot
    (O(n²), adequate for per-field populations); ``"none"`` keeps input
    order.
    """
    shots = list(shots)
    if strategy == "none" or len(shots) <= 2:
        return shots
    if strategy == "scanline":
        return sorted(shots, key=lambda s: (_shot_center(s)[1], _shot_center(s)[0]))
    if strategy != "nearest":
        raise ValueError(f"unknown ordering strategy {strategy!r}")
    centers = [_shot_center(s) for s in shots]
    remaining = list(range(len(shots)))
    # Start from the lowest-left shot.
    current = min(remaining, key=lambda i: (centers[i][1], centers[i][0]))
    remaining.remove(current)
    tour = [current]
    while remaining:
        cx, cy = centers[current]
        nearest = min(
            remaining,
            key=lambda i: (centers[i][0] - cx) ** 2 + (centers[i][1] - cy) ** 2,
        )
        remaining.remove(nearest)
        tour.append(nearest)
        current = nearest
    return [shots[i] for i in tour]


def deflection_travel(shots: Sequence[Shot]) -> float:
    """Total centre-to-centre deflection distance over the visit order."""
    total = 0.0
    previous = None
    for shot in shots:
        center = _shot_center(shot)
        if previous is not None:
            total += math.hypot(center[0] - previous[0], center[1] - previous[1])
        previous = center
    return total


def travel_settle_time(
    shots: Sequence[Shot],
    settle_per_jump: float = 1.0e-6,
    long_jump: float = 50.0,
    long_jump_penalty: float = 4.0,
) -> float:
    """Deflection settling model with a long-jump penalty.

    Small jumps settle in ``settle_per_jump``; jumps beyond ``long_jump``
    (a large fraction of the field) take ``long_jump_penalty`` times as
    long — the DAC-to-amplifier slewing the ordering heuristics existed
    to avoid.
    """
    total = 0.0
    previous = None
    for shot in shots:
        center = _shot_center(shot)
        if previous is not None:
            distance = math.hypot(
                center[0] - previous[0], center[1] - previous[1]
            )
            total += settle_per_jump * (
                long_jump_penalty if distance > long_jump else 1.0
            )
        previous = center
    return total

"""The data-preparation pipeline.

Thin orchestration over :mod:`repro.core.executor`: gather polygons from
the source, hand them to the field-sharded execution engine (fracture →
proximity correction → merge), wrap the merged shots in a
:class:`~repro.core.job.MachineJob` and estimate writing time per
machine.  Batch entry points (:meth:`PreparationPipeline.run_layers`,
:meth:`PreparationPipeline.run_many`) sweep several layers or sources
through one shared worker pool.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Union,
)

from repro.core.cache import ShardCache
from repro.core.executor import ExecutionStats, RetryPolicy, ShardedExecutor
from repro.core.faults import FaultPlan, FaultyCache
from repro.core.hierarchical import (
    HierarchicalFractureResult,
    fracture_hierarchical,
)
from repro.core.job import MachineJob, _SHOT_PACK
from repro.fracture.base import Fracturer
from repro.fracture.quality import FractureReport
from repro.fracture.trapezoidal import TrapezoidFracturer
from repro.geometry.polygon import Polygon
from repro.layout.cell import Cell
from repro.layout.flatten import flatten_cell
from repro.layout.layer import Layer
from repro.layout.library import Library
from repro.layout.stream import (
    LayoutStream,
    MemoryStream,
    open_layout_stream,
)
from repro.machine.base import Machine, WriteTimeBreakdown
from repro.pec.base import ProximityCorrector
from repro.physics.psf import DoubleGaussianPSF

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.machine.program import MachineProgram

#: Valid machine-program modes (mirrors repro.machine.program, which is
#: imported lazily to keep the machine package import-cycle free).
_MACHINE_MODES = ("raster", "vsb", "vector")


def _validate_hierarchy(hierarchy: str) -> None:
    if hierarchy not in ("flat", "cells"):
        raise ValueError(
            f"hierarchy must be 'flat' or 'cells', got {hierarchy!r}"
        )


def _validate_machine(machine: Optional[str]) -> None:
    if machine is not None and machine not in _MACHINE_MODES:
        raise ValueError(
            f"machine must be one of {_MACHINE_MODES} or None, "
            f"got {machine!r}"
        )


def _program_slug(name: str) -> str:
    """A filesystem-safe stem for per-job program files."""
    cleaned = "".join(
        ch if (ch.isalnum() or ch in "._-") else "-" for ch in name
    ).strip("-.")
    return cleaned or "job"


def _apply_hierarchy_stats(
    stats: ExecutionStats, hier: HierarchicalFractureResult
) -> None:
    """Copy per-cell reuse counters onto an execution's stats record."""
    stats.hierarchy = "cells"
    stats.cells_fractured = hier.cells_fractured
    stats.instances_reused = hier.instances_reused
    stats.instances_fallback = hier.instances_fallback
    # Cells-mode shards are prefractured, so the per-shard counters are
    # zero; the kernel ran during the hierarchy walk instead.
    stats.kernel_coord_fallbacks += hier.kernel_fallbacks.coord_limit
    stats.kernel_slab_fallbacks += hier.kernel_fallbacks.rational_slab
    stats.kernel_fallbacks = (
        stats.kernel_coord_fallbacks + stats.kernel_slab_fallbacks
    )


@dataclass
class PipelineResult:
    """Everything the pipeline produced for one layer.

    Attributes:
        job: the writable machine job.
        fracture_report: quality metrics of the fracture step.
        write_times: per-machine write-time breakdowns (name → breakdown).
        source_polygons: flattened polygon count before fracture.
        corrected: True if proximity correction ran.
        execution: how the sharded engine ran (shards, workers, pool).
        machine_program: the exported machine data stream (also on
            ``execution.program``) when the run had a ``machine`` mode.
        job_bytes: size of the ``.ebj`` job file a streaming run wrote
            (0 when no ``job_path`` was requested); the streamed bytes
            are identical to :func:`~repro.core.jobfile.write_job` of
            the materialized job.
    """

    job: MachineJob
    fracture_report: FractureReport
    write_times: Dict[str, WriteTimeBreakdown] = field(default_factory=dict)
    source_polygons: int = 0
    corrected: bool = False
    execution: Optional[ExecutionStats] = None
    machine_program: Optional["MachineProgram"] = None
    job_bytes: int = 0

    def total_write_time(self, machine_name: str) -> float:
        """Convenience: total seconds on a named machine."""
        return self.write_times[machine_name].total


class PreparationPipeline:
    """Layout → fractured, corrected, timed machine job.

    Args:
        fracturer: fracturing strategy (trapezoids by default).
        corrector: optional proximity corrector.
        psf: exposure PSF used by the corrector (required with one).
        machines: machines to estimate writing time on.
        base_dose: physical base dose [µC/cm²].
        workers: default worker-pool size for the execution engine;
            1 = serial, ``None``/0 = one per core.  The worker count
            never changes the result, only the wall-clock (see
            :mod:`repro.core.executor`).
        field_size: default writing-field pitch [µm] for layout
            sharding; ``None`` processes the layout as one shard.
        cache_dir: directory for the content-addressed shard cache;
            ``None`` disables caching.  Editing one field of a cached
            layout re-computes only that field's shards; a warm full-hit
            re-run skips fracture and PEC entirely and is byte-identical
            to a cold serial run.
        cache: an explicit :class:`~repro.core.cache.ShardCache` to use
            instead of building one from ``cache_dir``.
        overlap_policy: cross-shard overlap handling when sharding —
            ``"warn"`` (default), ``"union"`` or ``"ignore"`` (see
            :mod:`repro.core.executor`).
        matrix_mode: exposure-operator backend override for the
            proximity corrector — ``"dense"`` (exact, the default),
            ``"sparse"`` (exact entries in CSR storage; memory scales
            with the interaction count) or ``"hybrid"`` (exact α term
            plus FFT backscatter grid); see :mod:`repro.pec.operator`.
            ``None`` keeps whatever the corrector was built with.  The
            mode is part of the corrector configuration and therefore of
            every shard cache key.
        hierarchy: how hierarchical sources are fractured —
            ``"flat"`` (default: expand every placement, fracture per
            shard) or ``"cells"`` (fracture each cell once, replicate
            the figures per placement, then dose/correct per shard; see
            :mod:`repro.core.hierarchical`).  On array-dominated
            layouts ``"cells"`` avoids re-fracturing identical
            instances; figures from different instances are not merged,
            so overlapping placements would double-expose (the same
            contract as :func:`fracture_hierarchical`).  Raw polygon
            sources carry no hierarchy and always run flat.
        machine: lower every prepared job into an on-disk machine
            program — ``"raster"`` (per-scanline RLE runs), ``"vsb"`` or
            ``"vector"`` (per-shot dose/flash records); ``None`` (the
            default) skips program export.  Programs stream one shard at
            a time and are byte-identical across worker counts and
            cold/warm cache runs (see :mod:`repro.machine.program`).
        address_unit: raster address pitch [µm] for program export.
        program_dir: directory for exported programs (default: the
            working directory); files are named
            ``<job-name>.<mode>.ebp``.
        progress: optional per-shard completion callback
            ``progress(done, total)`` threaded into the execution
            engine — how a long-running front-end (the prep service's
            job status endpoint) observes a run advancing.  Never
            influences results.
        retry: the engine's :class:`~repro.core.executor.RetryPolicy`
            (per-shard retries, deterministic backoff, hang watchdog);
            defaults to ``RetryPolicy()``.  Never changes results, only
            what survives: a run that finishes under faults is
            byte-identical to a clean run.
        faults: an optional :class:`~repro.core.faults.FaultPlan` of
            injected faults (chaos testing; usually arrives via the
            ``REPRO_FAULTS`` environment variable through the recipe).
            A plan with ``enospc_puts`` wraps the cache in a
            :class:`~repro.core.faults.FaultyCache` so store faults hit
            both shard results and program segment blobs.
        dispatch: shard scheduling — ``"local"`` (default) or
            ``"distributed"`` (lease shards to the worker fleet on
            ``workers_endpoint`` via :mod:`repro.dist`; byte-identical
            to local, with the local ladder as the last rung).
        workers_endpoint: coordinator ``host:port`` for distributed
            dispatch.
        dist_policy: optional
            :class:`~repro.dist.coordinator.DistPolicy` scheduling
            knobs for distributed dispatch.
        waiter: optional :class:`~repro.core.executor.BackoffWaiter`
            making the engine's retry backoffs interruptible (the
            service's cancel/timeout path).

    Example:
        >>> from repro.layout import generators
        >>> from repro.machine import RasterScanWriter
        >>> pipe = PreparationPipeline(machines=[RasterScanWriter()])
        >>> result = pipe.run(generators.grating(lines=5))
        >>> result.job.figure_count()
        5
    """

    def __init__(
        self,
        fracturer: Optional[Fracturer] = None,
        corrector: Optional[ProximityCorrector] = None,
        psf: Optional[DoubleGaussianPSF] = None,
        machines: Sequence[Machine] = (),
        base_dose: float = 1.0,
        workers: int = 1,
        field_size: Optional[float] = None,
        cache_dir: Optional[Union[str, Path]] = None,
        cache: Optional[ShardCache] = None,
        overlap_policy: str = "warn",
        matrix_mode: Optional[str] = None,
        hierarchy: str = "flat",
        machine: Optional[str] = None,
        address_unit: float = 0.5,
        program_dir: Optional[Union[str, Path]] = None,
        progress=None,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[FaultPlan] = None,
        dispatch: str = "local",
        workers_endpoint: Optional[str] = None,
        dist_policy=None,
        waiter=None,
    ) -> None:
        if corrector is not None and psf is None:
            raise ValueError("a corrector requires a PSF")
        _validate_hierarchy(hierarchy)
        _validate_machine(machine)
        if address_unit <= 0:
            raise ValueError("address unit must be positive")
        self.fracturer = fracturer if fracturer is not None else TrapezoidFracturer()
        self.corrector = corrector
        self.psf = psf
        self.machines = list(machines)
        self.base_dose = base_dose
        self.workers = workers
        self.field_size = field_size
        if cache is None and cache_dir is not None:
            cache = ShardCache(cache_dir)
        if faults is not None and faults.enospc_puts and cache is not None:
            # Injected store faults apply to every store this pipeline
            # makes — shard results and program segment blobs share one
            # put-ordinal counter, so a schedule can target either.
            cache = FaultyCache(cache, faults)
        self.cache = cache
        self.retry = retry if retry is not None else RetryPolicy()
        self.faults = faults
        self.overlap_policy = overlap_policy
        self.matrix_mode = matrix_mode
        self.hierarchy = hierarchy
        self.machine = machine
        self.address_unit = address_unit
        self.program_dir = Path(program_dir) if program_dir is not None else None
        self.progress = progress
        if dispatch not in ("local", "distributed"):
            raise ValueError(
                f"dispatch must be 'local' or 'distributed', "
                f"got {dispatch!r}"
            )
        if dispatch == "distributed" and not workers_endpoint:
            raise ValueError(
                "distributed dispatch requires workers_endpoint (host:port)"
            )
        self.dispatch = dispatch
        self.workers_endpoint = workers_endpoint
        self.dist_policy = dist_policy
        self.waiter = waiter

    @property
    def executor(self) -> ShardedExecutor:
        """The execution engine, bound to the pipeline's current
        configuration (rebinding ``fracturer``/``corrector``/``psf`` on
        the pipeline takes effect on the next run)."""
        return ShardedExecutor(
            self.fracturer,
            corrector=self.corrector,
            psf=self.psf,
            workers=self.workers,
            field_size=self.field_size,
            cache=self.cache,
            overlap_policy=self.overlap_policy,
            matrix_mode=self.matrix_mode,
            progress=self.progress,
            retry=self.retry,
            faults=self.faults,
            dispatch=self.dispatch,
            endpoint=self.workers_endpoint,
            dist_policy=self.dist_policy,
            waiter=self.waiter,
        )

    # -- entry points --------------------------------------------------------

    def run(
        self,
        source: Union[Library, Cell, Iterable[Polygon]],
        layer: Optional[Layer] = None,
        name: Optional[str] = None,
        workers: Optional[int] = None,
        field_size: Optional[float] = None,
        cache: Union[ShardCache, bool, None] = None,
        hierarchy: Optional[str] = None,
        machine: Optional[str] = None,
        program_path: Optional[Union[str, Path]] = None,
    ) -> PipelineResult:
        """Run the full pipeline on a library, cell or raw polygon list.

        Args:
            source: the pattern source; libraries use their unique top
                cell, cells are flattened with descendants.
            layer: restrict to one layer (all layers merged otherwise).
            name: job name (defaults to the cell/library name).
            workers: worker-pool size override for this run.
            field_size: writing-field pitch override for this run.
            cache: cache override for this run — ``False`` bypasses the
                configured cache, an explicit
                :class:`~repro.core.cache.ShardCache` replaces it.
            hierarchy: per-run override of the pipeline's hierarchy
                mode (``"flat"`` or ``"cells"``).
            machine: per-run override of the machine-program mode
                (``"raster"``/``"vsb"``/``"vector"``; ``"off"`` disables
                export for this run).
            program_path: explicit program file path (defaults to
                ``<program_dir>/<job-name>.<mode>.ebp``).
        """
        hierarchy = self._resolve_hierarchy(hierarchy)
        if hierarchy == "cells" and isinstance(source, (Library, Cell)):
            # merge_layers mirrors the flat path, which fractures the
            # union of every requested layer's polygons in one pass.
            hier = fracture_hierarchical(
                source,
                self.fracturer,
                layers={layer} if layer is not None else None,
                merge_layers=True,
            )
            figures = hier.figures.get(None, [])
            outcome = self.executor.execute_figures(
                figures, workers=workers, field_size=field_size, cache=cache
            )
            _apply_hierarchy_stats(outcome.stats, hier)
            cell = source.top_cell() if isinstance(source, Library) else source
            return self._finish(
                outcome,
                name or cell.name,
                hier.source_polygons,
                machine=machine,
                program_path=program_path,
                cache=cache,
            )
        polygons, inferred_name = self._gather(source, layer)
        return self.run_polygons(
            polygons,
            name=name or inferred_name,
            workers=workers,
            field_size=field_size,
            cache=cache,
            machine=machine,
            program_path=program_path,
        )

    def run_polygons(
        self,
        polygons: Sequence[Polygon],
        name: str = "job",
        workers: Optional[int] = None,
        field_size: Optional[float] = None,
        cache: Union[ShardCache, bool, None] = None,
        machine: Optional[str] = None,
        program_path: Optional[Union[str, Path]] = None,
    ) -> PipelineResult:
        """Run fracture → correction → job build → write-time estimation."""
        polygons = list(polygons)
        outcome = self.executor.execute(
            polygons, workers=workers, field_size=field_size, cache=cache
        )
        return self._finish(
            outcome,
            name,
            len(polygons),
            machine=machine,
            program_path=program_path,
            cache=cache,
        )

    def run_streaming(
        self,
        source: Union[LayoutStream, Library, Cell, str, Path, Iterable[Polygon]],
        layer: Optional[Layer] = None,
        name: Optional[str] = None,
        workers: Optional[int] = None,
        field_size: Optional[float] = None,
        cache: Union[ShardCache, bool, None] = None,
        machine: Optional[str] = None,
        program_path: Optional[Union[str, Path]] = None,
        job_path: Optional[Union[str, Path]] = None,
    ) -> PipelineResult:
        """Run the full pipeline out of core, in bounded memory.

        The streaming counterpart of :meth:`run`: polygons are drawn
        from a lazy cursor (a layout file is opened as a
        :class:`~repro.layout.stream.LayoutStream`, a resident
        library/cell is wrapped in a
        :class:`~repro.layout.stream.MemoryStream`), the execution
        engine spills per-shard results through the cache's blob store
        instead of accumulating them, and job assembly folds the
        aggregates, digest and — with ``job_path`` — the ``.ebj`` bytes
        one shard at a time.

        Byte-identity contract: the ``.ebj`` file (``job_path``) and the
        machine program (``machine``/``program_path``) are byte-identical
        to the materialized :meth:`run` path for any worker count,
        cold or warm cache, and local or distributed dispatch.  The
        resulting :class:`PipelineResult` carries an aggregate
        (:meth:`~repro.core.job.MachineJob.synthetic`) job whose
        accounting, digest and dose range match the materialized job
        exactly; only the resident shot list is absent.

        Args:
            source: a :class:`~repro.layout.stream.LayoutStream`, a
                layout file path (``.gds``/``.cif``), a
                library/cell, or a raw polygon iterable (consumed once).
            layer: restrict to one layer (all layers merged otherwise).
            name: job name (defaults to the top cell's name).
            workers: worker-pool size override for this run.
            field_size: writing-field pitch override for this run.
            cache: cache override for this run (also hosts the spill
                blobs; without one a private temp spill store is used).
            machine: per-run machine-program mode override.
            program_path: explicit program file path.
            job_path: write the job's ``.ebj`` file here while
                streaming (:class:`~repro.core.jobfile.JobFileWriter`).

        Always runs flat — hierarchy ``"cells"`` prefracture is a
        materializing transform and is rejected by the streaming recipe.
        """
        stream, owned = self._resolve_stream(source)
        try:
            if stream is not None:
                inferred = stream.top_cell().name
                polygons: Iterable[Polygon] = stream.iter_flat(
                    layers={layer} if layer is not None else None
                )
            else:
                inferred = "job"
                polygons = iter(source)  # type: ignore[arg-type]
            execution = self.executor.execute_stream(
                polygons, workers=workers, field_size=field_size, cache=cache
            )
        finally:
            if owned and stream is not None:
                stream.close()
        with execution:
            return self._finish_streaming(
                execution,
                name or inferred,
                machine=machine,
                program_path=program_path,
                cache=cache,
                job_path=job_path,
            )

    def run_layers(
        self,
        source: Union[Library, Cell],
        layers: Optional[Sequence[Layer]] = None,
        workers: Optional[int] = None,
        field_size: Optional[float] = None,
        cache: Union[ShardCache, bool, None] = None,
        hierarchy: Optional[str] = None,
        machine: Optional[str] = None,
    ) -> Dict[Layer, PipelineResult]:
        """Prepare each layer of a cell as its own job, batched.

        All layers' shards share one worker pool, so a many-layer sweep
        parallelizes even when individual layers are small.

        Args:
            source: library (top cell used) or cell.
            layers: layers to prepare (defaults to every populated one).
            workers: worker-pool size override.
            field_size: writing-field pitch override.
            cache: cache override (``False`` = off for this run).
            hierarchy: per-run override of the hierarchy mode; with
                ``"cells"`` every cell is fractured once for the whole
                sweep (the reuse statistics on each layer's
                ``ExecutionStats`` describe the whole source).

        Returns:
            Mapping layer → result, in layer sort order.
        """
        cell = source.top_cell() if isinstance(source, Library) else source
        hierarchy = self._resolve_hierarchy(hierarchy)
        program_seen: Dict[tuple, int] = {}
        if hierarchy == "cells":
            hier = fracture_hierarchical(
                cell,
                self.fracturer,
                layers=set(layers) if layers is not None else None,
            )
            wanted = sorted(hier.figures) if layers is None else list(layers)
            figure_sets = [hier.figures.get(layer, []) for layer in wanted]
            outcomes = self.executor.execute_many(
                figure_sets,
                workers=workers,
                field_size=field_size,
                cache=cache,
                prefractured=True,
            )
            out: Dict[Layer, PipelineResult] = {}
            for layer, outcome in zip(wanted, outcomes):
                _apply_hierarchy_stats(outcome.stats, hier)
                out[layer] = self._finish(
                    outcome,
                    f"{cell.name}:{layer}",
                    hier.source_polygons_by_layer.get(layer, 0),
                    machine=machine,
                    cache=cache,
                    program_seen=program_seen,
                )
            return out
        flat = flatten_cell(cell)
        if layers is None:
            wanted = sorted(flat)
        else:
            wanted = list(layers)
        polygon_sets = [flat.get(layer, []) for layer in wanted]
        outcomes = self.executor.execute_many(
            polygon_sets, workers=workers, field_size=field_size, cache=cache
        )
        return {
            layer: self._finish(
                outcome,
                f"{cell.name}:{layer}",
                len(polys),
                machine=machine,
                cache=cache,
                program_seen=program_seen,
            )
            for layer, polys, outcome in zip(wanted, polygon_sets, outcomes)
        }

    def run_many(
        self,
        sources: Sequence[Union[Library, Cell, Iterable[Polygon]]],
        names: Optional[Sequence[str]] = None,
        layer: Optional[Layer] = None,
        workers: Optional[int] = None,
        field_size: Optional[float] = None,
        cache: Union[ShardCache, bool, None] = None,
        hierarchy: Optional[str] = None,
        machine: Optional[str] = None,
    ) -> List[PipelineResult]:
        """Prepare several sources through one shared worker pool.

        The batch equivalent of :meth:`run` — one call sweeps a whole
        scenario matrix (many workloads × this pipeline's machines).
        With ``hierarchy="cells"`` every Library/Cell source goes
        through per-cell fracture + figure replication; raw polygon
        sources in the same batch still run flat.
        """
        hierarchy = self._resolve_hierarchy(hierarchy)
        entries: List[tuple] = []
        for source in sources:
            if hierarchy == "cells" and isinstance(source, (Library, Cell)):
                hier = fracture_hierarchical(
                    source,
                    self.fracturer,
                    layers={layer} if layer is not None else None,
                    merge_layers=True,
                )
                figures = hier.figures.get(None, [])
                cell = (
                    source.top_cell()
                    if isinstance(source, Library)
                    else source
                )
                entries.append(
                    ("figures", figures, cell.name, hier.source_polygons, hier)
                )
            else:
                polys, inferred = self._gather(source, layer)
                entries.append(("polygons", polys, inferred, len(polys), None))

        flat_sets = [e[1] for e in entries if e[0] == "polygons"]
        figure_sets = [e[1] for e in entries if e[0] == "figures"]
        flat_outcomes = (
            self.executor.execute_many(
                flat_sets, workers=workers, field_size=field_size, cache=cache
            )
            if flat_sets
            else []
        )
        figure_outcomes = (
            self.executor.execute_many(
                figure_sets,
                workers=workers,
                field_size=field_size,
                cache=cache,
                prefractured=True,
            )
            if figure_sets
            else []
        )
        flat_iter = iter(flat_outcomes)
        figure_iter = iter(figure_outcomes)
        out: List[PipelineResult] = []
        program_seen: Dict[tuple, int] = {}
        for i, (kind, _, inferred, n_polys, hier) in enumerate(entries):
            outcome = next(figure_iter if kind == "figures" else flat_iter)
            if hier is not None:
                _apply_hierarchy_stats(outcome.stats, hier)
            name = names[i] if names is not None else inferred
            out.append(
                self._finish(
                    outcome,
                    name,
                    n_polys,
                    machine=machine,
                    cache=cache,
                    program_seen=program_seen,
                )
            )
        return out

    # -- helpers ----------------------------------------------------------

    def _resolve_hierarchy(self, hierarchy: Optional[str]) -> str:
        if hierarchy is None:
            return self.hierarchy
        _validate_hierarchy(hierarchy)
        return hierarchy

    def _resolve_machine(self, machine: Optional[str]) -> Optional[str]:
        """Per-run machine override: ``None`` inherits the pipeline's
        mode, ``"off"`` disables export for this run."""
        if machine is None:
            return self.machine
        if machine == "off":
            return None
        _validate_machine(machine)
        return machine

    def _resolve_program_cache(
        self, cache: Union[ShardCache, bool, None]
    ) -> Optional[ShardCache]:
        """The cache program segments go through, honouring the same
        per-run override semantics as the executor's shard cache."""
        if cache is None or cache is True:
            return self.cache
        if cache is False:
            return None
        return cache

    def _default_program_path(
        self, name: str, mode: str, seen: Optional[Dict[tuple, int]]
    ) -> Path:
        """``<program_dir>/<slug>.<mode>.ebp``, disambiguated within a
        batch: two jobs of one ``run_layers``/``run_many`` call whose
        names slug identically get distinct files (``slug-2``, …)
        instead of silently overwriting each other's program."""
        base = self.program_dir if self.program_dir is not None else Path(".")
        slug = _program_slug(name)
        if seen is not None:
            count = seen.get((slug, mode), 0)
            seen[(slug, mode)] = count + 1
            if count:
                slug = f"{slug}-{count + 1}"
        return base / f"{slug}.{mode}.ebp"

    def _finish(
        self,
        outcome,
        name: str,
        source_polygons: int,
        machine: Optional[str] = None,
        program_path: Optional[Union[str, Path]] = None,
        cache: Union[ShardCache, bool, None] = None,
        program_seen: Optional[Dict[tuple, int]] = None,
    ) -> PipelineResult:
        """Wrap an execution outcome in a job, estimate write times and
        (with a machine mode) export the machine program."""
        job = MachineJob(outcome.shots, base_dose=self.base_dose, name=name)
        result = PipelineResult(
            job=job,
            fracture_report=outcome.report,
            source_polygons=source_polygons,
            corrected=outcome.corrected,
            execution=outcome.stats,
        )
        for writer in self.machines:
            result.write_times[writer.name] = writer.write_time(job)
        mode = self._resolve_machine(machine)
        if mode is not None:
            from repro.machine.program import MachineSpec, export_program

            spec = MachineSpec(mode=mode, address_unit=self.address_unit)
            if program_path is None:
                program_path = self._default_program_path(name, mode, program_seen)
            program = export_program(
                outcome.shard_results,
                job,
                spec,
                program_path,
                cache=self._resolve_program_cache(cache),
            )
            result.machine_program = program
            outcome.stats.program = program
        return result

    @staticmethod
    def _resolve_stream(source) -> tuple:
        """``(stream, owned)`` for a streaming source; raw polygon
        iterables return ``(None, False)`` and stream as-is."""
        if isinstance(source, LayoutStream):
            return source, False
        if isinstance(source, (str, Path)):
            return open_layout_stream(source), True
        if isinstance(source, (Library, Cell)):
            return MemoryStream(source), True
        return None, False

    def _finish_streaming(
        self,
        execution,
        name: str,
        machine: Optional[str] = None,
        program_path: Optional[Union[str, Path]] = None,
        cache: Union[ShardCache, bool, None] = None,
        job_path: Optional[Union[str, Path]] = None,
    ) -> PipelineResult:
        """Assemble a streaming execution into a result, one shard at a
        time.

        One pass over the spilled shard results folds everything the
        materialized path reads off the resident shot list — bounding
        box, exposure aggregates, dose range and the exact shot digest —
        and (with ``job_path``) streams the ``.ebj`` records as it goes.
        A second pass feeds the machine-program exporter.  Every fold
        runs in the merged shot order, so the aggregates and digest are
        bit-identical to the materialized job's.
        """
        digest = hashlib.sha256()
        digest.update(_SHOT_PACK.pack(self.base_dose, 0, 0, 0, 0, 0, 0))
        writer = None
        if job_path is not None:
            from repro.core.jobfile import JobFileWriter

            writer = JobFileWriter(
                job_path, execution.total_shots, base_dose=self.base_dose
            )
        pattern_area = 0.0
        dose_weighted_area = 0.0
        dose_weighted_count = 0.0
        bbox: Optional[List[float]] = None
        dose_min: Optional[float] = None
        dose_max: Optional[float] = None
        try:
            for result in execution.iter_results():
                for shot in result.shots:
                    t = shot.trapezoid
                    digest.update(
                        _SHOT_PACK.pack(
                            t.y_bottom,
                            t.y_top,
                            t.x_bottom_left,
                            t.x_bottom_right,
                            t.x_top_left,
                            t.x_top_right,
                            shot.dose,
                        )
                    )
                    if writer is not None:
                        writer.write_shot(shot)
                    box = t.bounding_box()
                    if bbox is None:
                        bbox = list(box)
                    else:
                        bbox[0] = min(bbox[0], box[0])
                        bbox[1] = min(bbox[1], box[1])
                        bbox[2] = max(bbox[2], box[2])
                        bbox[3] = max(bbox[3], box[3])
                    area = shot.area()
                    pattern_area += area
                    dose_weighted_area += shot.dose * area
                    dose_weighted_count += shot.dose
                    if dose_min is None or shot.dose < dose_min:
                        dose_min = shot.dose
                    if dose_max is None or shot.dose > dose_max:
                        dose_max = shot.dose
            job_bytes = writer.close() if writer is not None else 0
        except BaseException:
            if writer is not None:
                writer.abort()
            raise
        job = MachineJob.synthetic(
            figure_count=execution.total_shots,
            pattern_area=pattern_area,
            bounding_box=(tuple(bbox) if bbox is not None else (0.0, 0.0, 0.0, 0.0)),
            base_dose=self.base_dose,
            name=name,
            dose_weighted_area=dose_weighted_area,
            dose_weighted_count=dose_weighted_count,
        )
        job._digest = digest.hexdigest()
        job._dose_range = ((dose_min, dose_max) if dose_min is not None else (0.0, 0.0))
        result = PipelineResult(
            job=job,
            fracture_report=execution.report,
            source_polygons=execution.source_polygons,
            corrected=execution.corrected,
            execution=execution.stats,
            job_bytes=job_bytes,
        )
        for machine_writer in self.machines:
            result.write_times[machine_writer.name] = machine_writer.write_time(job)
        mode = self._resolve_machine(machine)
        if mode is not None:
            from repro.machine.program import MachineSpec, export_program

            spec = MachineSpec(mode=mode, address_unit=self.address_unit)
            if program_path is None:
                program_path = self._default_program_path(name, mode, None)
            program = export_program(
                execution.iter_results(),
                job,
                spec,
                program_path,
                cache=self._resolve_program_cache(cache),
                segment_count=execution.stats.occupied_shards,
            )
            result.machine_program = program
            execution.stats.program = program
        return result

    @staticmethod
    def _gather(
        source: Union[Library, Cell, Iterable[Polygon]],
        layer: Optional[Layer],
    ) -> tuple:
        if isinstance(source, Library):
            cell = source.top_cell()
        elif isinstance(source, Cell):
            cell = source
        else:
            return list(source), "job"
        layers = {layer} if layer is not None else None
        flat = flatten_cell(cell, layers=layers)
        polygons: List[Polygon] = []
        for polys in flat.values():
            polygons.extend(polys)
        return polygons, cell.name

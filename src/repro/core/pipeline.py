"""The data-preparation pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.core.job import MachineJob
from repro.fracture.base import Fracturer, Shot
from repro.fracture.quality import FractureReport, analyze_figures
from repro.fracture.trapezoidal import TrapezoidFracturer
from repro.geometry.polygon import Polygon
from repro.layout.cell import Cell
from repro.layout.flatten import flatten_cell
from repro.layout.layer import Layer
from repro.layout.library import Library
from repro.machine.base import Machine, WriteTimeBreakdown
from repro.pec.base import ProximityCorrector
from repro.physics.psf import DoubleGaussianPSF


@dataclass
class PipelineResult:
    """Everything the pipeline produced for one layer.

    Attributes:
        job: the writable machine job.
        fracture_report: quality metrics of the fracture step.
        write_times: per-machine write-time breakdowns (name → breakdown).
        source_polygons: flattened polygon count before fracture.
        corrected: True if proximity correction ran.
    """

    job: MachineJob
    fracture_report: FractureReport
    write_times: Dict[str, WriteTimeBreakdown] = field(default_factory=dict)
    source_polygons: int = 0
    corrected: bool = False

    def total_write_time(self, machine_name: str) -> float:
        """Convenience: total seconds on a named machine."""
        return self.write_times[machine_name].total


class PreparationPipeline:
    """Layout → fractured, corrected, timed machine job.

    Args:
        fracturer: fracturing strategy (trapezoids by default).
        corrector: optional proximity corrector.
        psf: exposure PSF used by the corrector (required with one).
        machines: machines to estimate writing time on.
        base_dose: physical base dose [µC/cm²].

    Example:
        >>> from repro.layout import generators
        >>> from repro.machine import RasterScanWriter
        >>> pipe = PreparationPipeline(machines=[RasterScanWriter()])
        >>> result = pipe.run(generators.grating(lines=5))
        >>> result.job.figure_count()
        5
    """

    def __init__(
        self,
        fracturer: Optional[Fracturer] = None,
        corrector: Optional[ProximityCorrector] = None,
        psf: Optional[DoubleGaussianPSF] = None,
        machines: Sequence[Machine] = (),
        base_dose: float = 1.0,
    ) -> None:
        if corrector is not None and psf is None:
            raise ValueError("a corrector requires a PSF")
        self.fracturer = fracturer if fracturer is not None else TrapezoidFracturer()
        self.corrector = corrector
        self.psf = psf
        self.machines = list(machines)
        self.base_dose = base_dose

    # -- entry points --------------------------------------------------------

    def run(
        self,
        source: Union[Library, Cell, Iterable[Polygon]],
        layer: Optional[Layer] = None,
        name: Optional[str] = None,
    ) -> PipelineResult:
        """Run the full pipeline on a library, cell or raw polygon list.

        Args:
            source: the pattern source; libraries use their unique top
                cell, cells are flattened with descendants.
            layer: restrict to one layer (all layers merged otherwise).
            name: job name (defaults to the cell/library name).
        """
        polygons, inferred_name = self._gather(source, layer)
        return self.run_polygons(polygons, name=name or inferred_name)

    def run_polygons(
        self, polygons: Sequence[Polygon], name: str = "job"
    ) -> PipelineResult:
        """Run fracture → correction → job build → write-time estimation."""
        reference_area = None
        shots = self.fracturer.fracture_to_shots(polygons)
        figures = [s.trapezoid for s in shots]
        # The fracture is a disjoint cover, so its own area is the
        # reference for downstream bookkeeping.
        reference_area = sum(t.area() for t in figures)
        report = analyze_figures(figures, reference_area=reference_area)

        corrected = False
        if self.corrector is not None and shots:
            shots = self.corrector.correct(shots, self.psf)
            corrected = True

        job = MachineJob(shots, base_dose=self.base_dose, name=name)
        result = PipelineResult(
            job=job,
            fracture_report=report,
            source_polygons=len(list(polygons)),
            corrected=corrected,
        )
        for machine in self.machines:
            result.write_times[machine.name] = machine.write_time(job)
        return result

    # -- helpers ----------------------------------------------------------

    @staticmethod
    def _gather(
        source: Union[Library, Cell, Iterable[Polygon]],
        layer: Optional[Layer],
    ) -> tuple:
        if isinstance(source, Library):
            cell = source.top_cell()
        elif isinstance(source, Cell):
            cell = source
        else:
            return list(source), "job"
        layers = {layer} if layer is not None else None
        flat = flatten_cell(cell, layers=layers)
        polygons: List[Polygon] = []
        for polys in flat.values():
            polygons.extend(polys)
        return polygons, cell.name

"""End-to-end fidelity metrics: does the written pattern match the design?

The fidelity check runs the full physical simulation — shots → dose map →
PSF convolution → resist development — and compares the developed image
against the design coverage.  The headline number is the *pattern error
fraction*: the XOR area between developed and designed patterns divided by
the design area.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.job import MachineJob
from repro.geometry.polygon import Polygon
from repro.geometry.rasterize import RasterFrame, rasterize_polygons
from repro.physics.exposure import ExposureSimulator, shot_dose_map
from repro.physics.psf import DoubleGaussianPSF
from repro.physics.resist import Resist


@dataclass(frozen=True)
class FidelityReport:
    """Design-vs-printed comparison.

    Attributes:
        design_area: designed pattern area [µm²].
        printed_area: developed pattern area [µm²].
        xor_area: mismatch area [µm²].
        error_fraction: xor_area / design_area.
        area_ratio: printed/design area.
        threshold_level: absorbed level used as the print threshold.
    """

    design_area: float
    printed_area: float
    xor_area: float
    error_fraction: float
    area_ratio: float
    threshold_level: float


def fidelity_report(
    job: MachineJob,
    design: Sequence[Polygon],
    psf: DoubleGaussianPSF,
    resist: Optional[Resist] = None,
    pixel: float = 0.1,
    margin: Optional[float] = None,
    threshold_level: Optional[float] = None,
) -> FidelityReport:
    """Simulate writing ``job`` and compare against ``design``.

    Args:
        job: the machine job (shots carry their corrected doses).
        design: the intended polygons.
        psf: exposure PSF.
        resist: optional resist; when given, the print threshold is the
            resist's 50 %-thickness dose expressed in relative units of
            ``job.base_dose``.  Otherwise ``threshold_level`` (default
            0.5) is used directly on the normalized absorbed image.
        pixel: simulation pixel [µm].
        margin: frame margin [µm] (default 2.5 β).
        threshold_level: explicit absorbed-level threshold.
    """
    if not job.shots:
        raise ValueError("job has no shots")
    if margin is None:
        margin = 2.5 * psf.beta
    frame = RasterFrame.around(job.bounding_box, pixel, margin=margin)
    simulator = ExposureSimulator(psf, frame)
    absorbed = simulator.absorbed_energy(shot_dose_map(job.shots, frame))

    if threshold_level is None:
        if resist is not None:
            threshold_level = resist.threshold_dose / job.base_dose
        else:
            threshold_level = 0.5

    printed = absorbed >= threshold_level
    design_cover = rasterize_polygons(design, frame) >= 0.5

    pixel_area = frame.pixel * frame.pixel
    design_area = float(design_cover.sum()) * pixel_area
    printed_area = float(printed.sum()) * pixel_area
    xor_area = float(np.logical_xor(printed, design_cover).sum()) * pixel_area
    return FidelityReport(
        design_area=design_area,
        printed_area=printed_area,
        xor_area=xor_area,
        error_fraction=xor_area / design_area if design_area > 0 else float("inf"),
        area_ratio=printed_area / design_area if design_area > 0 else float("inf"),
        threshold_level=float(threshold_level),
    )

"""Deterministic fault injection for the execution layer.

The fault-tolerance machinery of :mod:`repro.core.executor` (per-shard
retry, pool recycling, hung-worker timeouts, cache degradation) is only
trustworthy if every failure mode can be reproduced on demand.  This
module is that harness: a :class:`FaultPlan` describes *exactly* which
shard attempts misbehave and how, keyed by ``(position, attempt)`` —
the shard's 0-based index in the run's computed-work list and the
0-based dispatch attempt — with no wall-clock or RNG anywhere in the
schedule, so a chaos test that passes once passes always.

Fault kinds
-----------
* ``kill_worker`` — the worker process SIGKILLs itself mid-shard (the
  pool observes :class:`~concurrent.futures.process.BrokenProcessPool`).
* ``transient`` — the shard raises :class:`TransientFaultError` (an
  ``OSError``, so the default :class:`~repro.core.executor.RetryPolicy`
  classifies it as retryable infrastructure trouble).
* ``hang`` — the shard sleeps ``hang_seconds`` (far past any sane
  per-shard timeout), exercising the hung-worker watchdog.
* ``permanent`` — the shard raises :class:`InjectedFaultError` (a
  ``ValueError``: deterministic shard failures must fail fast, retrying
  a pure function cannot change its outcome).
* ``enospc_puts`` — cache stores fail with ``ENOSPC``; applied by
  wrapping the cache in :class:`FaultyCache`, counted by put ordinal.

Network fault kinds (distributed execution, :mod:`repro.dist`)
--------------------------------------------------------------
These are consulted by the *worker daemon*, not by :meth:`FaultPlan.fire`
— they corrupt the scheduling conversation between a worker and the
lease coordinator, never the shard computation itself:

* ``dead_worker`` — the worker daemon dies abruptly while holding the
  lease (process workers ``os._exit``; in-process test workers stop
  heartbeating and abandon every connection, which is indistinguishable
  to the coordinator).
* ``drop_conn`` — the worker's commit connection drops mid-frame; the
  result never lands and the lease must be reclaimed by deadline.
* ``late_heartbeat`` — the worker skips every heartbeat while executing
  this shard, so the coordinator presumes it dead and reclaims; the
  worker's late commit is then discarded by cache idempotency.
* ``duplicate_commit`` — the worker commits the same result twice
  (at-least-once delivery made visible); the second commit must be
  discarded without altering a byte.

Kill and hang faults are *armed* with the coordinating process id
(:meth:`FaultPlan.arm`) and only fire in pool workers — a serial or
degraded-to-serial run skips them (the coordinator must survive to
finish the run), which is exactly the pool → fresh-pool → serial
degradation ladder the chaos suite asserts.

Plans travel to CLI subprocesses and service jobs through the
``REPRO_FAULTS`` environment variable as JSON, e.g.::

    REPRO_FAULTS='{"kill_worker": [[1, 0]], "transient": [[0, 0]],
                   "enospc_puts": [0]}'
"""

from __future__ import annotations

import errno
import json
import os
import signal
import time
from dataclasses import dataclass, field, replace
from typing import FrozenSet, Optional, Tuple

#: Environment variable carrying a JSON fault plan into CLI runs and
#: service jobs (see :meth:`FaultPlan.from_env`).
FAULTS_ENV_VAR = "REPRO_FAULTS"


class TransientFaultError(OSError):
    """An injected transient infrastructure failure (retryable)."""


class InjectedFaultError(ValueError):
    """An injected deterministic shard failure (never retried)."""


def _pairs(value, kind: str) -> FrozenSet[Tuple[int, int]]:
    if isinstance(value, (str, bytes)) or not hasattr(value, "__iter__"):
        raise ValueError(
            f"fault schedule {kind!r} must be a list of "
            f"[position, attempt] pairs, got {value!r}"
        )
    pairs = set()
    for item in value:
        if isinstance(item, (str, bytes)) or not hasattr(item, "__iter__"):
            raise ValueError(
                f"fault schedule {kind!r} entries must be "
                f"[position, attempt] pairs of non-negative ints, "
                f"got {item!r}"
            )
        pair = tuple(item)
        if len(pair) != 2 or not all(
            isinstance(x, int) and not isinstance(x, bool) and x >= 0
            for x in pair
        ):
            raise ValueError(
                f"fault schedule {kind!r} entries must be "
                f"[position, attempt] pairs of non-negative ints, "
                f"got {item!r}"
            )
        pairs.add(pair)
    return frozenset(pairs)


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible schedule of injected faults.

    Attributes:
        kill_worker / transient / hang / permanent: ``(position,
            attempt)`` pairs at which the corresponding fault fires.
        enospc_puts: 0-based cache-store ordinals (counted per
            :class:`FaultyCache` instance) whose ``put``/``put_blob``
            raises ``OSError(ENOSPC)``.
        dead_worker / drop_conn / late_heartbeat / duplicate_commit:
            ``(position, attempt)`` pairs at which the distributed
            worker daemon misbehaves on the network (see the module
            docstring); consulted by :mod:`repro.dist.worker`, never by
            :meth:`fire`.
        hang_seconds: how long a hung shard sleeps — large against any
            realistic shard timeout, small against a test-suite budget.
        coordinator_pid: pid of the coordinating process, set by
            :meth:`arm`; kill/hang faults fire only in *other*
            processes (pool workers), so degraded serial replays of the
            same schedule complete instead of killing the run.
    """

    kill_worker: FrozenSet[Tuple[int, int]] = frozenset()
    transient: FrozenSet[Tuple[int, int]] = frozenset()
    hang: FrozenSet[Tuple[int, int]] = frozenset()
    permanent: FrozenSet[Tuple[int, int]] = frozenset()
    enospc_puts: FrozenSet[int] = frozenset()
    dead_worker: FrozenSet[Tuple[int, int]] = frozenset()
    drop_conn: FrozenSet[Tuple[int, int]] = frozenset()
    late_heartbeat: FrozenSet[Tuple[int, int]] = frozenset()
    duplicate_commit: FrozenSet[Tuple[int, int]] = frozenset()
    hang_seconds: float = 60.0
    coordinator_pid: Optional[int] = None

    def arm(self) -> "FaultPlan":
        """Bind the plan to the current process as the coordinator."""
        return replace(self, coordinator_pid=os.getpid())

    @property
    def any_shard_faults(self) -> bool:
        return bool(
            self.kill_worker or self.transient or self.hang or self.permanent
        )

    @property
    def any_network_faults(self) -> bool:
        return bool(
            self.dead_worker
            or self.drop_conn
            or self.late_heartbeat
            or self.duplicate_commit
        )

    def fire(self, position: int, attempt: int) -> None:
        """Raise/kill/hang if the schedule names this shard attempt.

        Called at the top of every shard computation (pool worker or
        serial path).  Kill and hang only act outside the coordinator
        process; transient and permanent faults fire anywhere.
        """
        key = (position, attempt)
        in_worker = (
            self.coordinator_pid is not None
            and os.getpid() != self.coordinator_pid
        )
        if key in self.kill_worker and in_worker:
            os.kill(os.getpid(), signal.SIGKILL)
        if key in self.hang and in_worker:
            time.sleep(self.hang_seconds)
        if key in self.transient:
            raise TransientFaultError(
                f"injected transient fault at shard {position} "
                f"attempt {attempt}"
            )
        if key in self.permanent:
            raise InjectedFaultError(
                f"injected permanent fault at shard {position} "
                f"attempt {attempt}"
            )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from its JSON form (see module docstring)."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"fault plan is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ValueError(
                f"fault plan must be a JSON object, "
                f"got {type(payload).__name__}"
            )
        known = {
            "kill_worker",
            "transient",
            "hang",
            "permanent",
            "enospc_puts",
            "hang_seconds",
            "dead_worker",
            "drop_conn",
            "late_heartbeat",
            "duplicate_commit",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown fault plan key(s): {', '.join(unknown)}; "
                f"valid keys are {', '.join(sorted(known))}"
            )
        kwargs = {}
        for kind in (
            "kill_worker",
            "transient",
            "hang",
            "permanent",
            "dead_worker",
            "drop_conn",
            "late_heartbeat",
            "duplicate_commit",
        ):
            if kind in payload:
                kwargs[kind] = _pairs(payload[kind], kind)
        if "enospc_puts" in payload:
            ordinals = payload["enospc_puts"]
            if isinstance(ordinals, (str, bytes)) or not hasattr(
                ordinals, "__iter__"
            ):
                raise ValueError(
                    "'enospc_puts' must be a list of non-negative store "
                    f"ordinals, got {ordinals!r}"
                )
            if not all(
                isinstance(x, int) and not isinstance(x, bool) and x >= 0
                for x in ordinals
            ):
                raise ValueError(
                    "'enospc_puts' must be non-negative store ordinals, "
                    f"got {ordinals!r}"
                )
            kwargs["enospc_puts"] = frozenset(ordinals)
        if "hang_seconds" in payload:
            seconds = payload["hang_seconds"]
            if (
                isinstance(seconds, bool)
                or not isinstance(seconds, (int, float))
                or seconds <= 0
            ):
                raise ValueError(
                    f"'hang_seconds' must be a positive number, "
                    f"got {seconds!r}"
                )
            kwargs["hang_seconds"] = float(seconds)
        return cls(**kwargs)

    @classmethod
    def from_env(cls, environ=None) -> Optional["FaultPlan"]:
        """The plan named by ``REPRO_FAULTS``, or ``None`` when unset.

        This is how the CLI and the service inherit an injection
        schedule without any code path knowing about chaos testing.
        """
        environ = os.environ if environ is None else environ
        text = environ.get(FAULTS_ENV_VAR)
        if not text:
            return None
        return cls.from_json(text)


@dataclass
class FaultyCache:
    """A :class:`~repro.core.cache.ShardCache` proxy with failing stores.

    Reads pass straight through; ``put``/``put_blob`` raise
    ``OSError(ENOSPC)`` on the store ordinals named by the plan's
    ``enospc_puts`` (counted across both entry points, in call order)
    and delegate otherwise.  Everything else — keys, stats, paths — is
    the wrapped cache's, so degraded runs share the real store.
    """

    inner: object
    plan: FaultPlan
    puts_seen: int = field(default=0)

    def _maybe_fail(self) -> None:
        ordinal = self.puts_seen
        self.puts_seen += 1
        if ordinal in self.plan.enospc_puts:
            raise OSError(
                errno.ENOSPC,
                f"injected ENOSPC on cache store {ordinal}",
            )

    def put(self, key, result):
        self._maybe_fail()
        return self.inner.put(key, result)

    def put_blob(self, key, payload):
        self._maybe_fail()
        return self.inner.put_blob(key, payload)

    def __getattr__(self, name):
        return getattr(self.inner, name)

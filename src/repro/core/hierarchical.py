"""Hierarchical fracturing: fracture each cell once, replicate figures.

Flat data preparation fractures every polygon of every expanded instance
— for an arrayed chip this repeats identical work thousands of times.
The period machines instead fractured each cell *once* and replicated
the resulting figures at machine-write time.  This module implements
that optimization:

* a cell's local geometry is fractured once per layer and cached;
* placements whose transform keeps horizontal edges horizontal
  (``c == 0`` in the affine matrix — translations, 180° rotations,
  mirrors, magnification; everything GDSII allows except 90°/270°
  rotations) reuse the cached figures through
  :func:`transform_trapezoid`;
* other placements fall back to fracturing the transformed polygons.

The speedup on array-dominated layouts is the figure-count ratio between
flattened and stored geometry (see experiment T3's compaction column);
the F8 bench family measures it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.fracture.base import Fracturer
from repro.fracture.trapezoidal import TrapezoidFracturer
from repro.geometry.scanline_fast import KernelFallbacks
from repro.geometry.transform import Transform
from repro.geometry.trapezoid import Trapezoid
from repro.geometry.vertex_array import (
    transform_polygons,
    transform_trapezoid_array,
    trapezoid_array,
    trapezoids_from_array,
)
from repro.layout.cell import Cell
from repro.layout.layer import Layer
from repro.layout.library import Library


def transform_trapezoid(trap: Trapezoid, t: Transform) -> Trapezoid:
    """Apply a horizontality-preserving affine transform to a trapezoid.

    Requires ``t.c == 0`` (horizontal lines stay horizontal); shear
    (``b != 0``) and negative scales are handled by re-sorting the
    corners.

    Raises:
        ValueError: if the transform would tilt the parallel edges.
    """
    if abs(t.c) > 1e-12:
        raise ValueError("transform does not preserve horizontal edges")
    y0 = t.d * trap.y_bottom + t.f
    y1 = t.d * trap.y_top + t.f

    def map_x(x: float, y: float) -> float:
        return t.a * x + t.b * y + t.e

    bl = map_x(trap.x_bottom_left, trap.y_bottom)
    br = map_x(trap.x_bottom_right, trap.y_bottom)
    tl = map_x(trap.x_top_left, trap.y_top)
    tr = map_x(trap.x_top_right, trap.y_top)
    if y1 < y0:
        # Vertical flip: the old top edge becomes the bottom.
        y0, y1 = y1, y0
        bl, br, tl, tr = tl, tr, bl, br
    if bl > br:
        bl, br = br, bl
    if tl > tr:
        tl, tr = tr, tl
    return Trapezoid(y0, y1, bl, br, tl, tr)


def preserves_horizontal(t: Transform, tol: float = 1e-12) -> bool:
    """True if ``t`` maps horizontal trapezoids to horizontal trapezoids."""
    return abs(t.c) <= tol and abs(t.d) > tol


@dataclass
class HierarchicalFractureResult:
    """Figures plus reuse statistics.

    Attributes:
        figures: per-layer flat figure lists.  A ``merge_layers``
            fracture stores all figures under the single key ``None``.
        cells_fractured: distinct (cell, layer) fracture computations.
        instances_reused: placements served from the cache.
        instances_fallback: placements that required re-fracturing
            (90°/270° rotations).
        source_polygons: flattened polygon count the figure set covers
            (what a flat run would have fractured).
        source_polygons_by_layer: the same count split per layer.
        kernel_fallbacks: fast-kernel degradation counters accumulated
            over every fracture computation of the walk (cached-cell
            reuse never re-runs the kernel, so never re-counts).
    """

    figures: Dict[Layer, List[Trapezoid]] = field(default_factory=dict)
    cells_fractured: int = 0
    instances_reused: int = 0
    instances_fallback: int = 0
    source_polygons: int = 0
    source_polygons_by_layer: Dict[Layer, int] = field(default_factory=dict)
    kernel_fallbacks: KernelFallbacks = field(default_factory=KernelFallbacks)

    def figure_count(self) -> int:
        return sum(len(v) for v in self.figures.values())

    def total_area(self) -> float:
        return sum(t.area() for v in self.figures.values() for t in v)


def fracture_hierarchical(
    source: "Library | Cell",
    fracturer: Optional[Fracturer] = None,
    layers: Optional[Set[Layer]] = None,
    merge_layers: bool = False,
) -> HierarchicalFractureResult:
    """Fracture a hierarchy with per-cell caching.

    Args:
        source: library (unique top cell used) or cell.
        fracturer: fracturing strategy (trapezoids by default).
        layers: restrict to these layers (all populated layers when
            ``None``).
        merge_layers: fracture each cell's (selected) layers as one
            union instead of per layer, storing the figures under the
            single key ``None`` — the per-cell equivalent of the flat
            pipeline's all-layers-merged preparation, where geometry
            drawn on several layers exposes once, not once per layer.

    Note: per-cell fracture means overlaps *between* different instances
    are not merged (their figures may overlap).  For well-formed layouts
    (non-overlapping placements — the normal case for arrays) the result
    is identical to flat fracturing.
    """
    if fracturer is None:
        fracturer = TrapezoidFracturer()
    top = source.top_cell() if isinstance(source, Library) else source
    result = HierarchicalFractureResult()
    cache: Dict[Tuple[int, Optional[Layer]], List[Trapezoid]] = {}
    _walk(
        top, Transform.identity(), fracturer, cache, result, layers,
        merge_layers, path=(),
    )
    return result


def _replicate(
    cell: Cell,
    key_layer: Optional[Layer],
    polys,
    transform: Transform,
    fracturer: Fracturer,
    cache: Dict,
    result: HierarchicalFractureResult,
) -> None:
    """Fracture-once-and-transform one cell/layer group into the result."""
    bucket = result.figures.setdefault(key_layer, [])
    if preserves_horizontal(transform):
        key = (id(cell), key_layer)
        if key not in cache:
            cache[key] = fracturer.fracture(polys)
            result.kernel_fallbacks.add(fracturer.last_fallbacks)
            result.cells_fractured += 1
        else:
            result.instances_reused += 1
        if transform.is_identity():
            bucket.extend(cache[key])
        elif len(cache[key]) > 8:
            # Replicate through one vectorized affine pass over the
            # stacked figure array (bit-identical to the scalar
            # transform_trapezoid).
            bucket.extend(
                trapezoids_from_array(
                    transform_trapezoid_array(
                        trapezoid_array(cache[key]), transform
                    )
                )
            )
        else:
            bucket.extend(
                transform_trapezoid(t, transform) for t in cache[key]
            )
    else:
        result.instances_fallback += 1
        bucket.extend(
            fracturer.fracture(transform_polygons(polys, transform))
        )
        result.kernel_fallbacks.add(fracturer.last_fallbacks)


def _walk(
    cell: Cell,
    transform: Transform,
    fracturer: Fracturer,
    cache: Dict,
    result: HierarchicalFractureResult,
    layers: Optional[Set[Layer]],
    merge_layers: bool,
    path: Tuple[str, ...],
) -> None:
    if cell.name in path:
        cycle = " -> ".join(path + (cell.name,))
        raise ValueError(f"reference cycle while fracturing: {cycle}")

    merged: List = []
    for layer, polys in cell.polygons.items():
        if not polys or (layers is not None and layer not in layers):
            continue
        result.source_polygons += len(polys)
        result.source_polygons_by_layer[layer] = (
            result.source_polygons_by_layer.get(layer, 0) + len(polys)
        )
        if merge_layers:
            merged.extend(polys)
        else:
            _replicate(
                cell, layer, polys, transform, fracturer, cache, result
            )
    if merged:
        _replicate(cell, None, merged, transform, fracturer, cache, result)

    for ref in cell.references:
        for placement in ref.placements():
            _walk(
                ref.cell,
                transform @ placement,
                fracturer,
                cache,
                result,
                layers,
                merge_layers,
                path + (cell.name,),
            )

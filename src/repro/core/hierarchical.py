"""Hierarchical fracturing: fracture each cell once, replicate figures.

Flat data preparation fractures every polygon of every expanded instance
— for an arrayed chip this repeats identical work thousands of times.
The period machines instead fractured each cell *once* and replicated
the resulting figures at machine-write time.  This module implements
that optimization:

* a cell's local geometry is fractured once per layer and cached;
* placements whose transform keeps horizontal edges horizontal
  (``c == 0`` in the affine matrix — translations, 180° rotations,
  mirrors, magnification; everything GDSII allows except 90°/270°
  rotations) reuse the cached figures through
  :func:`transform_trapezoid`;
* other placements fall back to fracturing the transformed polygons.

The speedup on array-dominated layouts is the figure-count ratio between
flattened and stored geometry (see experiment T3's compaction column);
the F8 bench family measures it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.fracture.base import Fracturer
from repro.fracture.trapezoidal import TrapezoidFracturer
from repro.geometry.transform import Transform
from repro.geometry.trapezoid import Trapezoid
from repro.layout.cell import Cell
from repro.layout.layer import Layer
from repro.layout.library import Library


def transform_trapezoid(trap: Trapezoid, t: Transform) -> Trapezoid:
    """Apply a horizontality-preserving affine transform to a trapezoid.

    Requires ``t.c == 0`` (horizontal lines stay horizontal); shear
    (``b != 0``) and negative scales are handled by re-sorting the
    corners.

    Raises:
        ValueError: if the transform would tilt the parallel edges.
    """
    if abs(t.c) > 1e-12:
        raise ValueError("transform does not preserve horizontal edges")
    y0 = t.d * trap.y_bottom + t.f
    y1 = t.d * trap.y_top + t.f

    def map_x(x: float, y: float) -> float:
        return t.a * x + t.b * y + t.e

    bl = map_x(trap.x_bottom_left, trap.y_bottom)
    br = map_x(trap.x_bottom_right, trap.y_bottom)
    tl = map_x(trap.x_top_left, trap.y_top)
    tr = map_x(trap.x_top_right, trap.y_top)
    if y1 < y0:
        # Vertical flip: the old top edge becomes the bottom.
        y0, y1 = y1, y0
        bl, br, tl, tr = tl, tr, bl, br
    if bl > br:
        bl, br = br, bl
    if tl > tr:
        tl, tr = tr, tl
    return Trapezoid(y0, y1, bl, br, tl, tr)


def preserves_horizontal(t: Transform, tol: float = 1e-12) -> bool:
    """True if ``t`` maps horizontal trapezoids to horizontal trapezoids."""
    return abs(t.c) <= tol and abs(t.d) > tol


@dataclass
class HierarchicalFractureResult:
    """Figures plus reuse statistics.

    Attributes:
        figures: per-layer flat figure lists.
        cells_fractured: distinct (cell, layer) fracture computations.
        instances_reused: placements served from the cache.
        instances_fallback: placements that required re-fracturing
            (90°/270° rotations).
    """

    figures: Dict[Layer, List[Trapezoid]] = field(default_factory=dict)
    cells_fractured: int = 0
    instances_reused: int = 0
    instances_fallback: int = 0

    def figure_count(self) -> int:
        return sum(len(v) for v in self.figures.values())

    def total_area(self) -> float:
        return sum(t.area() for v in self.figures.values() for t in v)


def fracture_hierarchical(
    source: "Library | Cell",
    fracturer: Optional[Fracturer] = None,
) -> HierarchicalFractureResult:
    """Fracture a hierarchy with per-cell caching.

    Note: per-cell fracture means overlaps *between* different instances
    are not merged (their figures may overlap).  For well-formed layouts
    (non-overlapping placements — the normal case for arrays) the result
    is identical to flat fracturing.
    """
    if fracturer is None:
        fracturer = TrapezoidFracturer()
    top = source.top_cell() if isinstance(source, Library) else source
    result = HierarchicalFractureResult()
    cache: Dict[Tuple[int, Layer], List[Trapezoid]] = {}
    _walk(top, Transform.identity(), fracturer, cache, result, path=())
    return result


def _walk(
    cell: Cell,
    transform: Transform,
    fracturer: Fracturer,
    cache: Dict,
    result: HierarchicalFractureResult,
    path: Tuple[str, ...],
) -> None:
    if cell.name in path:
        cycle = " -> ".join(path + (cell.name,))
        raise ValueError(f"reference cycle while fracturing: {cycle}")

    reusable = preserves_horizontal(transform)
    for layer, polys in cell.polygons.items():
        if not polys:
            continue
        bucket = result.figures.setdefault(layer, [])
        if reusable:
            key = (id(cell), layer)
            if key not in cache:
                cache[key] = fracturer.fracture(polys)
                result.cells_fractured += 1
            else:
                result.instances_reused += 1
            if transform.is_identity():
                bucket.extend(cache[key])
            else:
                bucket.extend(
                    transform_trapezoid(t, transform) for t in cache[key]
                )
        else:
            result.instances_fallback += 1
            bucket.extend(
                fracturer.fracture([p.transformed(transform) for p in polys])
            )

    for ref in cell.references:
        for placement in ref.placements():
            _walk(
                ref.cell,
                transform @ placement,
                fracturer,
                cache,
                result,
                path + (cell.name,),
            )
